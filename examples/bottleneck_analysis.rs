//! Use Case 2 — fine-grained bottleneck analysis.
//!
//! Reproduces the paper's §V-D workflow: evaluate an accelerator, break
//! its execution into segments, find where time goes (compute vs memory),
//! which data dominates off-chip traffic (weights vs feature maps), and
//! where PEs sit underutilized — the signals that tell a designer where
//! compression or re-partitioning would pay off.
//!
//! Run with: `cargo run --release --example bottleneck_analysis`

use mccm::arch::{templates, MultipleCeBuilder};
use mccm::cnn::zoo;
use mccm::core::CostModel;
use mccm::fpga::FpgaBoard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: SegmentedRR with 2 CEs, ResNet-50 on
    // the bandwidth-starved ZC706.
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    let acc = builder.build(&templates::segmented_rr(&model, 2)?)?;
    let eval = CostModel::evaluate(&acc);

    println!("design: {}", eval.notation);
    println!(
        "latency {:.1} ms | {:.1} FPS | buffers {:.1} MiB | off-chip {:.1} MiB\n",
        eval.latency_ms(),
        eval.throughput_fps,
        eval.buffer_mib(),
        eval.offchip_mib()
    );

    // Fig. 6a-style per-segment time breakdown.
    let total: f64 = eval.segments.iter().map(|s| s.time_s).sum();
    println!("per-segment time (% of overall) — memory-bound segments flagged:");
    for s in &eval.segments {
        let bar_c = (60.0 * s.compute_s / total).round() as usize;
        let bar_m = (60.0 * s.memory_s / total).round() as usize;
        println!(
            "  seg {:>2} (L{:>2}-L{:>2})  compute {:>4.1}% {:<15} memory {:>4.1}% {}{}",
            s.index + 1,
            s.first + 1,
            s.last + 1,
            100.0 * s.compute_s / total,
            "#".repeat(bar_c),
            100.0 * s.memory_s / total,
            "#".repeat(bar_m),
            if s.memory_s > s.compute_s {
                "  <- memory-bound"
            } else {
                ""
            }
        );
    }
    println!(
        "\nCEs idle waiting for data {:.0}% of the time (paper reports 29% for this design).",
        100.0 * eval.memory_stall_fraction
    );

    // Fig. 7-style access breakdown: what would compression help?
    println!(
        "\noff-chip accesses: weights {:.1} MiB ({:.0}%), feature maps {:.1} MiB ({:.0}%)",
        eval.offchip_weight_bytes.mib(),
        100.0 * eval.weight_traffic_share(),
        eval.offchip_fm_bytes.mib(),
        100.0 * (1.0 - eval.weight_traffic_share()),
    );
    let candidates: Vec<usize> = eval
        .segments
        .iter()
        .filter(|s| s.memory_s > s.compute_s)
        .map(|s| s.index + 1)
        .collect();
    println!(
        "=> compressing weights only in segments {candidates:?} attacks the bottleneck with \
         minimum overhead (§V-D)."
    );

    // Fig. 9b-style utilization view.
    println!("\nper-CE utilization:");
    for ce in &eval.ces {
        println!(
            "  CE{}: {:>4} PEs, busy {:>6.1} ms, utilization {:.0}%",
            ce.ce + 1,
            ce.pes,
            ce.busy_s * 1e3,
            100.0 * ce.utilization
        );
    }
    Ok(())
}
