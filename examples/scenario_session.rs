//! The scenario API end to end: declarative JSON requests executed by a
//! `Session` with an LRU cache of warmed builder contexts.
//!
//! Run with: `cargo run --release --example scenario_session`

use mccm::scenario::Scenario;
use mccm::session::{Outcome, Session};

fn main() -> Result<(), mccm::Error> {
    let mut session = Session::new();

    // 1. Evaluate one design, declared as data.
    let evaluate = Scenario::from_json_str(
        r#"{
            "model": {"zoo": "xception"},
            "board": {"builtin": "vcu110"},
            "batch": 8,
            "action": {"evaluate": {"template": "hybrid", "ces": 7}}
        }"#,
    )?;
    let outcome = session.run(&evaluate)?;
    if let Outcome::Evaluation(e) = &outcome {
        println!(
            "evaluate: {} → {:.2} ms, {:.1} FPS, {:.1} mJ/inference",
            e.eval.notation,
            e.eval.latency_ms(),
            e.eval.throughput_fps,
            e.energy.total_mj()
        );
    }

    // 2. Re-running any scenario on the same (model, board, precision,
    //    batch) context is a cache hit: no CNN rebuild, no builder
    //    reconstruction, parallelism memo already warm.
    let again = session.run(&evaluate)?;
    assert_eq!(again, outcome, "warm results are identical");
    println!(
        "cache: {} hit(s), {} miss(es) after re-running the same scenario",
        session.stats().hits,
        session.stats().misses
    );

    // 3. A different action on the same context stays warm too: sample
    //    the custom space and report its Pareto front.
    let sample = Scenario::from_json_str(
        r#"{
            "model": {"zoo": "xception"},
            "board": {"builtin": "vcu110"},
            "batch": 8,
            "seed": 1,
            "action": {"sample": {"count": 2000}}
        }"#,
    )?;
    if let Outcome::Front(front) = session.run(&sample)? {
        println!(
            "sample: {} designs → front of {} (hypervolume {:.3})",
            front.evaluated,
            front.front.len(),
            front.hypervolume
        );
        for s in front.front.iter().take(3) {
            println!(
                "  {:>7.1} FPS  {:>6.2} MiB  {}",
                s.throughput_fps,
                s.buffer_mib(),
                s.notation
            );
        }
    }
    assert_eq!(
        session.stats().hits,
        2,
        "the sample reused the warmed context"
    );

    // 4. Every outcome serializes to deterministic JSON — the payload a
    //    serving layer would return. Identical requests give identical
    //    bytes.
    let json = session.run(&sample)?.to_json_string();
    assert_eq!(json, session.run(&sample)?.to_json_string());
    println!(
        "\noutcome JSON is deterministic ({} bytes); first lines:",
        json.len()
    );
    for line in json.lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}
