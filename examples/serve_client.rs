//! The serving layer end to end: an in-process `mccm serve` daemon
//! driven through the TCP client — plain runs, a deadline that expires
//! into an honestly-labeled partial result, busy-rejection retries, and
//! a graceful drain.
//!
//! Run with: `cargo run --release --example serve_client`

use mccm::scenario::Scenario;
use mccm::serve::{run_with_retry, Client, RetryPolicy, ServeConfig, Server};
use mccm::session::Session;

fn main() -> Result<(), mccm::Error> {
    // 1. Start a daemon on an ephemeral port. `mccm serve` does exactly
    //    this from the CLI; here it runs in-process on its own thread.
    let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
    let addr = server.addr().to_string();
    let daemon = server.spawn();
    println!("daemon listening on {addr}");

    // 2. A plain run. The response bytes from a warm server are
    //    byte-identical to a local `Session::run` of the same scenario —
    //    the daemon adds robustness, never noise.
    let evaluate = Scenario::from_json_str(
        r#"{
            "model": {"zoo": "xception"},
            "board": {"builtin": "vcu110"},
            "batch": 8,
            "action": {"evaluate": {"template": "hybrid", "ces": 7}}
        }"#,
    )?;
    let reply = Client::connect(&addr)?.run(&evaluate, None)?;
    let local = Session::new().run(&evaluate)?;
    assert_eq!(reply.outcome.to_string_pretty(), local.to_json_string());
    assert!(!reply.degraded);
    println!("evaluate: server response matches a local run byte-for-byte");

    // 3. A deadline too tight for a 2M-evaluation search: the watchdog
    //    fires the cooperative cancel token and the daemon returns the
    //    partial front it had, labeled degraded — not an error, not a
    //    fabricated full result.
    let optimize = Scenario::from_json_str(
        r#"{
            "model": {"zoo": "mobilenetv2"},
            "board": {"builtin": "zc706"},
            "seed": 11,
            "action": {"optimize": {"metrics": ["throughput", "buffers"],
                                    "budget": 2000000, "population": 16,
                                    "islands": 2}}
        }"#,
    )?;
    let partial = Client::connect(&addr)?.run(&optimize, Some(60))?;
    let evaluations = partial
        .outcome
        .get("evaluations")
        .and_then(mccm::json::Json::as_u64)
        .unwrap_or(0);
    println!(
        "optimize with a 60 ms deadline: degraded={}, {evaluations} of 2000000 evaluations done",
        partial.degraded
    );
    assert!(evaluations < 2_000_000);
    assert!(partial.degraded, "a 2M budget cannot finish in 60 ms");

    // 4. `run_with_retry` is what `mccm run --connect` uses: it retries
    //    busy rejections with deterministic seeded backoff (floored at
    //    the server's retry hint) and reconnects per attempt.
    let retried = run_with_retry(&addr, &evaluate, None, &RetryPolicy::default())?;
    assert!(!retried.degraded);
    println!("run_with_retry: landed without degradation");

    // 5. Stats, then a graceful drain. The counters balance:
    //    received == admitted + rejected, admitted == completed +
    //    degraded + failed.
    let stats = Client::connect(&addr)?.stats()?;
    println!("stats: {}", stats.to_string_compact());
    let goodbye = Client::connect(&addr)?.shutdown()?;
    println!("shutdown: {}", goodbye.to_string_compact());
    let final_stats = daemon.join().expect("daemon thread")?;
    assert_eq!(final_stats.completed + final_stats.degraded, 3);
    println!(
        "daemon drained: {} completed, {} degraded, {} panics recovered",
        final_stats.completed, final_stats.degraded, final_stats.panics_recovered
    );
    Ok(())
}
