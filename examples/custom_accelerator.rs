//! Expressing, building, evaluating, and validating a custom multiple-CE
//! accelerator written directly in the paper's notation (§III-B).
//!
//! Shows the full methodology pipeline — notation → Multiple-CE Builder →
//! analytical model — and then cross-checks the analytical estimates
//! against the event-driven reference simulator (the reproduction's
//! synthesis surrogate).
//!
//! Run with: `cargo run --release --example custom_accelerator`

use mccm::arch::{notation, MultipleCeBuilder};
use mccm::cnn::zoo;
use mccm::core::CostModel;
use mccm::fpga::FpgaBoard;
use mccm::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A MobileNetV2 accelerator: dedicated pipelined engines for the stem
    // and the first expanded block, one engine for the early bottlenecks,
    // one for the rest — written exactly as in the paper.
    let text = "{L1-L5: CE1-CE5, L6-L30: CE6, L31-Last: CE7}";
    let spec = notation::parse(text)?;

    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    let acc = builder.build(&spec)?;

    println!("notation:  {}", acc.notation());
    println!("board:     {board}");
    println!("segments:  {}", acc.segments.len());
    for ce in &acc.ces {
        println!("  {ce}");
    }

    // Analytical evaluation (microseconds).
    let eval = CostModel::evaluate(&acc);
    println!("\nMCCM estimates:");
    println!("  latency     {:>8.2} ms", eval.latency_ms());
    println!("  throughput  {:>8.1} FPS", eval.throughput_fps);
    println!("  buffers     {:>8.2} MiB required", eval.buffer_mib());
    println!("  accesses    {:>8.1} MiB/inference", eval.offchip_mib());

    // Reference simulation (milliseconds) — the validation the paper did
    // with hour-long HLS synthesis runs.
    let sim = Simulator::new(SimConfig::default()).run_with_eval(&acc, &eval);
    println!("\nreference simulator:");
    println!("  latency     {:>8.2} ms", sim.latency_s * 1e3);
    println!("  throughput  {:>8.1} FPS", sim.throughput_fps);
    println!(
        "  accesses    {:>8.1} MiB/inference",
        sim.offchip_bytes as f64 / (1 << 20) as f64
    );

    println!("\nEq. (10) accuracy of the model against the reference:");
    for rec in sim.accuracy_records(&eval) {
        println!("  {:<11} {:>6.1}%", rec.metric.name(), rec.accuracy());
    }
    Ok(())
}
