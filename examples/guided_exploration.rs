//! Guided-exploration smoke run: optimizes MobileNetV2 on ZC706 over the
//! five-metric objective set (the paper's four plus energy) with a small
//! budget, asserts the island model is worker-invariant, and compares the
//! guided front against random sampling at the same budget. CI runs this
//! on every push so the optimizer is exercised end to end.
//!
//! Run with: `cargo run --release --example guided_exploration`

use mccm::core::{EnergyModel, Metric};
use mccm::dse::{
    compare_fronts, sample_attempt, CustomSpace, Explorer, OptimizerConfig, ParetoFront,
};
use mccm::fpga::FpgaBoard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = mccm::cnn::zoo::mobilenet_v2();
    let board = FpgaBoard::zc706();
    let explorer = Explorer::new(&model, &board);
    let metrics = Metric::WITH_ENERGY;
    let config = OptimizerConfig::default()
        .with_metrics(&metrics)
        .with_budget(1_000)
        .with_population(16)
        .with_islands(3)
        .with_seed(4);

    println!(
        "guided exploration: {} on {} — budget {} over [{}]",
        model.name(),
        board.name,
        config.budget,
        metrics
            .iter()
            .map(Metric::name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let serial = explorer.optimize(&config)?;
    let parallel = explorer.optimize_par(&config, 2)?;
    let key = |f: &mccm::dse::GuidedFront| -> Vec<String> {
        f.points
            .iter()
            .map(|p| p.summary.notation.clone())
            .collect()
    };
    assert_eq!(
        key(&serial),
        key(&parallel),
        "island model diverged across worker counts"
    );
    println!(
        "  front of {} designs from {} evaluations, parallel == serial",
        serial.points.len(),
        serial.evaluations
    );

    // Random sampling at the same attempt budget, for comparison (only
    // its Pareto front matters for front quality).
    let space = CustomSpace::paper_range(model.conv_layer_count());
    let mut scratch = mccm::core::EvalScratch::new();
    let mut random_front = ParetoFront::new(&metrics);
    for attempt in 0..config.budget {
        let design = sample_attempt(&space, config.seed, attempt);
        // Skip only genuinely infeasible designs; a real builder fault
        // must fail this smoke run, never shrink the front silently.
        let spec = match design.to_spec(&model) {
            Ok(spec) => spec,
            Err(mccm::arch::ArchError::Infeasible { .. }) => continue,
            Err(e) => return Err(format!("builder fault in random lane: {e}").into()),
        };
        match explorer.evaluate_summary(&spec, &mut scratch) {
            Ok(summary) => {
                random_front.offer(summary);
            }
            Err(mccm::arch::ArchError::Infeasible { .. }) => continue,
            Err(e) => return Err(format!("builder fault in random lane: {e}").into()),
        }
    }
    let random = random_front.into_items();
    let guided: Vec<_> = serial.points.iter().map(|p| p.summary.clone()).collect();
    let cmp = compare_fronts(&guided, &random, &metrics);
    println!(
        "  guided best-or-tied on {}/{} metrics vs random at equal budget \
         (hypervolume {:.4} vs {:.4})",
        cmp.a_best_or_tied,
        metrics.len(),
        cmp.hypervolume_a,
        cmp.hypervolume_b
    );

    let energy = EnergyModel::default();
    println!("  energy-aware picks (lowest energy first):");
    let mut by_energy = serial.points.clone();
    by_energy.sort_by(|a, b| {
        Metric::Energy
            .value(&a.summary)
            .total_cmp(&Metric::Energy.value(&b.summary))
    });
    for p in by_energy.iter().take(3) {
        println!(
            "    {:>6.1} mJ  {:>6.1} FPS  {}",
            energy.estimate_summary(&p.summary).total_mj(),
            p.summary.throughput_fps,
            p.summary.notation
        );
    }
    println!("guided exploration smoke: OK");
    Ok(())
}
