//! Quickstart: express a multiple-CE accelerator, build it, and evaluate
//! its latency, throughput, buffers, and off-chip accesses with MCCM.
//!
//! Run with: `cargo run --example quickstart`

use mccm::arch::{notation, templates, MultipleCeBuilder};
use mccm::cnn::zoo;
use mccm::core::CostModel;
use mccm::fpga::FpgaBoard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    println!(
        "CNN:   {} ({} conv layers, {:.1} M params)",
        model.name(),
        model.conv_layer_count(),
        model.total_params() as f64 / 1e6
    );
    println!("Board: {board}\n");

    let builder = MultipleCeBuilder::new(&model, &board);

    // The three state-of-the-art architectures at a few CE counts.
    println!(
        "{:<14} {:>3} {:>12} {:>10} {:>12} {:>12}  notation",
        "architecture", "CEs", "latency(ms)", "FPS", "buffer(MiB)", "access(MiB)"
    );
    for arch in templates::Architecture::ALL {
        for k in [2usize, 4, 7, 11] {
            let spec = arch.instantiate(&model, k)?;
            let acc = builder.build(&spec)?;
            let e = CostModel::evaluate(&acc);
            let mut text = e.notation.clone();
            if text.len() > 42 {
                text.truncate(39);
                text.push_str("...");
            }
            println!(
                "{:<14} {:>3} {:>12.2} {:>10.1} {:>12.2} {:>12.1}  {}",
                arch.name(),
                k,
                e.latency_ms(),
                e.throughput_fps,
                e.buffer_mib(),
                e.offchip_mib(),
                text
            );
        }
    }

    // Any custom arrangement can be written directly in the paper's
    // notation.
    let spec = notation::parse("{L1-L3: CE1-CE3, L4-L30: CE4, L31-Last: CE5}")?;
    let acc = builder.build(&spec)?;
    let e = CostModel::evaluate(&acc);
    println!("\ncustom {} -> {e}", e.notation);
    Ok(())
}
