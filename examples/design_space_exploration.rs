//! Use Case 3 — MCCM-driven design-space exploration.
//!
//! Sweeps the three state-of-the-art architectures, then samples the
//! custom Hybrid-head/Segmented-tail space and extracts the Pareto front
//! over (throughput, on-chip buffers) — finding designs that beat the
//! strongest baseline, exactly as the paper's Fig. 10.
//!
//! Run with: `cargo run --release --example design_space_exploration -- [samples]`

use mccm::cnn::zoo;
use mccm::core::Metric;
use mccm::dse::{pareto_front, select_all_metrics, Explorer, PAPER_TIE_FRAC};
use mccm::fpga::FpgaBoard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    println!(
        "exploring {} on {board} ({samples} custom samples)\n",
        model.name()
    );

    let explorer = Explorer::new(&model, &board);

    // Baseline sweep (Use Case 1): who wins each metric?
    let sweep = explorer.sweep_baselines(2..=11)?;
    println!("baseline winners (10% tie rule):");
    for cell in select_all_metrics(&sweep, PAPER_TIE_FRAC) {
        let winners: Vec<String> = cell
            .winners
            .iter()
            .map(|(a, ces, _)| format!("{}-{}", a.name(), ces))
            .collect();
        println!("  {:<11} {}", cell.metric.name(), winners.join(", "));
    }

    let best_fps = sweep
        .iter()
        .map(|p| p.eval.throughput_fps)
        .fold(0.0f64, f64::max);
    let base = sweep
        .iter()
        .find(|p| p.eval.throughput_fps == best_fps)
        .expect("non-empty sweep");
    println!(
        "\nstrongest baseline: {}-{} at {:.1} FPS / {:.2} MiB buffers",
        base.architecture.name(),
        base.ces,
        base.eval.throughput_fps,
        base.eval.buffer_mib()
    );

    // Custom-space sampling.
    let (points, elapsed) = explorer.sample_custom(samples, 1)?;
    println!(
        "evaluated {samples} custom designs in {:.2} s ({:.2} ms/design)",
        elapsed.as_secs_f64(),
        1e3 * elapsed.as_secs_f64() / samples as f64
    );

    let evals: Vec<_> = points.iter().map(|p| p.eval.clone()).collect();
    let front = pareto_front(&evals, &[Metric::Throughput, Metric::OnChipBuffers]);
    println!(
        "\nPareto front ({} designs), throughput vs buffers:",
        front.len()
    );
    let mut shown = 0;
    for &i in front.iter().rev() {
        let e = &evals[i];
        if e.throughput_fps >= 0.8 * base.eval.throughput_fps {
            println!(
                "  {:>6.1} FPS  {:>6.2} MiB  {}",
                e.throughput_fps,
                e.buffer_mib(),
                e.notation
            );
            shown += 1;
            if shown == 10 {
                break;
            }
        }
    }

    // The paper's summary comparison.
    let matching_buf = evals
        .iter()
        .filter(|e| e.throughput_fps >= base.eval.throughput_fps)
        .map(|e| e.buffer_req_bytes)
        .min();
    if let Some(buf) = matching_buf {
        println!(
            "\ncustom designs reach the baseline's throughput with {:.0}% smaller buffers \
             (paper: up to 48%).",
            100.0 * (1.0 - buf.as_f64() / base.eval.buffer_req_bytes.as_f64())
        );
    }
    Ok(())
}
