//! Parallel-DSE smoke run: exhaustively evaluates a tiny custom space
//! (MobileNetV2 with 2–3 CEs) and samples a small batch of designs with
//! 2 workers, asserting that the sharded paths reproduce the serial
//! results exactly. CI runs this on every push so the threaded code is
//! exercised end to end.
//!
//! Run with: `cargo run --release --example parallel_exploration`

use mccm::cnn::zoo;
use mccm::core::Metric;
use mccm::dse::{par_pareto_indices, CustomSpace, Explorer};
use mccm::fpga::FpgaBoard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const WORKERS: usize = 2;
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::zc706();
    let explorer = Explorer::new(&model, &board);

    // Exhaustive sweep of a space small enough to walk completely.
    let space = CustomSpace {
        layers: model.conv_layer_count(),
        min_ces: 2,
        max_ces: 3,
        max_fuse_depth: 1,
    };
    println!(
        "exhaustive sweep: {} on {} — {} designs, {WORKERS} workers",
        model.name(),
        board.name,
        space.size()
    );
    let serial = explorer.par_evaluate_space(&space, 1)?;
    let parallel = explorer.par_evaluate_space(&space, WORKERS)?;
    assert_eq!(
        serial, parallel,
        "sharded exhaustive sweep diverged from serial"
    );
    println!("  {} feasible designs, parallel == serial", parallel.len());

    // Sharded sampling: same seed, same point set as the serial path.
    let (serial_pts, _) = explorer.sample_custom_summaries(64, 1)?;
    let (par_pts, elapsed) = explorer.par_sample_custom_summaries(64, 1, WORKERS)?;
    assert_eq!(serial_pts, par_pts, "sharded sampling diverged from serial");
    println!(
        "  sampled 64 designs in {:.0} ms, parallel == serial",
        elapsed.as_secs_f64() * 1e3
    );

    // Pareto front via per-worker local fronts merged at the end.
    let summaries: Vec<_> = parallel.into_iter().map(|p| p.summary).collect();
    let metrics = [Metric::Throughput, Metric::OnChipBuffers];
    let front = par_pareto_indices(&summaries, &metrics, WORKERS);
    assert_eq!(front, par_pareto_indices(&summaries, &metrics, 1));
    println!(
        "pareto front (throughput vs buffers): {} designs",
        front.len()
    );
    for &i in front.iter().take(5) {
        let s = &summaries[i];
        println!(
            "  {:>7.1} FPS  {:>6.2} MiB  {}",
            s.throughput_fps,
            s.buffer_mib(),
            s.notation
        );
    }
    println!("parallel DSE smoke: OK");
    Ok(())
}
