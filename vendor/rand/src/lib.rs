//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.9 API this workspace uses:
//! [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`] traits with
//! `random_range` / `random_bool`, and [`seq::index::sample`]. The
//! generator is xoshiro256++ seeded via SplitMix64 — deterministic per
//! seed, statistically solid for tests and sampling, but *not* the same
//! stream as crates.io `rand`.

#![warn(missing_docs)]

/// A source of random `u64`s. Object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable RNG (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high]` (inclusive on both ends).
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sampling range");
                let span = (high as u128) - (low as u128) + 1;
                // Lemire-style multiply-shift; bias is < 2^-64 per draw,
                // irrelevant at test scale.
                let scaled = ((rng.next_u64() as u128) * span) >> 64;
                low + scaled as Self
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for core::ops::Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty sampling range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Decrement helper so half-open ranges can reuse the inclusive sampler.
pub trait Dec {
    /// Returns `self - 1`.
    fn dec(self) -> Self;
}
macro_rules! impl_dec {
    ($($t:ty),*) => {$(impl Dec for $t { fn dec(self) -> Self { self - 1 } })*};
}
impl_dec!(u8, u16, u32, u64, usize);

/// User-facing RNG methods (rand 0.9 naming).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{Rng, RngCore};

        /// The result of [`sample`]: a set of distinct indices.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the vector, yielding the sampled indices.
            #[allow(clippy::should_implement_trait)]
            pub fn into_iter(self) -> std::vec::IntoIter<usize> {
                self.0.into_iter()
            }

            /// Returns the sampled indices as a `Vec`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// via a partial Fisher–Yates shuffle.
        ///
        /// # Panics
        /// If `amount > length`.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} of {length} indices"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(StdRng::seed_from_u64(9).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..10 should appear in 1000 draws"
        );
        for _ in 0..1000 {
            let v: u64 = rng.random_range(5..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = super::seq::index::sample(&mut rng, 20, 7).into_vec();
            assert_eq!(v.len(), 7);
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 7);
            assert!(v.iter().all(|&i| i < 20));
        }
    }
}
