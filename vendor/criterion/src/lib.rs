//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace's benches use: [`Criterion`],
//! benchmark groups with `sample_size` / `throughput`, [`BenchmarkId`],
//! [`Throughput`], the [`Bencher::iter`] timing loop, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! measured with an adaptive iteration count and reported as a mean
//! ns/iter on stdout — no statistics, plots, or saved baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export for `use criterion::black_box` call sites.
pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the target
    /// measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & calibration: find an iteration count that takes a
        // meaningful fraction of the target window.
        let mut n: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || n >= 1 << 24 {
                break elapsed.as_nanos() as f64 / n as f64;
            }
            n *= 4;
        };
        let iters = ((TARGET.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1 << 28);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 * 1e9 / b.mean_ns.max(1.0))
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 * 1e9 / b.mean_ns.max(1.0) / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "{id:<60} {:>14.1} ns/iter  [{} iters]{rate}",
        b.mean_ns, b.iters
    );
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.id, &b, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stub's
    /// adaptive loop ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_function(BenchmarkId::from_parameter(4), |b| {
            b.iter(|| (0..4).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
