//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` attribute, strategies built from
//! integer ranges, tuples, [`strategy::Just`], `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, and `any::<bool>()`, plus the `prop_assert*`
//! macros. There is no
//! shrinking — a failing case panics with the case number and the seed of
//! the run so it can be replayed deterministically.

#![warn(missing_docs)]

pub mod strategy {
    //! Strategy trait and combinators.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Per-run random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates the RNG for one test run.
        pub fn seed_from_u64(seed: u64) -> Self {
            Self(StdRng::seed_from_u64(seed))
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.0.next_u64()
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            self.0.random_range(0..n)
        }
    }

    /// A generator of values for property tests (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Object-safe strategy used by [`Union`] (backing `prop_oneof!`).
    pub trait DynStrategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice among several strategies of the same value type.
    pub struct Union<V> {
        choices: Vec<Box<dyn DynStrategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Creates a union; panics if `choices` is empty.
        pub fn new(choices: Vec<Box<dyn DynStrategy<Value = V>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
            Self { choices }
        }

        /// Starts a union from one strategy (used by `prop_oneof!`; the
        /// generic bound lets integer-literal types unify across arms).
        pub fn of<S: DynStrategy<Value = V> + 'static>(s: S) -> Self {
            Self {
                choices: vec![Box::new(s)],
            }
        }

        /// Adds another equally-weighted choice.
        pub fn or<S: DynStrategy<Value = V> + 'static>(mut self, s: S) -> Self {
            self.choices.push(Box::new(s));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.choices.len());
            self.choices[i].generate_dyn(rng)
        }
    }

    /// Types with a canonical strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Canonical strategy for a type (`any::<bool>()`).
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections (the `prop::collection` subset).

    use crate::strategy::{Strategy, TestRng};

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates `Vec`s with lengths drawn uniformly from `len` and
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration and failure plumbing.

    /// Error raised by a failing `prop_assert*`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration (subset of proptest's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{any, Any, Arbitrary, DynStrategy, Just, Strategy, TestRng, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Base seed for a named property; deterministic per test name, can be
/// overridden with the `PROPTEST_SEED` environment variable for replay.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Defines property tests. Mirrors proptest's macro for the supported
/// grammar: an optional `#![proptest_config(..)]` attribute followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::base_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::strategy::TestRng::seed_from_u64(
                        seed.wrapping_add(case as u64),
                    );
                    $(let $arg = ($strat).generate(&mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{} (seed {}): {}",
                            stringify!($name), case + 1, config.cases, seed, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        let union = $crate::strategy::Union::of($first);
        $(let union = union.or($rest);)*
        union
    }};
}

/// Asserts a condition inside a property, failing the case (not the
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=6), flip in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            let _ = flip;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u32), Just(2), Just(3)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20 || v == 30, "got {v}");
        }

        #[test]
        fn early_return_ok(n in 0usize..4) {
            if n == 0 { return Ok(()); }
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u32..1) {
                prop_assert_eq!(x, 99);
            }
        }
        always_fails();
    }
}
