//! Calibration subsystem integration: simulator determinism at the byte
//! level, worker-count invariance of calibrate outcomes, persistent
//! store fixed points, and honest degradation under cancellation.

use mccm::arch::{templates, MultipleCeBuilder};
use mccm::calib::{sim_result_json, simulate, CalibStore, CALIBRATED_METRICS};
use mccm::cnn::zoo;
use mccm::core::CostModel;
use mccm::dse::CancelToken;
use mccm::fpga::FpgaBoard;
use mccm::scenario::Scenario;
use mccm::session::{Outcome, Session};
use mccm::sim::SimConfig;

fn calibrate_scenario(store: Option<&str>) -> Scenario {
    let store_field = store
        .map(|s| format!(", \"store\": \"{s}\""))
        .unwrap_or_default();
    Scenario::from_json_str(&format!(
        r#"{{"model": {{"zoo": "mobilenetv2"}}, "board": {{"builtin": "zc706"}},
            "action": {{"calibrate": {{"budget": 300, "top_k": 3{store_field}}}}}}}"#
    ))
    .unwrap()
}

/// A scratch path under the system temp dir, unique per test name so
/// parallel test binaries never collide.
fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mccm-calib-{name}-{}", std::process::id()))
}

#[test]
fn simulator_results_are_byte_identical_across_runs() {
    let model = zoo::mobilenet_v2();
    let builder = MultipleCeBuilder::new(&model, &FpgaBoard::zc706());
    let acc = builder
        .build(&templates::hybrid(&model, 4).unwrap())
        .unwrap();
    let eval = CostModel::evaluate(&acc);
    let cancel = CancelToken::new();
    let baseline = sim_result_json(&simulate(&acc, &eval, SimConfig::default(), &cancel).unwrap())
        .to_string_compact();
    for _ in 0..3 {
        let again = sim_result_json(&simulate(&acc, &eval, SimConfig::default(), &cancel).unwrap())
            .to_string_compact();
        assert_eq!(again, baseline);
    }
}

#[test]
fn calibrate_outcome_is_identical_across_worker_counts() {
    let cancel = CancelToken::new();
    let texts: Vec<String> = [1usize, 4]
        .iter()
        .map(|&workers| {
            let mut scenario = calibrate_scenario(None);
            scenario.workers = workers;
            let mut session = Session::new();
            let (outcome, degraded) = session.run_cancellable(&scenario, &cancel).unwrap();
            assert!(!degraded);
            outcome.to_json_string()
        })
        .collect();
    assert_eq!(texts[0], texts[1]);
}

#[test]
fn calibrate_covers_the_four_sim_metrics_with_error_bars() {
    let mut session = Session::new();
    let outcome = session.run(&calibrate_scenario(None)).unwrap();
    let Outcome::Calibrated(o) = &outcome else {
        panic!("expected calibrated outcome, got {}", outcome.action())
    };
    assert_eq!(o.promoted.len(), 3);
    for p in &o.promoted {
        let metrics: Vec<_> = p.pairs.iter().map(|&(m, _, _)| m).collect();
        assert_eq!(metrics, CALIBRATED_METRICS.to_vec());
    }
    // Default metrics include energy; only the four sim-refereed ones
    // get corrections, each fitted from the promoted pairs.
    assert_eq!(o.corrections.len(), CALIBRATED_METRICS.len());
    for (_, c) in &o.corrections {
        assert_eq!(c.pairs, 3);
        assert!(c.error_bar().is_finite());
    }
    // The rendered JSON surfaces calibration envelopes on front rows.
    let text = outcome.to_json_string();
    assert!(text.contains("\"error_bar\""), "{text}");
    assert!(text.contains("\"calibration\""), "{text}");
}

#[test]
fn persistent_store_reaches_a_fixed_point() {
    let path = scratch("fixed-point");
    let _ = std::fs::remove_file(&path);
    let scenario = calibrate_scenario(Some(path.to_str().unwrap()));
    let mut session = Session::new();

    session.run(&scenario).unwrap();
    let first = std::fs::read(&path).unwrap();
    let second_outcome = session.run(&scenario).unwrap();
    let second = std::fs::read(&path).unwrap();
    assert_eq!(first, second, "second run must not change the store");

    let Outcome::Calibrated(o) = &second_outcome else {
        panic!("expected calibrated outcome")
    };
    assert_eq!(o.new_pairs, 0, "rerun re-measures the same designs");
    assert!(o.store_pairs > 0);

    // The persisted bytes round-trip through the store codec exactly.
    let store = CalibStore::load(&path).unwrap();
    assert_eq!(store.to_json_string().into_bytes(), first);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancelled_calibration_degrades_honestly() {
    let cancel = CancelToken::new();
    cancel.cancel();
    let mut session = Session::new();
    let (outcome, degraded) = session
        .run_cancellable(&calibrate_scenario(None), &cancel)
        .unwrap();
    assert!(degraded, "a fired token must mark the outcome degraded");
    let Outcome::Calibrated(o) = &outcome else {
        panic!("expected calibrated outcome")
    };
    // Cancellation before any simulation: no pairs, identity fits.
    assert!(o.promoted.is_empty());
    assert!(o.corrections.iter().all(|(_, c)| c.pairs == 0));
}
