//! The paper's headline claims, pinned as integration tests. Each test
//! names the claim and the section it comes from.

use mccm::arch::{templates, MultipleCeBuilder};
use mccm::cnn::zoo;
use mccm::core::{CostModel, Metric};
use mccm::dse::{select_all_metrics, Explorer, PAPER_TIE_FRAC};
use mccm::fpga::FpgaBoard;
use mccm::sim::{SimConfig, Simulator};

/// Table III: the workload characteristics match the paper exactly.
#[test]
fn claim_table_iii_workloads() {
    let expect = [
        ("resnet152", 60.4, 155),
        ("resnet50", 25.6, 53),
        ("xception", 22.9, 74),
        ("densenet121", 8.1, 120),
        ("mobilenetv2", 3.5, 52),
    ];
    for (model, (name, weights_m, convs)) in zoo::all_models().iter().zip(expect) {
        assert_eq!(model.name(), name);
        assert_eq!(model.conv_layer_count(), convs);
        assert!((model.total_params() as f64 / 1e6 - weights_m).abs() < 0.05);
    }
}

/// §V-B / Table IV: average model accuracy > 90% against the reference
/// evaluator, and off-chip accesses exactly deterministic (100%).
/// (Subset of the 150-experiment grid; the full grid runs in the `table4`
/// binary.)
#[test]
fn claim_accuracy_over_90() {
    let board = FpgaBoard::vcu108();
    let sim = Simulator::new(SimConfig::default());
    let mut accs = Vec::new();
    for model in [zoo::resnet50(), zoo::xception()] {
        let builder = MultipleCeBuilder::new(&model, &board);
        for arch in templates::Architecture::ALL {
            for k in [2usize, 6, 11] {
                let acc = builder
                    .build(&arch.instantiate(&model, k).unwrap())
                    .unwrap();
                let eval = CostModel::evaluate(&acc);
                let r = sim.run_with_eval(&acc, &eval);
                for rec in r.accuracy_records(&eval) {
                    if rec.metric == Metric::OffChipAccesses {
                        assert!((rec.accuracy() - 100.0).abs() < 1e-9);
                    }
                    accs.push(rec.accuracy());
                }
            }
        }
    }
    let avg = accs.iter().sum::<f64>() / accs.len() as f64;
    assert!(avg > 90.0, "average accuracy {avg:.1}%");
}

/// §II-D / §V-C: across the full board × CNN grid, the winning
/// architecture depends on the metric — columns exist where no single
/// architecture wins every metric, and each architecture wins somewhere.
/// (The paper finds 16/20 such columns; estimation noise and the 10% tie
/// rule shift individual columns, so the test asserts the robust pattern
/// rather than the exact count.)
#[test]
fn claim_metric_dependent_winners_across_grid() {
    let mut columns_without_universal_winner = 0usize;
    let mut winners_seen = std::collections::HashSet::new();
    let mut columns = 0usize;
    for board in FpgaBoard::evaluation_boards() {
        for model in zoo::all_models() {
            let sweep = Explorer::new(&model, &board)
                .sweep_baselines(2..=11)
                .unwrap();
            let cells = select_all_metrics(&sweep, PAPER_TIE_FRAC);
            for c in &cells {
                for &(a, _, _) in &c.winners {
                    winners_seen.insert(a);
                }
            }
            let universal = templates::Architecture::ALL.iter().any(|a| {
                cells
                    .iter()
                    .all(|c| c.winners.iter().any(|&(w, _, _)| w == *a))
            });
            if !universal {
                columns_without_universal_winner += 1;
            }
            columns += 1;
        }
    }
    assert_eq!(columns, 20);
    assert!(
        columns_without_universal_winner >= 4,
        "expected several columns without a universal winner, got \
         {columns_without_universal_winner}/20"
    );
    assert_eq!(
        winners_seen.len(),
        3,
        "every architecture should win some (board, CNN, metric) cell"
    );
}

/// §V-C: the Hybrid always achieves the minimum off-chip accesses (its
/// design objective), across every board for ResNet-50.
#[test]
fn claim_hybrid_minimizes_accesses() {
    let model = zoo::resnet50();
    for board in FpgaBoard::evaluation_boards() {
        let sweep = Explorer::new(&model, &board)
            .sweep_baselines(2..=11)
            .unwrap();
        let cell = mccm::dse::select_best(&sweep, Metric::OffChipAccesses, PAPER_TIE_FRAC);
        assert!(
            cell.winners
                .iter()
                .any(|&(a, _, _)| a == templates::Architecture::Hybrid),
            "{}: hybrid not among access winners",
            board.name
        );
    }
}

/// §V-D / Figs. 5-6: on the bandwidth-starved ZC706, SegmentedRR's
/// off-chip accesses dwarf the other architectures and its late segments
/// are memory-bound.
#[test]
fn claim_segmented_rr_memory_bottleneck_on_zc706() {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let sweep = Explorer::new(&model, &board)
        .sweep_baselines(2..=11)
        .unwrap();
    let min_rr = sweep
        .iter()
        .filter(|p| p.architecture == templates::Architecture::SegmentedRr)
        .map(|p| p.eval.offchip_bytes)
        .min()
        .unwrap();
    let max_other = sweep
        .iter()
        .filter(|p| p.architecture != templates::Architecture::SegmentedRr)
        .map(|p| p.eval.offchip_bytes)
        .max()
        .unwrap();
    assert!(
        min_rr > max_other,
        "SegmentedRR should dominate off-chip traffic"
    );

    let builder = MultipleCeBuilder::new(&model, &board);
    let acc = builder
        .build(&templates::segmented_rr(&model, 2).unwrap())
        .unwrap();
    let eval = CostModel::evaluate(&acc);
    assert_eq!(eval.segments.len(), 27, "ceil(53/2) rounds, as in Fig. 6a");
    let late_bound = eval.segments[18..]
        .iter()
        .filter(|s| s.memory_s > s.compute_s)
        .count();
    assert!(late_bound >= 3, "late segments should stall on memory");
    assert!(
        eval.memory_stall_fraction > 0.15,
        "stall fraction {:.2} (paper: 0.29)",
        eval.memory_stall_fraction
    );
}

/// §V-E / Fig. 10: the custom Hybrid-head/Segmented-tail space contains
/// designs that match the best baseline throughput with substantially
/// smaller buffers.
#[test]
fn claim_custom_designs_beat_baselines() {
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let explorer = Explorer::new(&model, &board);
    let sweep = explorer.sweep_baselines(2..=11).unwrap();
    let base = sweep
        .iter()
        .reduce(|a, b| {
            if b.eval.throughput_fps > a.eval.throughput_fps {
                b
            } else {
                a
            }
        })
        .unwrap();
    // 1000 samples (paper: 100 000): enough that a baseline-matching
    // design reliably appears regardless of the exact RNG stream; 400 was
    // marginal (some seeds topped out ~0.25% below the baseline).
    let (points, _) = explorer.sample_custom(1000, 3).unwrap();
    let matching_buf = points
        .iter()
        .filter(|p| p.eval.throughput_fps >= base.eval.throughput_fps * 0.999)
        .map(|p| p.eval.buffer_req_bytes)
        .min();
    let buf = matching_buf.expect("some custom design should match the baseline throughput");
    assert!(
        buf.as_f64() < 0.8 * base.eval.buffer_req_bytes.as_f64(),
        "expected >=20% buffer reduction (paper: 48%), got {buf} vs {}",
        base.eval.buffer_req_bytes
    );
}

/// §I/§V-E: MCCM evaluation is orders of magnitude faster than the
/// reference evaluation flow (here: >=20x vs our simulator on a mid-size
/// design, and far beyond any synthesis flow).
#[test]
fn claim_fast_evaluation() {
    let model = zoo::resnet50();
    let board = FpgaBoard::vcu108();
    let builder = MultipleCeBuilder::new(&model, &board);
    let acc = builder
        .build(&templates::segmented_rr(&model, 4).unwrap())
        .unwrap();
    let eval = CostModel::evaluate(&acc);

    let t0 = std::time::Instant::now();
    for _ in 0..20 {
        std::hint::black_box(CostModel::evaluate(&acc));
    }
    let model_time = t0.elapsed().as_secs_f64() / 20.0;

    let sim = Simulator::new(SimConfig::default());
    let t0 = std::time::Instant::now();
    for _ in 0..3 {
        std::hint::black_box(sim.run_with_eval(&acc, &eval));
    }
    let sim_time = t0.elapsed().as_secs_f64() / 3.0;

    assert!(
        sim_time > 5.0 * model_time,
        "model {model_time:.6}s vs sim {sim_time:.6}s — expected a wide gap"
    );
}
