//! Integration tests for the guided multi-objective optimizer and the
//! energy-aware fast lane: worker-invariant fronts, budget accounting,
//! front validity over the energy-extended metric set, and the
//! fast-lane/full-lane energy equivalence across the zoo × templates grid.

use mccm::arch::{templates, MultipleCeBuilder, Schedule};
use mccm::cnn::zoo;
use mccm::core::{CostModel, EnergyModel, EvalScratch, Macs, Metric};
use mccm::dse::{Explorer, GuidedFront, OptimizerConfig};
use mccm::fpga::{FpgaBoard, MiB};

fn front_fingerprint(f: &GuidedFront) -> Vec<(String, Vec<u64>)> {
    f.points
        .iter()
        .map(|p| {
            (
                p.summary.notation.clone(),
                f.metrics
                    .iter()
                    .map(|m| m.value(&p.summary).to_bits())
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn guided_fronts_are_bit_identical_for_any_worker_count() {
    let model = zoo::xception();
    let explorer = Explorer::new(&model, &FpgaBoard::vcu110());
    let config = OptimizerConfig::default()
        .with_budget(500)
        .with_population(12)
        .with_islands(3)
        .with_seed(21);
    let serial = explorer.optimize(&config).unwrap();
    assert!(!serial.points.is_empty());
    assert!(serial.evaluations <= config.budget);
    for workers in [2usize, 3, 8] {
        let par = explorer.optimize_par(&config, workers).unwrap();
        assert_eq!(
            front_fingerprint(&par),
            front_fingerprint(&serial),
            "workers={workers}"
        );
        assert_eq!(par.evaluations, serial.evaluations, "workers={workers}");
        assert_eq!(par.feasible, serial.feasible, "workers={workers}");
    }
}

#[test]
fn guided_front_designs_rebuild_to_their_reported_metrics() {
    // Every design on the front must re-materialize through the rich lane
    // to exactly the summary the optimizer recorded — including the energy
    // metric, which the fast lane computes from its own MAC count.
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::zc706();
    let explorer = Explorer::new(&model, &board);
    let config = OptimizerConfig::default()
        .with_budget(400)
        .with_population(12)
        .with_islands(2)
        .with_seed(5);
    let front = explorer.optimize(&config).unwrap();
    assert!(!front.points.is_empty());
    let builder = MultipleCeBuilder::new(&model, &board);
    for p in &front.points {
        let spec = p.design.to_spec(&model).unwrap();
        let rich = CostModel::evaluate(&builder.build(&spec).unwrap());
        assert_eq!(rich.summary(), p.summary, "{}", p.summary.notation);
        for m in Metric::WITH_ENERGY {
            assert_eq!(
                m.value(&rich).to_bits(),
                m.value(&p.summary).to_bits(),
                "{} on {}",
                m.name(),
                p.summary.notation
            );
        }
    }
}

#[test]
fn delta_fronts_are_bit_identical_to_full_fronts_for_any_worker_count() {
    // The acceptance bar of the segment-cache refactor: switching the
    // optimizer between delta evaluation (default) and whole-design
    // evaluation must not move a single bit of the front, the budget
    // accounting, or the worker-invariance guarantee — on both the
    // layer-by-layer and the schedule-extended space.
    let model = zoo::xception();
    let explorer = Explorer::new(&model, &FpgaBoard::vcu110());
    for max_fuse_depth in [1usize, 3] {
        let config = OptimizerConfig::default()
            .with_budget(500)
            .with_population(12)
            .with_islands(3)
            .with_seed(21)
            .with_max_fuse_depth(max_fuse_depth);
        let full = explorer
            .optimize(&config.clone().with_delta_eval(false))
            .unwrap();
        let delta = explorer.optimize(&config).unwrap();
        assert!(!delta.points.is_empty());
        assert_eq!(front_fingerprint(&delta), front_fingerprint(&full));
        assert_eq!(delta.evaluations, full.evaluations);
        assert_eq!(delta.feasible, full.feasible);
        for workers in [2usize, 3, 8] {
            let par = explorer.optimize_par(&config, workers).unwrap();
            assert_eq!(
                front_fingerprint(&par),
                front_fingerprint(&full),
                "delta front diverged at workers={workers}, depth={max_fuse_depth}"
            );
            assert_eq!(par.evaluations, full.evaluations);
        }
        // The cache counters are live on the delta run and silent on the
        // full run — and they balance: every evaluated design either
        // recombined from cache or paid a build.
        assert!(delta.cache.seg_hits > 0, "{:?}", delta.cache);
        assert_eq!(
            delta.cache.delta_recombines + delta.cache.full_builds,
            delta.feasible,
            "{:?}",
            delta.cache
        );
        assert_eq!(full.cache.seg_hits + full.cache.seg_misses, 0);
    }
}

#[test]
fn energy_fast_lane_matches_full_lane_on_the_zoo_templates_grid() {
    // Acceptance bar: EnergyModel::estimate_summary is bit-identical to
    // the full-Evaluation energy path on every zoo model × template × CE
    // count cell.
    let energy = EnergyModel::default();
    let mut scratch = EvalScratch::new();
    for model in mccm::cnn::zoo::all_models() {
        let board = FpgaBoard::zc706();
        let builder = MultipleCeBuilder::new(&model, &board);
        for arch in templates::Architecture::ALL {
            for ces in [2usize, 5] {
                let Ok(spec) = arch.instantiate(&model, ces) else {
                    continue;
                };
                let Ok(acc) = builder.build(&spec) else {
                    continue;
                };
                let rich = CostModel::evaluate(&acc);
                let fast = CostModel::evaluate_summary(&acc, &mut scratch);
                let full_estimate = energy.estimate(&rich, Macs::new(model.conv_macs()));
                let fast_estimate = energy.estimate_summary(&fast);
                assert_eq!(
                    full_estimate,
                    fast_estimate,
                    "{} {arch} {ces}",
                    model.name()
                );
                assert_eq!(
                    full_estimate.total_j().get().to_bits(),
                    fast_estimate.total_j().get().to_bits(),
                    "{} {arch} {ces}",
                    model.name()
                );
                // And the Metric::Energy read agrees across lanes too.
                assert_eq!(
                    Metric::Energy.value(&rich).to_bits(),
                    Metric::Energy.value(&fast).to_bits(),
                    "{} {arch} {ces}",
                    model.name()
                );
            }
        }
    }
}

#[test]
fn schedule_axis_front_cuts_offchip_traffic_below_layer_by_layer() {
    // Acceptance bar for the schedule axis: on a BRAM-starved board where
    // layer-by-layer execution spills feature maps, the optimizer's front
    // over the schedule-extended space must contain a depth-first design
    // whose off-chip traffic is strictly below layer-by-layer — both
    // against its own layer-by-layer twin (same segmentation, hence the
    // same per-CE PE allocation) and against the best design an equal
    // search restricted to layer-by-layer finds.
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::new("small-bram", 900, MiB(0.5), 4.0);
    let explorer = Explorer::new(&model, &board);
    let base = OptimizerConfig::default()
        .with_budget(600)
        .with_population(16)
        .with_islands(3)
        .with_seed(13);
    let front = explorer
        .optimize(&base.clone().with_max_fuse_depth(4))
        .unwrap();
    let df_points: Vec<_> = front
        .points
        .iter()
        .filter(|p| matches!(p.design.schedule, Schedule::DepthFirst { .. }))
        .collect();
    assert!(
        !df_points.is_empty(),
        "no depth-first design survived onto the front"
    );

    // Equal-PE comparison: flip only the schedule of each depth-first
    // front member and re-evaluate.
    let mut beats_own_twin = false;
    for p in &df_points {
        let mut twin = p.design.clone();
        twin.schedule = Schedule::LayerByLayer;
        let spec = twin.to_spec(&model).unwrap();
        let lbl = explorer.evaluate(&spec).unwrap().eval.summary();
        assert_eq!(lbl.ce_count, p.summary.ce_count, "{}", p.summary.notation);
        if p.summary.offchip_bytes.get() < lbl.offchip_bytes.get() {
            beats_own_twin = true;
        }
    }
    assert!(
        beats_own_twin,
        "no depth-first front member strictly beat its layer-by-layer twin"
    );

    // And the fused lane must beat the best traffic a layer-by-layer-only
    // search of the same budget/seed can reach at all.
    let lbl_front = explorer.optimize(&base).unwrap();
    let best_lbl = lbl_front
        .points
        .iter()
        .map(|p| p.summary.offchip_bytes.get())
        .min()
        .unwrap();
    let best_df = df_points
        .iter()
        .map(|p| p.summary.offchip_bytes.get())
        .min()
        .unwrap();
    assert!(
        best_df < best_lbl,
        "best depth-first traffic {best_df} is not below best layer-by-layer {best_lbl}"
    );
}

#[test]
fn energy_orders_designs_consistently_with_its_inputs() {
    // Energy is monotone in off-chip traffic and latency at fixed MACs:
    // of two designs of the same CNN, one dominating on both inputs must
    // not cost more energy.
    let model = zoo::resnet50();
    let explorer = Explorer::new(&model, &FpgaBoard::zc706());
    let points = explorer.sweep_baselines(2..=6).unwrap();
    for a in &points {
        for b in &points {
            let (ea, eb) = (&a.eval, &b.eval);
            if ea.offchip_bytes <= eb.offchip_bytes && ea.latency_s <= eb.latency_s {
                assert!(
                    Metric::Energy.value(ea) <= Metric::Energy.value(eb),
                    "{} vs {}",
                    ea.notation,
                    eb.notation
                );
            }
        }
    }
}
