//! Cheap tier-1 performance guard for the DSE fast lane.
//!
//! A mid-size summary sweep must finish far inside a generous wall-clock
//! ceiling even in debug builds. The point is not to benchmark (criterion
//! does that) but to fail loudly if a change re-introduces per-design
//! work that the shared build context is supposed to amortize — e.g.
//! busting the parallelism memo cache, deep-cloning the conv view per
//! design, or an accidental O(n²) in the sweep loop. At the time of
//! writing the sweep below runs in ~2.5 s unoptimized (~25x headroom);
//! the pre-fast-lane code took ~40 s, well over the ceiling.

use std::time::{Duration, Instant};

use mccm::cnn::zoo;
use mccm::core::EvalScratch;
use mccm::dse::{CustomSampler, DeltaContext, Explorer, SegCache};
use mccm::fpga::FpgaBoard;

const DESIGNS: usize = 2_000;
const CEILING: Duration = Duration::from_secs(60);

#[test]
fn midsize_summary_sweep_stays_under_wall_clock_ceiling() {
    let model = zoo::xception();
    let explorer = Explorer::new(&model, &FpgaBoard::vcu110());
    let start = Instant::now();
    let (points, _) = explorer
        .sample_custom_summaries(DESIGNS, 99)
        .expect("mid-size xception sweep must be feasible");
    let elapsed = start.elapsed();
    assert_eq!(points.len(), DESIGNS);
    assert!(
        elapsed < CEILING,
        "summary sweep of {DESIGNS} designs took {elapsed:?} (ceiling {CEILING:?}): \
         the evaluation fast lane has regressed — check the parallelism memo \
         cache, the Arc-shared build context, and EvalScratch reuse"
    );
}

#[test]
fn warm_delta_evaluation_outruns_full_evaluation() {
    // Relative guard for the segment cache: re-evaluating a fixed design
    // set with every segment cached must beat re-evaluating it through
    // the whole-design path by a comfortable factor. Measured warm ratios
    // are ~5-8x even in debug builds (debug_asserts that re-run the cores
    // on hits are compiled out of the all-hit recombine path); 2x leaves
    // room for noisy CI machines while still catching a cache that has
    // silently stopped hitting. Wall-clock is compared *relatively*, on
    // the same machine, in the same process — no absolute ceiling.
    let model = zoo::xception();
    let explorer = Explorer::new(&model, &FpgaBoard::vcu110());
    let ctx = DeltaContext::new(&explorer);
    let mut cache = SegCache::new();
    let mut scratch = EvalScratch::new();
    let space = explorer.paper_space();
    let mut designs = CustomSampler::new(space, 31).sample_many(400);
    // Distinct designs only, so the warm-up pass alone builds and the
    // timed delta pass is all-hit by construction.
    designs.sort_by_key(|d| (d.head_layers, d.tail_ends.clone()));
    designs.dedup();

    // Warm every segment (and the builder's parallelism/context memos,
    // which both paths share).
    for d in &designs {
        explorer
            .custom_summary_delta(d, &ctx, &mut cache, &mut scratch)
            .unwrap();
    }
    let full_start = Instant::now();
    let mut full_acc = 0u64;
    for d in &designs {
        let spec = d.to_spec(explorer.model()).unwrap();
        let s = explorer.evaluate_summary(&spec, &mut scratch).unwrap();
        full_acc = full_acc.wrapping_add(s.total_macs.get());
    }
    let full_time = full_start.elapsed();
    let warm_start = Instant::now();
    let mut delta_acc = 0u64;
    for d in &designs {
        let p = explorer
            .custom_summary_delta(d, &ctx, &mut cache, &mut scratch)
            .unwrap()
            .unwrap();
        delta_acc = delta_acc.wrapping_add(p.summary.total_macs.get());
    }
    let warm_time = warm_start.elapsed();
    assert_eq!(full_acc, delta_acc);
    let stats = cache.stats();
    assert!(
        stats.full_builds as usize <= designs.len(),
        "only the warm-up pass may build: {stats:?}"
    );
    assert!(
        stats.delta_recombines as usize >= designs.len(),
        "the timed pass must be all-hit: {stats:?}"
    );
    assert!(
        warm_time.as_secs_f64() * 2.0 < full_time.as_secs_f64(),
        "warm delta pass ({warm_time:?}) is not 2x faster than the full pass \
         ({full_time:?}) over {} designs — the segment cache has stopped \
         paying for itself: {stats:?}",
        designs.len()
    );
}
