//! Cheap tier-1 performance guard for the DSE fast lane.
//!
//! A mid-size summary sweep must finish far inside a generous wall-clock
//! ceiling even in debug builds. The point is not to benchmark (criterion
//! does that) but to fail loudly if a change re-introduces per-design
//! work that the shared build context is supposed to amortize — e.g.
//! busting the parallelism memo cache, deep-cloning the conv view per
//! design, or an accidental O(n²) in the sweep loop. At the time of
//! writing the sweep below runs in ~2.5 s unoptimized (~25x headroom);
//! the pre-fast-lane code took ~40 s, well over the ceiling.

use std::time::{Duration, Instant};

use mccm::cnn::zoo;
use mccm::dse::Explorer;
use mccm::fpga::FpgaBoard;

const DESIGNS: usize = 2_000;
const CEILING: Duration = Duration::from_secs(60);

#[test]
fn midsize_summary_sweep_stays_under_wall_clock_ceiling() {
    let model = zoo::xception();
    let explorer = Explorer::new(&model, &FpgaBoard::vcu110());
    let start = Instant::now();
    let (points, _) = explorer
        .sample_custom_summaries(DESIGNS, 99)
        .expect("mid-size xception sweep must be feasible");
    let elapsed = start.elapsed();
    assert_eq!(points.len(), DESIGNS);
    assert!(
        elapsed < CEILING,
        "summary sweep of {DESIGNS} designs took {elapsed:?} (ceiling {CEILING:?}): \
         the evaluation fast lane has regressed — check the parallelism memo \
         cache, the Arc-shared build context, and EvalScratch reuse"
    );
}
