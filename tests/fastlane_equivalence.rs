//! Fast-lane equivalence: `CostModel::evaluate_summary` must be
//! **bit-identical** to `CostModel::evaluate(..).summary()` for every
//! design — the invariant that lets the DSE sweeps run on the
//! allocation-free summary lane while keeping every determinism and
//! worker-invariance guarantee of the rich lane.
//!
//! Coverage: every zoo model × every template × several CE counts, seeded
//! batches of custom designs per model, and a property test over random
//! `CustomDesign`s drawn from the counter-based attempt stream.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use mccm::arch::{templates, AcceleratorSpec, BlockSpec, MultipleCeBuilder, Schedule};
use mccm::cnn::{zoo, CnnModel};
use mccm::core::{CostModel, EvalScratch, EvalSummary, ModelConfig, SegmentCost};
use mccm::dse::{
    sample_attempt, CustomDesign, CustomSampler, CustomSpace, DeltaContext, Explorer, SegCache,
};
use mccm::fpga::FpgaBoard;

fn every_zoo_model() -> Vec<CnnModel> {
    let mut models = zoo::all_models();
    models.extend(zoo::extended_models());
    models
}

#[test]
fn summary_lane_matches_rich_lane_across_the_zoo() {
    // One scratch reused across all models/templates: steady-state buffer
    // reuse must not leak state between designs.
    let mut scratch = EvalScratch::new();
    for board in [FpgaBoard::zc706(), FpgaBoard::vcu110()] {
        for model in every_zoo_model() {
            let builder = MultipleCeBuilder::new(&model, &board);
            for arch in templates::Architecture::ALL {
                for ces in [2usize, 4, 7, 11] {
                    let ctx = format!(
                        "{} / {} / {ces} CEs / {}",
                        model.name(),
                        arch.name(),
                        board.name
                    );
                    let Ok(spec) = arch.instantiate(&model, ces) else {
                        continue;
                    };
                    let Ok(acc) = builder.build(&spec) else {
                        continue;
                    };
                    let rich = CostModel::evaluate(&acc).summary();
                    let fast = CostModel::evaluate_summary(&acc, &mut scratch);
                    assert_eq!(fast, rich, "{ctx}");
                }
            }
        }
    }
}

#[test]
fn summary_lane_matches_rich_lane_on_seeded_custom_batches() {
    for (model, board) in [
        (zoo::xception(), FpgaBoard::vcu110()),
        (zoo::mobilenet_v2(), FpgaBoard::zc706()),
        (zoo::resnet50(), FpgaBoard::zcu102()),
    ] {
        let builder = MultipleCeBuilder::new(&model, &board);
        let mut scratch = EvalScratch::new();
        let space = CustomSpace::paper_range(model.conv_layer_count());
        for design in CustomSampler::new(space, 2024).sample_many(50) {
            let Ok(spec) = design.to_spec(&model) else {
                continue;
            };
            let Ok(acc) = builder.build(&spec) else {
                continue;
            };
            let rich = CostModel::evaluate(&acc).summary();
            let fast = CostModel::evaluate_summary(&acc, &mut scratch);
            assert_eq!(fast, rich, "{} {design:?}", model.name());
        }
    }
}

#[test]
fn typed_fields_are_bit_identical_across_lanes() {
    // `EvalSummary: PartialEq` would accept `-0.0 == 0.0` on the float
    // fields; the invariant is stronger — after the typed-quantity
    // refactor the two lanes must still agree to the *bit* on every
    // field, integer and float alike.
    let mut scratch = EvalScratch::new();
    for (model, board) in [
        (zoo::xception(), FpgaBoard::vcu110()),
        (zoo::mobilenet_v2(), FpgaBoard::zc706()),
    ] {
        let builder = MultipleCeBuilder::new(&model, &board);
        for arch in templates::Architecture::ALL {
            for ces in [2usize, 5, 9] {
                let ctx = format!("{} / {} / {ces} CEs", model.name(), arch.name());
                let Ok(spec) = arch.instantiate(&model, ces) else {
                    continue;
                };
                let Ok(acc) = builder.build(&spec) else {
                    continue;
                };
                let rich = CostModel::evaluate(&acc).summary();
                let fast = CostModel::evaluate_summary(&acc, &mut scratch);
                // Typed counting quantities: exact integer equality.
                assert_eq!(fast.total_macs.get(), rich.total_macs.get(), "{ctx}");
                assert_eq!(
                    fast.buffer_req_bytes.get(),
                    rich.buffer_req_bytes.get(),
                    "{ctx}"
                );
                assert_eq!(
                    fast.buffer_alloc_bytes.get(),
                    rich.buffer_alloc_bytes.get(),
                    "{ctx}"
                );
                assert_eq!(fast.offchip_bytes.get(), rich.offchip_bytes.get(), "{ctx}");
                assert_eq!(
                    fast.offchip_weight_bytes.get(),
                    rich.offchip_weight_bytes.get(),
                    "{ctx}"
                );
                assert_eq!(
                    fast.offchip_fm_bytes.get(),
                    rich.offchip_fm_bytes.get(),
                    "{ctx}"
                );
                // Continuous quantities: identical down to the bit.
                assert_eq!(fast.latency_s.to_bits(), rich.latency_s.to_bits(), "{ctx}");
                assert_eq!(
                    fast.throughput_fps.to_bits(),
                    rich.throughput_fps.to_bits(),
                    "{ctx}"
                );
                assert_eq!(
                    fast.memory_stall_fraction.to_bits(),
                    rich.memory_stall_fraction.to_bits(),
                    "{ctx}"
                );
            }
        }
    }
}

/// Returns the spec with every single-CE assignment switched to
/// `schedule` (pipelined blocks keep layer-by-layer — the only schedule
/// they may carry).
fn with_schedule(spec: &AcceleratorSpec, schedule: Schedule) -> AcceleratorSpec {
    let mut out = spec.clone();
    for a in &mut out.assignments {
        if matches!(a.block, BlockSpec::Single(_)) {
            a.schedule = schedule;
        }
    }
    out
}

/// Per-field bit identity between two summaries, ignoring the notation
/// (which faithfully records the schedule suffix and so may differ).
fn assert_numerically_bit_identical(a: &EvalSummary, b: &EvalSummary, ctx: &str) {
    assert_eq!(a.ce_count, b.ce_count, "{ctx}");
    assert_eq!(a.total_macs.get(), b.total_macs.get(), "{ctx}");
    assert_eq!(a.buffer_req_bytes.get(), b.buffer_req_bytes.get(), "{ctx}");
    assert_eq!(
        a.buffer_alloc_bytes.get(),
        b.buffer_alloc_bytes.get(),
        "{ctx}"
    );
    assert_eq!(a.offchip_bytes.get(), b.offchip_bytes.get(), "{ctx}");
    assert_eq!(
        a.offchip_weight_bytes.get(),
        b.offchip_weight_bytes.get(),
        "{ctx}"
    );
    assert_eq!(a.offchip_fm_bytes.get(), b.offchip_fm_bytes.get(), "{ctx}");
    assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits(), "{ctx}");
    assert_eq!(
        a.throughput_fps.to_bits(),
        b.throughput_fps.to_bits(),
        "{ctx}"
    );
    assert_eq!(
        a.memory_stall_fraction.to_bits(),
        b.memory_stall_fraction.to_bits(),
        "{ctx}"
    );
}

#[test]
fn degenerate_depth_first_is_bit_identical_to_layer_by_layer() {
    // `DepthFirst { fuse_depth: 1 }` must be indistinguishable from
    // `LayerByLayer` — to the bit, on every field, on both lanes —
    // across the full zoo × template × CE-count grid.
    let mut scratch = EvalScratch::new();
    for board in [FpgaBoard::zc706(), FpgaBoard::vcu110()] {
        for model in every_zoo_model() {
            let builder = MultipleCeBuilder::new(&model, &board);
            for arch in templates::Architecture::ALL {
                for ces in [2usize, 4, 7, 11] {
                    let ctx = format!(
                        "{} / {} / {ces} CEs / {}",
                        model.name(),
                        arch.name(),
                        board.name
                    );
                    let Ok(spec) = arch.instantiate(&model, ces) else {
                        continue;
                    };
                    let df1 = with_schedule(&spec, Schedule::DepthFirst { fuse_depth: 1 });
                    let (Ok(lbl), Ok(df)) = (builder.build(&spec), builder.build(&df1)) else {
                        continue;
                    };
                    let rich_lbl = CostModel::evaluate(&lbl).summary();
                    let rich_df = CostModel::evaluate(&df).summary();
                    assert_numerically_bit_identical(&rich_df, &rich_lbl, &ctx);
                    let fast_df = CostModel::evaluate_summary(&df, &mut scratch);
                    assert_eq!(fast_df, rich_df, "{ctx}");
                    let fast_lbl = CostModel::evaluate_summary(&lbl, &mut scratch);
                    assert_numerically_bit_identical(&fast_df, &fast_lbl, &ctx);
                }
            }
        }
    }
}

#[test]
fn depth_first_designs_evaluate_identically_on_both_lanes() {
    // Fused evaluation runs through the same schedule-dispatched core on
    // both lanes; the bit-identity contract extends to every fuse depth.
    let mut scratch = EvalScratch::new();
    for (model, board) in [
        (zoo::mobilenet_v2(), FpgaBoard::zc706()),
        (zoo::xception(), FpgaBoard::vcu110()),
    ] {
        let builder = MultipleCeBuilder::new(&model, &board);
        for arch in templates::Architecture::ALL {
            for ces in [2usize, 5, 9] {
                for depth in [2usize, 3, 6] {
                    let ctx = format!("{} / {} / {ces} CEs / df{depth}", model.name(), arch.name());
                    let Ok(spec) = arch.instantiate(&model, ces) else {
                        continue;
                    };
                    let df = with_schedule(&spec, Schedule::DepthFirst { fuse_depth: depth });
                    let Ok(acc) = builder.build(&df) else {
                        continue;
                    };
                    let rich = CostModel::evaluate(&acc).summary();
                    let fast = CostModel::evaluate_summary(&acc, &mut scratch);
                    assert_eq!(fast, rich, "{ctx}");
                }
            }
        }
    }
}

#[test]
fn segment_recombination_matches_the_summary_lane_across_the_zoo() {
    // The fast lane's explicit decomposition: computing every SegmentCost
    // independently and recombining under the design coupling must equal
    // `evaluate_summary` — which itself equals the rich lane — across the
    // zoo × template × CE-count × schedule grid. This is the base of the
    // `delta ≡ full ≡ rich` invariant the segment cache rests on.
    let mut scratch = EvalScratch::new();
    let config = ModelConfig::default();
    for board in [FpgaBoard::zc706(), FpgaBoard::vcu110()] {
        for model in every_zoo_model() {
            let builder = MultipleCeBuilder::new(&model, &board);
            for arch in templates::Architecture::ALL {
                for ces in [2usize, 4, 7, 11] {
                    for schedule in [
                        Schedule::LayerByLayer,
                        Schedule::DepthFirst { fuse_depth: 3 },
                    ] {
                        let ctx = format!(
                            "{} / {} / {ces} CEs / {schedule:?} / {}",
                            model.name(),
                            arch.name(),
                            board.name
                        );
                        let Ok(spec) = arch.instantiate(&model, ces) else {
                            continue;
                        };
                        let spec = with_schedule(&spec, schedule);
                        let Ok(acc) = builder.build(&spec) else {
                            continue;
                        };
                        let costs: Vec<SegmentCost> = (0..acc.segments.len())
                            .map(|i| CostModel::segment_cost(&acc, i, &config, &mut scratch))
                            .collect();
                        let recombined = CostModel::recombine(
                            CostModel::design_coupling(&acc, &config),
                            &costs,
                            &mut scratch,
                        );
                        let fast = CostModel::evaluate_summary(&acc, &mut scratch);
                        assert_eq!(recombined, fast, "{ctx}");
                    }
                }
            }
        }
    }
}

/// The whole-design fast-lane outcome of a custom design (`None` =
/// infeasible) — the reference the delta path must match bit-for-bit.
fn full_summary(
    explorer: &Explorer,
    design: &CustomDesign,
    scratch: &mut EvalScratch,
) -> Option<EvalSummary> {
    let spec = design.to_spec(explorer.model()).ok()?;
    explorer.evaluate_summary(&spec, scratch).ok()
}

#[test]
fn delta_evaluation_matches_full_over_seeded_mutation_chains() {
    // Walk mutation chains — the optimizer's actual workload — evaluating
    // every design twice through the delta path (the second visit is
    // served entirely from cached segments) and once through the full
    // path. All three must agree to the bit.
    for (model, board) in [
        (zoo::mobilenet_v2(), FpgaBoard::zc706()),
        (zoo::xception(), FpgaBoard::vcu110()),
    ] {
        let explorer = Explorer::new(&model, &board);
        let ctx = DeltaContext::new(&explorer);
        let mut cache = SegCache::new();
        let mut scratch = EvalScratch::new();
        let mut scratch_full = EvalScratch::new();
        let space = explorer.paper_space().with_max_fuse_depth(3);
        let mut sampler = CustomSampler::new(space, 11);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..8 {
            let mut design = sampler.sample();
            for _ in 0..10 {
                for pass in 0..2 {
                    let delta = explorer
                        .custom_summary_delta(&design, &ctx, &mut cache, &mut scratch)
                        .unwrap();
                    let full = full_summary(&explorer, &design, &mut scratch_full);
                    assert_eq!(
                        delta.map(|p| p.summary),
                        full,
                        "{} pass {pass} on {design:?}",
                        model.name()
                    );
                }
                design = space.mutate(&design, &mut rng);
            }
        }
        let stats = cache.stats();
        assert!(
            stats.delta_recombines > 0,
            "repeat visits must recombine from cache: {stats:?}"
        );
        assert!(stats.seg_hits > 0 && stats.seg_misses > 0, "{stats:?}");
    }
}

#[test]
fn summary_sweep_equals_full_sweep_summaries() {
    // The sweep entry points themselves: the fast-lane summary sweep must
    // reproduce the full-lane sweep's summaries point for point.
    let model = zoo::xception();
    let explorer = Explorer::new(&model, &FpgaBoard::vcu110());
    let (full, _) = explorer.sample_custom(120, 7).unwrap();
    let (lean, _) = explorer.sample_custom_summaries(120, 7).unwrap();
    assert_eq!(full.len(), lean.len());
    for (f, l) in full.iter().zip(&lean) {
        assert_eq!(f.eval.summary(), l.summary);
    }
    // And the parallel twin agrees for several worker counts.
    for workers in [2usize, 5] {
        let (par, _) = explorer
            .par_sample_custom_summaries(120, 7, workers)
            .unwrap();
        assert_eq!(par, lean, "workers = {workers}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_custom_designs_evaluate_identically_on_both_lanes(
        seed in 0u64..1_000_000,
        attempt in 0u64..10_000,
        model_pick in 0usize..3,
    ) {
        let (model, board) = match model_pick {
            0 => (zoo::xception(), FpgaBoard::vcu110()),
            1 => (zoo::mobilenet_v2(), FpgaBoard::zc706()),
            _ => (zoo::densenet121(), FpgaBoard::vcu108()),
        };
        let space = CustomSpace::paper_range(model.conv_layer_count());
        let design = sample_attempt(&space, seed, attempt);
        let builder = MultipleCeBuilder::new(&model, &board);
        let mut scratch = EvalScratch::new();
        if let Ok(spec) = design.to_spec(&model) {
            if let Ok(acc) = builder.build(&spec) {
                let rich = CostModel::evaluate(&acc).summary();
                let fast = CostModel::evaluate_summary(&acc, &mut scratch);
                prop_assert_eq!(fast, rich);
            }
        }
    }

    #[test]
    fn delta_equals_full_along_random_mutation_chains(
        seed in 0u64..1_000_000,
        chain in 2usize..8,
    ) {
        // Property form of the chain test: arbitrary seed, arbitrary chain
        // length, schedule axis on — the delta path must agree with the
        // full path at every step, whatever the cache holds.
        let model = zoo::mobilenet_v2();
        let explorer = Explorer::new(&model, &FpgaBoard::zc706());
        let ctx = DeltaContext::new(&explorer);
        let mut cache = SegCache::new();
        let mut scratch = EvalScratch::new();
        let mut scratch_full = EvalScratch::new();
        let space = explorer.paper_space().with_max_fuse_depth(4);
        let mut design = CustomSampler::new(space, seed).sample();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        for _ in 0..chain {
            let delta = explorer
                .custom_summary_delta(&design, &ctx, &mut cache, &mut scratch)
                .unwrap();
            let full = full_summary(&explorer, &design, &mut scratch_full);
            prop_assert_eq!(delta.map(|p| p.summary), full);
            design = space.mutate(&design, &mut rng);
        }
    }
}
