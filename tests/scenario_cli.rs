//! CLI-level guarantees of the scenario API: `mccm run` on every
//! checked-in scenario file is byte-identical to the equivalent legacy
//! subcommand with `--json`, batch mode covers a directory, and the
//! strict flag parser rejects misuse by name.

use mccm::cli::main_with_args;
use mccm::json::Json;
use mccm::Error;

fn run_cli(args: &[&str]) -> Result<String, Error> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    main_with_args(&args, &mut out)?;
    Ok(String::from_utf8(out).expect("CLI output is UTF-8"))
}

fn example_scenario(name: &str) -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/scenarios")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// The acceptance bar: `mccm run <file>` produces byte-identical JSON to
/// the equivalent legacy subcommand invocation, for every checked-in
/// scenario file.
#[test]
fn run_matches_legacy_subcommands_byte_for_byte() {
    let cases: [(&str, Vec<&str>); 5] = [
        (
            "evaluate.json",
            vec![
                "evaluate", "--model", "xception", "--board", "vcu110", "--arch", "hybrid",
                "--ces", "7", "--batch", "8", "--json",
            ],
        ),
        (
            "sweep.json",
            vec![
                "sweep",
                "--model",
                "mobilenetv2",
                "--board",
                "zcu102",
                "--min-ces",
                "2",
                "--max-ces",
                "11",
                "--json",
            ],
        ),
        (
            "sample.json",
            vec![
                "explore",
                "--model",
                "mobilenetv2",
                "--board",
                "zc706",
                "--samples",
                "300",
                "--seed",
                "1",
                "--json",
            ],
        ),
        (
            "optimize.json",
            vec![
                "optimize",
                "--model",
                "mobilenetv2",
                "--board",
                "vcu108",
                "--budget",
                "300",
                "--population",
                "16",
                "--islands",
                "2",
                "--seed",
                "1",
                "--json",
            ],
        ),
        (
            "calibrate.json",
            vec![
                "calibrate",
                "--model",
                "mobilenetv2",
                "--board",
                "zc706",
                "--budget",
                "300",
                "--top-k",
                "3",
                "--seed",
                "1",
                "--json",
            ],
        ),
    ];
    for (file, legacy) in cases {
        let path = example_scenario(file);
        let from_scenario = run_cli(&["run", &path]).unwrap_or_else(|e| panic!("{file}: {e}"));
        let from_legacy = run_cli(&legacy).unwrap_or_else(|e| panic!("{legacy:?}: {e}"));
        assert_eq!(from_scenario, from_legacy, "{file} vs {legacy:?}");
        // And the output is valid JSON tagged with its action.
        let parsed = Json::parse(&from_scenario).unwrap();
        let action = file.strip_suffix(".json").unwrap();
        let reported = parsed.get("action").and_then(Json::as_str).unwrap();
        let expected = if action == "sample" { "sample" } else { action };
        assert_eq!(reported, expected, "{file}");
    }
}

#[test]
fn set_overrides_change_the_executed_scenario() {
    let path = example_scenario("evaluate.json");
    let base = run_cli(&["run", &path]).unwrap();
    let overridden = run_cli(&[
        "run",
        &path,
        "--set",
        "action.evaluate.ces=5",
        "--set",
        "model.zoo=mobilenetv2",
    ])
    .unwrap();
    assert_ne!(base, overridden);
    let parsed = Json::parse(&overridden).unwrap();
    assert_eq!(
        parsed.get("model").and_then(Json::as_str),
        Some("mobilenetv2")
    );
    assert_eq!(parsed.get("ce_count").and_then(Json::as_usize), Some(5));
    // Identical invocations are byte-identical (determinism).
    assert_eq!(base, run_cli(&["run", &path]).unwrap());
}

#[test]
fn batch_mode_runs_a_directory_with_any_worker_count() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios");
    let dir = dir.to_string_lossy().into_owned();
    let serial = run_cli(&["run", "--batch", &dir, "--workers", "1"]).unwrap();
    let parsed = Json::parse(&serial).unwrap();
    assert_eq!(parsed.get("failures").and_then(Json::as_u64), Some(0));
    assert_eq!(parsed.get("scenarios").and_then(Json::as_u64), Some(6));
    let entries = parsed.get("batch").and_then(Json::as_array).unwrap();
    // Sorted by file name, each entry carrying its outcome.
    let names: Vec<&str> = entries
        .iter()
        .map(|e| e.get("file").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        names,
        [
            "calibrate.json",
            "depth_first.json",
            "evaluate.json",
            "optimize.json",
            "sample.json",
            "sweep.json"
        ]
    );
    for entry in entries {
        assert!(entry.get("outcome").is_some(), "{entry}");
    }
    // Worker count never changes the output bytes.
    let parallel = run_cli(&["run", "--batch", &dir, "--workers", "3"]).unwrap();
    assert_eq!(serial, parallel);
}

/// The poisoned-directory regression test: a directory mixing good,
/// syntactically broken, semantically invalid, and unreadable scenarios
/// still produces one typed entry per file, runs every good scenario,
/// and exits with the dedicated `BatchPartial` code — not a generic
/// usage error, and never a crash.
#[test]
fn batch_mode_reports_per_file_errors_and_fails() {
    let tmp = std::env::temp_dir().join(format!("mccm-batch-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    std::fs::write(
        tmp.join("a_good.json"),
        r#"{"model": {"zoo": "mobilenetv2"}, "board": {"builtin": "zc706"},
            "action": {"evaluate": {"template": "segmented", "ces": 3}}}"#,
    )
    .unwrap();
    std::fs::write(tmp.join("broken.json"), "{ not json").unwrap();
    std::fs::write(
        tmp.join("unknown_model.json"),
        r#"{"model": {"zoo": "nosuchnet"}, "board": {"builtin": "zc706"},
            "action": {"sweep": {}}}"#,
    )
    .unwrap();
    std::fs::write(
        tmp.join("z_good.json"),
        r#"{"model": {"zoo": "resnet50"}, "board": {"builtin": "zcu102"},
            "action": {"evaluate": {"template": "hybrid", "ces": 4}}}"#,
    )
    .unwrap();
    let args: Vec<String> = ["run", "--batch", tmp.to_str().unwrap()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    let err = main_with_args(&args, &mut out).expect_err("two scenarios are broken");
    assert!(
        matches!(
            err,
            Error::BatchPartial {
                failed: 2,
                total: 4
            }
        ),
        "{err:?}"
    );
    assert_eq!(err.exit_code(), 6);
    assert!(err.to_string().contains("2 of 4"), "{err}");
    let serial = String::from_utf8(out).unwrap();
    let parsed = Json::parse(&serial).unwrap();
    assert_eq!(parsed.get("failures").and_then(Json::as_u64), Some(2));
    let entries = parsed.get("batch").and_then(Json::as_array).unwrap();
    // Entries stay sorted by file name; failures are typed objects with
    // the same kind/exit_code classification the process itself uses.
    let by_name = |name: &str| {
        entries
            .iter()
            .find(|e| e.get("file").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no entry for {name}"))
    };
    assert!(by_name("a_good.json").get("outcome").is_some());
    assert!(by_name("z_good.json").get("outcome").is_some());
    let broken = by_name("broken.json").get("error").unwrap();
    assert_eq!(broken.get("kind").and_then(Json::as_str), Some("json"));
    assert_eq!(broken.get("exit_code").and_then(Json::as_u64), Some(3));
    assert!(broken
        .get("detail")
        .and_then(Json::as_str)
        .unwrap()
        .contains("JSON"));
    let unknown = by_name("unknown_model.json").get("error").unwrap();
    assert_eq!(unknown.get("kind").and_then(Json::as_str), Some("scenario"));
    assert_eq!(unknown.get("exit_code").and_then(Json::as_u64), Some(3));
    assert!(unknown
        .get("detail")
        .and_then(Json::as_str)
        .unwrap()
        .contains("nosuchnet"));
    // Sharding across workers never changes the report bytes, even with
    // failures interleaved into the shards.
    let mut out3 = Vec::new();
    let args3: Vec<String> = ["run", "--batch", tmp.to_str().unwrap(), "--workers", "3"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    main_with_args(&args3, &mut out3).expect_err("still partial");
    assert_eq!(serial, String::from_utf8(out3).unwrap());
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn unknown_and_duplicate_flags_are_regression_locked() {
    // Unknown flag: named, with the command and its real flags listed.
    let err = run_cli(&[
        "explore", "--model", "xception", "--board", "vcu110", "--sample", "5",
    ])
    .unwrap_err()
    .to_string();
    assert!(err.contains("unknown flag `--sample`"), "{err}");
    assert!(err.contains("--samples"), "suggests the real flags: {err}");
    // Duplicate flag: named.
    let err = run_cli(&[
        "sweep", "--model", "vgg16", "--model", "vgg16", "--board", "zc706",
    ])
    .unwrap_err()
    .to_string();
    assert!(err.contains("duplicate flag `--model`"), "{err}");
    // Repeatable --set is exempt from duplicate rejection (covered by
    // set_overrides_change_the_executed_scenario), but unknown flags in
    // `run` still reject.
    let err = run_cli(&["run", "x.json", "--sets", "a=1"])
        .unwrap_err()
        .to_string();
    assert!(err.contains("unknown flag `--sets`"), "{err}");
    // Missing value.
    let err = run_cli(&["optimize", "--model"]).unwrap_err().to_string();
    assert!(err.contains("needs a value"), "{err}");
}

/// `mccm run --connect` against a daemon prints exactly the bytes of a
/// local `mccm run`, and `mccm stats` / `mccm shutdown` speak the same
/// protocol through the CLI.
#[test]
fn connect_runs_through_a_daemon_byte_identically() {
    let server =
        mccm::serve::Server::bind("127.0.0.1:0", mccm::serve::ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let handle = server.spawn();

    let path = example_scenario("evaluate.json");
    let local = run_cli(&["run", &path]).unwrap();
    let remote = run_cli(&["run", &path, "--connect", &addr]).unwrap();
    assert_eq!(
        local, remote,
        "server responses match local runs byte-for-byte"
    );

    // `--set` overrides apply before the scenario ships to the server.
    let overridden = run_cli(&[
        "run",
        &path,
        "--connect",
        &addr,
        "--set",
        "action.evaluate.ces=5",
    ])
    .unwrap();
    assert_ne!(overridden, local);

    // Remote-only flags reject local use; `--batch` rejects `--connect`.
    let err = run_cli(&["run", &path, "--deadline-ms", "50"])
        .unwrap_err()
        .to_string();
    assert!(err.contains("--connect"), "{err}");
    let err = run_cli(&["run", "--batch", "dir", "--connect", &addr])
        .unwrap_err()
        .to_string();
    assert!(err.contains("--batch"), "{err}");

    let stats = run_cli(&["stats", "--connect", &addr]).unwrap();
    let parsed = Json::parse(&stats).unwrap();
    assert_eq!(parsed.get("draining").and_then(Json::as_bool), Some(false));
    assert_eq!(
        parsed
            .get("stats")
            .and_then(|s| s.get("completed"))
            .and_then(Json::as_u64),
        Some(2)
    );

    let shut = run_cli(&["shutdown", "--connect", &addr]).unwrap();
    let parsed = Json::parse(&shut).unwrap();
    assert_eq!(parsed.get("drained").and_then(Json::as_bool), Some(true));
    let final_stats = handle.join().unwrap().unwrap();
    assert_eq!(final_stats.completed, 2);
    assert_eq!(final_stats.panics_recovered, 0);
}

#[test]
fn run_requires_exactly_one_scenario_file() {
    let err = run_cli(&["run"]).unwrap_err().to_string();
    assert!(err.contains("scenario file"), "{err}");
    let err = run_cli(&["run", "a.json", "b.json"])
        .unwrap_err()
        .to_string();
    assert!(err.contains("exactly one"), "{err}");
    let err = run_cli(&["run", "/nonexistent/scenario.json"])
        .unwrap_err()
        .to_string();
    assert!(err.contains("reading scenario"), "{err}");
}
