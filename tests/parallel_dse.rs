//! Integration tests for the parallel exploration subsystem: the
//! incremental Pareto front must agree with a brute-force batch pass on
//! arbitrary point clouds (property test), and every sharded `par_*`
//! sweep must reproduce its serial twin point-for-point at any worker
//! count (determinism tests).

use proptest::prelude::*;

use mccm::cnn::zoo;
use mccm::core::{Bytes, EvalSummary, Macs, Metric};
use mccm::dse::{par_pareto_indices, CustomSpace, ExploreError, Explorer, ParetoFront};
use mccm::fpga::FpgaBoard;

fn summary(latency_ms: u64, fps: u64, buf: u64, traffic: u64) -> EvalSummary {
    EvalSummary {
        notation: String::new(),
        ce_count: 2,
        total_macs: Macs::ZERO,
        latency_s: latency_ms as f64 / 1e3,
        throughput_fps: fps as f64,
        buffer_req_bytes: Bytes::new(buf),
        buffer_alloc_bytes: Bytes::new(buf),
        offchip_bytes: Bytes::new(traffic),
        offchip_weight_bytes: Bytes::ZERO,
        offchip_fm_bytes: Bytes::ZERO,
        memory_stall_fraction: 0.0,
    }
}

/// Brute-force all-pairs Pareto front — the reference the incremental
/// implementation must match exactly.
fn brute_force_front(points: &[EvalSummary], metrics: &[Metric]) -> Vec<usize> {
    let dominates = |a: &EvalSummary, b: &EvalSummary| -> bool {
        let mut strictly = false;
        for m in metrics {
            if m.better(m.value(b), m.value(a)) {
                return false;
            }
            if m.better(m.value(a), m.value(b)) {
                strictly = true;
            }
        }
        strictly
    };
    (0..points.len())
        .filter(|&i| !(0..points.len()).any(|j| j != i && dominates(&points[j], &points[i])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_front_matches_batch_front(
        seed in 0u64..1 << 32,
        n in 1usize..60,
        metric_mask in 1usize..16,
    ) {
        // Small value ranges on purpose: ties and duplicates must appear.
        let mut pts = Vec::with_capacity(n);
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % 6
        };
        for _ in 0..n {
            pts.push(summary(1 + next(), 1 + next(), 1 + next(), 1 + next()));
        }
        let metrics: Vec<Metric> = Metric::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| metric_mask & (1 << i) != 0)
            .map(|(_, m)| m)
            .collect();

        let expected = brute_force_front(&pts, &metrics);

        // Incremental insertion.
        let mut front = ParetoFront::new(&metrics);
        for (i, p) in pts.iter().enumerate() {
            let values = metrics.iter().map(|m| m.value(p)).collect();
            front.offer_with_values(i, values);
        }
        let mut incremental = front.into_items();
        incremental.sort_unstable();
        prop_assert_eq!(&incremental, &expected);

        // Sharded local fronts merged at the end.
        for workers in [1usize, 2, 5] {
            prop_assert_eq!(&par_pareto_indices(&pts, &metrics, workers), &expected);
        }
    }
}

#[test]
fn parallel_sampling_matches_serial_point_for_point() {
    let model = zoo::mobilenet_v2();
    let explorer = Explorer::new(&model, &FpgaBoard::zc706());
    let (serial, _) = explorer.sample_custom(40, 11).unwrap();
    let serial_notations: Vec<_> = serial.iter().map(|p| p.eval.notation.clone()).collect();
    for workers in [1usize, 2, 3, 8] {
        let (par, _) = explorer.par_sample_custom(40, 11, workers).unwrap();
        let par_notations: Vec<_> = par.iter().map(|p| p.eval.notation.clone()).collect();
        assert_eq!(par_notations, serial_notations, "workers={workers}");
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.eval, b.eval, "workers={workers}");
        }
    }
    // The lean summary path walks the same designs.
    let (lean, _) = explorer.par_sample_custom_summaries(40, 11, 4).unwrap();
    let lean_notations: Vec<_> = lean.iter().map(|p| p.summary.notation.clone()).collect();
    assert_eq!(lean_notations, serial_notations);
}

#[test]
fn parallel_baseline_sweep_matches_serial() {
    let model = zoo::resnet50();
    let explorer = Explorer::new(&model, &FpgaBoard::vcu108());
    let serial = explorer.sweep_baselines(2..=11).unwrap();
    for workers in [2usize, 4, 32] {
        let par = explorer.par_sweep_baselines(2..=11, workers).unwrap();
        assert_eq!(par.len(), serial.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!((a.architecture, a.ces), (b.architecture, b.ces));
            assert_eq!(a.eval, b.eval);
        }
    }
}

#[test]
fn exhaustive_tiny_space_is_complete_and_worker_invariant() {
    let model = zoo::mobilenet_v2();
    let explorer = Explorer::new(&model, &FpgaBoard::zc706());
    let space = CustomSpace {
        max_fuse_depth: 1,
        layers: model.conv_layer_count(),
        min_ces: 2,
        max_ces: 3,
    };
    let serial = explorer.par_evaluate_space(&space, 1).unwrap();
    // Every enumerated design is distinct and the sweep covers the space
    // (minus infeasible designs).
    let notations: std::collections::HashSet<_> =
        serial.iter().map(|p| p.summary.notation.clone()).collect();
    assert_eq!(notations.len(), serial.len());
    assert!(serial.len() as u128 <= space.size());
    assert!(!serial.is_empty());
    for workers in [2usize, 3, 8] {
        assert_eq!(
            explorer.par_evaluate_space(&space, workers).unwrap(),
            serial
        );
    }
}

#[test]
fn infeasible_heavy_spaces_error_instead_of_hanging() {
    let model = zoo::mobilenet_v2();
    let explorer = Explorer::new(&model, &FpgaBoard::zc706());
    for workers in [1usize, 4] {
        let capped = if workers == 1 {
            explorer.sample_custom_capped(1_000, 2, 10).map(|(p, _)| p)
        } else {
            explorer
                .par_sample_custom_capped(1_000, 2, workers, 10)
                .map(|(p, _)| p)
        };
        match capped {
            Err(ExploreError::AttemptsExhausted { wanted, got, .. }) => {
                assert!(got < wanted);
            }
            other => panic!(
                "expected AttemptsExhausted, got {:?}",
                other.map(|p| p.len())
            ),
        }
    }
}
