//! Workspace-surface smoke test: every model the zoo exports must build
//! on every architecture template and evaluate without panicking — the
//! contract every downstream experiment and DSE loop relies on.

use mccm::arch::{templates, MultipleCeBuilder};
use mccm::cnn::{zoo, CnnModel};
use mccm::core::CostModel;
use mccm::fpga::FpgaBoard;

fn every_zoo_model() -> Vec<CnnModel> {
    let mut models = zoo::all_models();
    models.extend(zoo::extended_models());
    models
}

#[test]
fn every_model_builds_on_every_template() {
    for board in [FpgaBoard::zc706(), FpgaBoard::vcu110()] {
        for model in every_zoo_model() {
            let builder = MultipleCeBuilder::new(&model, &board);
            for arch in templates::Architecture::ALL {
                for ces in [2usize, 4, 7] {
                    let ctx = format!(
                        "{} / {} / {ces} CEs / {}",
                        model.name(),
                        arch.name(),
                        board.name
                    );
                    let spec = arch
                        .instantiate(&model, ces)
                        .unwrap_or_else(|e| panic!("instantiate failed for {ctx}: {e}"));
                    let acc = builder
                        .build(&spec)
                        .unwrap_or_else(|e| panic!("build failed for {ctx}: {e}"));
                    assert_eq!(acc.ce_count(), ces, "{ctx}");
                    let eval = CostModel::evaluate(&acc);
                    assert!(eval.latency_s > 0.0, "{ctx}: non-positive latency");
                    assert!(eval.throughput_fps > 0.0, "{ctx}: non-positive throughput");
                    assert!(
                        !eval.buffer_req_bytes.is_zero(),
                        "{ctx}: zero buffer requirement"
                    );
                }
            }
        }
    }
}

#[test]
fn oversized_ce_counts_error_instead_of_panicking() {
    for model in every_zoo_model() {
        let too_many = model.conv_layer_count() + 1;
        for arch in templates::Architecture::ALL {
            assert!(
                arch.instantiate(&model, too_many).is_err(),
                "{} / {}: {too_many} CEs over {} layers should be rejected",
                model.name(),
                arch.name(),
                model.conv_layer_count()
            );
        }
    }
}

#[test]
fn zoo_lookup_covers_every_exported_model() {
    for model in every_zoo_model() {
        let found = zoo::by_name(model.name())
            .unwrap_or_else(|| panic!("{} missing from zoo::by_name", model.name()));
        assert_eq!(found.name(), model.name());
        assert_ne!(
            zoo::abbreviation(model.name()),
            "?",
            "{} has no abbreviation",
            model.name()
        );
    }
}
