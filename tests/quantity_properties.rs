//! Property tests for the dimensional-safety newtypes: the quantity
//! operators must *saturate* instead of wrapping, agree with the
//! `saturating_*` integer primitives everywhere, and report overflow
//! honestly through the `checked_*` variants. A wrapped counter is the
//! worst dimensional bug of all — a huge traffic total silently becoming
//! a small, plausible one.

use proptest::prelude::*;

use mccm::core::quantity::{Bytes, Cycles, Macs};

/// Mixes in-range magnitudes with values right at the `u64` ceiling so
/// every case set exercises both the common path and saturation.
fn magnitude() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..=1_000_000,
        (0u64..=1024).prop_map(|k| u64::MAX - k),
        (0u64..=63).prop_map(|s| 1u64 << s),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn add_saturates_like_the_primitive(a in magnitude(), b in magnitude()) {
        prop_assert_eq!(
            (Cycles::new(a) + Cycles::new(b)).get(),
            a.saturating_add(b)
        );
        prop_assert_eq!((Bytes::new(a) + Bytes::new(b)).get(), a.saturating_add(b));
        prop_assert_eq!((Macs::new(a) + Macs::new(b)).get(), a.saturating_add(b));
    }

    #[test]
    fn sub_saturates_at_zero(a in magnitude(), b in magnitude()) {
        prop_assert_eq!(
            (Cycles::new(a) - Cycles::new(b)).get(),
            a.saturating_sub(b)
        );
        prop_assert_eq!((Bytes::new(a) - Bytes::new(b)).get(), a.saturating_sub(b));
    }

    #[test]
    fn mul_saturates_like_the_primitive(a in magnitude(), k in magnitude()) {
        prop_assert_eq!((Cycles::new(a) * k).get(), a.saturating_mul(k));
        prop_assert_eq!((Bytes::new(a) * k).get(), a.saturating_mul(k));
        prop_assert_eq!((Macs::new(a) * k).get(), a.saturating_mul(k));
    }

    #[test]
    fn checked_ops_report_overflow_honestly(a in magnitude(), b in magnitude()) {
        prop_assert_eq!(
            Cycles::new(a).checked_add(Cycles::new(b)).map(Cycles::get),
            a.checked_add(b)
        );
        prop_assert_eq!(
            Cycles::new(a).checked_sub(Cycles::new(b)).map(Cycles::get),
            a.checked_sub(b)
        );
        prop_assert_eq!(
            Bytes::new(a).checked_mul(b).map(Bytes::get),
            a.checked_mul(b)
        );
    }

    #[test]
    fn accumulation_never_wraps_below_any_operand(a in magnitude(), b in magnitude()) {
        // The property the model relies on: a sum of quantities is never
        // smaller than either operand, even at the ceiling.
        let sum = Bytes::new(a) + Bytes::new(b);
        prop_assert!(sum >= Bytes::new(a));
        prop_assert!(sum >= Bytes::new(b));
    }

    #[test]
    fn ordering_and_display_match_the_raw_value(a in magnitude(), b in magnitude()) {
        prop_assert_eq!(Cycles::new(a) <= Cycles::new(b), a <= b);
        // Display is the bare integer: the typed refactor must not change
        // a single byte of serialized output.
        prop_assert_eq!(Bytes::new(a).to_string(), a.to_string());
    }

    #[test]
    fn sum_of_iterator_saturates(values in (0usize..8, magnitude())) {
        let (n, v) = values;
        let total: Macs = std::iter::repeat_n(Macs::new(v), n).sum();
        let expected = (0..n).fold(0u64, |acc, _| acc.saturating_add(v));
        prop_assert_eq!(total.get(), expected);
    }
}
