//! Failure injection and boundary conditions: the stack must degrade
//! gracefully — clean errors for infeasible inputs, sane numbers for
//! extreme but valid ones.

use mccm::arch::{notation, templates, ArchError, MultipleCeBuilder};
use mccm::cnn::{zoo, CnnError, ConvSpec, ModelBuilder, Padding, TensorShape};
use mccm::core::{Bytes, CostModel};
use mccm::fpga::{FpgaBoard, MiB, Precision};
use mccm::sim::{SimConfig, Simulator};

#[test]
fn one_layer_model_works_end_to_end() {
    let mut b = ModelBuilder::new("one", TensorShape::new(3, 8, 8));
    b.conv("only", ConvSpec::standard(3, 1, Padding::same(3, 3)), 4, 0);
    let model = b.finish().unwrap();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    let spec = notation::parse("{L1-Last: CE1}").unwrap();
    let acc = builder.build(&spec).unwrap();
    let eval = CostModel::evaluate(&acc);
    assert!(eval.latency_s > 0.0);
    let sim = Simulator::new(SimConfig::default()).run_with_eval(&acc, &eval);
    assert_eq!(sim.offchip_bytes, eval.offchip_bytes.get());
}

#[test]
fn more_ces_than_layers_rejected() {
    let model = zoo::mobilenet_v2(); // 52 conv layers
    assert!(matches!(
        templates::segmented(&model, 53),
        Err(ArchError::Infeasible { .. })
    ));
    assert!(matches!(
        templates::segmented_rr(&model, 100),
        Err(ArchError::Infeasible { .. })
    ));
}

#[test]
fn notation_referencing_missing_layers_rejected() {
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    // 52 layers; L60 is out of range.
    let spec = notation::parse("{L1-L60: CE1}").unwrap();
    assert!(matches!(
        builder.build(&spec),
        Err(ArchError::BadLayerRange { .. })
    ));
    // Gap between assignments.
    let spec = notation::parse("{L1-L10: CE1, L20-Last: CE2}").unwrap();
    assert!(matches!(
        builder.build(&spec),
        Err(ArchError::NonContiguousCoverage { .. })
    ));
}

#[test]
fn starved_board_still_evaluates() {
    // 16 DSPs, 64 KiB BRAM, 0.1 GB/s: everything spills, nothing panics,
    // and the numbers reflect the pain.
    let model = zoo::resnet50();
    let starved = FpgaBoard::new("starved", 16, MiB(0.0625), 0.1);
    let builder = MultipleCeBuilder::new(&model, &starved);
    let acc = builder
        .build(&templates::segmented(&model, 2).unwrap())
        .unwrap();
    let eval = CostModel::evaluate(&acc);
    assert!(
        eval.latency_s > 1.0,
        "a starved board should be slow: {}",
        eval.latency_s
    );
    assert!(eval.offchip_bytes > CostModel::minimum_offchip_bytes(&acc));
    assert!(eval.memory_stall_fraction > 0.0);
}

#[test]
fn luxurious_board_reaches_minimum_traffic() {
    // A board with effectively unlimited BRAM reaches the deterministic
    // minimum on every architecture.
    let model = zoo::mobilenet_v2();
    let lux = FpgaBoard::new("lux", 4096, MiB(512.0), 25.6);
    let builder = MultipleCeBuilder::new(&model, &lux);
    for arch in templates::Architecture::ALL {
        let acc = builder
            .build(&arch.instantiate(&model, 4).unwrap())
            .unwrap();
        let eval = CostModel::evaluate(&acc);
        let min = CostModel::minimum_offchip_bytes(&acc);
        // SegmentedRR still spills its round handoffs by design; the
        // others reach the minimum exactly.
        if arch == templates::Architecture::SegmentedRr {
            assert!(eval.offchip_bytes >= min);
        } else {
            assert_eq!(eval.offchip_bytes, min, "{arch}");
        }
    }
}

#[test]
fn int16_doubles_minimum_traffic() {
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::zcu102();
    let spec = templates::hybrid(&model, 3).unwrap();
    let acc8 = MultipleCeBuilder::new(&model, &board).build(&spec).unwrap();
    let acc16 = MultipleCeBuilder::new(&model, &board)
        .with_precision(Precision::INT16)
        .build(&spec)
        .unwrap();
    assert_eq!(
        CostModel::minimum_offchip_bytes(&acc16),
        CostModel::minimum_offchip_bytes(&acc8) * 2
    );
}

#[test]
fn invalid_cnn_constructions_rejected() {
    // Dense on mismatched input handled by validation.
    let mut b = ModelBuilder::new("bad", TensorShape::new(3, 8, 8));
    b.conv("c", ConvSpec::pointwise(1), 4, 0);
    let m = b.finish().unwrap();
    assert_eq!(m.conv_layer_count(), 1);

    let empty = ModelBuilder::new("empty", TensorShape::new(3, 8, 8));
    assert_eq!(empty.finish().unwrap_err(), CnnError::EmptyModel);
}

#[test]
fn simulator_handles_zero_overhead_and_heavy_overhead() {
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::vcu108();
    let builder = MultipleCeBuilder::new(&model, &board);
    let acc = builder
        .build(&templates::segmented_rr(&model, 3).unwrap())
        .unwrap();
    let eval = CostModel::evaluate(&acc);

    let ideal = Simulator::new(SimConfig::ideal()).run_with_eval(&acc, &eval);
    let heavy = Simulator::new(SimConfig {
        dma_latency_cycles: 10_000,
        tile_overhead_cycles: 1_000,
        ..SimConfig::default()
    })
    .run_with_eval(&acc, &eval);
    assert!(
        heavy.latency_s > 2.0 * ideal.latency_s,
        "heavy overheads must show"
    );
    assert_eq!(heavy.offchip_bytes, ideal.offchip_bytes);
}

#[test]
fn clock_scaling_scales_latency() {
    let model = zoo::mobilenet_v2();
    let spec = templates::segmented(&model, 2).unwrap();
    let fast = FpgaBoard::zcu102().with_clock_mhz(300.0);
    let slow = FpgaBoard::zcu102().with_clock_mhz(100.0);
    let ef = CostModel::evaluate(&MultipleCeBuilder::new(&model, &fast).build(&spec).unwrap());
    let es = CostModel::evaluate(&MultipleCeBuilder::new(&model, &slow).build(&spec).unwrap());
    // 3x clock: compute-bound parts scale ~3x; allow slack for the
    // memory-bound fraction (bandwidth does not scale with clock).
    assert!(es.latency_s > 1.5 * ef.latency_s);
}

#[test]
fn weight_compression_scales_traffic_and_stays_sim_consistent() {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    let acc = builder
        .build(&templates::segmented_rr(&model, 2).unwrap())
        .unwrap();
    let base = CostModel::evaluate(&acc);

    let all: Vec<usize> = (0..acc.convs.len()).collect();
    let acc_c = acc.clone().with_weight_compression(&all, 0.5);
    let comp = CostModel::evaluate(&acc_c);

    // Compression halves weight traffic (up to per-layer rounding) and
    // never increases latency.
    assert!(
        comp.offchip_weight_bytes <= base.offchip_weight_bytes / 2 + Bytes::new(all.len() as u64)
    );
    assert!(comp.latency_s <= base.latency_s);
    // FM traffic is untouched.
    assert_eq!(comp.offchip_fm_bytes, base.offchip_fm_bytes);

    // The reference simulator sees the same compressed traffic.
    let sim = Simulator::new(SimConfig::default()).run_with_eval(&acc_c, &comp);
    assert_eq!(sim.offchip_bytes, comp.offchip_bytes.get());

    // Buffer requirements are unchanged: weights decompress on-chip.
    assert_eq!(comp.buffer_req_bytes, base.buffer_req_bytes);
}

#[test]
#[should_panic(expected = "ratio")]
fn compression_ratio_validated() {
    let model = zoo::mobilenet_v2();
    let builder = MultipleCeBuilder::new(&model, &FpgaBoard::zc706());
    let acc = builder
        .build(&templates::hybrid(&model, 3).unwrap())
        .unwrap();
    let _ = acc.with_weight_compression(&[0], 1.5);
}
