//! Failure injection and boundary conditions: the stack must degrade
//! gracefully — clean errors for infeasible inputs, sane numbers for
//! extreme but valid ones. The second half of the file holds the serve
//! layer's robustness suite: framing under hostile transports,
//! admission control, deadlines, panic isolation, graceful shutdown,
//! and the deterministic fault-injection soak.

use mccm::arch::{notation, templates, ArchError, MultipleCeBuilder};
use mccm::cnn::{zoo, CnnError, ConvSpec, ModelBuilder, Padding, TensorShape};
use mccm::core::{Bytes, CostModel};
use mccm::fpga::{FpgaBoard, MiB, Precision};
use mccm::sim::{SimConfig, Simulator};

#[test]
fn one_layer_model_works_end_to_end() {
    let mut b = ModelBuilder::new("one", TensorShape::new(3, 8, 8));
    b.conv("only", ConvSpec::standard(3, 1, Padding::same(3, 3)), 4, 0);
    let model = b.finish().unwrap();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    let spec = notation::parse("{L1-Last: CE1}").unwrap();
    let acc = builder.build(&spec).unwrap();
    let eval = CostModel::evaluate(&acc);
    assert!(eval.latency_s > 0.0);
    let sim = Simulator::new(SimConfig::default()).run_with_eval(&acc, &eval);
    assert_eq!(sim.offchip_bytes, eval.offchip_bytes.get());
}

#[test]
fn more_ces_than_layers_rejected() {
    let model = zoo::mobilenet_v2(); // 52 conv layers
    assert!(matches!(
        templates::segmented(&model, 53),
        Err(ArchError::Infeasible { .. })
    ));
    assert!(matches!(
        templates::segmented_rr(&model, 100),
        Err(ArchError::Infeasible { .. })
    ));
}

#[test]
fn notation_referencing_missing_layers_rejected() {
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    // 52 layers; L60 is out of range.
    let spec = notation::parse("{L1-L60: CE1}").unwrap();
    assert!(matches!(
        builder.build(&spec),
        Err(ArchError::BadLayerRange { .. })
    ));
    // Gap between assignments.
    let spec = notation::parse("{L1-L10: CE1, L20-Last: CE2}").unwrap();
    assert!(matches!(
        builder.build(&spec),
        Err(ArchError::NonContiguousCoverage { .. })
    ));
}

#[test]
fn starved_board_still_evaluates() {
    // 16 DSPs, 64 KiB BRAM, 0.1 GB/s: everything spills, nothing panics,
    // and the numbers reflect the pain.
    let model = zoo::resnet50();
    let starved = FpgaBoard::new("starved", 16, MiB(0.0625), 0.1);
    let builder = MultipleCeBuilder::new(&model, &starved);
    let acc = builder
        .build(&templates::segmented(&model, 2).unwrap())
        .unwrap();
    let eval = CostModel::evaluate(&acc);
    assert!(
        eval.latency_s > 1.0,
        "a starved board should be slow: {}",
        eval.latency_s
    );
    assert!(eval.offchip_bytes > CostModel::minimum_offchip_bytes(&acc));
    assert!(eval.memory_stall_fraction > 0.0);
}

#[test]
fn luxurious_board_reaches_minimum_traffic() {
    // A board with effectively unlimited BRAM reaches the deterministic
    // minimum on every architecture.
    let model = zoo::mobilenet_v2();
    let lux = FpgaBoard::new("lux", 4096, MiB(512.0), 25.6);
    let builder = MultipleCeBuilder::new(&model, &lux);
    for arch in templates::Architecture::ALL {
        let acc = builder
            .build(&arch.instantiate(&model, 4).unwrap())
            .unwrap();
        let eval = CostModel::evaluate(&acc);
        let min = CostModel::minimum_offchip_bytes(&acc);
        // SegmentedRR still spills its round handoffs by design; the
        // others reach the minimum exactly.
        if arch == templates::Architecture::SegmentedRr {
            assert!(eval.offchip_bytes >= min);
        } else {
            assert_eq!(eval.offchip_bytes, min, "{arch}");
        }
    }
}

#[test]
fn int16_doubles_minimum_traffic() {
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::zcu102();
    let spec = templates::hybrid(&model, 3).unwrap();
    let acc8 = MultipleCeBuilder::new(&model, &board).build(&spec).unwrap();
    let acc16 = MultipleCeBuilder::new(&model, &board)
        .with_precision(Precision::INT16)
        .build(&spec)
        .unwrap();
    assert_eq!(
        CostModel::minimum_offchip_bytes(&acc16),
        CostModel::minimum_offchip_bytes(&acc8) * 2
    );
}

#[test]
fn invalid_cnn_constructions_rejected() {
    // Dense on mismatched input handled by validation.
    let mut b = ModelBuilder::new("bad", TensorShape::new(3, 8, 8));
    b.conv("c", ConvSpec::pointwise(1), 4, 0);
    let m = b.finish().unwrap();
    assert_eq!(m.conv_layer_count(), 1);

    let empty = ModelBuilder::new("empty", TensorShape::new(3, 8, 8));
    assert_eq!(empty.finish().unwrap_err(), CnnError::EmptyModel);
}

#[test]
fn simulator_handles_zero_overhead_and_heavy_overhead() {
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::vcu108();
    let builder = MultipleCeBuilder::new(&model, &board);
    let acc = builder
        .build(&templates::segmented_rr(&model, 3).unwrap())
        .unwrap();
    let eval = CostModel::evaluate(&acc);

    let ideal = Simulator::new(SimConfig::ideal()).run_with_eval(&acc, &eval);
    let heavy = Simulator::new(SimConfig {
        dma_latency_cycles: 10_000,
        tile_overhead_cycles: 1_000,
        ..SimConfig::default()
    })
    .run_with_eval(&acc, &eval);
    assert!(
        heavy.latency_s > 2.0 * ideal.latency_s,
        "heavy overheads must show"
    );
    assert_eq!(heavy.offchip_bytes, ideal.offchip_bytes);
}

#[test]
fn clock_scaling_scales_latency() {
    let model = zoo::mobilenet_v2();
    let spec = templates::segmented(&model, 2).unwrap();
    let fast = FpgaBoard::zcu102().with_clock_mhz(300.0);
    let slow = FpgaBoard::zcu102().with_clock_mhz(100.0);
    let ef = CostModel::evaluate(&MultipleCeBuilder::new(&model, &fast).build(&spec).unwrap());
    let es = CostModel::evaluate(&MultipleCeBuilder::new(&model, &slow).build(&spec).unwrap());
    // 3x clock: compute-bound parts scale ~3x; allow slack for the
    // memory-bound fraction (bandwidth does not scale with clock).
    assert!(es.latency_s > 1.5 * ef.latency_s);
}

#[test]
fn weight_compression_scales_traffic_and_stays_sim_consistent() {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    let acc = builder
        .build(&templates::segmented_rr(&model, 2).unwrap())
        .unwrap();
    let base = CostModel::evaluate(&acc);

    let all: Vec<usize> = (0..acc.convs.len()).collect();
    let acc_c = acc.clone().with_weight_compression(&all, 0.5);
    let comp = CostModel::evaluate(&acc_c);

    // Compression halves weight traffic (up to per-layer rounding) and
    // never increases latency.
    assert!(
        comp.offchip_weight_bytes <= base.offchip_weight_bytes / 2 + Bytes::new(all.len() as u64)
    );
    assert!(comp.latency_s <= base.latency_s);
    // FM traffic is untouched.
    assert_eq!(comp.offchip_fm_bytes, base.offchip_fm_bytes);

    // The reference simulator sees the same compressed traffic.
    let sim = Simulator::new(SimConfig::default()).run_with_eval(&acc_c, &comp);
    assert_eq!(sim.offchip_bytes, comp.offchip_bytes.get());

    // Buffer requirements are unchanged: weights decompress on-chip.
    assert_eq!(comp.buffer_req_bytes, base.buffer_req_bytes);
}

#[test]
#[should_panic(expected = "ratio")]
fn compression_ratio_validated() {
    let model = zoo::mobilenet_v2();
    let builder = MultipleCeBuilder::new(&model, &FpgaBoard::zc706());
    let acc = builder
        .build(&templates::hybrid(&model, 3).unwrap())
        .unwrap();
    let _ = acc.with_weight_compression(&[0], 1.5);
}

// ---------------------------------------------------------------------
// Serve layer: framing, admission, deadlines, panics, shutdown, soak.
// ---------------------------------------------------------------------

mod common;

mod serve_suite {
    use std::sync::atomic::{AtomicU64, Ordering};

    use proptest::prelude::*;

    use mccm::json::Json;
    use mccm::scenario::Scenario;
    use mccm::serve::{
        read_frame, run_with_retry, write_frame, Client, FaultPlan, FaultSite, FaultyReader,
        RetryPolicy, ServeConfig, ServeStats, Server,
    };
    use mccm::session::Session;
    use mccm::Error;

    use super::common::any_scenario;

    fn evaluate_scenario_json() -> String {
        r#"{
            "model": {"zoo": "mobilenetv2"},
            "board": {"builtin": "zc706"},
            "action": {"evaluate": {"template": "hybrid", "ces": 4}}
        }"#
        .to_string()
    }

    fn optimize_scenario_json(budget: u64) -> String {
        format!(
            r#"{{
                "model": {{"zoo": "mobilenetv2"}},
                "board": {{"builtin": "zc706"}},
                "seed": 11,
                "action": {{"optimize": {{
                    "metrics": ["throughput", "buffers"],
                    "budget": {budget},
                    "population": 16,
                    "islands": 2
                }}}}
            }}"#
        )
    }

    type ServerHandle = std::thread::JoinHandle<Result<ServeStats, Error>>;

    fn start_server(config: ServeConfig) -> (String, ServerHandle) {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
        let addr = server.addr().to_string();
        (addr, server.spawn())
    }

    fn stat(stats: &Json, key: &str) -> u64 {
        stats
            .get("stats")
            .and_then(|s| s.get(key))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats missing {key}: {stats}"))
    }

    /// The accounting identities every daemon must satisfy.
    fn assert_balanced(stats: &Json) {
        assert_eq!(
            stat(stats, "received"),
            stat(stats, "admitted")
                + stat(stats, "rejected_busy")
                + stat(stats, "rejected_draining"),
            "admission accounting must balance: {stats}"
        );
        assert_eq!(
            stat(stats, "admitted"),
            stat(stats, "completed") + stat(stats, "degraded") + stat(stats, "failed"),
            "completion accounting must balance: {stats}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any scenario's request frame survives a transport that
        /// delivers one byte at a time: framing reassembles it and the
        /// scenario round-trips losslessly.
        #[test]
        fn frames_round_trip_through_short_reads(scenario in any_scenario(), seed in 0u64..1000) {
            let mut request = Json::object();
            request.push("id", 1u64);
            request.push("run", scenario.to_json());
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &request).unwrap();
            let trickle = FaultPlan::seeded(seed).with_rate(FaultSite::ShortRead, 1000);
            let mut reader = FaultyReader::new(std::io::Cursor::new(bytes), trickle);
            let back = read_frame(&mut reader).unwrap().expect("one frame");
            let run = back.get("run").expect("run survives");
            let parsed = Scenario::from_json(run).expect("scenario survives");
            prop_assert_eq!(parsed, scenario);
        }
    }

    #[test]
    fn warm_server_bytes_match_a_local_run_exactly() {
        let (addr, handle) = start_server(ServeConfig::default());
        let scenario = Scenario::from_json_str(&evaluate_scenario_json()).unwrap();
        let mut local = Session::new();
        let local_bytes = local.run(&scenario).unwrap().to_json_string();
        let mut client = Client::connect(&addr).unwrap();
        // Cold then warm: all serve the same bytes as a local run.
        for _ in 0..3 {
            let reply = client.run(&scenario, None).unwrap();
            assert!(!reply.degraded);
            assert_eq!(reply.outcome.to_string_pretty(), local_bytes);
        }
        let response = client.shutdown().unwrap();
        assert_balanced(&response);
        assert_eq!(stat(&response, "completed"), 3);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn bad_requests_get_typed_errors_and_the_daemon_survives() {
        let (addr, handle) = start_server(ServeConfig::default());

        // An unknown model is a typed scenario error, not a dead server.
        let mut client = Client::connect(&addr).unwrap();
        let mut wrong_model = Scenario::from_json_str(&evaluate_scenario_json()).unwrap();
        wrong_model.model = mccm::scenario::ModelSpec::Zoo("definitely-not-a-model".into());
        match client.run(&wrong_model, None) {
            Err(Error::Remote {
                kind, exit_code, ..
            }) => {
                assert_eq!(kind, "scenario");
                assert_eq!(exit_code, 3);
            }
            other => panic!("expected a remote scenario error, got {other:?}"),
        }

        // A frame that is none of run/stats/shutdown gets a protocol
        // error answered on the same connection.
        let mut raw = std::net::TcpStream::connect(&addr).unwrap();
        let mut nonsense = Json::object();
        nonsense.push("greetings", true);
        write_frame(&mut raw, &nonsense).unwrap();
        let reply = read_frame(&mut raw).unwrap().expect("a reply");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        let kind = reply
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str);
        assert_eq!(kind, Some("protocol"));
        drop(raw);

        // The first client's connection still works afterwards.
        let good = Scenario::from_json_str(&evaluate_scenario_json()).unwrap();
        assert!(client.run(&good, None).is_ok());
        let response = client.shutdown().unwrap();
        assert_balanced(&response);
        assert_eq!(stat(&response, "failed"), 1);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn over_budget_requests_come_back_degraded_with_partial_results() {
        let (addr, handle) = start_server(ServeConfig::default());
        let scenario = Scenario::from_json_str(&optimize_scenario_json(2_000_000)).unwrap();
        let mut client = Client::connect(&addr).unwrap();
        // A huge optimize budget cannot finish in 50 ms: the watchdog
        // fires and the response is an honest partial front.
        let reply = client.run(&scenario, Some(50)).unwrap();
        assert!(reply.degraded, "a 50ms deadline must degrade this request");
        assert_eq!(
            reply.outcome.get("action").and_then(Json::as_str),
            Some("optimize")
        );
        let evals = reply
            .outcome
            .get("evaluations")
            .and_then(Json::as_u64)
            .expect("attempts spent are reported");
        assert!(
            evals < 2_000_000,
            "degraded run must not have spent the full budget"
        );
        // An ample deadline does not degrade.
        let quick = Scenario::from_json_str(&optimize_scenario_json(300)).unwrap();
        let reply = client.run(&quick, Some(120_000)).unwrap();
        assert!(!reply.degraded);
        let response = client.shutdown().unwrap();
        assert_balanced(&response);
        assert_eq!(stat(&response, "degraded"), 1);
        assert_eq!(stat(&response, "completed"), 1);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn full_queue_rejects_busy_and_the_retry_client_gets_through() {
        // One worker, one queue slot: concurrent slow requests must
        // draw busy rejections; retrying clients all land eventually.
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            retry_after_ms: 20,
            ..ServeConfig::default()
        };
        let (addr, handle) = start_server(config);
        let slow = optimize_scenario_json(30_000);
        let saw_busy = AtomicU64::new(0);
        std::thread::scope(|s| {
            for seed in 0..6u64 {
                let addr = &addr;
                let slow = &slow;
                let saw_busy = &saw_busy;
                s.spawn(move || {
                    let scenario = Scenario::from_json_str(slow).unwrap();
                    let policy = RetryPolicy {
                        retries: 100,
                        base_ms: 10,
                        max_ms: 200,
                        seed,
                    };
                    // Probe without retries to observe raw rejections.
                    let mut probe = Client::connect(addr).unwrap();
                    if matches!(probe.run(&scenario, Some(5)), Err(Error::Busy { .. })) {
                        saw_busy.fetch_add(1, Ordering::Relaxed);
                    }
                    // Then insist: Busy must never surface with retries.
                    let reply =
                        run_with_retry(addr, &scenario, Some(5), &policy).expect("retries land");
                    assert!(reply.outcome.get("action").is_some());
                });
            }
        });
        assert!(
            saw_busy.load(Ordering::Relaxed) > 0,
            "a 1-slot queue under 6 concurrent clients must reject at least once"
        );
        let mut client = Client::connect(&addr).unwrap();
        let response = client.shutdown().unwrap();
        assert_balanced(&response);
        assert!(stat(&response, "rejected_busy") > 0);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn draining_daemon_rejects_new_work_then_exits_with_balanced_stats() {
        let (addr, handle) = start_server(ServeConfig::default());
        let scenario = Scenario::from_json_str(&evaluate_scenario_json()).unwrap();
        let mut client = Client::connect(&addr).unwrap();
        client.run(&scenario, None).unwrap();
        let stats = Client::connect(&addr).unwrap().shutdown().unwrap();
        assert_eq!(stats.get("drained").and_then(Json::as_bool), Some(true));
        assert_balanced(&stats);
        // The daemon has exited: the listener no longer accepts, so a
        // late request fails at connect or at the first round trip.
        let late = Client::connect(&addr).and_then(|mut c| c.run(&scenario, None));
        assert!(late.is_err(), "daemon must be gone after shutdown");
        let final_stats = handle.join().unwrap().unwrap();
        assert_eq!(final_stats.completed, 1);
    }

    /// The headline soak: concurrent clients against a daemon whose
    /// fault plan injects worker panics, cache evictions, stalls, and
    /// one-byte socket reads on a fixed seed. The daemon must never
    /// exit, every request must get exactly one final typed response,
    /// and the drained stats must balance.
    #[test]
    fn fault_injection_soak_daemon_survives_and_accounting_balances() {
        let faults = FaultPlan::seeded(7)
            .with_rate(FaultSite::WorkerPanic, 250)
            .with_rate(FaultSite::CacheEvict, 200)
            .with_rate(FaultSite::EvalStall, 150)
            .with_rate(FaultSite::ShortRead, 400);
        let config = ServeConfig {
            workers: 2,
            queue_capacity: 4,
            retry_after_ms: 10,
            stall_ms: 60,
            faults,
            ..ServeConfig::default()
        };
        let (addr, handle) = start_server(config);
        const CLIENTS: u64 = 4;
        const REQUESTS_PER_CLIENT: u64 = 6;
        let responses = AtomicU64::new(0);
        let panics_seen = AtomicU64::new(0);
        std::thread::scope(|s| {
            for c in 0..CLIENTS {
                let addr = &addr;
                let responses = &responses;
                let panics_seen = &panics_seen;
                s.spawn(move || {
                    for r in 0..REQUESTS_PER_CLIENT {
                        let scenario = if (c + r) % 2 == 0 {
                            Scenario::from_json_str(&evaluate_scenario_json()).unwrap()
                        } else {
                            Scenario::from_json_str(&optimize_scenario_json(400)).unwrap()
                        };
                        let deadline = if r % 3 == 0 { Some(40) } else { Some(60_000) };
                        let policy = RetryPolicy {
                            retries: 100,
                            base_ms: 5,
                            max_ms: 100,
                            seed: c * 100 + r,
                        };
                        // Exactly one final typed response per request:
                        // an outcome or a typed error — never a hang,
                        // never a dead daemon.
                        match run_with_retry(addr, &scenario, deadline, &policy) {
                            Ok(_) => {
                                responses.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(Error::Remote {
                                kind, exit_code, ..
                            }) => {
                                responses.fetch_add(1, Ordering::Relaxed);
                                if kind == "internal" {
                                    assert_eq!(exit_code, 9);
                                    panics_seen.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(e) => panic!("untyped soak failure: {e:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(
            responses.load(Ordering::Relaxed),
            CLIENTS * REQUESTS_PER_CLIENT,
            "every request must get exactly one final response"
        );
        // The daemon is still alive and answers stats.
        let mut client = Client::connect(&addr).unwrap();
        let stats = client.stats().unwrap();
        assert_balanced(&stats);
        let response = client.shutdown().unwrap();
        assert_balanced(&response);
        // The seeded plan (250/1000 worker-panic rate over dozens of
        // jobs) certainly panicked; every panic was caught and the
        // daemon outlived them all.
        assert!(
            stat(&response, "panics_recovered") > 0,
            "the fault plan must have injected at least one panic: {response}"
        );
        assert_eq!(
            stat(&response, "panics_recovered"),
            panics_seen.load(Ordering::Relaxed),
            "every injected panic surfaced as exactly one internal error"
        );
        handle.join().unwrap().unwrap();
    }
}
