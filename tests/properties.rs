//! Property-based tests over random CNNs and random architecture
//! specifications: the whole stack must stay total, conservative, and
//! internally consistent.

use proptest::prelude::*;

use mccm::arch::{notation, templates, MultipleCeBuilder};
use mccm::cnn::synthetic::{random_cnn, SyntheticConfig};
use mccm::cnn::zoo;
use mccm::core::CostModel;
use mccm::fpga::{FpgaBoard, MiB};
use mccm::sim::{SimConfig, Simulator};

fn any_board() -> impl Strategy<Value = FpgaBoard> {
    (64u32..4096, 1u64..64, 1u64..64).prop_map(|(dsps, bram_dmib, bw_d)| {
        FpgaBoard::new("prop", dsps, MiB(bram_dmib as f64 / 4.0), bw_d as f64 / 2.0)
    })
}

fn any_model() -> impl Strategy<Value = mccm::cnn::CnnModel> {
    (
        0u64..64,
        4usize..24,
        prop_oneof![Just(32u32), Just(64), Just(96)],
    )
        .prop_map(|(seed, layers, size)| {
            random_cnn(
                seed,
                &SyntheticConfig {
                    conv_layers: layers,
                    input_size: size,
                    ..Default::default()
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn build_and_evaluate_never_panics(model in any_model(), board in any_board(), k in 1usize..8) {
        let n = model.conv_layer_count();
        let k = k.min(n);
        let builder = MultipleCeBuilder::new(&model, &board);
        for arch in templates::Architecture::ALL {
            let Ok(spec) = arch.instantiate(&model, k) else { continue };
            let Ok(acc) = builder.build(&spec) else { continue };
            let eval = CostModel::evaluate(&acc);
            prop_assert!(eval.latency_s > 0.0);
            prop_assert!(eval.throughput_fps > 0.0);
            prop_assert!(eval.offchip_bytes >= CostModel::minimum_offchip_bytes(&acc));
            prop_assert!((0.0..=1.0).contains(&eval.memory_stall_fraction));
        }
    }

    #[test]
    fn pe_budget_always_respected(model in any_model(), board in any_board(), k in 1usize..8) {
        let n = model.conv_layer_count();
        let k = k.min(n);
        let builder = MultipleCeBuilder::new(&model, &board);
        for arch in templates::Architecture::ALL {
            let Ok(spec) = arch.instantiate(&model, k) else { continue };
            let Ok(acc) = builder.build(&spec) else { continue };
            let total: u32 = acc.ces.iter().map(|c| c.pes).sum();
            prop_assert_eq!(total, board.dsps);
            for ce in &acc.ces {
                prop_assert!(ce.parallelism.total() <= ce.pes as u64);
            }
        }
    }

    #[test]
    fn buffer_plan_respects_bram_when_feasible(model in any_model(), board in any_board()) {
        let builder = MultipleCeBuilder::new(&model, &board);
        let Ok(spec) = templates::segmented(&model, 2.min(model.conv_layer_count())) else { return Ok(()) };
        let Ok(acc) = builder.build(&spec) else { return Ok(()) };
        if acc.buffers.fits_minimums {
            prop_assert!(acc.buffers.total_bytes() <= board.bram_bytes());
        }
    }

    #[test]
    fn more_bram_never_increases_accesses(model in any_model(), k in 2usize..6) {
        let k = k.min(model.conv_layer_count());
        let Ok(spec) = templates::segmented(&model, k) else { return Ok(()) };
        let mut last = u64::MAX;
        for bram in [0.25f64, 1.0, 4.0, 16.0, 64.0] {
            let board = FpgaBoard::new("b", 512, MiB(bram), 8.0);
            let Ok(acc) = MultipleCeBuilder::new(&model, &board).build(&spec) else { continue };
            let eval = CostModel::evaluate(&acc);
            prop_assert!(
                eval.offchip_bytes.get() <= last,
                "accesses grew from {last} to {} at {bram} MiB", eval.offchip_bytes
            );
            last = eval.offchip_bytes.get();
        }
    }

    #[test]
    fn notation_round_trip(assignments in 1usize..6, pipelined in any::<bool>(), layers in 12usize..40) {
        // Generate a random contiguous covering spec, format, re-parse.
        let per = layers / assignments;
        let mut text = String::from("{");
        let mut ce = 1usize;
        for i in 0..assignments {
            if i > 0 { text.push_str(", "); }
            let first = i * per + 1;
            let last_txt = if i + 1 == assignments { "Last".to_string() } else { format!("L{}", (i + 1) * per) };
            if pipelined && i == 0 && per >= 2 {
                text.push_str(&format!("L{first}-{last_txt}: CE{ce}-CE{}", ce + 1));
                ce += 2;
            } else {
                text.push_str(&format!("L{first}-{last_txt}: CE{ce}"));
                ce += 1;
            }
        }
        text.push('}');
        let spec = notation::parse(&text).unwrap();
        let printed = notation::format(&spec);
        prop_assert_eq!(notation::parse(&printed).unwrap(), spec);
    }

    #[test]
    fn simulator_traffic_always_matches_model(seed in 0u64..32) {
        let model = random_cnn(seed, &SyntheticConfig { conv_layers: 10, ..Default::default() });
        let board = FpgaBoard::vcu108();
        let builder = MultipleCeBuilder::new(&model, &board);
        let sim = Simulator::new(SimConfig::default());
        for arch in templates::Architecture::ALL {
            let Ok(spec) = arch.instantiate(&model, 3) else { continue };
            let Ok(acc) = builder.build(&spec) else { continue };
            let eval = CostModel::evaluate(&acc);
            let r = sim.run_with_eval(&acc, &eval);
            prop_assert_eq!(r.offchip_bytes, eval.offchip_bytes.get());
            prop_assert!(r.latency_s > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn zoo_models_evaluate_on_random_boards(board in any_board(), k in 2usize..8) {
        // Heavier models, fewer cases.
        let model = zoo::mobilenet_v2();
        let builder = MultipleCeBuilder::new(&model, &board);
        for arch in templates::Architecture::ALL {
            let Ok(spec) = arch.instantiate(&model, k) else { continue };
            let Ok(acc) = builder.build(&spec) else { continue };
            let eval = CostModel::evaluate(&acc);
            prop_assert!(eval.throughput_fps.is_finite());
            prop_assert!(!eval.buffer_req_bytes.is_zero());
        }
    }
}
