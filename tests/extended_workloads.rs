//! The extended zoo (beyond Table III) through the whole stack: VGG-16
//! stresses weight traffic, EfficientNet-B0 stresses DAG handling
//! (squeeze-excitation gates and broadcast multiplies).

use mccm::arch::{templates, MultipleCeBuilder};
use mccm::cnn::zoo;
use mccm::core::CostModel;
use mccm::fpga::FpgaBoard;
use mccm::sim::{SimConfig, Simulator};

#[test]
fn extended_models_verify_against_keras() {
    let vgg = zoo::vgg16();
    assert_eq!(vgg.total_params(), 138_357_544);
    assert_eq!(vgg.conv_layer_count(), 13);
    let eff = zoo::efficientnet_b0();
    assert_eq!(eff.total_params() + 7, 5_330_571); // + Keras' Normalization stats
    assert_eq!(eff.conv_layer_count(), 81);
}

#[test]
fn vgg16_is_weight_traffic_bound() {
    // 132 MiB of 8-bit weights dwarf every board's BRAM: all architectures
    // stream weights, and weight traffic dominates accesses.
    let model = zoo::vgg16();
    let board = FpgaBoard::zcu102();
    let builder = MultipleCeBuilder::new(&model, &board);
    for arch in templates::Architecture::ALL {
        let acc = builder
            .build(&arch.instantiate(&model, 4).unwrap())
            .unwrap();
        let eval = CostModel::evaluate(&acc);
        assert!(
            eval.offchip_weight_bytes.get() >= model.conv_weights(),
            "{arch}: every weight crosses the pins at least once"
        );
        assert!(eval.weight_traffic_share() > 0.5, "{arch}");
    }
}

#[test]
fn efficientnet_b0_full_stack_with_se_gates() {
    let model = zoo::efficientnet_b0();
    let board = FpgaBoard::vcu108();
    let builder = MultipleCeBuilder::new(&model, &board);
    let sim = Simulator::new(SimConfig::default());
    for arch in templates::Architecture::ALL {
        for k in [2usize, 6, 11] {
            let acc = builder
                .build(&arch.instantiate(&model, k).unwrap())
                .unwrap();
            let eval = CostModel::evaluate(&acc);
            assert!(eval.latency_s > 0.0, "{arch} {k}");
            // The SE 1x1 convs over 1x1 spatial tensors must not break the
            // pipelined row scheduler (single-row layers).
            let r = sim.run_with_eval(&acc, &eval);
            assert_eq!(r.offchip_bytes, eval.offchip_bytes.get(), "{arch} {k}");
            assert!(
                r.latency_accuracy(&eval) > 55.0,
                "{arch} {k}: latency accuracy {:.1}%",
                r.latency_accuracy(&eval)
            );
        }
    }
}

#[test]
fn extended_models_listed() {
    let names: Vec<String> = zoo::extended_models()
        .iter()
        .map(|m| m.name().to_string())
        .collect();
    assert_eq!(names, ["vgg16", "efficientnetb0"]);
    for m in zoo::extended_models() {
        assert_ne!(zoo::abbreviation(m.name()), "?");
    }
}
