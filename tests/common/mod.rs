//! Proptest generators shared by the integration suites: arbitrary
//! scenarios for the scenario-API round-trip tests and the serve
//! layer's framing proptests. Keep strategies here so every suite
//! exercises the same input distribution.

#![allow(dead_code)] // each test binary uses a subset

use proptest::prelude::*;

use mccm::arch::templates::Architecture;
use mccm::arch::Schedule;
use mccm::cnn::synthetic::SyntheticConfig;
use mccm::cnn::zoo;
use mccm::core::Metric;
use mccm::fpga::{FpgaBoard, MiB, Precision};
use mccm::scenario::{Action, BoardSpec, CeOverride, DesignSpec, ModelSpec, Scenario};

pub fn any_model() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        (0usize..zoo::names().len()).prop_map(|i| ModelSpec::Zoo(zoo::names()[i].into())),
        (0u64..1000, 2usize..24, 1u32..6, 0u32..101, 0u32..101).prop_map(
            |(seed, conv_layers, size_quarters, res, dw)| ModelSpec::Synthetic {
                seed,
                config: SyntheticConfig {
                    conv_layers,
                    input_size: 16 * size_quarters,
                    base_channels: 8,
                    residual_prob: f64::from(res) / 100.0,
                    depthwise_prob: f64::from(dw) / 100.0,
                },
            }
        ),
    ]
}

pub fn any_board() -> impl Strategy<Value = BoardSpec> {
    prop_oneof![
        (0usize..FpgaBoard::names().len())
            .prop_map(|i| BoardSpec::Builtin(FpgaBoard::names()[i].into())),
        (64u32..4096, 1u32..64, 1u32..64, 1u32..8).prop_map(|(dsps, bram_q, bw_h, clk)| {
            BoardSpec::Custom(
                FpgaBoard::new(
                    "prop-board",
                    dsps,
                    MiB(f64::from(bram_q) / 4.0),
                    f64::from(bw_h) / 2.0,
                )
                .with_clock_mhz(f64::from(clk) * 50.0),
            )
        }),
    ]
}

pub fn metric_subset(mask: u32) -> Vec<Metric> {
    let picked: Vec<Metric> = Metric::WITH_ENERGY
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, m)| m)
        .collect();
    if picked.is_empty() {
        vec![Metric::Latency]
    } else {
        picked
    }
}

pub fn any_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..3, 1usize..12).prop_map(|(arch, ces)| Action::Evaluate {
            design: DesignSpec::Template {
                architecture: Architecture::ALL[arch],
                ces
            },
        }),
        Just(Action::Evaluate {
            design: DesignSpec::Notation("{L1-L4: CE1-CE4, L5-Last: CE5}".into()),
        }),
        (1usize..6, 0usize..12).prop_map(|(min, extra)| Action::Sweep {
            min_ces: min,
            max_ces: min + extra,
        }),
        (1usize..5000, 1u32..32).prop_map(|(count, mask)| Action::Sample {
            count,
            metrics: metric_subset(mask),
        }),
        (
            (1u64..100_000, 4usize..64, 1usize..8),
            (1usize..16, 0u32..101, 1u32..32, 1usize..5)
        )
            .prop_map(
                |((budget, population, islands), (interval, prob, mask, max_fuse_depth))| {
                    Action::Optimize {
                        metrics: metric_subset(mask),
                        budget,
                        population,
                        islands,
                        migration_interval: interval,
                        migrants: 2,
                        crossover_prob: f64::from(prob) / 100.0,
                        max_fuse_depth,
                    }
                }
            ),
        (
            (1u64..100_000, 4usize..64, 1usize..8),
            (1usize..12, 1u32..32, 0usize..3)
        )
            .prop_map(|((budget, population, islands), (top_k, mask, store))| {
                Action::Calibrate {
                    metrics: metric_subset(mask),
                    budget,
                    population,
                    islands,
                    top_k,
                    store: match store {
                        0 => None,
                        1 => Some("stores/zc706.json".into()),
                        _ => Some("cal store/with spaces.json".into()),
                    },
                }
            }),
    ]
}

/// Maps a small selector to an optional schedule so scenarios cover
/// "unset", layer-by-layer, and a spread of depth-first fuse depths.
pub fn schedule_pick(sel: usize) -> Option<Schedule> {
    match sel {
        0 | 1 => None,
        2 => Some(Schedule::LayerByLayer),
        n => Some(Schedule::DepthFirst { fuse_depth: n - 2 }),
    }
}

pub fn any_scenario() -> impl Strategy<Value = Scenario> {
    (
        any_model(),
        any_board(),
        any_action(),
        (1usize..64, 0u64..1_000_000, 0usize..16, 0usize..2),
        (0usize..8, prop::collection::vec(0usize..8, 0..4)),
    )
        .prop_map(
            |(model, board, action, (batch, seed, workers, precision), (sched, ce_scheds))| {
                let mut s = Scenario::new(model, board, action);
                s.batch = batch;
                s.seed = seed;
                s.workers = workers;
                s.precision = if precision == 0 {
                    Precision::INT8
                } else {
                    Precision::INT16
                };
                // Schedule overrides are evaluate-only; attaching them to
                // other actions would make the scenario invalid by
                // construction rather than by serialization.
                if matches!(s.action, Action::Evaluate { .. }) {
                    s.schedule = schedule_pick(sched);
                    s.ces = ce_scheds
                        .into_iter()
                        .map(|sel| CeOverride {
                            schedule: schedule_pick(sel),
                        })
                        .collect();
                }
                s
            },
        )
}
