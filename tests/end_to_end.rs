//! End-to-end integration: notation → builder → cost model → simulator,
//! across the zoo and the evaluation boards.

use mccm::arch::{notation, templates, MultipleCeBuilder};
use mccm::cnn::zoo;
use mccm::core::{Bytes, CostModel, Metric};
use mccm::fpga::FpgaBoard;
use mccm::sim::{SimConfig, Simulator};

#[test]
fn full_pipeline_for_every_model_and_board() {
    for model in zoo::all_models() {
        for board in FpgaBoard::evaluation_boards() {
            let builder = MultipleCeBuilder::new(&model, &board);
            for arch in templates::Architecture::ALL {
                let spec = arch.instantiate(&model, 4).unwrap();
                let acc = builder.build(&spec).unwrap();
                let eval = CostModel::evaluate(&acc);
                let ctx = format!("{} on {} ({arch})", model.name(), board.name);
                assert!(eval.latency_s > 0.0, "{ctx}");
                assert!(eval.throughput_fps > 0.0, "{ctx}");
                assert!(eval.throughput_fps * eval.latency_s >= 0.999, "{ctx}");
                assert!(
                    eval.offchip_bytes >= CostModel::minimum_offchip_bytes(&acc),
                    "{ctx}: below the deterministic traffic minimum"
                );
                assert_eq!(eval.layers.len(), model.conv_layer_count(), "{ctx}");
                // Traffic decomposition is consistent at every level.
                let seg: Bytes = eval.segments.iter().map(|s| s.traffic()).sum();
                let lay: Bytes = eval.layers.iter().map(|l| l.traffic()).sum();
                assert_eq!(seg, eval.offchip_bytes, "{ctx}");
                assert_eq!(lay, eval.offchip_bytes, "{ctx}");
            }
        }
    }
}

#[test]
fn notation_round_trips_through_the_whole_stack() {
    let model = zoo::resnet50();
    let board = FpgaBoard::vcu108();
    let builder = MultipleCeBuilder::new(&model, &board);
    for text in [
        "{L1-Last: CE1}",
        "{L1-Last: CE1-CE4}",
        "{L1-L26: CE1, L27-Last: CE2}",
        "{L1: CE1, L2-L10: CE2-CE4, L11-Last: CE5}",
        "{L1-L4: CE1-CE4, L5-L20: CE5, L21-L40: CE6, L41-Last: CE7}",
    ] {
        let spec = notation::parse(text).unwrap();
        let acc = builder.build(&spec).unwrap();
        assert_eq!(acc.notation(), text);
        let eval = CostModel::evaluate(&acc);
        assert_eq!(eval.notation, text);
        assert!(eval.latency_s > 0.0, "{text}");
    }
}

#[test]
fn simulator_validates_model_on_mixed_designs() {
    let model = zoo::densenet121();
    let board = FpgaBoard::zcu102();
    let builder = MultipleCeBuilder::new(&model, &board);
    let sim = Simulator::new(SimConfig::default());
    for text in [
        "{L1-L6: CE1-CE6, L7-Last: CE7}",
        "{L1-Last: CE1-CE3}",
        "{L1-L60: CE1, L61-Last: CE2}",
    ] {
        let spec = notation::parse(text).unwrap();
        let acc = builder.build(&spec).unwrap();
        let eval = CostModel::evaluate(&acc);
        let r = sim.run_with_eval(&acc, &eval);
        assert_eq!(r.offchip_bytes, eval.offchip_bytes.get(), "{text}");
        for rec in r.accuracy_records(&eval) {
            assert!(
                rec.accuracy() >= 75.0,
                "{text} {}: accuracy {:.1}%",
                rec.metric,
                rec.accuracy()
            );
        }
    }
}

#[test]
fn single_ce_baseline_is_expressible() {
    // The degenerate one-engine accelerator works across every model —
    // the "reusable CE" extreme the paper contrasts against (§II-C).
    for model in zoo::all_models() {
        let board = FpgaBoard::zcu102();
        let builder = MultipleCeBuilder::new(&model, &board);
        let spec = notation::parse("{L1-Last: CE1}").unwrap();
        let acc = builder.build(&spec).unwrap();
        assert_eq!(acc.ce_count(), 1);
        let eval = CostModel::evaluate(&acc);
        // Without coarse pipelining, throughput = 1/latency.
        assert!(
            (eval.throughput_fps * eval.latency_s - 1.0).abs() < 1e-9,
            "{}",
            model.name()
        );
    }
}

#[test]
fn per_layer_engine_extreme_is_expressible() {
    // The other extreme: one CE per layer (FINN/DNNBuilder style), which
    // the paper calls resource-demanding but expressible.
    let model = zoo::mobilenet_v2();
    let n = model.conv_layer_count();
    let board = FpgaBoard::zcu102();
    let builder = MultipleCeBuilder::new(&model, &board);
    let spec = notation::parse(&format!("{{L1-Last: CE1-CE{n}}}")).unwrap();
    let acc = builder.build(&spec).unwrap();
    assert_eq!(acc.ce_count(), n);
    assert_eq!(acc.segments.len(), 1);
    let eval = CostModel::evaluate(&acc);
    assert!(eval.latency_s > 0.0);
}

#[test]
fn metrics_trade_off_across_architectures() {
    // Table I's premise on our stack: on ZCU102/ResNet-50, no architecture
    // dominates every metric across best-throughput instances.
    let model = zoo::resnet50();
    let board = FpgaBoard::zcu102();
    let builder = MultipleCeBuilder::new(&model, &board);
    let mut evals = Vec::new();
    for arch in templates::Architecture::ALL {
        let best = (2..=11)
            .map(|k| {
                let acc = builder
                    .build(&arch.instantiate(&model, k).unwrap())
                    .unwrap();
                CostModel::evaluate(&acc)
            })
            .reduce(|a, b| {
                if b.throughput_fps > a.throughput_fps {
                    b
                } else {
                    a
                }
            })
            .unwrap();
        evals.push(best);
    }
    for metric in [
        Metric::Latency,
        Metric::OnChipBuffers,
        Metric::OffChipAccesses,
    ] {
        let vals: Vec<f64> = evals.iter().map(|e| metric.value(e)).collect();
        assert!(metric.best_index(&vals).is_some());
    }
    // At least two different architectures win at least one metric each.
    let winners: std::collections::HashSet<usize> = [
        Metric::Latency,
        Metric::OnChipBuffers,
        Metric::OffChipAccesses,
    ]
    .iter()
    .map(|m| {
        let vals: Vec<f64> = evals.iter().map(|e| m.value(e)).collect();
        m.best_index(&vals).unwrap()
    })
    .collect();
    assert!(winners.len() >= 2, "one architecture dominated everything");
}
