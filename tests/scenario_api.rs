//! Scenario API integration: JSON round-trips (property-based and golden
//! files), malformed-input error messages, and the session cache's
//! no-rebuild guarantee.

use proptest::prelude::*;

use mccm::json::Json;
use mccm::scenario::Scenario;
use mccm::session::{Outcome, Session};
use mccm::Error;

mod common;
use common::any_scenario;

fn scenario_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios")
}

fn read_scenario(name: &str) -> String {
    let path = scenario_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `Scenario -> JSON text -> Scenario` is the identity: nothing in a
    /// scenario is lost, reordered, or renormalized by serialization.
    #[test]
    fn scenario_json_round_trips(scenario in any_scenario()) {
        let text = scenario.to_json_string();
        let back = Scenario::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(&back, &scenario);
        // And the canonical text itself is a fixed point.
        prop_assert_eq!(back.to_json_string(), text);
    }
}

#[test]
fn golden_files_cover_all_four_actions_and_round_trip() {
    let cases = [
        ("golden_evaluate.json", "evaluate"),
        ("golden_sweep.json", "sweep"),
        ("golden_sample.json", "sample"),
        ("golden_optimize.json", "optimize"),
    ];
    for (file, action) in cases {
        let text = read_scenario(file);
        let scenario = Scenario::from_json_str(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(scenario.action.name(), action, "{file}");
        let back = Scenario::from_json_str(&scenario.to_json_string()).unwrap();
        assert_eq!(back, scenario, "{file}");
    }
}

#[test]
fn golden_scenarios_execute_through_one_session() {
    let mut session = Session::new();
    for file in [
        "golden_evaluate.json",
        "golden_sweep.json",
        "golden_sample.json",
        "golden_optimize.json",
    ] {
        let scenario = Scenario::from_json_str(&read_scenario(file)).unwrap();
        let outcome = session
            .run(&scenario)
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(outcome.action(), scenario.action.name(), "{file}");
        // The outcome JSON is parseable and self-describing.
        let json = Json::parse(&outcome.to_json_string()).unwrap();
        assert_eq!(
            json.get("action").and_then(Json::as_str),
            Some(scenario.action.name())
        );
    }
    // Four distinct contexts → no hits; sample and optimize share
    // (mobilenetv2, zc706, int8, batch 1) → one hit.
    assert_eq!(session.stats().misses, 3);
    assert_eq!(session.stats().hits, 1);
}

#[test]
fn malformed_scenarios_fail_with_named_fields() {
    let cases = [
        ("malformed_unknown_model.json", "model.zoo"),
        ("malformed_unknown_field.json", "action.sample.sample_count"),
        ("malformed_syntax.json", "JSON parse error"),
    ];
    for (file, needle) in cases {
        let err = Scenario::from_json_str(&read_scenario(file))
            .expect_err(file)
            .to_string();
        assert!(
            err.contains(needle),
            "{file}: `{err}` should contain `{needle}`"
        );
    }
}

#[test]
fn malformed_inline_inputs_name_the_problem() {
    let cases = [
        (
            r#"{"board": {"builtin": "zc706"}, "action": {"sweep": {}}}"#,
            "model",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu9000"},
                "action": {"sweep": {}}}"#,
            "vcu9000",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "precision": "fp64", "action": {"sweep": {}}}"#,
            "precision",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "action": {"sample": {"count": 0}}}"#,
            "action.sample.count",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "action": {"sample": {"count": 5, "metrics": ["speed"]}}}"#,
            "unknown metric `speed`",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "action": {"sweep": {"min_ces": 5, "max_ces": 2}}}"#,
            "min_ces",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "batch": -1, "action": {"sweep": {}}}"#,
            "batch",
        ),
    ];
    for (text, needle) in cases {
        let err = Scenario::from_json_str(text).expect_err(text).to_string();
        assert!(err.contains(needle), "`{err}` should contain `{needle}`");
    }
}

#[test]
fn warmed_session_reevaluates_without_rebuilding_the_context() {
    // The acceptance bar: a warmed Session re-evaluating the same
    // (model, board) pair does no builder reconstruction — asserted via
    // the cache-hit counter and the builder's context token.
    let mut session = Session::new();
    let scenario = Scenario::from_json_str(
        r#"{"model": {"zoo": "mobilenetv2"}, "board": {"builtin": "zc706"},
            "action": {"evaluate": {"template": "segmentedrr", "ces": 4}}}"#,
    )
    .unwrap();
    let first = session.run(&scenario).unwrap();
    assert_eq!(
        (session.stats().hits, session.stats().misses),
        (0, 1),
        "first run constructs the context"
    );
    let token = session
        .cached_context_token(&scenario)
        .expect("context cached");
    for round in 1..=5u64 {
        let outcome = session.run(&scenario).unwrap();
        assert_eq!(
            session.stats().hits,
            round,
            "round {round} must be a cache hit"
        );
        assert_eq!(
            session.stats().misses,
            1,
            "no context is ever reconstructed"
        );
        assert_eq!(
            session.cached_context_token(&scenario),
            Some(token),
            "the same build context keeps serving"
        );
        assert_eq!(outcome, first, "warm results are identical to cold ones");
    }
    // A different action on the same (model, board, precision, batch)
    // context is still a hit.
    let sample = Scenario::from_json_str(
        r#"{"model": {"zoo": "mobilenetv2"}, "board": {"builtin": "zc706"},
            "action": {"sample": {"count": 10}}}"#,
    )
    .unwrap();
    let Outcome::Front(front) = session.run(&sample).unwrap() else {
        panic!()
    };
    assert!(!front.front.is_empty());
    assert_eq!(session.stats().misses, 1);
    assert_eq!(session.stats().hits, 6);
}

#[test]
fn session_errors_converge_into_mccm_error() {
    let mut session = Session::new();
    // Attempt-exhaustion from dse surfaces as Error::Explore: a 1-DSP
    // board hosts no multi-CE design, so every sampling attempt is
    // infeasible and the budget runs out fast.
    let scenario = Scenario::from_json_str(
        r#"{"model": {"zoo": "mobilenetv2"},
            "board": {"custom": {"name": "tiny", "dsps": 1, "bram_mib": 0.1,
                                 "bandwidth_gbps": 0.5}},
            "action": {"sample": {"count": 100}}}"#,
    )
    .unwrap();
    match session.run(&scenario) {
        Err(Error::Explore(mccm::dse::ExploreError::AttemptsExhausted { .. })) => {}
        other => panic!("expected AttemptsExhausted, got {other:?}"),
    }
}
