//! Scenario API integration: JSON round-trips (property-based and golden
//! files), malformed-input error messages, and the session cache's
//! no-rebuild guarantee.

use proptest::prelude::*;

use mccm::arch::templates::Architecture;
use mccm::arch::Schedule;
use mccm::cnn::synthetic::SyntheticConfig;
use mccm::cnn::zoo;
use mccm::core::Metric;
use mccm::fpga::{FpgaBoard, MiB, Precision};
use mccm::json::Json;
use mccm::scenario::{Action, BoardSpec, CeOverride, DesignSpec, ModelSpec, Scenario};
use mccm::session::{Outcome, Session};
use mccm::Error;

fn scenario_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios")
}

fn read_scenario(name: &str) -> String {
    let path = scenario_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn any_model() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        (0usize..zoo::names().len()).prop_map(|i| ModelSpec::Zoo(zoo::names()[i].into())),
        (0u64..1000, 2usize..24, 1u32..6, 0u32..101, 0u32..101).prop_map(
            |(seed, conv_layers, size_quarters, res, dw)| ModelSpec::Synthetic {
                seed,
                config: SyntheticConfig {
                    conv_layers,
                    input_size: 16 * size_quarters,
                    base_channels: 8,
                    residual_prob: f64::from(res) / 100.0,
                    depthwise_prob: f64::from(dw) / 100.0,
                },
            }
        ),
    ]
}

fn any_board() -> impl Strategy<Value = BoardSpec> {
    prop_oneof![
        (0usize..FpgaBoard::names().len())
            .prop_map(|i| BoardSpec::Builtin(FpgaBoard::names()[i].into())),
        (64u32..4096, 1u32..64, 1u32..64, 1u32..8).prop_map(|(dsps, bram_q, bw_h, clk)| {
            BoardSpec::Custom(
                FpgaBoard::new(
                    "prop-board",
                    dsps,
                    MiB(f64::from(bram_q) / 4.0),
                    f64::from(bw_h) / 2.0,
                )
                .with_clock_mhz(f64::from(clk) * 50.0),
            )
        }),
    ]
}

fn metric_subset(mask: u32) -> Vec<Metric> {
    let picked: Vec<Metric> = Metric::WITH_ENERGY
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, m)| m)
        .collect();
    if picked.is_empty() {
        vec![Metric::Latency]
    } else {
        picked
    }
}

fn any_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..3, 1usize..12).prop_map(|(arch, ces)| Action::Evaluate {
            design: DesignSpec::Template {
                architecture: Architecture::ALL[arch],
                ces
            },
        }),
        Just(Action::Evaluate {
            design: DesignSpec::Notation("{L1-L4: CE1-CE4, L5-Last: CE5}".into()),
        }),
        (1usize..6, 0usize..12).prop_map(|(min, extra)| Action::Sweep {
            min_ces: min,
            max_ces: min + extra,
        }),
        (1usize..5000, 1u32..32).prop_map(|(count, mask)| Action::Sample {
            count,
            metrics: metric_subset(mask),
        }),
        (
            (1u64..100_000, 4usize..64, 1usize..8),
            (1usize..16, 0u32..101, 1u32..32, 1usize..5)
        )
            .prop_map(
                |((budget, population, islands), (interval, prob, mask, max_fuse_depth))| {
                    Action::Optimize {
                        metrics: metric_subset(mask),
                        budget,
                        population,
                        islands,
                        migration_interval: interval,
                        migrants: 2,
                        crossover_prob: f64::from(prob) / 100.0,
                        max_fuse_depth,
                    }
                }
            ),
    ]
}

/// Maps a small selector to an optional schedule so scenarios cover
/// "unset", layer-by-layer, and a spread of depth-first fuse depths.
fn schedule_pick(sel: usize) -> Option<Schedule> {
    match sel {
        0 | 1 => None,
        2 => Some(Schedule::LayerByLayer),
        n => Some(Schedule::DepthFirst { fuse_depth: n - 2 }),
    }
}

fn any_scenario() -> impl Strategy<Value = Scenario> {
    (
        any_model(),
        any_board(),
        any_action(),
        (1usize..64, 0u64..1_000_000, 0usize..16, 0usize..2),
        (0usize..8, prop::collection::vec(0usize..8, 0..4)),
    )
        .prop_map(
            |(model, board, action, (batch, seed, workers, precision), (sched, ce_scheds))| {
                let mut s = Scenario::new(model, board, action);
                s.batch = batch;
                s.seed = seed;
                s.workers = workers;
                s.precision = if precision == 0 {
                    Precision::INT8
                } else {
                    Precision::INT16
                };
                // Schedule overrides are evaluate-only; attaching them to
                // other actions would make the scenario invalid by
                // construction rather than by serialization.
                if matches!(s.action, Action::Evaluate { .. }) {
                    s.schedule = schedule_pick(sched);
                    s.ces = ce_scheds
                        .into_iter()
                        .map(|sel| CeOverride {
                            schedule: schedule_pick(sel),
                        })
                        .collect();
                }
                s
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `Scenario -> JSON text -> Scenario` is the identity: nothing in a
    /// scenario is lost, reordered, or renormalized by serialization.
    #[test]
    fn scenario_json_round_trips(scenario in any_scenario()) {
        let text = scenario.to_json_string();
        let back = Scenario::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(&back, &scenario);
        // And the canonical text itself is a fixed point.
        prop_assert_eq!(back.to_json_string(), text);
    }
}

#[test]
fn golden_files_cover_all_four_actions_and_round_trip() {
    let cases = [
        ("golden_evaluate.json", "evaluate"),
        ("golden_sweep.json", "sweep"),
        ("golden_sample.json", "sample"),
        ("golden_optimize.json", "optimize"),
    ];
    for (file, action) in cases {
        let text = read_scenario(file);
        let scenario = Scenario::from_json_str(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(scenario.action.name(), action, "{file}");
        let back = Scenario::from_json_str(&scenario.to_json_string()).unwrap();
        assert_eq!(back, scenario, "{file}");
    }
}

#[test]
fn golden_scenarios_execute_through_one_session() {
    let mut session = Session::new();
    for file in [
        "golden_evaluate.json",
        "golden_sweep.json",
        "golden_sample.json",
        "golden_optimize.json",
    ] {
        let scenario = Scenario::from_json_str(&read_scenario(file)).unwrap();
        let outcome = session
            .run(&scenario)
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(outcome.action(), scenario.action.name(), "{file}");
        // The outcome JSON is parseable and self-describing.
        let json = Json::parse(&outcome.to_json_string()).unwrap();
        assert_eq!(
            json.get("action").and_then(Json::as_str),
            Some(scenario.action.name())
        );
    }
    // Four distinct contexts → no hits; sample and optimize share
    // (mobilenetv2, zc706, int8, batch 1) → one hit.
    assert_eq!(session.stats().misses, 3);
    assert_eq!(session.stats().hits, 1);
}

#[test]
fn malformed_scenarios_fail_with_named_fields() {
    let cases = [
        ("malformed_unknown_model.json", "model.zoo"),
        ("malformed_unknown_field.json", "action.sample.sample_count"),
        ("malformed_syntax.json", "JSON parse error"),
    ];
    for (file, needle) in cases {
        let err = Scenario::from_json_str(&read_scenario(file))
            .expect_err(file)
            .to_string();
        assert!(
            err.contains(needle),
            "{file}: `{err}` should contain `{needle}`"
        );
    }
}

#[test]
fn malformed_inline_inputs_name_the_problem() {
    let cases = [
        (
            r#"{"board": {"builtin": "zc706"}, "action": {"sweep": {}}}"#,
            "model",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu9000"},
                "action": {"sweep": {}}}"#,
            "vcu9000",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "precision": "fp64", "action": {"sweep": {}}}"#,
            "precision",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "action": {"sample": {"count": 0}}}"#,
            "action.sample.count",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "action": {"sample": {"count": 5, "metrics": ["speed"]}}}"#,
            "unknown metric `speed`",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "action": {"sweep": {"min_ces": 5, "max_ces": 2}}}"#,
            "min_ces",
        ),
        (
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "zc706"},
                "batch": -1, "action": {"sweep": {}}}"#,
            "batch",
        ),
    ];
    for (text, needle) in cases {
        let err = Scenario::from_json_str(text).expect_err(text).to_string();
        assert!(err.contains(needle), "`{err}` should contain `{needle}`");
    }
}

#[test]
fn warmed_session_reevaluates_without_rebuilding_the_context() {
    // The acceptance bar: a warmed Session re-evaluating the same
    // (model, board) pair does no builder reconstruction — asserted via
    // the cache-hit counter and the builder's context token.
    let mut session = Session::new();
    let scenario = Scenario::from_json_str(
        r#"{"model": {"zoo": "mobilenetv2"}, "board": {"builtin": "zc706"},
            "action": {"evaluate": {"template": "segmentedrr", "ces": 4}}}"#,
    )
    .unwrap();
    let first = session.run(&scenario).unwrap();
    assert_eq!(
        (session.stats().hits, session.stats().misses),
        (0, 1),
        "first run constructs the context"
    );
    let token = session
        .cached_context_token(&scenario)
        .expect("context cached");
    for round in 1..=5u64 {
        let outcome = session.run(&scenario).unwrap();
        assert_eq!(
            session.stats().hits,
            round,
            "round {round} must be a cache hit"
        );
        assert_eq!(
            session.stats().misses,
            1,
            "no context is ever reconstructed"
        );
        assert_eq!(
            session.cached_context_token(&scenario),
            Some(token),
            "the same build context keeps serving"
        );
        assert_eq!(outcome, first, "warm results are identical to cold ones");
    }
    // A different action on the same (model, board, precision, batch)
    // context is still a hit.
    let sample = Scenario::from_json_str(
        r#"{"model": {"zoo": "mobilenetv2"}, "board": {"builtin": "zc706"},
            "action": {"sample": {"count": 10}}}"#,
    )
    .unwrap();
    let Outcome::Front(front) = session.run(&sample).unwrap() else {
        panic!()
    };
    assert!(!front.front.is_empty());
    assert_eq!(session.stats().misses, 1);
    assert_eq!(session.stats().hits, 6);
}

#[test]
fn session_errors_converge_into_mccm_error() {
    let mut session = Session::new();
    // Attempt-exhaustion from dse surfaces as Error::Explore: a 1-DSP
    // board hosts no multi-CE design, so every sampling attempt is
    // infeasible and the budget runs out fast.
    let scenario = Scenario::from_json_str(
        r#"{"model": {"zoo": "mobilenetv2"},
            "board": {"custom": {"name": "tiny", "dsps": 1, "bram_mib": 0.1,
                                 "bandwidth_gbps": 0.5}},
            "action": {"sample": {"count": 100}}}"#,
    )
    .unwrap();
    match session.run(&scenario) {
        Err(Error::Explore(mccm::dse::ExploreError::AttemptsExhausted { .. })) => {}
        other => panic!("expected AttemptsExhausted, got {other:?}"),
    }
}
