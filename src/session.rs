//! The execution engine of the scenario API: a [`Session`] runs
//! [`Scenario`]s against an LRU cache of warmed builder contexts, so
//! repeated requests for the same (model, board, precision, batch) pair
//! skip all sweep-invariant build work — CNN reconstruction, the
//! candidate factor table, and the memoized parallelism searches the
//! builder accumulates (PR 3's shared build context).
//!
//! Every action returns one typed [`Outcome`] that serializes to
//! deterministic JSON — the contract an HTTP serving layer, batch runner,
//! or calibration harness programs against.
//!
//! # Examples
//!
//! ```
//! use mccm::scenario::{Action, BoardSpec, DesignSpec, ModelSpec, Scenario};
//! use mccm::session::Session;
//!
//! let mut session = Session::new();
//! let scenario = Scenario::new(
//!     ModelSpec::Zoo("mobilenetv2".into()),
//!     BoardSpec::Builtin("zc706".into()),
//!     Action::Evaluate {
//!         design: DesignSpec::Notation("{L1-Last: CE1-CE4}".into()),
//!     },
//! );
//! let first = session.run(&scenario).unwrap();
//! let second = session.run(&scenario).unwrap();
//! // The second run hit the warmed context and produced identical JSON.
//! assert_eq!(session.stats().hits, 1);
//! assert_eq!(first.to_json_string(), second.to_json_string());
//! ```

use crate::calib::{Correction, CALIBRATED_METRICS};
use crate::core::{EnergyEstimate, EnergyModel, EvalSummary, Evaluation, Metric};
use crate::dse::{
    hypervolume, par_pareto_indices, select_all_metrics, union_bounds, BaselinePoint, CacheStats,
    CancelToken, Explorer, GuidedFront, SelectionCell, PAPER_TIE_FRAC,
};
use crate::error::Error;
use crate::json::Json;
use crate::scenario::{Action, Scenario};

/// Cache accounting of a [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Requests served from a warmed context (no builder reconstruction).
    pub hits: u64,
    /// Requests that had to construct a fresh context.
    pub misses: u64,
    /// Contexts dropped to respect the capacity bound.
    pub evictions: u64,
}

struct CacheEntry {
    key: String,
    explorer: Explorer,
}

/// Executes scenarios against an LRU cache of warmed builder contexts.
///
/// The cache key is the scenario's `(model, board, precision, batch)`
/// quadruple; entries hold an [`Explorer`] whose
/// [`MultipleCeBuilder`](crate::arch::MultipleCeBuilder) keeps its shared
/// build context (and parallelism memo) alive between requests. Capacity
/// is bounded ([`Session::with_capacity`]); the least recently used
/// context is evicted first.
pub struct Session {
    capacity: usize,
    entries: Vec<CacheEntry>,
    stats: SessionStats,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Default context capacity: enough for the full zoo × one board.
    pub const DEFAULT_CAPACITY: usize = 8;

    /// A session with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A session holding at most `capacity` warmed contexts.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity >= 1,
            "session cache needs capacity for at least one context"
        );
        Self {
            capacity,
            entries: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// Cache accounting so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Number of warmed contexts currently cached.
    pub fn cached_contexts(&self) -> usize {
        self.entries.len()
    }

    /// The build-context token
    /// ([`MultipleCeBuilder::context_token`](crate::arch::MultipleCeBuilder::context_token))
    /// of the cached context this scenario would use, without touching
    /// LRU order — `None` when the context is not cached. Tests assert
    /// warm reuse through this hook.
    pub fn cached_context_token(&self, scenario: &Scenario) -> Option<usize> {
        let key = cache_key(scenario);
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.explorer.builder().context_token())
    }

    /// Runs one scenario: resolves (or reuses) its context, executes the
    /// action, and returns the typed outcome.
    ///
    /// # Errors
    ///
    /// Any crate error, converged into [`enum@Error`]: unknown names,
    /// infeasible designs, exhausted sampling budgets, degenerate
    /// optimizer configs.
    pub fn run(&mut self, scenario: &Scenario) -> Result<Outcome, Error> {
        self.run_cancellable(scenario, &CancelToken::new())
            .map(|(outcome, _degraded)| outcome)
    }

    /// [`Self::run`] with a cooperative [`CancelToken`] threaded into the
    /// long-running actions (sweep shards, sampler attempts, optimizer
    /// generations). Returns the outcome plus a `degraded` flag: `true`
    /// means the token fired mid-run and the outcome holds the honest
    /// partial result gathered so far (a shorter sweep, a smaller front,
    /// fewer attempts) rather than an error.
    ///
    /// An un-fired token takes exactly the [`Self::run`] code path, so
    /// outcomes stay byte-identical to a token-less run — the serving
    /// layer relies on this to keep warm responses deterministic.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`]; cancellation itself is never an error.
    pub fn run_cancellable(
        &mut self,
        scenario: &Scenario,
        cancel: &CancelToken,
    ) -> Result<(Outcome, bool), Error> {
        let explorer = self.context_for(scenario)?;
        let workers = scenario.workers;
        match &scenario.action {
            Action::Evaluate { design } => {
                let mut spec = design.instantiate(explorer.model())?;
                apply_schedule_overrides(&mut spec, scenario)?;
                let point = explorer.evaluate(&spec)?;
                let total_macs = point.eval.total_macs;
                let energy = EnergyModel::default();
                let estimate = energy.estimate(&point.eval, total_macs);
                let gops_per_w = energy.efficiency_gops_per_w(&point.eval, total_macs);
                // A single evaluation is microseconds of work — not worth
                // a cancellation checkpoint, never degraded.
                Ok((
                    Outcome::Evaluation(Box::new(EvaluationOutcome {
                        board: explorer.builder().board().to_string(),
                        precision: scenario
                            .precision
                            .name()
                            .map(str::to_string)
                            .unwrap_or_else(|| format!("{:?}", scenario.precision)),
                        batch: scenario.batch,
                        energy: estimate,
                        gops_per_w,
                        eval: point.eval,
                    })),
                    false,
                ))
            }
            Action::Sweep { min_ces, max_ces } => {
                let (points, cancelled) = explorer.par_sweep_baselines_cancellable(
                    *min_ces..=*max_ces,
                    workers,
                    cancel,
                )?;
                let selection = select_all_metrics(&points, PAPER_TIE_FRAC);
                Ok((
                    Outcome::Sweep(SweepOutcome {
                        model: explorer.model().name().to_string(),
                        board: explorer.builder().board().name.clone(),
                        min_ces: *min_ces,
                        max_ces: *max_ces,
                        points,
                        selection,
                    }),
                    cancelled,
                ))
            }
            Action::Sample { count, metrics } => {
                // JSON parsing rejects empty metric lists; guard the
                // direct library path the same way instead of panicking
                // downstream.
                if metrics.is_empty() {
                    return Err(Error::scenario(
                        "action.sample.metrics",
                        "metric list must not be empty",
                    ));
                }
                let run = explorer.par_sample_custom_summaries_cancellable(
                    *count,
                    scenario.seed,
                    workers,
                    cancel,
                )?;
                let summaries: Vec<EvalSummary> =
                    run.points.into_iter().map(|p| p.summary).collect();
                let front_indices = par_pareto_indices(&summaries, metrics, workers);
                let mut front: Vec<EvalSummary> = front_indices
                    .iter()
                    .map(|&i| summaries[i].clone())
                    .collect();
                sort_front(&mut front, metrics);
                // Quality stats: the front's dominated fraction of the
                // box spanned by *everything* evaluated, plus per-metric
                // bests — deterministic for (count, seed).
                let bounds = union_bounds(&[summaries.as_slice()], metrics);
                let hv = hypervolume(&front, metrics, &bounds);
                // `evaluated` reports what was actually gathered: exactly
                // `count` on a full run, the honest partial tally when
                // the token fired mid-sample.
                let evaluated = if run.cancelled {
                    summaries.len()
                } else {
                    *count
                };
                Ok((
                    Outcome::Front(SampleOutcome {
                        model: explorer.model().name().to_string(),
                        board: explorer.builder().board().name.clone(),
                        evaluated,
                        seed: scenario.seed,
                        metrics: metrics.clone(),
                        hypervolume: hv,
                        front,
                    }),
                    run.cancelled,
                ))
            }
            Action::Optimize { .. } => {
                let config = scenario.optimizer_config().expect("optimize action");
                config.validate()?;
                let guided: GuidedFront =
                    explorer.optimize_par_cancellable(&config, workers, cancel)?;
                let cancelled = guided.cancelled;
                Ok((
                    Outcome::Optimized(OptimizeOutcome {
                        model: explorer.model().name().to_string(),
                        board: explorer.builder().board().name.clone(),
                        seed: scenario.seed,
                        budget: config.budget,
                        evaluations: guided.evaluations,
                        feasible: guided.feasible,
                        cache: guided.cache,
                        metrics: guided.metrics.clone(),
                        front: guided.points.into_iter().map(|p| p.summary).collect(),
                    }),
                    cancelled,
                ))
            }
            Action::Calibrate {
                metrics: action_metrics,
                top_k,
                store,
                ..
            } => {
                let config = scenario.optimizer_config().expect("calibrate action");
                config.validate()?;
                let guided: GuidedFront =
                    explorer.optimize_par_cancellable(&config, workers, cancel)?;
                let mut degraded = guided.cancelled;
                let front: Vec<EvalSummary> =
                    guided.points.iter().map(|p| p.summary.clone()).collect();
                // Promotion is a pure function of the front, so the
                // promoted set — and with it the store's eventual bytes —
                // is identical across runs and worker counts.
                let promoted_indices = crate::calib::promote_top_k(&front, &guided.metrics, *top_k);
                let model_name = explorer.model().name().to_string();
                let board_name = explorer.builder().board().name.clone();
                let precision = scenario
                    .precision
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("{:?}", scenario.precision));
                let sim_config = crate::sim::SimConfig::default();
                let mut fresh = crate::calib::CalibStore::new();
                let mut promoted = Vec::new();
                for &front_index in &promoted_indices {
                    if cancel.is_cancelled() {
                        degraded = true;
                        break;
                    }
                    let spec = guided.points[front_index]
                        .design
                        .to_spec(explorer.model())?;
                    let acc = explorer.builder().build(&spec)?;
                    let eval = crate::core::CostModel::evaluate(&acc);
                    let Some(sim) = crate::calib::simulate(&acc, &eval, sim_config, cancel) else {
                        // Deadline fired mid-simulation: keep the pairs
                        // already banked, drop the half-measured design.
                        degraded = true;
                        break;
                    };
                    let pairs = crate::calib::metric_pairs(&eval, &sim);
                    fresh.record(
                        &board_name,
                        &precision,
                        &model_name,
                        scenario.batch,
                        &eval.notation,
                        &pairs,
                    );
                    promoted.push(PromotedMember {
                        front_index,
                        notation: eval.notation.clone(),
                        pairs,
                    });
                }
                // Corrections fit against the *merged* evidence: this
                // run's pairs plus whatever the persistent store already
                // held for this (board, precision).
                let new_pairs;
                let merged = match store {
                    Some(path) => {
                        let path = std::path::Path::new(path);
                        let mut persistent = crate::calib::CalibStore::load_or_empty(path)?;
                        new_pairs = persistent.merge(&fresh);
                        persistent.save(path)?;
                        persistent
                    }
                    None => {
                        new_pairs = fresh.pair_count();
                        fresh
                    }
                };
                let cal_metrics: Vec<Metric> = action_metrics
                    .iter()
                    .copied()
                    .filter(|m| CALIBRATED_METRICS.contains(m))
                    .collect();
                let corrections =
                    crate::calib::fit_corrections(&merged, &board_name, &precision, &cal_metrics);
                Ok((
                    Outcome::Calibrated(Box::new(CalibrateOutcome {
                        model: model_name,
                        board: board_name,
                        precision,
                        seed: scenario.seed,
                        budget: config.budget,
                        evaluations: guided.evaluations,
                        feasible: guided.feasible,
                        metrics: guided.metrics.clone(),
                        top_k: *top_k,
                        front,
                        promoted,
                        corrections,
                        store_path: store.clone(),
                        store_pairs: merged.pair_count(),
                        new_pairs,
                    })),
                    degraded,
                ))
            }
        }
    }

    /// Drops every warmed context, counting each as an eviction. The
    /// fault-injection harness uses this to model cold-cache restarts;
    /// it is also the recovery step after a request panics while a
    /// context is warm (the context may hold arbitrary partial state).
    pub fn evict_all(&mut self) {
        self.stats.evictions += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Looks up (or constructs) the warmed context for a scenario and
    /// returns a borrow of its explorer, updating LRU order and stats.
    fn context_for(&mut self, scenario: &Scenario) -> Result<&Explorer, Error> {
        let key = cache_key(scenario);
        if let Some(i) = self.entries.iter().position(|e| e.key == key) {
            self.stats.hits += 1;
            let entry = self.entries.remove(i);
            self.entries.insert(0, entry);
        } else {
            self.stats.misses += 1;
            let model = scenario.model.build()?;
            let board = scenario.board.build()?;
            let builder = crate::arch::MultipleCeBuilder::new(&model, &board)
                .with_precision(scenario.precision);
            let explorer = Explorer::from_parts(model, builder);
            self.entries.insert(0, CacheEntry { key, explorer });
            if self.entries.len() > self.capacity {
                self.entries.pop();
                self.stats.evictions += 1;
            }
        }
        Ok(&self.entries[0].explorer)
    }
}

/// Rewrites the instantiated design's per-assignment schedules from the
/// scenario's `schedule` (design-wide default) and `ces` (per-CE)
/// overrides. The default touches single-CE assignments only — a
/// depth-first schedule is meaningless on a pipelined block — while an
/// explicit `ces[i].schedule` is applied verbatim and left to the
/// architecture validator to reject if the block cannot carry it.
fn apply_schedule_overrides(
    spec: &mut crate::arch::AcceleratorSpec,
    scenario: &Scenario,
) -> Result<(), Error> {
    use crate::arch::BlockSpec;
    if let Some(default) = scenario.schedule {
        for a in &mut spec.assignments {
            if matches!(a.block, BlockSpec::Single(_)) {
                a.schedule = default;
            }
        }
    }
    for (i, over) in scenario.ces.iter().enumerate() {
        let Some(schedule) = over.schedule else {
            continue;
        };
        let count = spec.assignments.len();
        let Some(a) = spec.assignments.get_mut(i) else {
            return Err(Error::scenario(
                format!("ces.{i}"),
                format!("design has only {count} CE assignments"),
            ));
        };
        a.schedule = schedule;
    }
    Ok(())
}

/// The cache key: the API contract's (model, board, precision, batch)
/// quadruple. `batch` only affects outcome reporting, not the builder —
/// it is in the key so two scenarios with equal keys are guaranteed to
/// produce identical outcomes, at the cost of one context per batch
/// size when a client varies it.
fn cache_key(scenario: &Scenario) -> String {
    format!(
        "{}|{}|w{}a{}|b{}",
        scenario.model.cache_token(),
        scenario.board.cache_token(),
        scenario.precision.weight_bytes,
        scenario.precision.activation_bytes,
        scenario.batch
    )
}

/// Deterministic front presentation: best-first on the first metric,
/// notation as the tie-break (the same convention [`GuidedFront`] uses).
fn sort_front(front: &mut [EvalSummary], metrics: &[Metric]) {
    let primary = metrics[0];
    front.sort_by(|a, b| {
        let (va, vb) = (primary.value(a), primary.value(b));
        let ord = if primary.higher_is_better() {
            vb.total_cmp(&va)
        } else {
            va.total_cmp(&vb)
        };
        ord.then_with(|| a.notation.cmp(&b.notation))
    });
}

/// Result of an evaluate action.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationOutcome {
    /// Full board description (`name (dsps, bram, bw, clock)`).
    pub board: String,
    /// Precision name (`int8` / `int16`).
    pub precision: String,
    /// Batch size the batch-latency figures use.
    pub batch: usize,
    /// Energy estimate under the default model.
    pub energy: EnergyEstimate,
    /// Steady-state energy efficiency.
    pub gops_per_w: f64,
    /// The full evaluation (metrics + per-segment/engine/layer reports).
    pub eval: Evaluation,
}

/// Result of a sweep action.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// CNN name.
    pub model: String,
    /// Board name.
    pub board: String,
    /// Swept CE range (inclusive).
    pub min_ces: usize,
    /// Swept CE range (inclusive).
    pub max_ces: usize,
    /// Every feasible (architecture, CE count) instance.
    pub points: Vec<BaselinePoint>,
    /// Per-metric winners under the paper's 10% tie rule.
    pub selection: Vec<SelectionCell>,
}

/// Result of a sample action.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleOutcome {
    /// CNN name.
    pub model: String,
    /// Board name.
    pub board: String,
    /// Feasible designs evaluated.
    pub evaluated: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Front objectives.
    pub metrics: Vec<Metric>,
    /// Normalized hypervolume of the front against the bounds of
    /// everything evaluated.
    pub hypervolume: f64,
    /// The non-dominated designs, best-first on the first metric.
    pub front: Vec<EvalSummary>,
}

/// Result of an optimize action.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeOutcome {
    /// CNN name.
    pub model: String,
    /// Board name.
    pub board: String,
    /// Search seed.
    pub seed: u64,
    /// Configured evaluation-attempt budget.
    pub budget: u64,
    /// Attempts actually spent.
    pub evaluations: u64,
    /// Feasible designs among them.
    pub feasible: u64,
    /// Segment-cache and design-memo counters of the delta-evaluation
    /// path, summed across islands.
    pub cache: CacheStats,
    /// Objectives.
    pub metrics: Vec<Metric>,
    /// The final merged front, in the optimizer's deterministic order.
    pub front: Vec<EvalSummary>,
}

/// One Pareto-front member promoted to a simulator run during a
/// calibrate action.
#[derive(Debug, Clone, PartialEq)]
pub struct PromotedMember {
    /// Index into the calibrate outcome's `front`.
    pub front_index: usize,
    /// The design's accelerator notation.
    pub notation: String,
    /// `(metric, analytical, simulated)` measurement triples.
    pub pairs: Vec<(Metric, f64, f64)>,
}

/// Result of a calibrate action: an optimized front plus the simulator
/// evidence and fitted corrections layered on top of it.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrateOutcome {
    /// CNN name.
    pub model: String,
    /// Board name.
    pub board: String,
    /// Precision token (store key component).
    pub precision: String,
    /// Search seed.
    pub seed: u64,
    /// Configured evaluation-attempt budget.
    pub budget: u64,
    /// Attempts actually spent.
    pub evaluations: u64,
    /// Feasible designs among them.
    pub feasible: u64,
    /// Objectives.
    pub metrics: Vec<Metric>,
    /// Requested promotion width.
    pub top_k: usize,
    /// The final merged front, in the optimizer's deterministic order.
    pub front: Vec<EvalSummary>,
    /// Front members that earned simulator runs, in promotion order.
    pub promoted: Vec<PromotedMember>,
    /// Fitted corrections for the calibratable objectives, in the
    /// action's metric order.
    pub corrections: Vec<(Metric, Correction)>,
    /// Persistent store path, if one was configured.
    pub store_path: Option<String>,
    /// Pairs in the store the corrections were fitted against.
    pub store_pairs: usize,
    /// Pairs this run added to that store.
    pub new_pairs: usize,
}

/// The typed result of [`Session::run`]: one variant per action, each
/// serializing to deterministic JSON ([`Outcome::to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// From [`Action::Evaluate`].
    Evaluation(Box<EvaluationOutcome>),
    /// From [`Action::Sweep`].
    Sweep(SweepOutcome),
    /// From [`Action::Sample`].
    Front(SampleOutcome),
    /// From [`Action::Optimize`].
    Optimized(OptimizeOutcome),
    /// From [`Action::Calibrate`].
    Calibrated(Box<CalibrateOutcome>),
}

impl Outcome {
    /// The action key this outcome came from (matches
    /// [`Action::name`](crate::scenario::Action::name)).
    pub fn action(&self) -> &'static str {
        match self {
            Self::Evaluation(_) => "evaluate",
            Self::Sweep(_) => "sweep",
            Self::Front(_) => "sample",
            Self::Optimized(_) => "optimize",
            Self::Calibrated(_) => "calibrate",
        }
    }

    /// Deterministic JSON rendering: no wall-clock times, fixed key
    /// order, shortest-round-trip numbers — two runs of the same scenario
    /// serialize byte-identically.
    pub fn to_json(&self) -> Json {
        match self {
            Self::Evaluation(o) => evaluation_json(o),
            Self::Sweep(o) => sweep_json(o),
            Self::Front(o) => sample_json(o),
            Self::Optimized(o) => optimize_json(o),
            Self::Calibrated(o) => calibrate_json(o),
        }
    }

    /// Pretty-printed [`Self::to_json`] (the CLI's `run` output).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

fn metric_names(metrics: &[Metric]) -> Json {
    Json::Array(
        metrics
            .iter()
            .map(|m| Json::from(m.name().to_ascii_lowercase()))
            .collect(),
    )
}

fn summary_json(s: &EvalSummary) -> Json {
    let mut row = Json::object();
    row.push("notation", s.notation.as_str());
    row.push("ce_count", s.ce_count);
    row.push("latency_ms", s.latency_ms());
    row.push("throughput_fps", s.throughput_fps);
    row.push("buffer_req_mib", s.buffer_mib());
    row.push("offchip_mib", s.offchip_mib());
    row.push(
        "energy_mj",
        EnergyModel::default().estimate_summary(s).total_mj(),
    );
    row
}

fn evaluation_json(o: &EvaluationOutcome) -> Json {
    let e = &o.eval;
    let mut root = Json::object();
    root.push("action", "evaluate");
    root.push("model", e.model_name.as_str());
    root.push("board", o.board.as_str());
    root.push("precision", o.precision.as_str());
    root.push("notation", e.notation.as_str());
    root.push("ce_count", e.ce_count);
    let mut metrics = Json::object();
    metrics.push("latency_ms", e.latency_ms());
    metrics.push("throughput_fps", e.throughput_fps);
    metrics.push("buffer_req_mib", e.buffer_mib());
    metrics.push("buffer_alloc_mib", e.buffer_alloc_bytes.mib());
    metrics.push("offchip_mib", e.offchip_mib());
    metrics.push("offchip_weight_share", e.weight_traffic_share());
    metrics.push("memory_stall_fraction", e.memory_stall_fraction);
    metrics.push("total_macs", e.total_macs);
    root.push("metrics", metrics);
    let mut energy = Json::object();
    energy.push("total_mj", o.energy.total_mj());
    energy.push("dram_share", o.energy.dram_share());
    energy.push("gops_per_w", o.gops_per_w);
    root.push("energy", energy);
    let mut batch = Json::object();
    batch.push("size", o.batch);
    batch.push("total_ms", e.batch_latency_s(o.batch) * 1e3);
    batch.push("amortized_ms", e.amortized_latency_s(o.batch) * 1e3);
    root.push("batch", batch);
    let segments: Vec<Json> = e
        .segments
        .iter()
        .map(|s| {
            let mut seg = Json::object();
            seg.push("index", s.index);
            seg.push("first_layer", s.first + 1);
            seg.push("last_layer", s.last + 1);
            seg.push("time_ms", s.time_s * 1e3);
            seg.push("utilization", s.utilization);
            seg.push("traffic_mib", s.traffic().mib());
            seg.push("memory_bound", s.memory_s > s.compute_s);
            seg
        })
        .collect();
    root.push("segments", segments);
    let engines: Vec<Json> = e
        .ces
        .iter()
        .map(|c| {
            let mut ce = Json::object();
            ce.push("ce", c.ce + 1);
            ce.push("pes", c.pes);
            ce.push("busy_ms", c.busy_s * 1e3);
            ce.push("utilization", c.utilization);
            ce
        })
        .collect();
    root.push("engines", engines);
    root
}

fn sweep_json(o: &SweepOutcome) -> Json {
    let mut root = Json::object();
    root.push("action", "sweep");
    root.push("model", o.model.as_str());
    root.push("board", o.board.as_str());
    root.push("min_ces", o.min_ces);
    root.push("max_ces", o.max_ces);
    let points: Vec<Json> = o
        .points
        .iter()
        .map(|p| {
            let mut row = Json::object();
            row.push("architecture", p.architecture.name().to_ascii_lowercase());
            row.push("ces", p.ces);
            row.push("latency_ms", p.eval.latency_ms());
            row.push("throughput_fps", p.eval.throughput_fps);
            row.push("buffer_req_mib", p.eval.buffer_mib());
            row.push("offchip_mib", p.eval.offchip_mib());
            row
        })
        .collect();
    root.push("points", points);
    let selection: Vec<Json> = o
        .selection
        .iter()
        .map(|cell| {
            let mut row = Json::object();
            row.push("metric", cell.metric.name().to_ascii_lowercase());
            let winners: Vec<Json> = cell
                .winners
                .iter()
                .map(|(arch, ces, value)| {
                    let mut w = Json::object();
                    w.push("architecture", arch.name().to_ascii_lowercase());
                    w.push("ces", *ces);
                    w.push("value", *value);
                    w
                })
                .collect();
            row.push("winners", winners);
            row
        })
        .collect();
    root.push("selection", selection);
    root
}

fn sample_json(o: &SampleOutcome) -> Json {
    let mut root = Json::object();
    root.push("action", "sample");
    root.push("model", o.model.as_str());
    root.push("board", o.board.as_str());
    root.push("evaluated", o.evaluated);
    root.push("seed", o.seed);
    root.push("metrics", metric_names(&o.metrics));
    root.push("hypervolume", o.hypervolume);
    root.push("front_size", o.front.len());
    root.push(
        "front",
        o.front.iter().map(summary_json).collect::<Vec<_>>(),
    );
    root
}

fn optimize_json(o: &OptimizeOutcome) -> Json {
    let mut root = Json::object();
    root.push("action", "optimize");
    root.push("model", o.model.as_str());
    root.push("board", o.board.as_str());
    root.push("seed", o.seed);
    root.push("budget", o.budget);
    root.push("evaluations", o.evaluations);
    root.push("feasible", o.feasible);
    let mut cache = Json::object();
    cache.push("seg_hits", o.cache.seg_hits);
    cache.push("seg_misses", o.cache.seg_misses);
    cache.push("seg_evictions", o.cache.seg_evictions);
    cache.push("delta_recombines", o.cache.delta_recombines);
    cache.push("full_builds", o.cache.full_builds);
    cache.push("memo_hits", o.cache.memo_hits);
    cache.push("memo_evictions", o.cache.memo_evictions);
    root.push("cache", cache);
    root.push("metrics", metric_names(&o.metrics));
    let mut best = Json::object();
    for &m in &o.metrics {
        let value = o
            .front
            .iter()
            .map(|s| m.value(s))
            .reduce(|a, b| if m.better(b, a) { b } else { a });
        if let Some(v) = value {
            best.push(&m.name().to_ascii_lowercase(), v);
        }
    }
    root.push("best", best);
    root.push("front_size", o.front.len());
    root.push(
        "front",
        o.front.iter().map(summary_json).collect::<Vec<_>>(),
    );
    root
}

/// The analytical quantity a fitted correction applies to, per front
/// member. Must match the `estimated` side of the calibration pairs:
/// for buffers that is the builder's granted allocation
/// (`buffer_alloc_bytes`), not the unclamped requirement the plain
/// `Metric::value` accessor returns.
fn calibration_input(s: &EvalSummary, metric: Metric) -> f64 {
    match metric {
        Metric::OnChipBuffers => s.buffer_alloc_bytes.as_f64(),
        m => m.value(s),
    }
}

/// Display key and unit scale of each calibrated metric's envelope
/// entry, chosen to sit next to the raw `summary_json` fields.
fn calibration_display(metric: Metric) -> (&'static str, f64) {
    match metric {
        Metric::Latency => ("latency_ms", 1e3),
        Metric::Throughput => ("throughput_fps", 1.0),
        Metric::OnChipBuffers => ("buffer_impl_mib", 1.0 / 1_048_576.0),
        Metric::OffChipAccesses => ("offchip_mib", 1.0 / 1_048_576.0),
        Metric::Energy => ("energy_mj", 1e3),
    }
}

fn correction_json(metric: Metric, c: &Correction) -> Json {
    let mut j = Json::object();
    j.push("metric", crate::calib::metric_token(metric));
    j.push("pairs", c.pairs);
    j.push("slope", c.slope);
    j.push("intercept", c.intercept);
    j.push("mean_abs_residual", c.mean_abs_residual);
    j.push("max_abs_residual", c.max_abs_residual);
    j.push("raw_mean_abs_error", c.raw_mean_abs_error);
    j.push("improvement", c.improvement());
    j
}

fn calibrate_json(o: &CalibrateOutcome) -> Json {
    let mut root = Json::object();
    root.push("action", "calibrate");
    root.push("model", o.model.as_str());
    root.push("board", o.board.as_str());
    root.push("precision", o.precision.as_str());
    root.push("seed", o.seed);
    root.push("budget", o.budget);
    root.push("evaluations", o.evaluations);
    root.push("feasible", o.feasible);
    root.push("metrics", metric_names(&o.metrics));
    root.push("top_k", o.top_k);
    root.push("front_size", o.front.len());
    let fitted: Vec<(Metric, &Correction)> = o
        .corrections
        .iter()
        .filter(|(_, c)| c.pairs > 0)
        .map(|(m, c)| (*m, c))
        .collect();
    let front: Vec<Json> = o
        .front
        .iter()
        .map(|s| {
            let mut row = summary_json(s);
            if !fitted.is_empty() {
                let mut envelope = Json::object();
                for &(metric, c) in &fitted {
                    let (key, scale) = calibration_display(metric);
                    let mut entry = Json::object();
                    entry.push("value", c.apply(calibration_input(s, metric)) * scale);
                    entry.push("error_bar", c.error_bar() * scale);
                    envelope.push(key, entry);
                }
                row.push("calibration", envelope);
            }
            row
        })
        .collect();
    root.push("front", front);
    let mut calibration = Json::object();
    let mut store = Json::object();
    if let Some(path) = &o.store_path {
        store.push("path", path.as_str());
    }
    store.push("pairs", o.store_pairs);
    store.push("new_pairs", o.new_pairs);
    calibration.push("store", store);
    calibration.push(
        "corrections",
        o.corrections
            .iter()
            .map(|(m, c)| correction_json(*m, c))
            .collect::<Vec<_>>(),
    );
    let promoted: Vec<Json> = o
        .promoted
        .iter()
        .map(|p| {
            let mut j = Json::object();
            j.push("front_index", p.front_index);
            j.push("notation", p.notation.as_str());
            let measurements: Vec<Json> = p
                .pairs
                .iter()
                .map(|&(metric, analytical, simulated)| {
                    let mut m = Json::object();
                    m.push("metric", crate::calib::metric_token(metric));
                    m.push("analytical", analytical);
                    m.push("simulated", simulated);
                    m
                })
                .collect();
            j.push("measurements", measurements);
            j
        })
        .collect();
    calibration.push("promoted", promoted);
    root.push("calibration", calibration);
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{BoardSpec, DesignSpec, ModelSpec, SAMPLE_DEFAULT_METRICS};

    fn evaluate_scenario(model: &str, board: &str) -> Scenario {
        Scenario::new(
            ModelSpec::Zoo(model.into()),
            BoardSpec::Builtin(board.into()),
            Action::Evaluate {
                design: DesignSpec::Template {
                    architecture: crate::arch::templates::Architecture::Hybrid,
                    ces: 4,
                },
            },
        )
    }

    #[test]
    fn warm_context_serves_repeat_requests_without_rebuilding() {
        let mut session = Session::new();
        let scenario = evaluate_scenario("mobilenetv2", "zc706");
        assert_eq!(session.cached_context_token(&scenario), None);
        let a = session.run(&scenario).unwrap();
        let token = session
            .cached_context_token(&scenario)
            .expect("context cached");
        let warm_memo = {
            // The parallelism memo was populated by the first run.
            let entry = &session.entries[0];
            assert!(entry.explorer.builder().memo_len() > 0);
            entry.explorer.builder().memo_len()
        };
        let b = session.run(&scenario).unwrap();
        assert_eq!(session.stats().hits, 1);
        assert_eq!(session.stats().misses, 1);
        assert_eq!(
            session.cached_context_token(&scenario),
            Some(token),
            "second run must reuse the same build context"
        );
        assert_eq!(session.entries[0].explorer.builder().memo_len(), warm_memo);
        assert_eq!(a, b);
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn distinct_contexts_do_not_collide() {
        let mut session = Session::new();
        session
            .run(&evaluate_scenario("mobilenetv2", "zc706"))
            .unwrap();
        session
            .run(&evaluate_scenario("mobilenetv2", "vcu108"))
            .unwrap();
        let mut int16 = evaluate_scenario("mobilenetv2", "zc706");
        int16.precision = crate::fpga::Precision::INT16;
        session.run(&int16).unwrap();
        assert_eq!(session.stats().misses, 3);
        assert_eq!(session.stats().hits, 0);
        assert_eq!(session.cached_contexts(), 3);
    }

    #[test]
    fn lru_evicts_the_oldest_context() {
        let mut session = Session::with_capacity(2);
        let a = evaluate_scenario("mobilenetv2", "zc706");
        let b = evaluate_scenario("mobilenetv2", "vcu108");
        let c = evaluate_scenario("mobilenetv2", "vcu110");
        session.run(&a).unwrap();
        session.run(&b).unwrap();
        session.run(&a).unwrap(); // refresh a; b is now LRU
        session.run(&c).unwrap(); // evicts b
        assert_eq!(session.stats().evictions, 1);
        assert!(session.cached_context_token(&a).is_some());
        assert!(session.cached_context_token(&b).is_none());
        assert!(session.cached_context_token(&c).is_some());
    }

    #[test]
    fn sample_outcome_is_deterministic_and_sorted() {
        let mut session = Session::new();
        let scenario = Scenario::new(
            ModelSpec::Zoo("mobilenetv2".into()),
            BoardSpec::Builtin("zc706".into()),
            Action::Sample {
                count: 40,
                metrics: SAMPLE_DEFAULT_METRICS.to_vec(),
            },
        );
        let Outcome::Front(a) = session.run(&scenario).unwrap() else {
            panic!()
        };
        let Outcome::Front(b) = session.run(&scenario).unwrap() else {
            panic!()
        };
        assert_eq!(a, b);
        assert!(a.hypervolume > 0.0 && a.hypervolume <= 1.0);
        assert!(!a.front.is_empty());
        // Best-first on throughput (the first default metric).
        for pair in a.front.windows(2) {
            assert!(pair[0].throughput_fps >= pair[1].throughput_fps);
        }
    }

    #[test]
    fn every_action_round_trips_through_json_rendering() {
        let mut session = Session::new();
        let model = ModelSpec::Zoo("mobilenetv2".into());
        let board = BoardSpec::Builtin("zc706".into());
        let actions = [
            Action::Evaluate {
                design: DesignSpec::Notation("{L1-Last: CE1-CE3}".into()),
            },
            Action::Sweep {
                min_ces: 2,
                max_ces: 4,
            },
            Action::Sample {
                count: 20,
                metrics: SAMPLE_DEFAULT_METRICS.to_vec(),
            },
            Action::Optimize {
                metrics: vec![Metric::Throughput, Metric::OnChipBuffers],
                budget: 200,
                population: 8,
                islands: 2,
                migration_interval: 4,
                migrants: 2,
                crossover_prob: 0.9,
                max_fuse_depth: 2,
            },
        ];
        for action in actions {
            let scenario = Scenario::new(model.clone(), board.clone(), action);
            let outcome = session.run(&scenario).unwrap();
            let text = outcome.to_json_string();
            let parsed = Json::parse(&text).expect("outcome JSON is valid");
            assert_eq!(
                parsed.get("action").and_then(Json::as_str),
                Some(outcome.action()),
                "{text}"
            );
            assert_eq!(outcome.action(), scenario.action.name());
        }
        // All four actions share one warmed context.
        assert_eq!(session.stats().misses, 1);
        assert_eq!(session.stats().hits, 3);
    }

    #[test]
    fn empty_sample_metrics_error_instead_of_panicking() {
        // The JSON parser rejects empty metric lists; the direct library
        // path must produce the same typed error, not an index panic.
        let mut session = Session::new();
        let scenario = Scenario::new(
            crate::scenario::ModelSpec::Zoo("mobilenetv2".into()),
            crate::scenario::BoardSpec::Builtin("zc706".into()),
            Action::Sample {
                count: 5,
                metrics: vec![],
            },
        );
        match session.run(&scenario) {
            Err(Error::Scenario { field, .. }) => {
                assert_eq!(field, "action.sample.metrics");
            }
            other => panic!("expected a scenario error, got {other:?}"),
        }
    }

    #[test]
    fn schedule_overrides_rewrite_the_evaluated_design() {
        use crate::arch::Schedule;
        let mut session = Session::new();
        // A small-BRAM board where per-layer FM spills are common, so a
        // depth-first default measurably cuts off-chip traffic.
        let base = Scenario::new(
            ModelSpec::Zoo("mobilenetv2".into()),
            BoardSpec::Custom(crate::fpga::FpgaBoard::new(
                "small-bram",
                900,
                crate::fpga::MiB(0.5),
                4.0,
            )),
            Action::Evaluate {
                design: DesignSpec::Notation("{L1-L17: CE1, L18-Last: CE2}".into()),
            },
        );
        let Outcome::Evaluation(lbl) = session.run(&base).unwrap() else {
            panic!()
        };
        let mut fused = base.clone();
        fused.schedule = Some(Schedule::DepthFirst { fuse_depth: 4 });
        let Outcome::Evaluation(df) = session.run(&fused).unwrap() else {
            panic!()
        };
        assert!(
            df.eval.offchip_bytes < lbl.eval.offchip_bytes,
            "depth-first {} should beat layer-by-layer {}",
            df.eval.offchip_bytes,
            lbl.eval.offchip_bytes
        );
        // The degenerate depth is bit-identical to the unscheduled run —
        // everything except the notation, which faithfully records @df1.
        let mut degenerate = base.clone();
        degenerate.schedule = Some(Schedule::DepthFirst { fuse_depth: 1 });
        let Outcome::Evaluation(mut same) = session.run(&degenerate).unwrap() else {
            panic!()
        };
        assert!(
            same.eval.notation.contains("@df1"),
            "{}",
            same.eval.notation
        );
        same.eval.notation = lbl.eval.notation.clone();
        assert_eq!(same.eval, lbl.eval);
        // A per-CE override beats the design-wide default on its CE.
        let mut per_ce = fused.clone();
        per_ce.ces = vec![crate::scenario::CeOverride {
            schedule: Some(Schedule::LayerByLayer),
        }];
        let Outcome::Evaluation(mixed) = session.run(&per_ce).unwrap() else {
            panic!()
        };
        assert!(mixed.eval.offchip_bytes > df.eval.offchip_bytes);
        assert!(mixed.eval.offchip_bytes < lbl.eval.offchip_bytes);
        // Overrides past the design's assignment list name their path.
        let mut bad = base.clone();
        bad.ces = vec![crate::scenario::CeOverride::default(); 5];
        bad.ces[4].schedule = Some(Schedule::LayerByLayer);
        match session.run(&bad) {
            Err(Error::Scenario { field, .. }) => assert_eq!(field, "ces.4"),
            other => panic!("expected a scenario error, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_design_surfaces_as_arch_error() {
        let mut session = Session::new();
        let scenario = Scenario::new(
            ModelSpec::Zoo("mobilenetv2".into()),
            BoardSpec::Custom(crate::fpga::FpgaBoard::new(
                "tiny",
                3,
                crate::fpga::MiB(0.05),
                0.5,
            )),
            Action::Evaluate {
                design: DesignSpec::Template {
                    architecture: crate::arch::templates::Architecture::Segmented,
                    ces: 5,
                },
            },
        );
        match session.run(&scenario) {
            Err(Error::Arch(crate::arch::ArchError::Infeasible { .. })) => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }
}
