//! The `mccm` command-line front end, as a library so tests drive it
//! in-process.
//!
//! `mccm run scenario.json` is the canonical path: it parses a
//! [`Scenario`], applies `--set key=value` overrides, executes it through
//! a [`Session`], and prints the outcome's deterministic JSON. The legacy
//! subcommands (`evaluate`, `sweep`, `explore`, `optimize`) are thin
//! shims that assemble the equivalent scenario document and run it
//! through the same session machinery — with `--json` they print exactly
//! the bytes `mccm run` prints for the equivalent scenario file.
//!
//! Flag parsing is strict: unknown and duplicate flags are rejected with
//! the offending flag named (the old parser silently ignored both).

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::cnn::zoo;
use crate::error::Error;
use crate::fpga::FpgaBoard;
use crate::json::Json;
use crate::scenario::{apply_override, Scenario};
use crate::session::{Outcome, Session};

/// CLI usage text.
pub const USAGE: &str = "\
mccm — analytical cost model for multiple compute-engine CNN accelerators

USAGE:
  mccm run SCENARIO.json [--set key=value]...   execute a scenario file
  mccm run SCENARIO.json --connect HOST:PORT [--deadline-ms N] [--retries N]
                                      execute on an `mccm serve` daemon
  mccm run --batch DIR [--workers N]            execute every scenario in DIR
  mccm serve [--addr HOST:PORT] [--workers N] [--queue N]
             [--retry-after-ms N]     run the evaluation daemon
  mccm stats --connect HOST:PORT      query a daemon's request accounting
  mccm shutdown --connect HOST:PORT   drain a daemon and print final stats
  mccm models                         list available CNNs
  mccm boards                         list evaluation FPGA boards
  mccm evaluate --model M --board B (--notation S | --arch A --ces K)
                [--fuse-depth N] [--precision int8|int16] [--batch N]
                [--verbose] [--json]
  mccm validate --model M --board B (--notation S | --arch A --ces K)
                [--precision int8|int16]
  mccm sweep    --model M --board B [--min-ces N] [--max-ces N]
                [--workers N] [--json]
  mccm explore  --model M --board B [--samples N] [--seed N] [--workers N]
                [--json]
  mccm optimize --model M --board B [--budget N] [--population N] [--islands N]
                [--max-fuse-depth N] [--seed N] [--workers N]
                [--metrics latency,throughput,...] [--json]
  mccm calibrate --model M --board B [--budget N] [--population N] [--islands N]
                [--top-k N] [--store FILE] [--seed N] [--workers N]
                [--metrics latency,throughput,...] [--json]
                                      optimize, then referee the top-K front
                                      members with the simulator and fit
                                      error-bar corrections

ARCHITECTURES: segmented | segmentedrr | hybrid
METRICS:       latency | throughput | access | buffers | energy (default: all five)
SCENARIOS:     see docs/scenario_file.md for the JSON format
SERVING:       see docs/serving.md for the daemon protocol and exit codes";

/// Entry point: parses `args` (without the program name) and writes
/// command output to `out`.
///
/// # Errors
///
/// [`Error::Usage`] for CLI misuse (with the offending flag or command
/// named), any other [`enum@Error`] from scenario execution.
pub fn main_with_args(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let Some(command) = args.first() else {
        return Err(Error::Usage(format!("missing command\n{USAGE}")));
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest, out),
        "serve" => cmd_serve(rest, out),
        "stats" => cmd_stats(rest, out),
        "shutdown" => cmd_shutdown(rest, out),
        "models" => cmd_models(rest, out),
        "boards" => cmd_boards(rest, out),
        "evaluate" => cmd_evaluate(rest, out),
        "validate" => cmd_validate(rest, out),
        "sweep" => cmd_sweep(rest, out),
        "explore" => cmd_explore(rest, out),
        "optimize" => cmd_optimize(rest, out),
        "calibrate" => cmd_calibrate(rest, out),
        "help" | "--help" | "-h" => {
            emit(out, format_args!("{USAGE}\n"))?;
            Ok(())
        }
        other => Err(Error::Usage(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

fn emit(out: &mut dyn Write, args: std::fmt::Arguments<'_>) -> Result<(), Error> {
    out.write_fmt(args)
        .map_err(|e| Error::io("writing output", e))
}

/// How a flag consumes arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlagKind {
    /// `--flag value`, at most once.
    Value,
    /// `--flag value`, repeatable (`--set`).
    Repeatable,
    /// Bare `--flag`, at most once.
    Switch,
}

/// Strictly parsed flags: every `--name` must be declared in `spec`,
/// non-repeatable flags must appear at most once, and value flags must
/// have a value. Anything not starting with `--` is a positional.
struct Flags {
    command: &'static str,
    seen: Vec<(String, Option<String>)>,
    positionals: Vec<String>,
}

impl Flags {
    fn parse(
        command: &'static str,
        args: &[String],
        spec: &[(&str, FlagKind)],
    ) -> Result<Self, Error> {
        let mut seen: Vec<(String, Option<String>)> = Vec::new();
        let mut positionals = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if arg.starts_with("--") {
                let Some(&(name, kind)) = spec.iter().find(|(n, _)| n == arg) else {
                    let known: Vec<&str> = spec.iter().map(|(n, _)| *n).collect();
                    return Err(Error::Usage(format!(
                        "unknown flag `{arg}` for `mccm {command}` (expected {})",
                        known.join(", ")
                    )));
                };
                if kind != FlagKind::Repeatable && seen.iter().any(|(n, _)| n == name) {
                    return Err(Error::Usage(format!(
                        "duplicate flag `{name}` for `mccm {command}`"
                    )));
                }
                let value = match kind {
                    FlagKind::Switch => None,
                    FlagKind::Value | FlagKind::Repeatable => {
                        i += 1;
                        let Some(v) = args.get(i) else {
                            return Err(Error::Usage(format!("flag `{name}` needs a value")));
                        };
                        Some(v.clone())
                    }
                };
                seen.push((name.to_string(), value));
            } else {
                positionals.push(arg.clone());
            }
            i += 1;
        }
        Ok(Self {
            command,
            seen,
            positionals,
        })
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.seen
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn values(&self, name: &str) -> Vec<&str> {
        self.seen
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    fn switch(&self, name: &str) -> bool {
        self.seen.iter().any(|(n, _)| n == name)
    }

    fn require(&self, name: &str) -> Result<&str, Error> {
        self.value(name).ok_or_else(|| {
            Error::Usage(format!("`mccm {}` requires `{name} <value>`", self.command))
        })
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, Error> {
        match self.value(name) {
            None => Ok(None),
            Some(text) => text
                .parse()
                .map(Some)
                .map_err(|_| Error::Usage(format!("flag `{name}` expects a number, got `{text}`"))),
        }
    }

    fn no_positionals(&self) -> Result<(), Error> {
        if let Some(extra) = self.positionals.first() {
            return Err(Error::Usage(format!(
                "unexpected argument `{extra}` for `mccm {}`",
                self.command
            )));
        }
        Ok(())
    }
}

fn cmd_models(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    Flags::parse("models", args, &[])?.no_positionals()?;
    emit(
        out,
        format_args!(
            "{:<14} {:<8} {:>11} {:>12} {:>11}\n",
            "model", "abbrev", "weights (M)", "conv layers", "GMACs"
        ),
    )?;
    for name in zoo::names() {
        let m = zoo::by_name(name).expect("registry names resolve");
        emit(
            out,
            format_args!(
                "{:<14} {:<8} {:>11.1} {:>12} {:>11.2}\n",
                m.name(),
                zoo::abbreviation(m.name()),
                m.total_params() as f64 / 1e6,
                m.conv_layer_count(),
                m.conv_macs() as f64 / 1e9
            ),
        )?;
    }
    Ok(())
}

fn cmd_boards(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    Flags::parse("boards", args, &[])?.no_positionals()?;
    for b in FpgaBoard::evaluation_boards() {
        emit(out, format_args!("{b}\n"))?;
    }
    Ok(())
}

/// Shared flag spec of the scenario-backed legacy subcommands.
const CONTEXT_FLAGS: [(&str, FlagKind); 3] = [
    ("--model", FlagKind::Value),
    ("--board", FlagKind::Value),
    ("--json", FlagKind::Switch),
];

/// Assembles the scenario document every legacy shim starts from.
fn context_json(flags: &Flags) -> Result<Json, Error> {
    let mut root = Json::object();
    let mut model = Json::object();
    model.push("zoo", flags.require("--model")?);
    root.push("model", model);
    let mut board = Json::object();
    board.push("builtin", flags.require("--board")?);
    root.push("board", board);
    Ok(root)
}

/// Runs an assembled scenario document and prints the outcome: canonical
/// JSON with `--json`, human text otherwise.
fn run_document(
    root: &Json,
    json_output: bool,
    verbose: bool,
    out: &mut dyn Write,
) -> Result<(), Error> {
    let scenario = Scenario::from_json(root)?;
    let outcome = Session::new().run(&scenario)?;
    if json_output {
        emit(out, format_args!("{}", outcome.to_json_string()))
    } else {
        render_human(&outcome, verbose, out)
    }
}

fn cmd_evaluate(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let spec: Vec<(&str, FlagKind)> = CONTEXT_FLAGS
        .into_iter()
        .chain([
            ("--notation", FlagKind::Value),
            ("--arch", FlagKind::Value),
            ("--ces", FlagKind::Value),
            ("--fuse-depth", FlagKind::Value),
            ("--precision", FlagKind::Value),
            ("--batch", FlagKind::Value),
            ("--verbose", FlagKind::Switch),
        ])
        .collect();
    let flags = Flags::parse("evaluate", args, &spec)?;
    flags.no_positionals()?;
    let mut root = context_json(&flags)?;
    if let Some(p) = flags.value("--precision") {
        root.push("precision", p);
    }
    if let Some(batch) = flags.parsed::<usize>("--batch")? {
        root.push("batch", batch);
    }
    if let Some(depth) = flags.parsed::<usize>("--fuse-depth")? {
        // Design-wide depth-first schedule on every single-CE
        // assignment; depth 1 is exactly layer-by-layer.
        let mut schedule = Json::object();
        schedule.push("mode", "depth_first");
        schedule.push("fuse_depth", depth);
        root.push("schedule", schedule);
    }
    let mut action = Json::object();
    action.push("evaluate", design_body("evaluate", &flags)?);
    root.push("action", action);
    run_document(
        &root,
        flags.switch("--json"),
        flags.switch("--verbose"),
        out,
    )
}

/// The `evaluate`-action body shared by the `evaluate` and `validate`
/// shims: exactly one of `--notation` or `--arch --ces`, with the same
/// rejection the scenario parser applies (`--ces` alongside `--notation`
/// is an error, not silently dropped).
fn design_body(command: &str, flags: &Flags) -> Result<Json, Error> {
    let mut body = Json::object();
    match (flags.value("--notation"), flags.value("--arch")) {
        (Some(text), None) => {
            if flags.value("--ces").is_some() {
                return Err(Error::Usage(
                    "`--ces` only applies to `--arch` designs, not `--notation`".into(),
                ));
            }
            body.push("notation", text);
        }
        (None, Some(arch)) => {
            body.push("template", arch.to_ascii_lowercase());
            body.push(
                "ces",
                flags
                    .parsed::<usize>("--ces")?
                    .ok_or_else(|| Error::Usage("`--arch` requires `--ces <count>`".into()))?,
            );
        }
        _ => {
            return Err(Error::Usage(format!(
                "`mccm {command}` needs exactly one of `--notation` or `--arch`"
            )))
        }
    }
    Ok(body)
}

fn cmd_sweep(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let spec: Vec<(&str, FlagKind)> = CONTEXT_FLAGS
        .into_iter()
        .chain([
            ("--min-ces", FlagKind::Value),
            ("--max-ces", FlagKind::Value),
            ("--workers", FlagKind::Value),
        ])
        .collect();
    let flags = Flags::parse("sweep", args, &spec)?;
    flags.no_positionals()?;
    let mut root = context_json(&flags)?;
    if let Some(w) = flags.parsed::<usize>("--workers")? {
        root.push("workers", w);
    }
    let mut body = Json::object();
    if let Some(n) = flags.parsed::<usize>("--min-ces")? {
        body.push("min_ces", n);
    }
    if let Some(n) = flags.parsed::<usize>("--max-ces")? {
        body.push("max_ces", n);
    }
    let mut action = Json::object();
    action.push("sweep", body);
    root.push("action", action);
    run_document(&root, flags.switch("--json"), false, out)
}

fn cmd_explore(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let spec: Vec<(&str, FlagKind)> = CONTEXT_FLAGS
        .into_iter()
        .chain([
            ("--samples", FlagKind::Value),
            ("--seed", FlagKind::Value),
            ("--workers", FlagKind::Value),
        ])
        .collect();
    let flags = Flags::parse("explore", args, &spec)?;
    flags.no_positionals()?;
    let mut root = context_json(&flags)?;
    if let Some(seed) = flags.parsed::<u64>("--seed")? {
        root.push("seed", seed);
    }
    if let Some(w) = flags.parsed::<usize>("--workers")? {
        root.push("workers", w);
    }
    let mut body = Json::object();
    body.push(
        "count",
        flags.parsed::<usize>("--samples")?.unwrap_or(2_000),
    );
    let mut action = Json::object();
    action.push("sample", body);
    root.push("action", action);
    run_document(&root, flags.switch("--json"), false, out)
}

fn cmd_optimize(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let spec: Vec<(&str, FlagKind)> = CONTEXT_FLAGS
        .into_iter()
        .chain([
            ("--budget", FlagKind::Value),
            ("--population", FlagKind::Value),
            ("--islands", FlagKind::Value),
            ("--max-fuse-depth", FlagKind::Value),
            ("--seed", FlagKind::Value),
            ("--workers", FlagKind::Value),
            ("--metrics", FlagKind::Value),
        ])
        .collect();
    let flags = Flags::parse("optimize", args, &spec)?;
    flags.no_positionals()?;
    let mut root = context_json(&flags)?;
    if let Some(seed) = flags.parsed::<u64>("--seed")? {
        root.push("seed", seed);
    }
    if let Some(w) = flags.parsed::<usize>("--workers")? {
        root.push("workers", w);
    }
    let mut body = Json::object();
    if let Some(list) = flags.value("--metrics") {
        let names: Vec<Json> = list
            .split(',')
            .map(|m| Json::from(m.trim().to_ascii_lowercase()))
            .collect();
        body.push("metrics", names);
    }
    if let Some(n) = flags.parsed::<u64>("--budget")? {
        body.push("budget", n);
    }
    if let Some(n) = flags.parsed::<usize>("--population")? {
        body.push("population", n);
    }
    if let Some(n) = flags.parsed::<usize>("--islands")? {
        body.push("islands", n);
    }
    if let Some(n) = flags.parsed::<usize>("--max-fuse-depth")? {
        body.push("max_fuse_depth", n);
    }
    let mut action = Json::object();
    action.push("optimize", body);
    root.push("action", action);
    run_document(&root, flags.switch("--json"), false, out)
}

fn cmd_calibrate(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let spec: Vec<(&str, FlagKind)> = CONTEXT_FLAGS
        .into_iter()
        .chain([
            ("--budget", FlagKind::Value),
            ("--population", FlagKind::Value),
            ("--islands", FlagKind::Value),
            ("--top-k", FlagKind::Value),
            ("--store", FlagKind::Value),
            ("--seed", FlagKind::Value),
            ("--workers", FlagKind::Value),
            ("--metrics", FlagKind::Value),
        ])
        .collect();
    let flags = Flags::parse("calibrate", args, &spec)?;
    flags.no_positionals()?;
    let mut root = context_json(&flags)?;
    if let Some(seed) = flags.parsed::<u64>("--seed")? {
        root.push("seed", seed);
    }
    if let Some(w) = flags.parsed::<usize>("--workers")? {
        root.push("workers", w);
    }
    let mut body = Json::object();
    if let Some(list) = flags.value("--metrics") {
        let names: Vec<Json> = list
            .split(',')
            .map(|m| Json::from(m.trim().to_ascii_lowercase()))
            .collect();
        body.push("metrics", names);
    }
    if let Some(n) = flags.parsed::<u64>("--budget")? {
        body.push("budget", n);
    }
    if let Some(n) = flags.parsed::<usize>("--population")? {
        body.push("population", n);
    }
    if let Some(n) = flags.parsed::<usize>("--islands")? {
        body.push("islands", n);
    }
    if let Some(n) = flags.parsed::<usize>("--top-k")? {
        body.push("top_k", n);
    }
    if let Some(path) = flags.value("--store") {
        body.push("store", path);
    }
    let mut action = Json::object();
    action.push("calibrate", body);
    root.push("action", action);
    run_document(&root, flags.switch("--json"), false, out)
}

fn cmd_validate(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    use crate::core::CostModel;
    use crate::sim::{SimConfig, Simulator};

    let flag_spec: Vec<(&str, FlagKind)> = vec![
        ("--model", FlagKind::Value),
        ("--board", FlagKind::Value),
        ("--notation", FlagKind::Value),
        ("--arch", FlagKind::Value),
        ("--ces", FlagKind::Value),
        ("--precision", FlagKind::Value),
    ];
    let flags = Flags::parse("validate", args, &flag_spec)?;
    flags.no_positionals()?;
    // Reuse the scenario plumbing to resolve names and the design, then
    // run the simulator (validation is a model-vs-simulator check, not a
    // scenario action).
    let mut root = context_json(&flags)?;
    if let Some(p) = flags.value("--precision") {
        root.push("precision", p);
    }
    let mut action = Json::object();
    action.push("evaluate", design_body("validate", &flags)?);
    root.push("action", action);
    let scenario = Scenario::from_json(&root)?;
    let model = scenario.model.build()?;
    let board = scenario.board.build()?;
    let builder =
        crate::arch::MultipleCeBuilder::new(&model, &board).with_precision(scenario.precision);
    let design = match &scenario.action {
        crate::scenario::Action::Evaluate { design } => design.clone(),
        _ => unreachable!("assembled above"),
    };
    let spec = design.instantiate(&model)?;
    let acc = builder.build(&spec)?;
    let eval = CostModel::evaluate(&acc);
    let config = SimConfig::default();
    config.validate()?;
    let sim = Simulator::new(config).run_with_eval(&acc, &eval);
    emit(out, format_args!("design: {}\n", eval.notation))?;
    emit(
        out,
        format_args!(
            "{:<12} {:>14} {:>14} {:>9}\n",
            "metric", "model", "simulator", "accuracy"
        ),
    )?;
    for rec in sim.accuracy_records(&eval) {
        emit(
            out,
            format_args!(
                "{:<12} {:>14.4} {:>14.4} {:>8.1}%\n",
                rec.metric.name(),
                rec.estimated,
                rec.reference,
                rec.accuracy()
            ),
        )?;
    }
    Ok(())
}

fn cmd_run(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let flags = Flags::parse(
        "run",
        args,
        &[
            ("--set", FlagKind::Repeatable),
            ("--batch", FlagKind::Value),
            ("--workers", FlagKind::Value),
            ("--connect", FlagKind::Value),
            ("--deadline-ms", FlagKind::Value),
            ("--retries", FlagKind::Value),
        ],
    )?;
    if let Some(dir) = flags.value("--batch") {
        if !flags.positionals.is_empty() {
            return Err(Error::Usage(
                "`mccm run --batch DIR` takes no scenario-file argument".into(),
            ));
        }
        if !flags.values("--set").is_empty() {
            return Err(Error::Usage(
                "`--set` applies to single scenario files, not `--batch` directories".into(),
            ));
        }
        if flags.value("--connect").is_some() {
            return Err(Error::Usage(
                "`--batch` runs locally; `--connect` takes a single scenario file".into(),
            ));
        }
        let workers = flags.parsed::<usize>("--workers")?.unwrap_or(0);
        return run_batch(Path::new(dir), workers, out);
    }
    if flags.value("--workers").is_some() {
        return Err(Error::Usage(
            "`--workers` shards `--batch` runs; set `workers` in the scenario file (or \
             `--set workers=N`) for a single run"
                .into(),
        ));
    }
    if flags.value("--connect").is_none()
        && (flags.value("--deadline-ms").is_some() || flags.value("--retries").is_some())
    {
        return Err(Error::Usage(
            "`--deadline-ms` and `--retries` apply to `--connect` runs".into(),
        ));
    }
    let [path] = flags.positionals.as_slice() else {
        return Err(Error::Usage(
            "`mccm run` needs exactly one scenario file (or `--batch DIR`)".into(),
        ));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::io(format!("reading scenario `{path}`"), e))?;
    let mut root = Json::parse(&text)?;
    for setting in flags.values("--set") {
        let Some((key, value)) = setting.split_once('=') else {
            return Err(Error::Usage(format!(
                "`--set` expects `key=value`, got `{setting}`"
            )));
        };
        apply_override(&mut root, key, value)?;
    }
    let scenario = Scenario::from_json(&root)?;
    if let Some(addr) = flags.value("--connect") {
        let policy = crate::serve::RetryPolicy {
            retries: flags.parsed::<u32>("--retries")?.unwrap_or(5),
            ..crate::serve::RetryPolicy::default()
        };
        let deadline_ms = flags.parsed::<u64>("--deadline-ms")?;
        let reply = crate::serve::run_with_retry(addr, &scenario, deadline_ms, &policy)?;
        if reply.degraded {
            // A degraded outcome is not the scenario's full result; wrap
            // it so nothing downstream mistakes the partial bytes for the
            // deterministic local ones.
            let mut envelope = Json::object();
            envelope.push("degraded", true);
            envelope.push("outcome", reply.outcome);
            return emit(out, format_args!("{}", envelope.to_string_pretty()));
        }
        // Not degraded: byte-identical to a local `mccm run`.
        return emit(out, format_args!("{}", reply.outcome.to_string_pretty()));
    }
    let outcome = Session::new().run(&scenario)?;
    emit(out, format_args!("{}", outcome.to_json_string()))
}

fn cmd_serve(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let flags = Flags::parse(
        "serve",
        args,
        &[
            ("--addr", FlagKind::Value),
            ("--workers", FlagKind::Value),
            ("--queue", FlagKind::Value),
            ("--retry-after-ms", FlagKind::Value),
        ],
    )?;
    flags.no_positionals()?;
    let mut config = crate::serve::ServeConfig::default();
    if let Some(w) = flags.parsed::<usize>("--workers")? {
        if w == 0 {
            return Err(Error::Usage("`--workers` must be at least 1".into()));
        }
        config.workers = w;
    }
    if let Some(q) = flags.parsed::<usize>("--queue")? {
        if q == 0 {
            return Err(Error::Usage("`--queue` must be at least 1".into()));
        }
        config.queue_capacity = q;
    }
    if let Some(ms) = flags.parsed::<u64>("--retry-after-ms")? {
        config.retry_after_ms = ms;
    }
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:7070");
    let server = crate::serve::Server::bind(addr, config)?;
    // Announce the resolved address (port 0 resolves to an ephemeral
    // port) before blocking, so scripts can connect.
    emit(out, format_args!("listening on {}\n", server.addr()))?;
    out.flush().map_err(|e| Error::io("flushing output", e))?;
    let stats = server.run()?;
    emit(out, format_args!("{}", stats.to_json().to_string_pretty()))
}

fn cmd_stats(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let flags = Flags::parse("stats", args, &[("--connect", FlagKind::Value)])?;
    flags.no_positionals()?;
    let addr = flags.require("--connect")?;
    let response = crate::serve::Client::connect(addr)?.stats()?;
    emit(out, format_args!("{}", response.to_string_pretty()))
}

fn cmd_shutdown(args: &[String], out: &mut dyn Write) -> Result<(), Error> {
    let flags = Flags::parse("shutdown", args, &[("--connect", FlagKind::Value)])?;
    flags.no_positionals()?;
    let addr = flags.require("--connect")?;
    let response = crate::serve::Client::connect(addr)?.shutdown()?;
    emit(out, format_args!("{}", response.to_string_pretty()))
}

/// Executes every `*.json` scenario in `dir` (sorted by file name),
/// sharded across `workers` threads, each with its own [`Session`].
/// Output is one JSON document listing each file's outcome or error in
/// name order; the command fails (after printing) when any scenario
/// failed.
fn run_batch(dir: &Path, workers: usize, out: &mut dyn Write) -> Result<(), Error> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| Error::io(format!("reading scenario directory `{}`", dir.display()), e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(Error::Usage(format!(
            "no `*.json` scenario files in `{}`",
            dir.display()
        )));
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    } else {
        workers
    }
    .min(files.len())
    .max(1);

    // One result slot per file; contiguous shards, one session per
    // worker so scenarios sharing a (model, board) context within a
    // shard reuse its warmed builder. One poisoned file must not take
    // down its shard-mates: each scenario runs under `catch_unwind`,
    // and a panic discards the (possibly inconsistent) session and
    // rebuilds a fresh one before the next file.
    let results: Vec<Result<Outcome, Error>> = {
        let run_shard = |shard: &[PathBuf]| -> Vec<Result<Outcome, Error>> {
            let mut session = Session::new();
            shard
                .iter()
                .map(|path| {
                    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let text = std::fs::read_to_string(path).map_err(|e| {
                            Error::io(format!("reading scenario `{}`", path.display()), e)
                        })?;
                        let scenario = Scenario::from_json_str(&text)?;
                        session.run(&scenario)
                    }));
                    attempt.unwrap_or_else(|payload| {
                        session = Session::new();
                        Err(Error::Remote {
                            kind: "internal".into(),
                            exit_code: Error::INTERNAL_EXIT_CODE,
                            detail: format!("panic: {}", panic_message(&payload)),
                        })
                    })
                })
                .collect()
        };
        if workers <= 1 {
            run_shard(&files)
        } else {
            let chunk = files.len().div_ceil(workers);
            let shards: Vec<&[PathBuf]> = files.chunks(chunk).collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| s.spawn(move || run_shard(shard)))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            })
        }
    };

    let mut failures = 0usize;
    let mut entries: Vec<Json> = Vec::with_capacity(files.len());
    for (path, result) in files.iter().zip(results) {
        let mut entry = Json::object();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        entry.push("file", name);
        match result {
            Ok(outcome) => entry.push("outcome", outcome.to_json()),
            Err(e) => {
                failures += 1;
                entry.push("error", batch_error_entry(&e));
            }
        }
        entries.push(entry);
    }
    let mut root = Json::object();
    root.push("batch", entries);
    root.push("scenarios", files.len());
    root.push("failures", failures);
    emit(out, format_args!("{}", root.to_string_pretty()))?;
    if failures > 0 {
        return Err(Error::BatchPartial {
            failed: failures,
            total: files.len(),
        });
    }
    Ok(())
}

/// Typed per-file error object for batch reports: machine-readable
/// `kind` and `exit_code` alongside the human `detail`, so scripts can
/// triage a partial batch without string matching. A `Remote` error
/// (e.g. a panic rendered as `internal`/9) passes its carried
/// classification through verbatim.
fn batch_error_entry(e: &Error) -> Json {
    let mut entry = Json::object();
    match e {
        Error::Remote {
            kind,
            exit_code,
            detail,
        } => {
            entry.push("kind", kind.clone());
            entry.push("exit_code", u64::from(*exit_code));
            entry.push("detail", detail.clone());
        }
        other => {
            entry.push("kind", other.kind());
            entry.push("exit_code", u64::from(other.exit_code()));
            entry.push("detail", other.to_string());
        }
    }
    entry
}

/// Best-effort text of a panic payload (the `&str`/`String` forms that
/// `panic!` produces cover practically every real panic).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Human rendering of an outcome — the presentation layer of the legacy
/// subcommands. The JSON form ([`Outcome::to_json`]) is the stable
/// machine interface; this text is free to evolve.
fn render_human(outcome: &Outcome, verbose: bool, out: &mut dyn Write) -> Result<(), Error> {
    match outcome {
        Outcome::Evaluation(o) => {
            let e = &o.eval;
            emit(out, format_args!("design:     {}\n", e.notation))?;
            emit(
                out,
                format_args!(
                    "workload:   {} on {} ({})\n",
                    e.model_name, o.board, o.precision
                ),
            )?;
            emit(out, format_args!("latency:    {:.3} ms\n", e.latency_ms()))?;
            emit(
                out,
                format_args!("throughput: {:.1} FPS\n", e.throughput_fps),
            )?;
            emit(
                out,
                format_args!(
                    "buffers:    {:.2} MiB required ({:.2} MiB granted on-chip)\n",
                    e.buffer_mib(),
                    e.buffer_alloc_bytes.mib()
                ),
            )?;
            emit(
                out,
                format_args!(
                    "accesses:   {:.1} MiB/inference ({:.0}% weights)\n",
                    e.offchip_mib(),
                    100.0 * e.weight_traffic_share()
                ),
            )?;
            emit(
                out,
                format_args!(
                    "stalls:     {:.0}% of time waiting on memory\n",
                    100.0 * e.memory_stall_fraction
                ),
            )?;
            emit(
                out,
                format_args!(
                    "energy:     {:.1} mJ/inference ({:.0}% of dynamic energy in DRAM), \
                     {:.0} GOPS/W\n",
                    o.energy.total_mj(),
                    100.0 * o.energy.dram_share(),
                    o.gops_per_w
                ),
            )?;
            if o.batch > 1 {
                emit(
                    out,
                    format_args!(
                        "batch({}): {:.3} ms total, {:.3} ms amortized per input\n",
                        o.batch,
                        e.batch_latency_s(o.batch) * 1e3,
                        e.amortized_latency_s(o.batch) * 1e3
                    ),
                )?;
            }
            if verbose {
                emit(out, format_args!("\nengines:\n"))?;
                for c in &e.ces {
                    emit(
                        out,
                        format_args!(
                            "  CE{:<3} {:>5} PEs  busy {:>8.3} ms  util {:>3.0}%\n",
                            c.ce + 1,
                            c.pes,
                            c.busy_s * 1e3,
                            100.0 * c.utilization
                        ),
                    )?;
                }
                emit(out, format_args!("\nsegments:\n"))?;
                for s in &e.segments {
                    emit(
                        out,
                        format_args!(
                            "  seg {:>2}  L{:>3}-L{:<3}  {:>8.3} ms  util {:>3.0}%  traffic \
                             {:>7.2} MiB{}\n",
                            s.index + 1,
                            s.first + 1,
                            s.last + 1,
                            s.time_s * 1e3,
                            100.0 * s.utilization,
                            s.traffic().mib(),
                            if s.memory_s > s.compute_s {
                                "  [memory-bound]"
                            } else {
                                ""
                            }
                        ),
                    )?;
                }
            }
            Ok(())
        }
        Outcome::Sweep(o) => {
            emit(
                out,
                format_args!(
                    "{:<12} {:>3} {:>12} {:>9} {:>13} {:>13}\n",
                    "architecture", "CEs", "latency(ms)", "FPS", "buffers(MiB)", "access(MiB)"
                ),
            )?;
            for p in &o.points {
                emit(
                    out,
                    format_args!(
                        "{:<12} {:>3} {:>12.2} {:>9.1} {:>13.2} {:>13.1}\n",
                        p.architecture.name(),
                        p.ces,
                        p.eval.latency_ms(),
                        p.eval.throughput_fps,
                        p.eval.buffer_mib(),
                        p.eval.offchip_mib()
                    ),
                )?;
            }
            emit(out, format_args!("\nbest (10% tie rule):\n"))?;
            for cell in &o.selection {
                let winners: Vec<String> = cell
                    .winners
                    .iter()
                    .map(|(a, c, _)| format!("{}-{}", a.name(), c))
                    .collect();
                emit(
                    out,
                    format_args!("  {:<11} {}\n", cell.metric.name(), winners.join(", ")),
                )?;
            }
            Ok(())
        }
        Outcome::Front(o) => {
            emit(
                out,
                format_args!(
                    "evaluated {} custom designs (seed {}) on {} / {}\n",
                    o.evaluated, o.seed, o.model, o.board
                ),
            )?;
            emit(
                out,
                format_args!(
                    "Pareto front over [{}]: {} designs, hypervolume {:.3}\n",
                    o.metrics
                        .iter()
                        .map(|m| m.name())
                        .collect::<Vec<_>>()
                        .join(", "),
                    o.front.len(),
                    o.hypervolume
                ),
            )?;
            for s in o.front.iter().take(12) {
                emit(
                    out,
                    format_args!(
                        "  {:>7.1} FPS  {:>7.2} MiB  {}\n",
                        s.throughput_fps,
                        s.buffer_mib(),
                        s.notation
                    ),
                )?;
            }
            if o.front.len() > 12 {
                emit(out, format_args!("  ... and {} more\n", o.front.len() - 12))?;
            }
            Ok(())
        }
        Outcome::Optimized(o) => {
            emit(
                out,
                format_args!(
                    "guided search: {} evaluations ({} feasible) of budget {} — front of {} \
                     designs over [{}]\n",
                    o.evaluations,
                    o.feasible,
                    o.budget,
                    o.front.len(),
                    o.metrics
                        .iter()
                        .map(|m| m.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )?;
            emit(out, format_args!("\nbest per metric:\n"))?;
            for &m in &o.metrics {
                let best =
                    o.front
                        .iter()
                        .map(|s| m.value(s))
                        .reduce(|a, b| if m.better(b, a) { b } else { a });
                if let Some(v) = best {
                    emit(out, format_args!("  {:<11} {v:.4e}\n", m.name()))?;
                }
            }
            let energy = crate::core::EnergyModel::default();
            emit(
                out,
                format_args!("\nfront (best-first on {}):\n", o.metrics[0].name()),
            )?;
            for s in o.front.iter().take(12) {
                emit(
                    out,
                    format_args!(
                        "  {:>7.1} FPS  {:>7.2} ms  {:>7.2} MiB buf  {:>6.1} MiB acc  {:>6.1} \
                         mJ  {}\n",
                        s.throughput_fps,
                        s.latency_ms(),
                        s.buffer_mib(),
                        s.offchip_mib(),
                        energy.estimate_summary(s).total_mj(),
                        s.notation
                    ),
                )?;
            }
            if o.front.len() > 12 {
                emit(out, format_args!("  ... and {} more\n", o.front.len() - 12))?;
            }
            Ok(())
        }
        Outcome::Calibrated(o) => {
            emit(
                out,
                format_args!(
                    "calibration: {} evaluations ({} feasible) of budget {} — front of {} \
                     designs, {} promoted to the simulator\n",
                    o.evaluations,
                    o.feasible,
                    o.budget,
                    o.front.len(),
                    o.promoted.len()
                ),
            )?;
            emit(
                out,
                format_args!(
                    "store: {} pairs ({} new) for ({}, {})\n",
                    o.store_pairs, o.new_pairs, o.board, o.precision
                ),
            )?;
            emit(
                out,
                format_args!(
                    "\ncorrections (calibrated = slope·analytical + intercept ± error bar):\n"
                ),
            )?;
            for (m, c) in &o.corrections {
                if c.pairs == 0 {
                    emit(
                        out,
                        format_args!("  {:<11} no evidence yet (identity)\n", m.name()),
                    )?;
                } else {
                    emit(
                        out,
                        format_args!(
                            "  {:<11} slope {:.4}  intercept {:+.4e}  ± {:.4e}  ({} pairs, \
                             {:.1}x tighter than raw)\n",
                            m.name(),
                            c.slope,
                            c.intercept,
                            c.error_bar(),
                            c.pairs,
                            c.improvement()
                        ),
                    )?;
                }
            }
            emit(out, format_args!("\npromoted designs:\n"))?;
            for p in &o.promoted {
                emit(
                    out,
                    format_args!("  front[{}] {}\n", p.front_index, p.notation),
                )?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(args: &[&str]) -> Result<String, Error> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        main_with_args(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("CLI output is UTF-8"))
    }

    #[test]
    fn unknown_flag_is_rejected_with_its_name() {
        let err = run_cli(&["evaluate", "--model", "resnet50", "--bored", "zc706"]).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("--bored"), "{text}");
        assert!(text.contains("evaluate"), "{text}");
    }

    #[test]
    fn duplicate_flag_is_rejected_with_its_name() {
        let err = run_cli(&[
            "evaluate", "--model", "resnet50", "--model", "vgg16", "--board", "zc706", "--arch",
            "hybrid", "--ces", "4",
        ])
        .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("duplicate flag `--model`"), "{text}");
    }

    #[test]
    fn valueless_value_flag_is_rejected() {
        let err = run_cli(&["evaluate", "--model"]).unwrap_err();
        assert!(err.to_string().contains("`--model` needs a value"), "{err}");
    }

    #[test]
    fn fuse_depth_flag_schedules_the_evaluated_design() {
        let text = run_cli(&[
            "evaluate",
            "--model",
            "mobilenetv2",
            "--board",
            "zc706",
            "--arch",
            "segmented",
            "--ces",
            "3",
            "--fuse-depth",
            "2",
            "--json",
        ])
        .unwrap();
        assert!(text.contains("@df2"), "{text}");
    }

    #[test]
    fn max_fuse_depth_flag_reaches_the_optimizer_and_rejects_zero() {
        let ok = run_cli(&[
            "optimize",
            "--model",
            "mobilenetv2",
            "--board",
            "zc706",
            "--budget",
            "80",
            "--population",
            "8",
            "--islands",
            "2",
            "--max-fuse-depth",
            "2",
            "--json",
        ])
        .unwrap();
        assert!(ok.contains("\"front\""), "{ok}");
        let err = run_cli(&[
            "optimize",
            "--model",
            "mobilenetv2",
            "--board",
            "zc706",
            "--max-fuse-depth",
            "0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("max_fuse_depth"), "{err}");
    }

    #[test]
    fn notation_with_ces_is_rejected_not_dropped() {
        // Regression: the old shim silently ignored `--ces` next to
        // `--notation`, diverging from the scenario parser's rejection.
        for command in ["evaluate", "validate"] {
            let err = run_cli(&[
                command,
                "--model",
                "resnet50",
                "--board",
                "zc706",
                "--notation",
                "{L1-Last: CE1-CE4}",
                "--ces",
                "9",
            ])
            .unwrap_err();
            assert!(err.to_string().contains("--ces"), "{command}: {err}");
        }
    }

    #[test]
    fn verbose_evaluate_lists_engines_and_segments() {
        let text = run_cli(&[
            "evaluate",
            "--model",
            "mobilenetv2",
            "--board",
            "zc706",
            "--arch",
            "segmented",
            "--ces",
            "3",
            "--verbose",
        ])
        .unwrap();
        assert!(text.contains("engines:"), "{text}");
        assert!(text.contains("CE1"), "{text}");
        assert!(text.contains("segments:"), "{text}");
    }

    #[test]
    fn models_and_boards_list() {
        let models = run_cli(&["models"]).unwrap();
        assert!(models.contains("resnet50") && models.contains("vgg16"));
        let boards = run_cli(&["boards"]).unwrap();
        assert!(boards.contains("ZC706") && boards.contains("ZCU102"));
    }

    #[test]
    fn evaluate_json_and_human_forms_work() {
        let json = run_cli(&[
            "evaluate",
            "--model",
            "mobilenetv2",
            "--board",
            "zc706",
            "--arch",
            "hybrid",
            "--ces",
            "4",
            "--json",
        ])
        .unwrap();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("action").and_then(Json::as_str),
            Some("evaluate")
        );
        let human = run_cli(&[
            "evaluate",
            "--model",
            "mobilenetv2",
            "--board",
            "zc706",
            "--arch",
            "hybrid",
            "--ces",
            "4",
        ])
        .unwrap();
        assert!(human.contains("latency:"), "{human}");
    }

    #[test]
    fn help_shows_usage_and_unknown_command_errors() {
        let help = run_cli(&["help"]).unwrap();
        assert!(help.contains("mccm run"));
        let err = run_cli(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }
}
