//! `mccm serve` — a fault-tolerant evaluation daemon over a hand-rolled
//! length-prefixed JSON protocol (no HTTP stack, no async runtime; in
//! the spirit of [`crate::json`], the transport is small enough to
//! read).
//!
//! The daemon ([`Server`]) wraps a pool of [`Session`]-owning workers
//! with the four robustness mechanisms `docs/serving.md` documents:
//!
//! 1. **Admission control** — a bounded queue; overflow is rejected
//!    with a typed `busy` response carrying a `retry_after_ms` hint,
//!    which [`run_with_retry`] turns into seeded, jittered,
//!    deterministic backoff on the client.
//! 2. **Per-request deadlines** — a watchdog arms a [`CancelToken`]
//!    per deadlined request; searches observe it at their natural
//!    checkpoints and return honest partial results flagged
//!    `"degraded": true`. Wall-clock stays confined to this layer, so
//!    outcome bytes remain deterministic.
//! 3. **Panic isolation** — every request runs under `catch_unwind`;
//!    a panicking request gets a typed `internal` error, the worker's
//!    session is rebuilt, and the process keeps serving.
//! 4. **Graceful shutdown** — a `shutdown` request flips the daemon
//!    into draining (new work rejected with `draining`), waits for
//!    in-flight requests, and answers with the final balanced stats.
//!
//! All of it is provable under the deterministic fault-injection
//! harness ([`FaultPlan`]): seeded worker panics, forced cache
//! evictions, stalls, and one-byte socket reads, scheduled identically
//! on every run.
//!
//! [`Session`]: crate::session::Session
//! [`CancelToken`]: crate::dse::CancelToken

mod client;
mod daemon;
mod fault;
mod frame;

pub use client::{run_with_retry, Client, RetryPolicy, RunReply};
pub use daemon::{ServeConfig, ServeStats, Server};
pub use fault::{FaultPlan, FaultSite, FaultyReader};
pub use frame::{read_frame, write_frame, MAX_FRAME_BYTES};
