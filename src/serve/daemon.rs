//! The `mccm serve` daemon: a bounded-admission, deadline-aware,
//! panic-isolated evaluation server over the frame protocol.
//!
//! # Life of a request
//!
//! A connection handler reads one frame, classifies it (`run`, `stats`,
//! `shutdown`), and for a `run` request applies **admission control**:
//! if the daemon is draining the request is rejected with `draining`;
//! if the bounded job queue is full it is rejected with `busy` plus a
//! `retry_after_ms` hint; otherwise it is enqueued and — when a
//! `deadline_ms` came with it — its [`CancelToken`] is armed on the
//! deadline watchdog. A worker thread (each owns its own warmed
//! [`Session`]) picks the job up, parses the scenario, and executes it
//! through [`Session::run_cancellable`]; an expired deadline surfaces
//! as an honest partial outcome flagged `"degraded": true`, never as a
//! silently truncated one. The whole job runs under `catch_unwind`:
//! a panic (organic or injected by the [`FaultPlan`]) is converted to a
//! typed `internal` error response, the worker's possibly-poisoned
//! session is dropped and rebuilt, and the daemon keeps serving.
//!
//! Wall-clock time lives **only** here: the cost model, explorer, and
//! outcome JSON stay deterministic, and the serve layer confines
//! deadlines, stalls, and retry hints to its own envelope fields.
//!
//! # Accounting
//!
//! [`ServeStats`] balances exactly:
//! `received == admitted + rejected_busy + rejected_draining`, and once
//! drained `admitted == completed + degraded + failed`. The soak test
//! holds the daemon to both identities under fault injection.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::dse::{CacheStats, CancelToken};
use crate::error::Error;
use crate::json::Json;
use crate::scenario::Scenario;
use crate::session::{Outcome, Session};

use super::fault::{FaultPlan, FaultSite, FaultyReader};
use super::frame::{read_frame, write_frame};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one warmed [`Session`].
    pub workers: usize,
    /// Bounded admission queue: requests beyond this are rejected
    /// `busy` instead of queueing unboundedly.
    pub queue_capacity: usize,
    /// The `retry_after_ms` hint sent with `busy` rejections.
    pub retry_after_ms: u64,
    /// Context capacity of each worker's [`Session`].
    pub session_capacity: usize,
    /// How long an injected [`FaultSite::EvalStall`] sleeps.
    pub stall_ms: u64,
    /// Fault-injection schedule ([`FaultPlan::none`] in production).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 16,
            retry_after_ms: 50,
            session_capacity: Session::DEFAULT_CAPACITY,
            stall_ms: 200,
            faults: FaultPlan::from_env(),
        }
    }
}

/// The daemon's request accounting (see the module docs for the
/// identities it maintains).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// `run` requests that arrived in a well-formed frame.
    pub received: u64,
    /// Requests that entered the job queue.
    pub admitted: u64,
    /// Requests rejected because the queue was full.
    pub rejected_busy: u64,
    /// Requests rejected because the daemon was draining.
    pub rejected_draining: u64,
    /// Admitted requests that finished completely.
    pub completed: u64,
    /// Admitted requests that hit their deadline and returned an honest
    /// partial outcome.
    pub degraded: u64,
    /// Admitted requests that returned a typed error.
    pub failed: u64,
    /// Worker panics caught, converted to `internal` errors, and
    /// recovered from by rebuilding the worker's session.
    pub panics_recovered: u64,
    /// Segment-cache and design-memo counters accumulated across every
    /// optimize request this daemon served (zeros for other actions).
    pub cache: CacheStats,
    /// Calibrate requests served (complete or degraded).
    pub calibrations: u64,
    /// New (analytical, simulated) pairs those requests banked.
    pub calibration_pairs: u64,
}

impl ServeStats {
    /// Deterministic JSON rendering (fixed key order). The
    /// `calibration` object appears only once a calibrate request has
    /// been served, so daemons that never calibrate report the exact
    /// bytes they always did.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.push("received", self.received);
        o.push("admitted", self.admitted);
        o.push("rejected_busy", self.rejected_busy);
        o.push("rejected_draining", self.rejected_draining);
        o.push("completed", self.completed);
        o.push("degraded", self.degraded);
        o.push("failed", self.failed);
        o.push("panics_recovered", self.panics_recovered);
        let mut cache = Json::object();
        cache.push("seg_hits", self.cache.seg_hits);
        cache.push("seg_misses", self.cache.seg_misses);
        cache.push("delta_recombines", self.cache.delta_recombines);
        cache.push("full_builds", self.cache.full_builds);
        cache.push("memo_hits", self.cache.memo_hits);
        o.push("cache", cache);
        if self.calibrations > 0 {
            let mut cal = Json::object();
            cal.push("requests", self.calibrations);
            cal.push("new_pairs", self.calibration_pairs);
            o.push("calibration", cal);
        }
        o
    }
}

/// What a worker hands back to the connection handler.
struct WorkReply {
    payload: Result<(Json, bool), WireError>,
}

/// A serialization-ready error (kind, exit code, detail) — the wire
/// form of [`Error`], plus the `internal` kind panics map to.
struct WireError {
    kind: String,
    exit_code: u8,
    detail: String,
    retry_after_ms: Option<u64>,
}

impl WireError {
    fn of(e: &Error) -> Self {
        Self {
            kind: e.kind().to_string(),
            exit_code: e.exit_code(),
            detail: e.to_string(),
            retry_after_ms: match e {
                Error::Busy { retry_after_ms } => Some(*retry_after_ms),
                _ => None,
            },
        }
    }

    fn internal(detail: String) -> Self {
        Self {
            kind: "internal".to_string(),
            exit_code: Error::INTERNAL_EXIT_CODE,
            detail,
            retry_after_ms: None,
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.push("kind", self.kind.as_str());
        o.push("exit_code", u64::from(self.exit_code));
        if let Some(ms) = self.retry_after_ms {
            o.push("retry_after_ms", ms);
        }
        o.push("detail", self.detail.as_str());
        o
    }
}

/// One admitted request.
struct Job {
    run: Json,
    cancel: CancelToken,
    reply: mpsc::Sender<WorkReply>,
}

/// State shared by handlers, workers, and the watchdog.
struct Shared {
    config: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cond: Condvar,
    /// Admitted but not yet replied-to jobs (queued + running).
    pending: AtomicUsize,
    drain_lock: Mutex<()>,
    drain_cond: Condvar,
    draining: AtomicBool,
    stop: AtomicBool,
    stats: Mutex<ServeStats>,
    watchdog: Mutex<Vec<(Instant, CancelToken)>>,
    watchdog_cond: Condvar,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // A panic while holding one of these locks is already contained by
    // the per-request `catch_unwind`; the data is counters and queues
    // that stay consistent, so poisoning is cleared rather than spread.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn stats_snapshot(&self) -> ServeStats {
        *lock(&self.stats)
    }

    fn bump(&self, f: impl FnOnce(&mut ServeStats)) {
        f(&mut lock(&self.stats));
    }

    /// Arms the watchdog to fire `cancel` at `deadline`.
    fn arm(&self, deadline: Instant, cancel: CancelToken) {
        lock(&self.watchdog).push((deadline, cancel));
        self.watchdog_cond.notify_one();
    }

    fn job_done(&self) {
        // Stats were updated before this decrement, so pending == 0
        // implies the drained stats are final.
        self.pending.fetch_sub(1, Ordering::AcqRel);
        let _guard = lock(&self.drain_lock);
        self.drain_cond.notify_all();
    }

    fn wait_drained(&self) {
        let mut guard = lock(&self.drain_lock);
        while self.pending.load(Ordering::Acquire) > 0 {
            let (g, _timeout) = self
                .drain_cond
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
    }
}

/// A fault-tolerant evaluation daemon (see the module docs).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) without serving
    /// yet; [`Self::addr`] reports the resolved address.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the address cannot be bound.
    pub fn bind(addr: &str, config: ServeConfig) -> Result<Self, Error> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::io(format!("binding {addr}"), e))?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::io("resolving bound address", e))?;
        Ok(Self {
            listener,
            addr: local,
            shared: Arc::new(Shared {
                config,
                queue: Mutex::new(VecDeque::new()),
                queue_cond: Condvar::new(),
                pending: AtomicUsize::new(0),
                drain_lock: Mutex::new(()),
                drain_cond: Condvar::new(),
                draining: AtomicBool::new(false),
                stop: AtomicBool::new(false),
                stats: Mutex::new(ServeStats::default()),
                watchdog: Mutex::new(Vec::new()),
                watchdog_cond: Condvar::new(),
            }),
        })
    }

    /// The resolved listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a `shutdown` request drains the daemon; returns the
    /// final stats. Worker panics are caught per request — this loop
    /// exits only on shutdown.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the listener itself dies.
    pub fn run(self) -> Result<ServeStats, Error> {
        let shared = &self.shared;
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|_| {
                let s = Arc::clone(shared);
                std::thread::spawn(move || worker_loop(&s))
            })
            .collect();
        let watchdog = {
            let s = Arc::clone(shared);
            std::thread::spawn(move || watchdog_loop(&s))
        };

        self.listener
            .set_nonblocking(true)
            .map_err(|e| Error::io("listener nonblocking", e))?;
        while !shared.stop.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let s = Arc::clone(shared);
                    // Handlers are detached: they exit when their client
                    // closes or on the first request after stop.
                    std::thread::spawn(move || handle_connection(stream, &s));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::io("accepting connection", e)),
            }
        }

        shared.queue_cond.notify_all();
        shared.watchdog_cond.notify_all();
        for w in workers {
            let _ = w.join();
        }
        let _ = watchdog.join();
        Ok(shared.stats_snapshot())
    }

    /// [`Self::run`] on a background thread; returns the join handle.
    /// Test and CLI convenience — the server still shuts down only via
    /// a `shutdown` request.
    pub fn spawn(self) -> std::thread::JoinHandle<Result<ServeStats, Error>> {
        std::thread::spawn(move || self.run())
    }
}

/// One worker: owns a session, drains the queue, survives panics.
fn worker_loop(shared: &Arc<Shared>) {
    let mut session = Session::with_capacity(shared.config.session_capacity);
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                q = shared
                    .queue_cond
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(shared, &mut session, &job)));
        let payload = match outcome {
            Ok(Ok((json, degraded, counters))) => {
                shared.bump(|s| {
                    if degraded {
                        s.degraded += 1;
                    } else {
                        s.completed += 1;
                    }
                    s.cache.absorb(&counters.cache);
                    s.calibrations += counters.calibrations;
                    s.calibration_pairs += counters.calibration_pairs;
                });
                Ok((json, degraded))
            }
            Ok(Err(e)) => {
                shared.bump(|s| s.failed += 1);
                Err(WireError::of(&e))
            }
            Err(panic) => {
                // The session may hold arbitrary partial state from the
                // unwound request: drop it and start cold.
                session = Session::with_capacity(shared.config.session_capacity);
                shared.bump(|s| {
                    s.failed += 1;
                    s.panics_recovered += 1;
                });
                Err(WireError::internal(panic_message(&panic)))
            }
        };
        shared.job_done();
        // A vanished handler (client gone) is not the worker's problem.
        let _ = job.reply.send(WorkReply { payload });
    }
}

/// Per-job counters the daemon's aggregate stats absorb: optimize
/// delta-cache counters and calibrate pair accounting (zeros for other
/// actions).
#[derive(Default)]
struct JobCounters {
    cache: CacheStats,
    calibrations: u64,
    calibration_pairs: u64,
}

/// Runs one admitted job (inside the worker's `catch_unwind`). The third
/// element carries the per-action counters so the daemon's aggregate
/// stats can absorb them.
fn execute(
    shared: &Arc<Shared>,
    session: &mut Session,
    job: &Job,
) -> Result<(Json, bool, JobCounters), Error> {
    let faults = &shared.config.faults;
    faults.maybe_panic();
    if faults.fire(FaultSite::CacheEvict) {
        session.evict_all();
    }
    let scenario = Scenario::from_json(&job.run)?;
    faults.maybe_stall(shared.config.stall_ms);
    let (outcome, degraded) = session.run_cancellable(&scenario, &job.cancel)?;
    let counters = match &outcome {
        Outcome::Optimized(o) => JobCounters {
            cache: o.cache,
            ..JobCounters::default()
        },
        Outcome::Calibrated(o) => JobCounters {
            calibrations: 1,
            calibration_pairs: o.new_pairs as u64,
            ..JobCounters::default()
        },
        _ => JobCounters::default(),
    };
    Ok((outcome.to_json(), degraded, counters))
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("request panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("request panicked: {s}")
    } else {
        "request panicked".to_string()
    }
}

/// Fires cancel tokens when their deadlines pass.
fn watchdog_loop(shared: &Arc<Shared>) {
    let mut armed = lock(&shared.watchdog);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        armed.retain(|(deadline, cancel)| {
            if *deadline <= now {
                cancel.cancel();
                false
            } else {
                true
            }
        });
        let wait = armed
            .iter()
            .map(|(deadline, _)| deadline.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_millis(100))
            .min(Duration::from_millis(100));
        armed = shared
            .watchdog_cond
            .wait_timeout(armed, wait.max(Duration::from_millis(1)))
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
}

/// Reads frames off one connection until the client goes away.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let writer = stream.try_clone();
    let Ok(mut writer) = writer else {
        return;
    };
    let mut reader = FaultyReader::new(stream, shared.config.faults.clone());
    loop {
        let request = match read_frame(&mut reader) {
            Ok(Some(json)) => json,
            Ok(None) => return,
            Err(e) => {
                // Answer what can be answered, then drop the connection:
                // after a framing error the stream offset is unknowable.
                let reply = error_response(None, &WireError::of(&e));
                let _ = write_frame(&mut writer, &reply);
                return;
            }
        };
        let response = dispatch(&request, shared);
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
        if request.get("shutdown").is_some() {
            return;
        }
    }
}

/// Classifies and executes one request, producing its response frame.
fn dispatch(request: &Json, shared: &Arc<Shared>) -> Json {
    if request.get("stats").is_some() {
        let mut o = Json::object();
        o.push("ok", true);
        o.push("draining", shared.draining.load(Ordering::Acquire));
        o.push("stats", shared.stats_snapshot().to_json());
        return o;
    }
    if request.get("shutdown").is_some() {
        shared.draining.store(true, Ordering::Release);
        shared.wait_drained();
        let stats = shared.stats_snapshot();
        shared.stop.store(true, Ordering::Release);
        shared.queue_cond.notify_all();
        shared.watchdog_cond.notify_all();
        let mut o = Json::object();
        o.push("ok", true);
        o.push("drained", true);
        o.push("stats", stats.to_json());
        return o;
    }
    let id = request.get("id").and_then(Json::as_u64);
    let Some(run) = request.get("run") else {
        return error_response(
            id,
            &WireError::of(&Error::Protocol(
                "request has none of `run`, `stats`, `shutdown`".to_string(),
            )),
        );
    };
    handle_run(id, run, request, shared)
}

/// Admission control plus the round trip through a worker.
fn handle_run(id: Option<u64>, run: &Json, request: &Json, shared: &Arc<Shared>) -> Json {
    shared.bump(|s| s.received += 1);
    if shared.draining.load(Ordering::Acquire) {
        shared.bump(|s| s.rejected_draining += 1);
        return error_response(id, &WireError::of(&Error::Draining));
    }
    let (tx, rx) = mpsc::channel();
    let cancel = CancelToken::new();
    {
        let mut q = lock(&shared.queue);
        if q.len() >= shared.config.queue_capacity {
            drop(q);
            shared.bump(|s| s.rejected_busy += 1);
            return error_response(
                id,
                &WireError::of(&Error::Busy {
                    retry_after_ms: shared.config.retry_after_ms,
                }),
            );
        }
        shared.bump(|s| s.admitted += 1);
        shared.pending.fetch_add(1, Ordering::AcqRel);
        q.push_back(Job {
            run: run.clone(),
            cancel: cancel.clone(),
            reply: tx,
        });
    }
    shared.queue_cond.notify_one();
    if let Some(ms) = request.get("deadline_ms").and_then(Json::as_u64) {
        shared.arm(Instant::now() + Duration::from_millis(ms), cancel);
    }
    match rx.recv() {
        Ok(WorkReply {
            payload: Ok((outcome, degraded)),
        }) => {
            let mut o = Json::object();
            if let Some(id) = id {
                o.push("id", id);
            }
            o.push("ok", true);
            o.push("degraded", degraded);
            o.push("outcome", outcome);
            o
        }
        Ok(WorkReply { payload: Err(e) }) => error_response(id, &e),
        Err(_) => error_response(
            id,
            &WireError::internal("worker vanished before replying".to_string()),
        ),
    }
}

fn error_response(id: Option<u64>, e: &WireError) -> Json {
    let mut o = Json::object();
    if let Some(id) = id {
        o.push("id", id);
    }
    o.push("ok", false);
    o.push("error", e.to_json());
    o
}
