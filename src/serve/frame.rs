//! Length-prefixed JSON framing for serve connections.
//!
//! A frame is a 4-byte big-endian length `n` followed by exactly `n`
//! bytes of UTF-8 JSON (the compact rendering of one [`Json`] value).
//! The length prefix makes message boundaries explicit on a byte
//! stream, so a reader never has to guess where one JSON value ends —
//! and a *short* or *interrupted* read (a socket delivering one byte at
//! a time, an `Interrupted` errno mid-frame) only ever splits a frame,
//! never corrupts it. [`read_frame`] loops until the frame is complete,
//! retries `Interrupted`, and treats EOF **between** frames as a clean
//! close (`Ok(None)`) but EOF **inside** a frame as a protocol error.
//!
//! Frames are capped at [`MAX_FRAME_BYTES`] so a corrupt or hostile
//! length prefix cannot make a peer allocate gigabytes.

use std::io::{ErrorKind, Read, Write};

use crate::error::Error;
use crate::json::Json;

/// Upper bound on a frame body (16 MiB — a full sweep outcome is well
/// under 1 MiB; anything larger is a corrupt prefix, not a message).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one value as a length-prefixed compact-JSON frame and flushes.
///
/// # Errors
///
/// [`Error::Io`] when the peer is gone mid-write.
pub fn write_frame(w: &mut impl Write, value: &Json) -> Result<(), Error> {
    let body = value.to_string_compact();
    let len = u32::try_from(body.len())
        .map_err(|_| Error::Protocol(format!("frame of {} bytes exceeds u32", body.len())))?;
    w.write_all(&len.to_be_bytes())
        .and_then(|()| w.write_all(body.as_bytes()))
        .and_then(|()| w.flush())
        .map_err(|e| Error::io("writing frame", e))
}

/// Reads one frame, tolerating arbitrarily short and interrupted reads.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly
/// between frames.
///
/// # Errors
///
/// [`Error::Protocol`] on an oversized length prefix, EOF inside a
/// frame, or a body that is not valid JSON; [`Error::Io`] on transport
/// faults.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, Error> {
    let mut prefix = [0u8; 4];
    match read_full(r, &mut prefix)? {
        0 => return Ok(None),
        4 => {}
        got => {
            return Err(Error::Protocol(format!(
                "connection closed {got} bytes into a frame header"
            )))
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(Error::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; len];
    let got = read_full(r, &mut body)?;
    if got != len {
        return Err(Error::Protocol(format!(
            "connection closed {got} bytes into a {len}-byte frame body"
        )));
    }
    let text = std::str::from_utf8(&body)
        .map_err(|e| Error::Protocol(format!("frame body is not UTF-8: {e}")))?;
    let json = Json::parse(text).map_err(|e| Error::Protocol(format!("frame body: {e}")))?;
    Ok(Some(json))
}

/// Fills `buf` from `r`, looping over however many partial reads the
/// transport needs and retrying `Interrupted`. Returns the bytes
/// actually read — short only when EOF arrived first.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::io("reading frame", e)),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that delivers at most one byte per call and sprinkles
    /// `Interrupted` errors between them — the worst legal transport.
    struct TrickleReader {
        data: Vec<u8>,
        pos: usize,
        interrupt_every: usize,
        calls: usize,
    }

    impl Read for TrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.calls += 1;
            if self.interrupt_every > 0 && self.calls.is_multiple_of(self.interrupt_every) {
                return Err(std::io::Error::new(ErrorKind::Interrupted, "injected"));
            }
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn frame_bytes(value: &Json) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, value).unwrap();
        out
    }

    #[test]
    fn frames_survive_one_byte_interrupted_reads() {
        let mut value = Json::object();
        value.push("id", 7u64);
        value.push("nested", {
            let mut o = Json::object();
            o.push("text", "hello \"frames\"");
            o
        });
        let mut r = TrickleReader {
            data: frame_bytes(&value),
            pos: 0,
            interrupt_every: 3,
            calls: 0,
        };
        let back = read_frame(&mut r).unwrap().expect("one frame");
        assert_eq!(back.to_string_compact(), value.to_string_compact());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after");
    }

    #[test]
    fn eof_mid_frame_is_a_protocol_error_not_a_hang() {
        let value = Json::from("x");
        let mut bytes = frame_bytes(&value);
        bytes.truncate(bytes.len() - 1);
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor) {
            Err(Error::Protocol(d)) => assert!(d.contains("frame body"), "{d}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = vec![0xFF, 0xFF, 0xFF, 0xFF];
        bytes.extend_from_slice(b"junk");
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor) {
            Err(Error::Protocol(d)) => assert!(d.contains("cap"), "{d}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_body_is_a_protocol_error() {
        let mut bytes = 5u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"not{j");
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(Error::Protocol(_))));
    }
}
