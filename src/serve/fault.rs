//! Deterministic fault injection for the serve layer.
//!
//! A [`FaultPlan`] decides, at named sites, whether to inject a fault:
//! a worker panic just before evaluation, a forced eviction of every
//! warmed context, a stall that burns a request's deadline, or a
//! transport that delivers one byte per read. Decisions come from a
//! splitmix-style hash of `(seed, site, per-site counter)` compared
//! against a per-mille rate — so a plan with a given seed produces the
//! *same* fault schedule on every run, and the soak test's assertions
//! ("the daemon survived exactly these faults") are reproducible
//! instead of flaky.
//!
//! Plans are test/env-gated: production servers run with
//! [`FaultPlan::none`] unless the `MCCM_FAULTS` environment variable
//! (`seed=7,worker_panic=120,eval_stall=80,cache_evict=50,short_read=300`,
//! rates in per-mille) or a programmatic plan says otherwise.

use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A named place where the plan may inject a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic inside a worker, after admission, before evaluation.
    WorkerPanic,
    /// Sleep long enough to push a deadlined request past its budget.
    EvalStall,
    /// Drop every warmed context before running (cold-cache restart).
    CacheEvict,
    /// Deliver socket reads one byte at a time on the server side.
    ShortRead,
}

impl FaultSite {
    fn index(self) -> usize {
        match self {
            Self::WorkerPanic => 0,
            Self::EvalStall => 1,
            Self::CacheEvict => 2,
            Self::ShortRead => 3,
        }
    }

    fn key(self) -> &'static str {
        match self {
            Self::WorkerPanic => "worker_panic",
            Self::EvalStall => "eval_stall",
            Self::CacheEvict => "cache_evict",
            Self::ShortRead => "short_read",
        }
    }
}

const SITES: usize = 4;

#[derive(Debug, Default)]
struct PlanState {
    counters: [AtomicU64; SITES],
}

/// A deterministic, seeded fault schedule (see the module docs).
///
/// Clones share their per-site counters, so every decision point in the
/// process draws from one global schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Per-mille injection rate per site, indexed by [`FaultSite::index`].
    rates: [u16; SITES],
    state: Arc<PlanState>,
}

impl FaultPlan {
    /// A plan that never injects anything (the production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A seeded plan with all rates zero; chain [`Self::with_rate`].
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Sets a site's injection rate in per-mille (clamped to 1000).
    pub fn with_rate(mut self, site: FaultSite, per_mille: u16) -> Self {
        self.rates[site.index()] = per_mille.min(1000);
        self
    }

    /// Whether any site has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|&r| r > 0)
    }

    /// Parses the `MCCM_FAULTS` environment variable. Unset or empty
    /// means no injection; a malformed value is *ignored* (a fault
    /// harness must never take the server down by itself).
    pub fn from_env() -> Self {
        match std::env::var("MCCM_FAULTS") {
            Ok(spec) => Self::parse(&spec).unwrap_or_else(Self::none),
            Err(_) => Self::none(),
        }
    }

    /// Parses a `key=value,key=value` spec (`seed` plus the site keys,
    /// rates in per-mille). Returns `None` on any malformed entry.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut plan = Self::none();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=')?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value.parse().ok()?;
                continue;
            }
            let site = [
                FaultSite::WorkerPanic,
                FaultSite::EvalStall,
                FaultSite::CacheEvict,
                FaultSite::ShortRead,
            ]
            .into_iter()
            .find(|s| s.key() == key)?;
            let rate: u16 = value.parse().ok()?;
            plan.rates[site.index()] = rate.min(1000);
        }
        Some(plan)
    }

    /// Draws the next decision for `site`: `true` means inject. Each
    /// call advances that site's counter, so the schedule is a pure
    /// function of `(seed, site, how many times this site was asked)`.
    pub fn fire(&self, site: FaultSite) -> bool {
        let rate = self.rates[site.index()];
        if rate == 0 {
            return false;
        }
        let n = self.state.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        let h = splitmix(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(site.index() as u64)
                .wrapping_add(n.wrapping_mul(0x2545_F491_4F6C_DD1D)),
        );
        (h % 1000) < u64::from(rate)
    }

    /// Panics iff the plan schedules a [`FaultSite::WorkerPanic`] now.
    /// This is the *only* intentional panic in the serve layer (see the
    /// `no-panic-serve` lint allow entry): it exists so the daemon's
    /// catch-and-rebuild path is exercised by real unwinds, not mocks.
    pub fn maybe_panic(&self) {
        if self.fire(FaultSite::WorkerPanic) {
            panic!("injected fault: worker panic");
        }
    }

    /// Sleeps `stall_ms` iff the plan schedules an [`FaultSite::EvalStall`].
    pub fn maybe_stall(&self, stall_ms: u64) {
        if self.fire(FaultSite::EvalStall) {
            std::thread::sleep(std::time::Duration::from_millis(stall_ms));
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reader that delivers at most one byte per call while its plan
/// keeps scheduling [`FaultSite::ShortRead`] — wrapped around server
/// sockets to prove the framing layer reassembles split frames.
pub struct FaultyReader<R> {
    inner: R,
    plan: FaultPlan,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`; with an inactive plan this is a transparent pass-through.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        Self { inner, plan }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let take = if !buf.is_empty() && self.plan.fire(FaultSite::ShortRead) {
            1
        } else {
            buf.len()
        };
        self.inner.read(&mut buf[..take])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_rate_shaped() {
        let draws = |seed: u64, rate: u16| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).with_rate(FaultSite::WorkerPanic, rate);
            (0..2000)
                .map(|_| plan.fire(FaultSite::WorkerPanic))
                .collect()
        };
        assert_eq!(draws(7, 100), draws(7, 100), "same seed, same schedule");
        assert_ne!(draws(7, 100), draws(8, 100), "seeds diverge");
        let hits = draws(7, 100).iter().filter(|&&b| b).count();
        // 10% nominal over 2000 draws; generous band, deterministic test.
        assert!((100..=300).contains(&hits), "{hits} hits at 100/1000");
        assert_eq!(draws(7, 0).iter().filter(|&&b| b).count(), 0);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan::seeded(3)
            .with_rate(FaultSite::WorkerPanic, 500)
            .with_rate(FaultSite::CacheEvict, 500);
        let a: Vec<bool> = (0..64).map(|_| plan.fire(FaultSite::WorkerPanic)).collect();
        let b: Vec<bool> = (0..64).map(|_| plan.fire(FaultSite::CacheEvict)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn parse_round_trips_the_documented_spec() {
        let plan = FaultPlan::parse(
            "seed=9, worker_panic=120, eval_stall=80, cache_evict=50, short_read=1000",
        )
        .expect("valid spec");
        assert!(plan.is_active());
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.rates, [120, 80, 50, 1000]);
        assert!(FaultPlan::parse("").expect("empty is a no-op plan").rates == [0; 4]);
        assert!(FaultPlan::parse("bogus=1").is_none());
        assert!(FaultPlan::parse("worker_panic=abc").is_none());
    }

    #[test]
    fn clones_share_one_schedule() {
        let plan = FaultPlan::seeded(1).with_rate(FaultSite::EvalStall, 1000);
        let twin = plan.clone();
        assert!(plan.fire(FaultSite::EvalStall));
        // The twin's counter advanced with the original's.
        assert_eq!(twin.state.counters[1].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn faulty_reader_trickles_but_loses_nothing() {
        let data: Vec<u8> = (0..=255).collect();
        let plan = FaultPlan::seeded(2).with_rate(FaultSite::ShortRead, 1000);
        let mut r = FaultyReader::new(std::io::Cursor::new(data.clone()), plan);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }
}
