//! The client side of the serve protocol: `mccm run --connect` and the
//! `stats` / `shutdown` admin commands speak through here.
//!
//! A [`Client`] is one connection; [`run_with_retry`] layers seeded,
//! jittered exponential backoff on top so `busy` rejections (the
//! daemon's admission control doing its job) are retried rather than
//! surfaced — deterministically: the backoff schedule is a pure
//! function of the [`RetryPolicy`] seed and the attempt number, so two
//! runs of the same client behave identically apart from wall-clock.

use std::net::TcpStream;
use std::time::Duration;

use crate::error::Error;
use crate::json::Json;
use crate::scenario::Scenario;

use super::frame::{read_frame, write_frame};

/// A successful `run` response.
#[derive(Debug, Clone)]
pub struct RunReply {
    /// The outcome JSON — byte-identical (after pretty-printing) to a
    /// local `mccm run` of the same scenario when not degraded.
    pub outcome: Json,
    /// Whether the server hit the request's deadline and returned an
    /// honest partial result.
    pub degraded: bool,
}

/// Retry behaviour of [`run_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts beyond the first (0 disables retrying).
    pub retries: u32,
    /// Base backoff; attempt `k` waits `base * 2^k` plus jitter.
    pub base_ms: u64,
    /// Backoff cap.
    pub max_ms: u64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            retries: 5,
            base_ms: 20,
            max_ms: 2000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The exact delay before retry attempt `attempt` (0-based),
    /// honouring the server's `retry_after_ms` hint as a floor:
    /// `max(hint, min(base * 2^attempt + jitter, max))` where jitter is
    /// a deterministic draw in `[0, base)`.
    pub fn delay_ms(&self, attempt: u32, server_hint_ms: u64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let jitter = if self.base_ms == 0 {
            0
        } else {
            splitmix(self.seed.wrapping_add(u64::from(attempt))) % self.base_ms
        };
        exp.saturating_add(jitter)
            .min(self.max_ms)
            .max(server_hint_ms)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One framed connection to a daemon.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the daemon is unreachable.
    pub fn connect(addr: &str) -> Result<Self, Error> {
        let stream =
            TcpStream::connect(addr).map_err(|e| Error::io(format!("connecting {addr}"), e))?;
        Ok(Self { stream, next_id: 1 })
    }

    /// Sends one request frame and reads one response frame.
    fn round_trip(&mut self, request: &Json) -> Result<Json, Error> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)?
            .ok_or_else(|| Error::Protocol("server closed without responding".to_string()))
    }

    /// Runs a scenario remotely. `deadline_ms` arms the server-side
    /// deadline; expiry yields `Ok` with `degraded == true`.
    ///
    /// # Errors
    ///
    /// [`Error::Busy`] / [`Error::Draining`] on admission rejection
    /// (retryable — see [`run_with_retry`]), [`Error::Remote`] when the
    /// server reports a request failure, [`Error::Protocol`] /
    /// [`Error::Io`] on transport faults.
    pub fn run(
        &mut self,
        scenario: &Scenario,
        deadline_ms: Option<u64>,
    ) -> Result<RunReply, Error> {
        let mut request = Json::object();
        request.push("id", self.next_id);
        self.next_id += 1;
        request.push("run", scenario.to_json());
        if let Some(ms) = deadline_ms {
            request.push("deadline_ms", ms);
        }
        let response = self.round_trip(&request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            let outcome = response
                .get("outcome")
                .cloned()
                .ok_or_else(|| Error::Protocol("ok response without outcome".to_string()))?;
            let degraded = response
                .get("degraded")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            return Ok(RunReply { outcome, degraded });
        }
        Err(decode_error(&response))
    }

    /// Fetches the daemon's stats object (plus a `draining` flag).
    ///
    /// # Errors
    ///
    /// Transport faults, or [`Error::Protocol`] on a malformed reply.
    pub fn stats(&mut self) -> Result<Json, Error> {
        let mut request = Json::object();
        request.push("stats", true);
        let response = self.round_trip(&request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            return Ok(response);
        }
        Err(decode_error(&response))
    }

    /// Asks the daemon to drain and exit; returns its final response
    /// (with the drained stats embedded).
    ///
    /// # Errors
    ///
    /// Transport faults, or [`Error::Protocol`] on a malformed reply.
    pub fn shutdown(&mut self) -> Result<Json, Error> {
        let mut request = Json::object();
        request.push("shutdown", true);
        let response = self.round_trip(&request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            return Ok(response);
        }
        Err(decode_error(&response))
    }
}

/// Maps a `{"ok":false,"error":{...}}` frame back to a typed [`Error`].
fn decode_error(response: &Json) -> Error {
    let Some(error) = response.get("error") else {
        return Error::Protocol(format!(
            "response is neither ok nor an error: {}",
            response.to_string_compact()
        ));
    };
    let kind = error.get("kind").and_then(Json::as_str).unwrap_or("");
    let detail = error
        .get("detail")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    match kind {
        "busy" => Error::Busy {
            retry_after_ms: error
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        },
        "draining" => Error::Draining,
        "protocol" => Error::Protocol(detail),
        "" => Error::Protocol(format!(
            "error response without a kind: {}",
            response.to_string_compact()
        )),
        _ => Error::Remote {
            kind: kind.to_string(),
            exit_code: error
                .get("exit_code")
                .and_then(Json::as_u64)
                .and_then(|c| u8::try_from(c).ok())
                .unwrap_or(Error::INTERNAL_EXIT_CODE),
            detail,
        },
    }
}

/// Runs a scenario with admission-control retries: each `busy`
/// rejection sleeps the policy's deterministic backoff (floored at the
/// server's hint) and reconnects. `Draining` and every other error are
/// not retried — the daemon asked the client to go away or the request
/// itself is at fault.
///
/// # Errors
///
/// The final attempt's error once retries are exhausted, or any
/// non-retryable error immediately.
pub fn run_with_retry(
    addr: &str,
    scenario: &Scenario,
    deadline_ms: Option<u64>,
    policy: &RetryPolicy,
) -> Result<RunReply, Error> {
    let mut attempt = 0u32;
    loop {
        let result = Client::connect(addr).and_then(|mut c| c.run(scenario, deadline_ms));
        match result {
            Err(Error::Busy { retry_after_ms }) if attempt < policy.retries => {
                let delay = policy.delay_ms(attempt, retry_after_ms);
                std::thread::sleep(Duration::from_millis(delay));
                attempt += 1;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_monotone_and_hint_floored() {
        let p = RetryPolicy {
            retries: 6,
            base_ms: 10,
            max_ms: 500,
            seed: 42,
        };
        let a: Vec<u64> = (0..6).map(|k| p.delay_ms(k, 0)).collect();
        let b: Vec<u64> = (0..6).map(|k| p.delay_ms(k, 0)).collect();
        assert_eq!(a, b, "same policy, same schedule");
        for (k, d) in a.iter().enumerate() {
            let exp = 10u64 << k;
            assert!(
                (exp..exp + 10).contains(d) || *d == 500,
                "attempt {k}: delay {d} outside [{exp}, {})",
                exp + 10
            );
        }
        // The cap holds and the server hint floors the delay.
        assert_eq!(p.delay_ms(20, 0), 500);
        assert_eq!(p.delay_ms(0, 9000), 9000);
        // A different seed jitters differently (with overwhelming
        // probability over six draws).
        let q = RetryPolicy { seed: 43, ..p };
        assert_ne!(a, (0..6).map(|k| q.delay_ms(k, 0)).collect::<Vec<_>>());
    }

    #[test]
    fn decode_error_round_trips_the_wire_kinds() {
        let frame = |kind: &str, extra: &[(&str, u64)]| {
            let mut e = Json::object();
            e.push("kind", kind);
            e.push("exit_code", 7u64);
            for (k, v) in extra {
                e.push(k, *v);
            }
            e.push("detail", "d");
            let mut r = Json::object();
            r.push("ok", false);
            r.push("error", e);
            r
        };
        assert!(matches!(
            decode_error(&frame("busy", &[("retry_after_ms", 30)])),
            Error::Busy { retry_after_ms: 30 }
        ));
        assert!(matches!(
            decode_error(&frame("draining", &[])),
            Error::Draining
        ));
        assert!(matches!(
            decode_error(&frame("protocol", &[])),
            Error::Protocol(_)
        ));
        match decode_error(&frame("arch", &[])) {
            Error::Remote {
                kind, exit_code, ..
            } => {
                assert_eq!(kind, "arch");
                assert_eq!(exit_code, 7);
            }
            other => panic!("expected remote, got {other:?}"),
        }
        assert!(matches!(decode_error(&Json::object()), Error::Protocol(_)));
    }
}
