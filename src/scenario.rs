//! The declarative request format of the scenario API: one serializable
//! [`Scenario`] describes *what* to run — which CNN, which board, which
//! action — and [`Session::run`](crate::session::Session::run) decides
//! *how*, reusing warmed builder contexts across requests.
//!
//! A scenario is plain data. It parses from (and serializes back to) the
//! JSON documented in `docs/scenario_file.md`; unknown or mistyped fields
//! are rejected with the offending dotted path named, and every name
//! (model, board, architecture, precision, metric) is validated against
//! its crate registry at parse time so errors surface before any work
//! runs.
//!
//! # Examples
//!
//! ```
//! use mccm::scenario::Scenario;
//!
//! let text = r#"{
//!     "model": {"zoo": "mobilenetv2"},
//!     "board": {"builtin": "zc706"},
//!     "action": {"evaluate": {"template": "hybrid", "ces": 4}}
//! }"#;
//! let scenario = Scenario::from_json_str(text).unwrap();
//! // Serialization is canonical: defaults are materialized, and the
//! // result re-parses to an equal scenario.
//! let back = Scenario::from_json_str(&scenario.to_json_string()).unwrap();
//! assert_eq!(scenario, back);
//! ```

use crate::arch::templates::Architecture;
use crate::arch::Schedule;
use crate::cnn::synthetic::SyntheticConfig;
use crate::cnn::{zoo, CnnModel};
use crate::core::Metric;
use crate::dse::OptimizerConfig;
use crate::error::Error;
use crate::fpga::{FpgaBoard, MiB, Precision};
use crate::json::Json;

/// Which CNN a scenario runs against.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A zoo model by canonical name ([`zoo::names`]).
    Zoo(String),
    /// A seeded synthetic CNN ([`crate::cnn::synthetic::random_cnn`]).
    Synthetic {
        /// Generator seed.
        seed: u64,
        /// Generator configuration.
        config: SyntheticConfig,
    },
}

impl ModelSpec {
    /// Builds the CNN this spec describes.
    ///
    /// # Errors
    ///
    /// [`Error::Scenario`] for unknown zoo names (parse-time validation
    /// normally catches this first).
    pub fn build(&self) -> Result<CnnModel, Error> {
        match self {
            Self::Zoo(name) => zoo::by_name(name)
                .ok_or_else(|| unknown_name_error("model.zoo", name, zoo::names())),
            Self::Synthetic { seed, config } => {
                Ok(crate::cnn::synthetic::random_cnn(*seed, config))
            }
        }
    }

    /// Deterministic cache-key token: two specs with equal tokens build
    /// identical CNNs.
    pub fn cache_token(&self) -> String {
        match self {
            Self::Zoo(name) => format!("zoo:{name}"),
            Self::Synthetic { seed, config } => format!(
                "synthetic:seed={seed},layers={},size={},base={},res={},dw={}",
                config.conv_layers,
                config.input_size,
                config.base_channels,
                config.residual_prob,
                config.depthwise_prob
            ),
        }
    }
}

/// Which FPGA platform a scenario targets.
#[derive(Debug, Clone, PartialEq)]
pub enum BoardSpec {
    /// An evaluation board by name ([`FpgaBoard::names`]).
    Builtin(String),
    /// A custom platform with explicit resources.
    Custom(FpgaBoard),
}

impl BoardSpec {
    /// Builds the board this spec describes.
    ///
    /// # Errors
    ///
    /// [`Error::Scenario`] for unknown builtin names.
    pub fn build(&self) -> Result<FpgaBoard, Error> {
        match self {
            Self::Builtin(name) => FpgaBoard::by_name(name)
                .ok_or_else(|| unknown_name_error("board.builtin", name, FpgaBoard::names())),
            Self::Custom(board) => Ok(board.clone()),
        }
    }

    /// Deterministic cache-key token: two specs with equal tokens build
    /// identical boards.
    pub fn cache_token(&self) -> String {
        match self {
            Self::Builtin(name) => format!("builtin:{}", name.to_ascii_lowercase()),
            Self::Custom(b) => format!(
                "custom:{},dsps={},bram={},bw={},clk={}",
                b.name, b.dsps, b.bram.0, b.bandwidth_gbps, b.clock_mhz
            ),
        }
    }
}

/// Which accelerator design an evaluate action targets.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignSpec {
    /// The paper's textual notation (`{L1-L4: CE1, …}`).
    Notation(String),
    /// A baseline template instantiated at a CE count.
    Template {
        /// Which of the three architectures.
        architecture: Architecture,
        /// CE count.
        ces: usize,
    },
}

impl DesignSpec {
    /// Materializes the design as an accelerator spec for `model` — the
    /// one resolution path the session and the `validate` command share.
    ///
    /// # Errors
    ///
    /// [`Error::Arch`] for notation parse faults or invalid template
    /// instantiations.
    pub fn instantiate(&self, model: &CnnModel) -> Result<crate::arch::AcceleratorSpec, Error> {
        match self {
            Self::Notation(text) => Ok(crate::arch::notation::parse(text)?),
            Self::Template { architecture, ces } => Ok(architecture.instantiate(model, *ces)?),
        }
    }
}

/// What a scenario does once its (model, board) context is warmed.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Evaluate one design through the full cost model (plus energy).
    Evaluate {
        /// The design to evaluate.
        design: DesignSpec,
    },
    /// Sweep the three baseline architectures over a CE-count range and
    /// pick winners per metric with the paper's 10% tie rule.
    Sweep {
        /// Smallest CE count (inclusive).
        min_ces: usize,
        /// Largest CE count (inclusive).
        max_ces: usize,
    },
    /// Sample the custom design space and report the Pareto front over
    /// `metrics`.
    Sample {
        /// Feasible designs to evaluate.
        count: usize,
        /// Front objectives.
        metrics: Vec<Metric>,
    },
    /// Guided multi-objective optimization over the custom space.
    Optimize {
        /// Objectives.
        metrics: Vec<Metric>,
        /// Total evaluation-attempt budget.
        budget: u64,
        /// Population per island.
        population: usize,
        /// Island count.
        islands: usize,
        /// Generations between migration epochs.
        migration_interval: usize,
        /// Elite migrants per epoch.
        migrants: usize,
        /// Crossover probability.
        crossover_prob: f64,
        /// Largest depth-first fuse depth in the schedule axis (1 =
        /// layer-by-layer only, the pre-schedule search space).
        max_fuse_depth: usize,
    },
    /// Guided optimization followed by simulator-in-the-loop calibration:
    /// the top-K front members are promoted to the reference simulator,
    /// the (analytical, simulated) pairs accumulate in a persistent
    /// store, and the front is annotated with calibrated predictions and
    /// ± residual error bars (see `docs/calibration.md`).
    Calibrate {
        /// Objectives of the underlying optimization.
        metrics: Vec<Metric>,
        /// Total evaluation-attempt budget of the optimization.
        budget: u64,
        /// Population per island.
        population: usize,
        /// Island count.
        islands: usize,
        /// Front members promoted to the simulator (per-metric extremes
        /// plus crowding-spread fill).
        top_k: usize,
        /// Calibration-store file accumulating pairs across runs; `None`
        /// calibrates from this run's pairs only, persisting nothing.
        store: Option<String>,
    },
}

/// Per-CE overrides of an evaluate scenario (`ces[i]` addresses the
/// design's assignment `i`, in notation order).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CeOverride {
    /// Replaces the assignment's schedule when set.
    pub schedule: Option<Schedule>,
}

impl Action {
    /// The action's JSON key (`evaluate` / `sweep` / `sample` /
    /// `optimize` / `calibrate`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Evaluate { .. } => "evaluate",
            Self::Sweep { .. } => "sweep",
            Self::Sample { .. } => "sample",
            Self::Optimize { .. } => "optimize",
            Self::Calibrate { .. } => "calibrate",
        }
    }
}

/// Default front objectives of the sample action (the paper's Use Case 3
/// plot: throughput vs on-chip buffers).
pub const SAMPLE_DEFAULT_METRICS: [Metric; 2] = [Metric::Throughput, Metric::OnChipBuffers];

/// Default number of front members a calibrate action promotes to the
/// simulator: one extreme per objective plus a few spread samples, small
/// enough that promotion stays a fraction of the search budget's cost.
pub const CALIBRATE_DEFAULT_TOP_K: usize = 8;

/// A complete, self-contained request: model + board context, execution
/// knobs, and one action. See the module docs for the JSON form.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which CNN.
    pub model: ModelSpec,
    /// Which platform.
    pub board: BoardSpec,
    /// Data-type widths (default 8-bit).
    pub precision: Precision,
    /// Batch size for batch-latency reporting (≥ 1, default 1).
    pub batch: usize,
    /// RNG seed for sampling/optimization (default 1).
    pub seed: u64,
    /// Worker threads (`0` = one per core, the default). Results are
    /// worker-count invariant throughout.
    pub workers: usize,
    /// Design-wide schedule applied to every single-CE assignment of an
    /// evaluate design (pipelined blocks keep layer-by-layer — they
    /// already overlap layers at tile granularity). `None` keeps
    /// whatever the design specifies. Evaluate-only.
    pub schedule: Option<Schedule>,
    /// Per-CE overrides (`ces[i]` addresses assignment `i`); may be
    /// shorter than the design's assignment list. Evaluate-only.
    pub ces: Vec<CeOverride>,
    /// What to run.
    pub action: Action,
}

impl Scenario {
    /// A scenario with default knobs (8-bit, batch 1, seed 1, auto
    /// workers).
    pub fn new(model: ModelSpec, board: BoardSpec, action: Action) -> Self {
        Self {
            model,
            board,
            precision: Precision::default(),
            batch: 1,
            seed: 1,
            workers: 0,
            schedule: None,
            ces: Vec::new(),
            action,
        }
    }

    /// Parses a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// [`Error::Json`] for syntax faults, [`Error::Scenario`] for
    /// unknown/mistyped/missing fields (with the dotted field path
    /// named).
    pub fn from_json_str(text: &str) -> Result<Self, Error> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Parses a scenario from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// As [`Self::from_json_str`], minus the syntax cases.
    pub fn from_json(root: &Json) -> Result<Self, Error> {
        let obj = expect_object(root, "(root)")?;
        check_keys(
            obj,
            "(root)",
            &[
                "model",
                "board",
                "precision",
                "batch",
                "seed",
                "workers",
                "schedule",
                "ces",
                "action",
            ],
        )?;
        let model = parse_model(require(root, "model", "(root)")?)?;
        let board = parse_board(require(root, "board", "(root)")?)?;
        let precision = match root.get("precision") {
            None => Precision::default(),
            Some(v) => {
                let name = expect_str(v, "precision")?;
                Precision::by_name(name)
                    .ok_or_else(|| unknown_name_error("precision", name, Precision::names()))?
            }
        };
        let batch = opt_usize(root, "batch", 1)?;
        if batch == 0 {
            return Err(Error::scenario("batch", "must be at least 1"));
        }
        let seed = opt_u64(root, "seed", 1)?;
        let workers = opt_usize(root, "workers", 0)?;
        let schedule = match root.get("schedule") {
            None => None,
            Some(v) => Some(parse_schedule(v, "schedule")?),
        };
        let ces = match root.get("ces") {
            None => Vec::new(),
            Some(v) => parse_ce_overrides(v)?,
        };
        let action = parse_action(require(root, "action", "(root)")?)?;
        if !matches!(action, Action::Evaluate { .. }) {
            // Schedule overrides rewrite one concrete design; the search
            // actions carry the axis inside their own configuration
            // (`action.optimize.max_fuse_depth`) instead.
            if schedule.is_some() {
                return Err(Error::scenario(
                    "schedule",
                    format!(
                        "only applies to the evaluate action, not `{}`",
                        action.name()
                    ),
                ));
            }
            if !ces.is_empty() {
                return Err(Error::scenario(
                    "ces",
                    format!(
                        "only applies to the evaluate action, not `{}`",
                        action.name()
                    ),
                ));
            }
        }
        Ok(Self {
            model,
            board,
            precision,
            batch,
            seed,
            workers,
            schedule,
            ces,
            action,
        })
    }

    /// The canonical JSON form: every field materialized (defaults
    /// included), keys in a fixed order. `to_json` ∘ [`Self::from_json`]
    /// is the identity on scenarios.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        let mut model = Json::object();
        match &self.model {
            ModelSpec::Zoo(name) => model.push("zoo", name.as_str()),
            ModelSpec::Synthetic { seed, config } => {
                let mut synth = Json::object();
                synth.push("seed", *seed);
                synth.push("conv_layers", config.conv_layers);
                synth.push("input_size", config.input_size);
                synth.push("base_channels", config.base_channels);
                synth.push("residual_prob", config.residual_prob);
                synth.push("depthwise_prob", config.depthwise_prob);
                model.push("synthetic", synth);
            }
        }
        root.push("model", model);
        let mut board = Json::object();
        match &self.board {
            BoardSpec::Builtin(name) => board.push("builtin", name.as_str()),
            BoardSpec::Custom(b) => {
                let mut custom = Json::object();
                custom.push("name", b.name.as_str());
                custom.push("dsps", b.dsps);
                custom.push("bram_mib", b.bram.0);
                custom.push("bandwidth_gbps", b.bandwidth_gbps);
                custom.push("clock_mhz", b.clock_mhz);
                board.push("custom", custom);
            }
        }
        root.push("board", board);
        root.push("precision", self.precision.name().unwrap_or("int8"));
        root.push("batch", self.batch);
        root.push("seed", self.seed);
        root.push("workers", self.workers);
        // Optional overrides stay absent when unset, so unset → absent →
        // unset round-trips and the canonical form is a fixed point.
        if let Some(schedule) = self.schedule {
            root.push("schedule", schedule_json(schedule));
        }
        if !self.ces.is_empty() {
            let entries: Vec<Json> = self
                .ces
                .iter()
                .map(|c| {
                    let mut entry = Json::object();
                    if let Some(s) = c.schedule {
                        entry.push("schedule", schedule_json(s));
                    }
                    entry
                })
                .collect();
            root.push("ces", entries);
        }
        let mut action = Json::object();
        match &self.action {
            Action::Evaluate { design } => {
                let mut body = Json::object();
                match design {
                    DesignSpec::Notation(text) => body.push("notation", text.as_str()),
                    DesignSpec::Template { architecture, ces } => {
                        body.push("template", architecture.name().to_ascii_lowercase());
                        body.push("ces", *ces);
                    }
                }
                action.push("evaluate", body);
            }
            Action::Sweep { min_ces, max_ces } => {
                let mut body = Json::object();
                body.push("min_ces", *min_ces);
                body.push("max_ces", *max_ces);
                action.push("sweep", body);
            }
            Action::Sample { count, metrics } => {
                let mut body = Json::object();
                body.push("count", *count);
                body.push("metrics", metric_list(metrics));
                action.push("sample", body);
            }
            Action::Optimize {
                metrics,
                budget,
                population,
                islands,
                migration_interval,
                migrants,
                crossover_prob,
                max_fuse_depth,
            } => {
                let mut body = Json::object();
                body.push("metrics", metric_list(metrics));
                body.push("budget", *budget);
                body.push("population", *population);
                body.push("islands", *islands);
                body.push("migration_interval", *migration_interval);
                body.push("migrants", *migrants);
                body.push("crossover_prob", *crossover_prob);
                body.push("max_fuse_depth", *max_fuse_depth);
                action.push("optimize", body);
            }
            Action::Calibrate {
                metrics,
                budget,
                population,
                islands,
                top_k,
                store,
            } => {
                let mut body = Json::object();
                body.push("metrics", metric_list(metrics));
                body.push("budget", *budget);
                body.push("population", *population);
                body.push("islands", *islands);
                body.push("top_k", *top_k);
                if let Some(store) = store {
                    body.push("store", store.as_str());
                }
                action.push("calibrate", body);
            }
        }
        root.push("action", action);
        root
    }

    /// Canonical pretty-printed JSON text ([`Self::to_json`]).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// The optimizer configuration an optimize- or calibrate-action
    /// scenario denotes. `None` for other actions.
    pub fn optimizer_config(&self) -> Option<OptimizerConfig> {
        match &self.action {
            Action::Calibrate {
                metrics,
                budget,
                population,
                islands,
                ..
            } => Some(
                OptimizerConfig::default()
                    .with_metrics(metrics)
                    .with_budget(*budget)
                    .with_population(*population)
                    .with_islands(*islands)
                    .with_seed(self.seed),
            ),
            Action::Optimize {
                metrics,
                budget,
                population,
                islands,
                migration_interval,
                migrants,
                crossover_prob,
                max_fuse_depth,
            } => Some(
                OptimizerConfig::default()
                    .with_metrics(metrics)
                    .with_budget(*budget)
                    .with_population(*population)
                    .with_islands(*islands)
                    .with_seed(self.seed)
                    .with_migration_interval(*migration_interval)
                    .with_migrants(*migrants)
                    .with_crossover_prob(*crossover_prob)
                    .with_max_fuse_depth(*max_fuse_depth),
            ),
            _ => None,
        }
    }
}

/// Applies one `--set key=value` override to a parsed scenario document:
/// `path` is a dotted key chain (e.g. `action.sample.count`), descending
/// through objects (creating missing leaves) and — via numeric segments —
/// into array elements (e.g. `ces.1.schedule.fuse_depth`); `raw` is
/// parsed as JSON when it is valid JSON, and treated as a bare string
/// otherwise (so `--set model.zoo=resnet50` and `--set batch=4` both do
/// what they look like).
///
/// # Errors
///
/// [`Error::Scenario`] when the path crosses a scalar, indexes an array
/// with a non-numeric or out-of-range segment (arrays are addressed, not
/// grown), every error naming the full dotted path.
pub fn apply_override(root: &mut Json, path: &str, raw: &str) -> Result<(), Error> {
    let value = Json::parse(raw).unwrap_or_else(|_| Json::Str(raw.to_string()));
    let segments: Vec<&str> = path.split('.').collect();
    if segments.iter().any(|s| s.is_empty()) {
        return Err(Error::scenario(path, "override path has an empty segment"));
    }
    let mut cursor = root;
    for (i, segment) in segments.iter().enumerate() {
        let last = i + 1 == segments.len();
        match cursor {
            Json::Object(pairs) => {
                let position = pairs.iter().position(|(k, _)| k == segment);
                match position {
                    Some(p) if last => {
                        pairs[p].1 = value;
                        return Ok(());
                    }
                    Some(p) => cursor = &mut pairs[p].1,
                    None => {
                        let fresh = if last { value.clone() } else { Json::object() };
                        pairs.push((segment.to_string(), fresh));
                        if last {
                            return Ok(());
                        }
                        cursor = &mut pairs.last_mut().expect("just pushed").1;
                    }
                }
            }
            Json::Array(items) => {
                let parent = segments[..i].join(".");
                let index: usize = segment.parse().map_err(|_| {
                    Error::scenario(
                        path,
                        format!("`{parent}` is an array; `{segment}` is not a numeric index"),
                    )
                })?;
                let len = items.len();
                let Some(slot) = items.get_mut(index) else {
                    return Err(Error::scenario(
                        path,
                        format!("index {index} is out of range for `{parent}` (length {len})"),
                    ));
                };
                if last {
                    *slot = value;
                    return Ok(());
                }
                cursor = slot;
            }
            _ => {
                let parent = segments[..i].join(".");
                return Err(Error::scenario(
                    path,
                    format!("cannot descend into `{parent}`: not an object or array"),
                ));
            }
        }
    }
    Ok(())
}

/// Parses a schedule object: `{"mode": "layer_by_layer"}` or
/// `{"mode": "depth_first", "fuse_depth": N}` (N ≥ 1; `fuse_depth: 1`
/// is the degenerate depth-first schedule, equivalent to
/// layer-by-layer).
fn parse_schedule(v: &Json, path: &str) -> Result<Schedule, Error> {
    let pairs = expect_object(v, path)?;
    check_keys(pairs, path, &["mode", "fuse_depth"])?;
    let mode_path = join_path(path, "mode");
    let mode = expect_str(require(v, "mode", path)?, &mode_path)?;
    let depth_path = join_path(path, "fuse_depth");
    match mode {
        "layer_by_layer" => {
            if v.get("fuse_depth").is_some() {
                return Err(Error::scenario(
                    depth_path,
                    "`fuse_depth` only applies to `depth_first` schedules",
                ));
            }
            Ok(Schedule::LayerByLayer)
        }
        "depth_first" => {
            let fuse_depth = field_usize(require(v, "fuse_depth", path)?, &depth_path)?;
            if fuse_depth == 0 {
                return Err(Error::scenario(depth_path, "must be at least 1"));
            }
            Ok(Schedule::DepthFirst { fuse_depth })
        }
        other => Err(Error::scenario(
            mode_path,
            format!("unknown schedule mode `{other}` (valid: layer_by_layer, depth_first)"),
        )),
    }
}

/// The canonical JSON form of a schedule ([`parse_schedule`]'s inverse).
fn schedule_json(schedule: Schedule) -> Json {
    let mut obj = Json::object();
    match schedule {
        Schedule::LayerByLayer => obj.push("mode", "layer_by_layer"),
        Schedule::DepthFirst { fuse_depth } => {
            obj.push("mode", "depth_first");
            obj.push("fuse_depth", fuse_depth);
        }
    }
    obj
}

fn parse_ce_overrides(v: &Json) -> Result<Vec<CeOverride>, Error> {
    let items = v
        .as_array()
        .ok_or_else(|| Error::scenario("ces", "expected an array of per-CE override objects"))?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let path = format!("ces.{i}");
        let pairs = expect_object(item, &path)?;
        check_keys(pairs, &path, &["schedule"])?;
        let schedule = match item.get("schedule") {
            None => None,
            Some(s) => Some(parse_schedule(s, &join_path(&path, "schedule"))?),
        };
        out.push(CeOverride { schedule });
    }
    Ok(out)
}

fn metric_list(metrics: &[Metric]) -> Json {
    Json::Array(
        metrics
            .iter()
            .map(|m| Json::from(m.name().to_ascii_lowercase()))
            .collect(),
    )
}

fn unknown_name_error(field: &str, name: &str, valid: &[&str]) -> Error {
    Error::scenario(
        field,
        format!("unknown name `{name}` (valid: {})", valid.join(", ")),
    )
}

fn expect_object<'a>(v: &'a Json, path: &str) -> Result<&'a [(String, Json)], Error> {
    v.entries()
        .ok_or_else(|| Error::scenario(path, "expected a JSON object"))
}

fn expect_str<'a>(v: &'a Json, path: &str) -> Result<&'a str, Error> {
    v.as_str()
        .ok_or_else(|| Error::scenario(path, "expected a string"))
}

fn require<'a>(v: &'a Json, key: &str, path: &str) -> Result<&'a Json, Error> {
    v.get(key)
        .ok_or_else(|| Error::scenario(join_path(path, key), "required field is missing"))
}

fn join_path(path: &str, key: &str) -> String {
    if path == "(root)" {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn check_keys(pairs: &[(String, Json)], path: &str, allowed: &[&str]) -> Result<(), Error> {
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(Error::scenario(
                join_path(path, key),
                format!("unknown field (expected one of: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn field_usize(v: &Json, path: &str) -> Result<usize, Error> {
    v.as_usize()
        .ok_or_else(|| Error::scenario(path, "expected a non-negative integer"))
}

fn field_u64(v: &Json, path: &str) -> Result<u64, Error> {
    v.as_u64()
        .ok_or_else(|| Error::scenario(path, "expected a non-negative integer"))
}

fn field_f64(v: &Json, path: &str) -> Result<f64, Error> {
    v.as_f64()
        .ok_or_else(|| Error::scenario(path, "expected a number"))
}

fn field_u32(v: &Json, path: &str) -> Result<u32, Error> {
    let n = field_u64(v, path)?;
    u32::try_from(n).map_err(|_| Error::scenario(path, "value does not fit in 32 bits"))
}

fn opt_usize(root: &Json, key: &str, default: usize) -> Result<usize, Error> {
    match root.get(key) {
        None => Ok(default),
        Some(v) => field_usize(v, key),
    }
}

fn opt_u64(root: &Json, key: &str, default: u64) -> Result<u64, Error> {
    match root.get(key) {
        None => Ok(default),
        Some(v) => field_u64(v, key),
    }
}

fn parse_model(v: &Json) -> Result<ModelSpec, Error> {
    let obj = expect_object(v, "model")?;
    check_keys(obj, "model", &["zoo", "synthetic"])?;
    match (v.get("zoo"), v.get("synthetic")) {
        (Some(name), None) => {
            let name = expect_str(name, "model.zoo")?;
            if zoo::by_name(name).is_none() {
                return Err(unknown_name_error("model.zoo", name, zoo::names()));
            }
            // Canonicalize abbreviations so equal models share cache keys.
            let canonical = zoo::by_name(name).expect("checked").name().to_string();
            Ok(ModelSpec::Zoo(canonical))
        }
        (None, Some(synth)) => {
            let path = "model.synthetic";
            let pairs = expect_object(synth, path)?;
            check_keys(
                pairs,
                path,
                &[
                    "seed",
                    "conv_layers",
                    "input_size",
                    "base_channels",
                    "residual_prob",
                    "depthwise_prob",
                ],
            )?;
            let defaults = SyntheticConfig::default();
            let seed = opt_u64(synth, "seed", 1)?;
            let config = SyntheticConfig {
                conv_layers: match synth.get("conv_layers") {
                    None => defaults.conv_layers,
                    Some(v) => field_usize(v, "model.synthetic.conv_layers")?,
                },
                input_size: match synth.get("input_size") {
                    None => defaults.input_size,
                    Some(v) => field_u32(v, "model.synthetic.input_size")?,
                },
                base_channels: match synth.get("base_channels") {
                    None => defaults.base_channels,
                    Some(v) => field_u32(v, "model.synthetic.base_channels")?,
                },
                residual_prob: match synth.get("residual_prob") {
                    None => defaults.residual_prob,
                    Some(v) => field_f64(v, "model.synthetic.residual_prob")?,
                },
                depthwise_prob: match synth.get("depthwise_prob") {
                    None => defaults.depthwise_prob,
                    Some(v) => field_f64(v, "model.synthetic.depthwise_prob")?,
                },
            };
            if config.conv_layers < 2 {
                return Err(Error::scenario(
                    "model.synthetic.conv_layers",
                    "must be at least 2 (one head layer plus one tail layer)",
                ));
            }
            if config.input_size < 4 {
                return Err(Error::scenario(
                    "model.synthetic.input_size",
                    "must be at least 4",
                ));
            }
            if config.base_channels == 0 {
                return Err(Error::scenario(
                    "model.synthetic.base_channels",
                    "must be positive",
                ));
            }
            for (field, p) in [
                ("model.synthetic.residual_prob", config.residual_prob),
                ("model.synthetic.depthwise_prob", config.depthwise_prob),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(Error::scenario(
                        field,
                        format!("must be in [0, 1], got {p}"),
                    ));
                }
            }
            Ok(ModelSpec::Synthetic { seed, config })
        }
        _ => Err(Error::scenario(
            "model",
            "expected exactly one of `zoo` or `synthetic`",
        )),
    }
}

fn parse_board(v: &Json) -> Result<BoardSpec, Error> {
    let obj = expect_object(v, "board")?;
    check_keys(obj, "board", &["builtin", "custom"])?;
    match (v.get("builtin"), v.get("custom")) {
        (Some(name), None) => {
            let name = expect_str(name, "board.builtin")?;
            if FpgaBoard::by_name(name).is_none() {
                return Err(unknown_name_error(
                    "board.builtin",
                    name,
                    FpgaBoard::names(),
                ));
            }
            Ok(BoardSpec::Builtin(name.to_ascii_lowercase()))
        }
        (None, Some(custom)) => {
            let path = "board.custom";
            let pairs = expect_object(custom, path)?;
            check_keys(
                pairs,
                path,
                &["name", "dsps", "bram_mib", "bandwidth_gbps", "clock_mhz"],
            )?;
            let name = expect_str(require(custom, "name", "board")?, "board.custom.name")?;
            let dsps = field_u32(require(custom, "dsps", "board")?, "board.custom.dsps")?;
            let bram_mib = field_f64(
                require(custom, "bram_mib", "board")?,
                "board.custom.bram_mib",
            )?;
            let bandwidth = field_f64(
                require(custom, "bandwidth_gbps", "board")?,
                "board.custom.bandwidth_gbps",
            )?;
            let clock = match custom.get("clock_mhz") {
                None => FpgaBoard::DEFAULT_CLOCK_MHZ,
                Some(v) => field_f64(v, "board.custom.clock_mhz")?,
            };
            if dsps == 0 {
                return Err(Error::scenario("board.custom.dsps", "must be positive"));
            }
            for (field, value) in [
                ("board.custom.bram_mib", bram_mib),
                ("board.custom.bandwidth_gbps", bandwidth),
                ("board.custom.clock_mhz", clock),
            ] {
                if !(value.is_finite() && value > 0.0) {
                    return Err(Error::scenario(
                        field,
                        format!("must be positive, got {value}"),
                    ));
                }
            }
            Ok(BoardSpec::Custom(
                FpgaBoard::new(name, dsps, MiB(bram_mib), bandwidth).with_clock_mhz(clock),
            ))
        }
        _ => Err(Error::scenario(
            "board",
            "expected exactly one of `builtin` or `custom`",
        )),
    }
}

fn parse_metrics(v: Option<&Json>, path: &str, default: &[Metric]) -> Result<Vec<Metric>, Error> {
    let Some(v) = v else {
        return Ok(default.to_vec());
    };
    let items = v
        .as_array()
        .ok_or_else(|| Error::scenario(path, "expected an array of metric names"))?;
    if items.is_empty() {
        return Err(Error::scenario(path, "metric list must not be empty"));
    }
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let name = expect_str(item, path)?;
        let metric = Metric::by_name(name).ok_or_else(|| {
            Error::scenario(
                path,
                format!(
                    "unknown metric `{name}` (valid: latency, throughput, access, buffers, \
                     energy)"
                ),
            )
        })?;
        if out.contains(&metric) {
            return Err(Error::scenario(path, format!("duplicate metric `{name}`")));
        }
        out.push(metric);
    }
    Ok(out)
}

fn parse_action(v: &Json) -> Result<Action, Error> {
    let pairs = expect_object(v, "action")?;
    check_keys(
        pairs,
        "action",
        &["evaluate", "sweep", "sample", "optimize", "calibrate"],
    )?;
    if pairs.len() != 1 {
        return Err(Error::scenario(
            "action",
            "expected exactly one of `evaluate`, `sweep`, `sample`, `optimize`, `calibrate`",
        ));
    }
    let (kind, body) = &pairs[0];
    match kind.as_str() {
        "evaluate" => {
            let path = "action.evaluate";
            let obj = expect_object(body, path)?;
            check_keys(obj, path, &["notation", "template", "ces"])?;
            match (body.get("notation"), body.get("template")) {
                (Some(text), None) => {
                    if body.get("ces").is_some() {
                        return Err(Error::scenario(
                            "action.evaluate.ces",
                            "`ces` only applies to `template` designs",
                        ));
                    }
                    let text = expect_str(text, "action.evaluate.notation")?;
                    // Validate the notation eagerly: parse errors carry
                    // the byte offset into the notation string.
                    crate::arch::notation::parse(text)
                        .map_err(|e| Error::scenario("action.evaluate.notation", e.to_string()))?;
                    Ok(Action::Evaluate {
                        design: DesignSpec::Notation(text.to_string()),
                    })
                }
                (None, Some(template)) => {
                    let name = expect_str(template, "action.evaluate.template")?;
                    let architecture = Architecture::by_name(name).ok_or_else(|| {
                        unknown_name_error("action.evaluate.template", name, Architecture::names())
                    })?;
                    let ces = field_usize(
                        require(body, "ces", "action.evaluate")?,
                        "action.evaluate.ces",
                    )?;
                    if ces == 0 {
                        return Err(Error::scenario("action.evaluate.ces", "must be positive"));
                    }
                    Ok(Action::Evaluate {
                        design: DesignSpec::Template { architecture, ces },
                    })
                }
                _ => Err(Error::scenario(
                    path,
                    "expected exactly one of `notation` or `template`",
                )),
            }
        }
        "sweep" => {
            let path = "action.sweep";
            let obj = expect_object(body, path)?;
            check_keys(obj, path, &["min_ces", "max_ces"])?;
            let min_ces = opt_usize(body, "min_ces", 2)?;
            let max_ces = opt_usize(body, "max_ces", 11)?;
            if min_ces == 0 {
                return Err(Error::scenario("action.sweep.min_ces", "must be positive"));
            }
            if max_ces < min_ces {
                return Err(Error::scenario(
                    "action.sweep.max_ces",
                    format!("must be at least min_ces ({min_ces}), got {max_ces}"),
                ));
            }
            Ok(Action::Sweep { min_ces, max_ces })
        }
        "sample" => {
            let path = "action.sample";
            let obj = expect_object(body, path)?;
            check_keys(obj, path, &["count", "metrics"])?;
            let count = field_usize(require(body, "count", path)?, "action.sample.count")?;
            if count == 0 {
                return Err(Error::scenario("action.sample.count", "must be positive"));
            }
            let metrics = parse_metrics(
                body.get("metrics"),
                "action.sample.metrics",
                &SAMPLE_DEFAULT_METRICS,
            )?;
            Ok(Action::Sample { count, metrics })
        }
        "optimize" => {
            let path = "action.optimize";
            let obj = expect_object(body, path)?;
            check_keys(
                obj,
                path,
                &[
                    "metrics",
                    "budget",
                    "population",
                    "islands",
                    "migration_interval",
                    "migrants",
                    "crossover_prob",
                    "max_fuse_depth",
                ],
            )?;
            let defaults = OptimizerConfig::default();
            let metrics = parse_metrics(
                body.get("metrics"),
                "action.optimize.metrics",
                &defaults.metrics,
            )?;
            let budget = opt_u64(body, "budget", defaults.budget)?;
            let population = opt_usize(body, "population", defaults.population)?;
            let islands = opt_usize(body, "islands", defaults.islands)?;
            let migration_interval =
                opt_usize(body, "migration_interval", defaults.migration_interval)?;
            let migrants = opt_usize(body, "migrants", defaults.migrants)?;
            let crossover_prob = match body.get("crossover_prob") {
                None => defaults.crossover_prob,
                Some(v) => field_f64(v, "action.optimize.crossover_prob")?,
            };
            let max_fuse_depth = opt_usize(body, "max_fuse_depth", defaults.max_fuse_depth)?;
            // Reuse the optimizer's own validation so scenario files and
            // library callers reject exactly the same configs.
            OptimizerConfig::default()
                .with_metrics(&metrics)
                .with_population(population)
                .with_islands(islands)
                .with_crossover_prob(crossover_prob)
                .with_max_fuse_depth(max_fuse_depth)
                .validate()
                .map_err(|e| Error::scenario(path, e.to_string()))?;
            Ok(Action::Optimize {
                metrics,
                budget,
                population,
                islands,
                migration_interval,
                migrants,
                crossover_prob,
                max_fuse_depth,
            })
        }
        "calibrate" => {
            let path = "action.calibrate";
            let obj = expect_object(body, path)?;
            check_keys(
                obj,
                path,
                &[
                    "metrics",
                    "budget",
                    "population",
                    "islands",
                    "top_k",
                    "store",
                ],
            )?;
            let defaults = OptimizerConfig::default();
            let metrics = parse_metrics(
                body.get("metrics"),
                "action.calibrate.metrics",
                &defaults.metrics,
            )?;
            let budget = opt_u64(body, "budget", defaults.budget)?;
            let population = opt_usize(body, "population", defaults.population)?;
            let islands = opt_usize(body, "islands", defaults.islands)?;
            let top_k = opt_usize(body, "top_k", CALIBRATE_DEFAULT_TOP_K)?;
            if top_k == 0 {
                return Err(Error::scenario(
                    "action.calibrate.top_k",
                    "must be positive",
                ));
            }
            let store = match body.get("store") {
                None => None,
                Some(v) => {
                    let text = expect_str(v, "action.calibrate.store")?;
                    if text.is_empty() {
                        return Err(Error::scenario(
                            "action.calibrate.store",
                            "store path must not be empty",
                        ));
                    }
                    Some(text.to_string())
                }
            };
            // The embedded search validates like an optimize action.
            OptimizerConfig::default()
                .with_metrics(&metrics)
                .with_population(population)
                .with_islands(islands)
                .validate()
                .map_err(|e| Error::scenario(path, e.to_string()))?;
            Ok(Action::Calibrate {
                metrics,
                budget,
                population,
                islands,
                top_k,
                store,
            })
        }
        _ => unreachable!("check_keys limits the key set"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenario() -> Scenario {
        Scenario::new(
            ModelSpec::Zoo("xception".into()),
            BoardSpec::Builtin("vcu110".into()),
            Action::Sample {
                count: 50,
                metrics: SAMPLE_DEFAULT_METRICS.to_vec(),
            },
        )
    }

    #[test]
    fn minimal_scenario_fills_defaults() {
        let s = Scenario::from_json_str(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "action": {"sample": {"count": 50}}}"#,
        )
        .unwrap();
        assert_eq!(s, sample_scenario());
        assert_eq!(s.precision, Precision::INT8);
        assert_eq!(s.batch, 1);
        assert_eq!(s.seed, 1);
        assert_eq!(s.workers, 0);
    }

    #[test]
    fn canonical_json_round_trips_every_action() {
        let actions = [
            Action::Evaluate {
                design: DesignSpec::Notation("{L1-Last: CE1-CE4}".into()),
            },
            Action::Evaluate {
                design: DesignSpec::Template {
                    architecture: Architecture::Hybrid,
                    ces: 7,
                },
            },
            Action::Sweep {
                min_ces: 2,
                max_ces: 6,
            },
            Action::Sample {
                count: 123,
                metrics: vec![Metric::Latency, Metric::Energy],
            },
            Action::Optimize {
                metrics: Metric::WITH_ENERGY.to_vec(),
                budget: 4000,
                population: 32,
                islands: 4,
                migration_interval: 8,
                migrants: 4,
                crossover_prob: 0.9,
                max_fuse_depth: 3,
            },
            Action::Calibrate {
                metrics: vec![Metric::Latency, Metric::Throughput],
                budget: 2000,
                population: 24,
                islands: 2,
                top_k: 5,
                store: Some("stores/zc706.json".into()),
            },
            Action::Calibrate {
                metrics: Metric::WITH_ENERGY.to_vec(),
                budget: 1000,
                population: 16,
                islands: 1,
                top_k: CALIBRATE_DEFAULT_TOP_K,
                store: None,
            },
        ];
        for action in actions {
            let mut s = Scenario::new(
                ModelSpec::Zoo("resnet50".into()),
                BoardSpec::Custom(FpgaBoard::new("lab1", 1234, MiB(3.25), 12.5)),
                action,
            );
            s.batch = 4;
            s.seed = 9;
            s.workers = 2;
            s.precision = Precision::INT16;
            let text = s.to_json_string();
            let back = Scenario::from_json_str(&text).unwrap();
            assert_eq!(back, s, "{text}");
        }
    }

    #[test]
    fn synthetic_model_round_trips_and_builds() {
        let s = Scenario::from_json_str(
            r#"{"model": {"synthetic": {"seed": 7, "conv_layers": 9}},
                "board": {"builtin": "zc706"},
                "action": {"sweep": {}}}"#,
        )
        .unwrap();
        let ModelSpec::Synthetic { seed, ref config } = s.model else {
            panic!("expected synthetic")
        };
        assert_eq!(seed, 7);
        assert_eq!(config.conv_layers, 9);
        assert_eq!(config.input_size, SyntheticConfig::default().input_size);
        let model = s.model.build().unwrap();
        assert!(model.conv_layer_count() >= 9);
        let back = Scenario::from_json_str(&s.to_json_string()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unknown_names_list_the_valid_ones() {
        let err = Scenario::from_json_str(
            r#"{"model": {"zoo": "alexnet"}, "board": {"builtin": "zc706"},
                "action": {"sweep": {}}}"#,
        )
        .unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("model.zoo") && text.contains("alexnet"),
            "{text}"
        );
        assert!(text.contains("xception"), "valid names listed: {text}");
    }

    #[test]
    fn unknown_fields_are_rejected_with_their_path() {
        let err = Scenario::from_json_str(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "action": {"sample": {"count": 5, "samples": 5}}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("action.sample.samples"), "{err}");
        let err = Scenario::from_json_str(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "verbose": true, "action": {"sweep": {}}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("verbose"), "{err}");
    }

    #[test]
    fn zoo_abbreviations_canonicalize() {
        let s = Scenario::from_json_str(
            r#"{"model": {"zoo": "XCp"}, "board": {"builtin": "VCU110"},
                "action": {"sample": {"count": 1}}}"#,
        )
        .unwrap();
        assert_eq!(s.model, ModelSpec::Zoo("xception".into()));
        assert_eq!(s.board, BoardSpec::Builtin("vcu110".into()));
        assert_eq!(s.model.cache_token(), "zoo:xception");
    }

    #[test]
    fn bad_notation_fails_at_parse_time() {
        let err = Scenario::from_json_str(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "action": {"evaluate": {"notation": "{L1: CE"}}}"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("action.evaluate.notation"),
            "{err}"
        );
    }

    #[test]
    fn degenerate_optimize_configs_are_rejected() {
        let err = Scenario::from_json_str(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "action": {"optimize": {"population": 2}}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("population"), "{err}");
    }

    #[test]
    fn overrides_replace_and_create_fields() {
        let mut root = sample_scenario().to_json();
        apply_override(&mut root, "action.sample.count", "200").unwrap();
        apply_override(&mut root, "model.zoo", "resnet50").unwrap();
        apply_override(&mut root, "workers", "3").unwrap();
        let s = Scenario::from_json(&root).unwrap();
        assert_eq!(s.model, ModelSpec::Zoo("resnet50".into()));
        assert_eq!(s.workers, 3);
        match s.action {
            Action::Sample { count, .. } => assert_eq!(count, 200),
            other => panic!("{other:?}"),
        }
        // Creating a previously missing leaf works too.
        let mut minimal = Json::parse(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "action": {"sample": {"count": 5}}}"#,
        )
        .unwrap();
        apply_override(&mut minimal, "batch", "8").unwrap();
        assert_eq!(Scenario::from_json(&minimal).unwrap().batch, 8);
        // Descending into a scalar is an error.
        let err = apply_override(&mut minimal, "batch.size", "1").unwrap_err();
        assert!(err.to_string().contains("not an object"), "{err}");
    }

    #[test]
    fn overrides_reach_calibrate_fields() {
        let mut root = Json::parse(
            r#"{"model": {"zoo": "mobilenetv2"}, "board": {"builtin": "zc706"},
                "action": {"calibrate": {}}}"#,
        )
        .unwrap();
        apply_override(&mut root, "action.calibrate.top_k", "3").unwrap();
        apply_override(&mut root, "action.calibrate.budget", "500").unwrap();
        apply_override(&mut root, "action.calibrate.store", "run/store.json").unwrap();
        let s = Scenario::from_json(&root).unwrap();
        let Action::Calibrate {
            top_k,
            budget,
            store,
            ..
        } = &s.action
        else {
            panic!("expected calibrate, got {:?}", s.action)
        };
        assert_eq!(*top_k, 3);
        assert_eq!(*budget, 500);
        assert_eq!(store.as_deref(), Some("run/store.json"));
    }

    #[test]
    fn calibrate_field_errors_name_the_full_path() {
        // Out-of-range: a zero promotion width can calibrate nothing.
        let mut root = Json::parse(
            r#"{"model": {"zoo": "mobilenetv2"}, "board": {"builtin": "zc706"},
                "action": {"calibrate": {}}}"#,
        )
        .unwrap();
        apply_override(&mut root, "action.calibrate.top_k", "0").unwrap();
        let err = Scenario::from_json(&root).unwrap_err();
        assert!(err.to_string().contains("action.calibrate.top_k"), "{err}");

        // Empty store path.
        let err = Scenario::from_json_str(
            r#"{"model": {"zoo": "mobilenetv2"}, "board": {"builtin": "zc706"},
                "action": {"calibrate": {"store": ""}}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("action.calibrate.store"), "{err}");

        // Unknown field, created by an override, rejected with its path.
        let mut root = Json::parse(
            r#"{"model": {"zoo": "mobilenetv2"}, "board": {"builtin": "zc706"},
                "action": {"calibrate": {}}}"#,
        )
        .unwrap();
        apply_override(&mut root, "action.calibrate.topk", "4").unwrap();
        let err = Scenario::from_json(&root).unwrap_err();
        assert!(err.to_string().contains("action.calibrate.topk"), "{err}");
    }

    #[test]
    fn schedule_fields_parse_serialize_and_are_evaluate_only() {
        let s = Scenario::from_json_str(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "schedule": {"mode": "depth_first", "fuse_depth": 3},
                "ces": [{}, {"schedule": {"mode": "layer_by_layer"}}],
                "action": {"evaluate": {"template": "hybrid", "ces": 4}}}"#,
        )
        .unwrap();
        assert_eq!(s.schedule, Some(Schedule::DepthFirst { fuse_depth: 3 }));
        assert_eq!(
            s.ces,
            vec![
                CeOverride { schedule: None },
                CeOverride {
                    schedule: Some(Schedule::LayerByLayer)
                },
            ]
        );
        let back = Scenario::from_json_str(&s.to_json_string()).unwrap();
        assert_eq!(back, s);
        // Both override surfaces are rejected on non-evaluate actions.
        for (field, body) in [
            ("schedule", r#""schedule": {"mode": "layer_by_layer"}"#),
            ("ces", r#""ces": [{}]"#),
        ] {
            let err = Scenario::from_json_str(&format!(
                r#"{{"model": {{"zoo": "xception"}}, "board": {{"builtin": "vcu110"}},
                    {body}, "action": {{"sweep": {{}}}}}}"#
            ))
            .unwrap_err()
            .to_string();
            assert!(err.contains(field) && err.contains("evaluate"), "{err}");
        }
    }

    #[test]
    fn malformed_schedules_name_the_offending_path() {
        let cases = [
            (r#"{"mode": "row_major"}"#, "schedule.mode"),
            (r#"{"mode": "depth_first"}"#, "schedule.fuse_depth"),
            (r#"{"mode": "depth_first", "fuse_depth": 0}"#, "at least 1"),
            (
                r#"{"mode": "layer_by_layer", "fuse_depth": 2}"#,
                "depth_first",
            ),
            (r#"{"fuse_depth": 2}"#, "schedule.mode"),
        ];
        for (schedule, needle) in cases {
            let err = Scenario::from_json_str(&format!(
                r#"{{"model": {{"zoo": "xception"}}, "board": {{"builtin": "vcu110"}},
                    "schedule": {schedule},
                    "action": {{"evaluate": {{"template": "hybrid", "ces": 4}}}}}}"#
            ))
            .unwrap_err()
            .to_string();
            assert!(err.contains(needle), "`{err}` should contain `{needle}`");
        }
    }

    #[test]
    fn optimize_max_fuse_depth_parses_and_reaches_the_config() {
        let s = Scenario::from_json_str(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "action": {"optimize": {"max_fuse_depth": 4}}}"#,
        )
        .unwrap();
        assert_eq!(s.optimizer_config().unwrap().max_fuse_depth, 4);
        // Defaults to 1 (layer-by-layer only) when absent.
        let s = Scenario::from_json_str(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "action": {"optimize": {}}}"#,
        )
        .unwrap();
        assert_eq!(s.optimizer_config().unwrap().max_fuse_depth, 1);
        // Zero is rejected through the optimizer's own validation.
        let err = Scenario::from_json_str(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "action": {"optimize": {"max_fuse_depth": 0}}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("max_fuse_depth"), "{err}");
    }

    #[test]
    fn overrides_descend_into_arrays_by_numeric_index() {
        let mut root = Json::parse(
            r#"{"model": {"zoo": "xception"}, "board": {"builtin": "vcu110"},
                "ces": [{}, {"schedule": {"mode": "depth_first", "fuse_depth": 2}}],
                "action": {"evaluate": {"template": "hybrid", "ces": 4}}}"#,
        )
        .unwrap();
        apply_override(&mut root, "ces.1.schedule.fuse_depth", "3").unwrap();
        let s = Scenario::from_json(&root).unwrap();
        assert_eq!(
            s.ces[1].schedule,
            Some(Schedule::DepthFirst { fuse_depth: 3 })
        );
        // Replacing a whole element works too.
        apply_override(
            &mut root,
            "ces.0",
            r#"{"schedule": {"mode": "layer_by_layer"}}"#,
        )
        .unwrap();
        let s = Scenario::from_json(&root).unwrap();
        assert_eq!(s.ces[0].schedule, Some(Schedule::LayerByLayer));
        // Out-of-range indices are an error naming the full dotted path,
        // not a silent append.
        let err = apply_override(&mut root, "ces.7.schedule.fuse_depth", "3").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("ces.7.schedule.fuse_depth"), "{text}");
        assert!(
            text.contains("out of range") && text.contains("length 2"),
            "{text}"
        );
        // Non-numeric segments against an array name the path as well.
        let err = apply_override(&mut root, "ces.first.schedule", "1").unwrap_err();
        assert!(err.to_string().contains("numeric index"), "{err}");
    }

    #[test]
    fn cache_tokens_distinguish_contexts() {
        let a = sample_scenario();
        assert_eq!(a.model.cache_token(), "zoo:xception");
        assert_eq!(a.board.cache_token(), "builtin:vcu110");
        let custom = BoardSpec::Custom(FpgaBoard::new("x", 100, MiB(1.0), 2.0));
        assert_ne!(custom.cache_token(), a.board.cache_token());
        let synth = ModelSpec::Synthetic {
            seed: 3,
            config: SyntheticConfig::default(),
        };
        assert!(synth.cache_token().contains("seed=3"));
    }
}
