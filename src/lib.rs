//! MCCM — An Analytical Cost Model for Fast Evaluation of Multiple
//! Compute-Engine CNN Accelerators (ISPASS 2025 reproduction).
//!
//! The facade crate ties the workspace together behind one declarative
//! entry point: a [`scenario::Scenario`] (a serializable request — which
//! CNN, which board, what to do) executed by a [`session::Session`] (an
//! LRU cache of warmed builder contexts) into a typed
//! [`session::Outcome`] that serializes to deterministic JSON. The same
//! scenario files drive the `mccm run` CLI, batch sweeps, and any serving
//! layer built on top.
//!
//! The underlying crates remain available for fine-grained use:
//!
//! * [`cnn`] — CNN representation and the verified model zoo (Table III).
//! * [`fpga`] — FPGA platform descriptions (Table II).
//! * [`arch`] — accelerator notation, templates, and the Multiple-CE
//!   Builder (§III).
//! * [`core`] — the analytical cost model (§IV).
//! * [`sim`] — the event-driven reference simulator (synthesis surrogate).
//! * [`dse`] — design-space exploration (Use Cases 1 & 3).
//! * [`calib`] — simulator-in-the-loop calibration: front promotion, the
//!   persistent (analytical, simulated) pair store, and per-metric
//!   corrections with error bars.
//! * [`json`] — the dependency-free deterministic JSON layer every
//!   outcome serializes through.
//!
//! Every crate error converges into [`enum@Error`].
//!
//! # Quick start
//!
//! ```
//! use mccm::scenario::Scenario;
//! use mccm::session::{Outcome, Session};
//!
//! # fn main() -> Result<(), mccm::Error> {
//! let scenario = Scenario::from_json_str(
//!     r#"{
//!         "model": {"zoo": "resnet50"},
//!         "board": {"builtin": "zc706"},
//!         "action": {"evaluate": {"template": "hybrid", "ces": 4}}
//!     }"#,
//! )?;
//!
//! let mut session = Session::new();
//! let outcome = session.run(&scenario)?;
//! println!("{}", outcome.to_json_string());
//!
//! // Re-running any scenario for the same (model, board) pair reuses the
//! // warmed builder context — no reconstruction, just cache hits.
//! let again = session.run(&scenario)?;
//! assert_eq!(session.stats().hits, 1);
//! assert!(matches!(again, Outcome::Evaluation(_)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use mccm_arch as arch;
pub use mccm_calib as calib;
pub use mccm_cnn as cnn;
pub use mccm_core as core;
pub use mccm_dse as dse;
pub use mccm_fpga as fpga;
pub use mccm_json as json;
pub use mccm_sim as sim;

pub mod cli;
mod error;
pub mod scenario;
pub mod serve;
pub mod session;

pub use error::Error;
pub use scenario::Scenario;
pub use session::{Outcome, Session};
