//! MCCM — An Analytical Cost Model for Fast Evaluation of Multiple
//! Compute-Engine CNN Accelerators (ISPASS 2025 reproduction).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`cnn`] — CNN representation and the verified model zoo (Table III).
//! * [`fpga`] — FPGA platform descriptions (Table II).
//! * [`arch`] — accelerator notation, templates, and the Multiple-CE
//!   Builder (§III).
//! * [`core`] — the analytical cost model (§IV).
//! * [`sim`] — the event-driven reference simulator (synthesis surrogate).
//! * [`dse`] — design-space exploration (Use Cases 1 & 3).
//!
//! # Quick start
//!
//! ```
//! use mccm::arch::{templates, MultipleCeBuilder};
//! use mccm::cnn::zoo;
//! use mccm::core::CostModel;
//! use mccm::fpga::FpgaBoard;
//!
//! # fn main() -> Result<(), mccm::arch::ArchError> {
//! let model = zoo::resnet50();
//! let board = FpgaBoard::zc706();
//! let builder = MultipleCeBuilder::new(&model, &board);
//!
//! for arch in templates::Architecture::ALL {
//!     let acc = builder.build(&arch.instantiate(&model, 4)?)?;
//!     let eval = CostModel::evaluate(&acc);
//!     println!("{arch}: {eval}");
//! }
//! # Ok(())
//! # }
//! ```

pub use mccm_arch as arch;
pub use mccm_cnn as cnn;
pub use mccm_core as core;
pub use mccm_dse as dse;
pub use mccm_fpga as fpga;
pub use mccm_sim as sim;
