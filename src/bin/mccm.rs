//! `mccm` — command-line front end for the MCCM evaluation methodology.
//!
//! The binary is a thin wrapper over [`mccm::cli::main_with_args`]; all
//! command logic lives in the library so tests drive it in-process.
//!
//! ```text
//! mccm run examples/scenarios/evaluate.json
//! mccm run examples/scenarios/evaluate.json --set model.zoo=vgg16
//! mccm run --batch examples/scenarios --workers 4
//! mccm models
//! mccm evaluate --model resnet50 --board zc706 --notation "{L1-Last: CE1-CE4}"
//! mccm sweep    --model mobilenetv2 --board zcu102 --json
//! mccm explore  --model xception --board vcu110 --samples 5000 --seed 1
//! mccm optimize --model xception --board vcu110 --budget 4000 --islands 4
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::io::stdout();
    match mccm::cli::main_with_args(&args, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // Stable, documented exit codes (see `mccm::Error::exit_code`
            // and docs/serving.md): scripts branch on them; 7 means
            // "retry later", 6 means "batch report has per-file errors".
            ExitCode::from(e.exit_code())
        }
    }
}
