//! `mccm` — command-line front end for the MCCM evaluation methodology.
//!
//! ```text
//! mccm models                              list the CNN zoo
//! mccm boards                              list the evaluation boards
//! mccm evaluate  --model resnet50 --board zc706 --notation "{L1-Last: CE1-CE4}"
//! mccm evaluate  --model xception --board vcu110 --arch hybrid --ces 7 --verbose
//! mccm validate  --model resnet50 --board vcu108 --arch segmented --ces 4
//! mccm sweep     --model mobilenetv2 --board zcu102
//! mccm explore   --model xception --board vcu110 --samples 5000 --seed 1 --workers 4
//! mccm optimize  --model xception --board vcu110 --budget 4000 --islands 4 --workers 4
//! ```

use std::process::ExitCode;

use mccm::arch::{notation, templates, AcceleratorSpec, MultipleCeBuilder};
use mccm::cnn::{zoo, CnnModel};
use mccm::core::CostModel;
use mccm::dse::{par_pareto_indices, select_all_metrics, Explorer, PAPER_TIE_FRAC};
use mccm::fpga::{FpgaBoard, Precision};
use mccm::sim::{SimConfig, Simulator};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "models" => cmd_models(),
        "boards" => cmd_boards(),
        "evaluate" => cmd_evaluate(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "explore" => cmd_explore(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
mccm — analytical cost model for multiple compute-engine CNN accelerators

USAGE:
  mccm models                         list available CNNs
  mccm boards                         list evaluation FPGA boards
  mccm evaluate --model M --board B (--notation S | --arch A --ces K)
                [--precision int8|int16] [--batch N] [--verbose]
  mccm validate --model M --board B --arch A --ces K
  mccm sweep    --model M --board B
  mccm explore  --model M --board B [--samples N] [--seed N] [--workers N]
  mccm optimize --model M --board B [--budget N] [--population N] [--islands N]
                [--seed N] [--workers N] [--metrics latency,throughput,...]

ARCHITECTURES: segmented | segmentedrr | hybrid
METRICS:       latency | throughput | access | buffers | energy (default: all five)";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_model(args: &[String]) -> Result<CnnModel, String> {
    let name = flag(args, "--model").ok_or("missing --model")?;
    zoo::by_name(&name).ok_or_else(|| format!("unknown model `{name}` (see `mccm models`)"))
}

fn parse_board(args: &[String]) -> Result<FpgaBoard, String> {
    let name = flag(args, "--board").ok_or("missing --board")?;
    FpgaBoard::by_name(&name).ok_or_else(|| format!("unknown board `{name}` (see `mccm boards`)"))
}

fn parse_spec(args: &[String], model: &CnnModel) -> Result<AcceleratorSpec, String> {
    if let Some(text) = flag(args, "--notation") {
        return notation::parse(&text).map_err(|e| e.to_string());
    }
    let arch = flag(args, "--arch").ok_or("need --notation or --arch")?;
    let ces: usize = flag(args, "--ces")
        .ok_or("missing --ces")?
        .parse()
        .map_err(|_| "--ces must be a number")?;
    let arch = match arch.to_ascii_lowercase().as_str() {
        "segmented" => templates::Architecture::Segmented,
        "segmentedrr" | "rr" => templates::Architecture::SegmentedRr,
        "hybrid" => templates::Architecture::Hybrid,
        other => return Err(format!("unknown architecture `{other}`")),
    };
    arch.instantiate(model, ces).map_err(|e| e.to_string())
}

fn builder_for(args: &[String], model: &CnnModel, board: &FpgaBoard) -> Result<MultipleCeBuilder, String> {
    let mut b = MultipleCeBuilder::new(model, board);
    if let Some(p) = flag(args, "--precision") {
        b = b.with_precision(match p.to_ascii_lowercase().as_str() {
            "int8" => Precision::INT8,
            "int16" => Precision::INT16,
            other => return Err(format!("unknown precision `{other}`")),
        });
    }
    Ok(b)
}

fn cmd_models() -> Result<(), String> {
    println!("{:<14} {:<8} {:>11} {:>12} {:>11}", "model", "abbrev", "weights (M)", "conv layers", "GMACs");
    for m in zoo::all_models() {
        println!(
            "{:<14} {:<8} {:>11.1} {:>12} {:>11.2}",
            m.name(),
            zoo::abbreviation(m.name()),
            m.total_params() as f64 / 1e6,
            m.conv_layer_count(),
            m.conv_macs() as f64 / 1e9
        );
    }
    Ok(())
}

fn cmd_boards() -> Result<(), String> {
    for b in FpgaBoard::evaluation_boards() {
        println!("{b}");
    }
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let model = parse_model(args)?;
    let board = parse_board(args)?;
    let spec = parse_spec(args, &model)?;
    let acc = builder_for(args, &model, &board)?.build(&spec).map_err(|e| e.to_string())?;
    let eval = CostModel::evaluate(&acc);

    println!("design:     {}", eval.notation);
    println!("workload:   {} on {}", eval.model_name, board);
    println!("latency:    {:.3} ms", eval.latency_ms());
    println!("throughput: {:.1} FPS", eval.throughput_fps);
    println!("buffers:    {:.2} MiB required ({:.2} MiB granted on-chip)",
        eval.buffer_mib(), eval.buffer_alloc_bytes as f64 / (1 << 20) as f64);
    println!("accesses:   {:.1} MiB/inference ({:.0}% weights)",
        eval.offchip_mib(), 100.0 * eval.weight_traffic_share());
    println!("stalls:     {:.0}% of time waiting on memory", 100.0 * eval.memory_stall_fraction);
    let energy = mccm::core::EnergyModel::default();
    let est = energy.estimate(&eval, model.conv_macs());
    println!(
        "energy:     {:.1} mJ/inference ({:.0}% of dynamic energy in DRAM), {:.0} GOPS/W",
        est.total_mj(),
        100.0 * est.dram_share(),
        energy.efficiency_gops_per_w(&eval, model.conv_macs())
    );
    if let Some(batch) = flag(args, "--batch").and_then(|b| b.parse::<usize>().ok()) {
        println!(
            "batch({batch}): {:.3} ms total, {:.3} ms amortized per input",
            eval.batch_latency_s(batch) * 1e3,
            eval.amortized_latency_s(batch) * 1e3
        );
    }
    if has_flag(args, "--verbose") {
        println!("\nengines:");
        for ce in &acc.ces {
            println!("  {ce}");
        }
        println!("\nsegments:");
        for s in &eval.segments {
            println!(
                "  seg {:>2}  L{:>3}-L{:<3}  {:>8.3} ms  util {:>3.0}%  traffic {:>7.2} MiB{}",
                s.index + 1,
                s.first + 1,
                s.last + 1,
                s.time_s * 1e3,
                100.0 * s.utilization,
                s.traffic() as f64 / (1 << 20) as f64,
                if s.memory_s > s.compute_s { "  [memory-bound]" } else { "" }
            );
        }
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let model = parse_model(args)?;
    let board = parse_board(args)?;
    let spec = parse_spec(args, &model)?;
    let acc = builder_for(args, &model, &board)?.build(&spec).map_err(|e| e.to_string())?;
    let eval = CostModel::evaluate(&acc);
    let sim = Simulator::new(SimConfig::default()).run_with_eval(&acc, &eval);
    println!("design: {}", eval.notation);
    println!("{:<12} {:>14} {:>14} {:>9}", "metric", "model", "simulator", "accuracy");
    for rec in sim.accuracy_records(&eval) {
        println!(
            "{:<12} {:>14.4} {:>14.4} {:>8.1}%",
            rec.metric.name(),
            rec.estimated,
            rec.reference,
            rec.accuracy()
        );
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let model = parse_model(args)?;
    let board = parse_board(args)?;
    let explorer = Explorer::new(&model, &board);
    let sweep = explorer.sweep_baselines(2..=11).map_err(|e| e.to_string())?;
    println!(
        "{:<12} {:>3} {:>12} {:>9} {:>13} {:>13}",
        "architecture", "CEs", "latency(ms)", "FPS", "buffers(MiB)", "access(MiB)"
    );
    for p in &sweep {
        println!(
            "{:<12} {:>3} {:>12.2} {:>9.1} {:>13.2} {:>13.1}",
            p.architecture.name(),
            p.ces,
            p.eval.latency_ms(),
            p.eval.throughput_fps,
            p.eval.buffer_mib(),
            p.eval.offchip_mib()
        );
    }
    println!("\nbest (10% tie rule):");
    for cell in select_all_metrics(&sweep, PAPER_TIE_FRAC) {
        let winners: Vec<String> =
            cell.winners.iter().map(|(a, c, _)| format!("{}-{}", a.name(), c)).collect();
        println!("  {:<11} {}", cell.metric.name(), winners.join(", "));
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    use mccm::core::{EnergyModel, Metric};
    use mccm::dse::OptimizerConfig;

    let model = parse_model(args)?;
    let board = parse_board(args)?;
    let budget: u64 = flag(args, "--budget").and_then(|s| s.parse().ok()).unwrap_or(4_000);
    let population: usize =
        flag(args, "--population").and_then(|s| s.parse().ok()).unwrap_or(32);
    let islands: usize = flag(args, "--islands").and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = flag(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(1);
    let workers: usize =
        flag(args, "--workers").and_then(|s| s.parse().ok()).unwrap_or(0);
    if population < 4 {
        return Err("--population must be at least 4".into());
    }
    if islands == 0 {
        return Err("--islands must be at least 1".into());
    }
    let metrics: Vec<Metric> = match flag(args, "--metrics") {
        None => Metric::WITH_ENERGY.to_vec(),
        Some(list) => list
            .split(',')
            .map(|name| {
                Metric::by_name(name.trim())
                    .ok_or_else(|| format!("unknown metric `{name}` (see METRICS in --help)"))
            })
            .collect::<Result<_, _>>()?,
    };
    if metrics.is_empty() {
        return Err("--metrics must name at least one metric".into());
    }

    let explorer = Explorer::new(&model, &board);
    let config = OptimizerConfig::default()
        .with_metrics(&metrics)
        .with_budget(budget)
        .with_population(population)
        .with_islands(islands)
        .with_seed(seed);
    let front = explorer.optimize_par(&config, workers).map_err(|e| e.to_string())?;

    println!(
        "guided search: {} evaluations ({} feasible) in {:.2} s — front of {} designs over [{}]",
        front.evaluations,
        front.feasible,
        front.elapsed.as_secs_f64(),
        front.points.len(),
        metrics.iter().map(Metric::name).collect::<Vec<_>>().join(", ")
    );
    println!("\nbest per metric:");
    for &m in &metrics {
        if let Some(v) = front.best(m) {
            println!("  {:<11} {v:.4e}", m.name());
        }
    }
    let energy = EnergyModel::default();
    println!("\nfront (best-first on {}):", metrics[0].name());
    for p in front.points.iter().take(12) {
        println!(
            "  {:>7.1} FPS  {:>7.2} ms  {:>7.2} MiB buf  {:>6.1} MiB acc  {:>6.1} mJ  {}",
            p.summary.throughput_fps,
            p.summary.latency_ms(),
            p.summary.buffer_mib(),
            p.summary.offchip_mib(),
            energy.estimate_summary(&p.summary).total_mj(),
            p.summary.notation
        );
    }
    if front.points.len() > 12 {
        println!("  ... and {} more", front.points.len() - 12);
    }
    Ok(())
}

fn cmd_explore(args: &[String]) -> Result<(), String> {
    let model = parse_model(args)?;
    let board = parse_board(args)?;
    let samples: usize =
        flag(args, "--samples").and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let seed: u64 = flag(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(1);
    let workers: usize =
        flag(args, "--workers").and_then(|s| s.parse().ok()).unwrap_or(0);
    let explorer = Explorer::new(&model, &board);
    let (points, elapsed) = explorer
        .par_sample_custom_summaries(samples, seed, workers)
        .map_err(|e| e.to_string())?;
    println!(
        "evaluated {samples} custom designs in {:.2} s ({:.2} ms/design)",
        elapsed.as_secs_f64(),
        1e3 * elapsed.as_secs_f64() / samples as f64
    );
    let summaries: Vec<_> = points.into_iter().map(|p| p.summary).collect();
    let front = par_pareto_indices(
        &summaries,
        &[mccm::core::Metric::Throughput, mccm::core::Metric::OnChipBuffers],
        workers,
    );
    println!("Pareto-optimal designs (throughput vs buffers): {}", front.len());
    let mut sorted: Vec<usize> = front.clone();
    sorted.sort_by(|&a, &b| summaries[b].throughput_fps.total_cmp(&summaries[a].throughput_fps));
    for &i in sorted.iter().take(12) {
        println!(
            "  {:>7.1} FPS  {:>7.2} MiB  {}",
            summaries[i].throughput_fps,
            summaries[i].buffer_mib(),
            summaries[i].notation
        );
    }
    Ok(())
}
