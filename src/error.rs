//! The workspace-wide error type: every crate's typed error converges
//! here, so the scenario API (and anything built on it — the CLI, a
//! serving layer) handles one `Result<_, mccm::Error>` instead of five
//! unrelated error enums.

use std::fmt;

use crate::arch::ArchError;
use crate::calib::CalibError;
use crate::cnn::CnnError;
use crate::core::ConfigError;
use crate::dse::ExploreError;
use crate::json::JsonError;
use crate::sim::SimConfigError;

/// Top-level error of the `mccm` facade.
///
/// Wraps each crate's typed error losslessly (the inner values remain
/// matchable and `source()` exposes them), plus the facade's own failure
/// modes: JSON syntax, scenario validation, CLI usage, and I/O.
#[derive(Debug)]
pub enum Error {
    /// Architecture specification / builder fault ([`ArchError`]).
    Arch(ArchError),
    /// Calibration-store fault ([`CalibError`]): unreadable, corrupt,
    /// or unwritable store file.
    Calib(CalibError),
    /// CNN construction or validation fault ([`CnnError`]).
    Cnn(CnnError),
    /// Design-space exploration fault ([`ExploreError`]).
    Explore(ExploreError),
    /// Cost-model configuration fault ([`ConfigError`]).
    ModelConfig(ConfigError),
    /// Simulator configuration fault ([`SimConfigError`]).
    SimConfig(SimConfigError),
    /// JSON syntax fault ([`JsonError`]).
    Json(JsonError),
    /// A syntactically valid scenario with invalid content: an unknown
    /// name, a missing or mistyped field, an out-of-range value.
    Scenario {
        /// Dotted path of the offending field (e.g. `model.zoo`).
        field: String,
        /// What is wrong, including valid alternatives where known.
        detail: String,
    },
    /// Command-line misuse: unknown command, unknown/duplicate/valueless
    /// flag, missing required argument.
    Usage(String),
    /// An I/O fault, with the path or operation that failed.
    Io {
        /// What was being read or written.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A server's admission queue is full; retry after the hinted delay.
    Busy {
        /// Server-suggested retry delay in milliseconds.
        retry_after_ms: u64,
    },
    /// A server is shutting down and no longer admits requests.
    Draining,
    /// A malformed frame or out-of-protocol message on a serve
    /// connection (either side).
    Protocol(String),
    /// A server executed the request and reported a failure; the
    /// server-side kind and exit code are carried verbatim so a client
    /// process can exit exactly as a local run would.
    Remote {
        /// The server-side [`Error::kind`].
        kind: String,
        /// The server-side [`Error::exit_code`].
        exit_code: u8,
        /// The server-side rendering of the error.
        detail: String,
    },
    /// A batch run where some scenarios succeeded and others failed;
    /// the per-file details live in the batch report.
    BatchPartial {
        /// Scenarios that failed.
        failed: usize,
        /// Scenarios attempted.
        total: usize,
    },
}

impl Error {
    /// Builds a [`Error::Scenario`] (convenience for the scenario
    /// parser).
    pub fn scenario(field: impl Into<String>, detail: impl Into<String>) -> Self {
        Self::Scenario {
            field: field.into(),
            detail: detail.into(),
        }
    }

    /// Builds an [`Error::Io`] tagged with its context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io {
            context: context.into(),
            source,
        }
    }

    /// The exit code a request that died in a panic maps to (the
    /// "internal error" row of the exit-code table). There is no enum
    /// variant for it — a panic is precisely the failure that produced
    /// no typed error — but servers report it and clients propagate it
    /// through [`Error::Remote`].
    pub const INTERNAL_EXIT_CODE: u8 = 9;

    /// Stable machine-readable tag of the variant, used in batch reports
    /// and serve responses. One tag per variant; documented alongside
    /// the exit codes in `docs/serving.md`.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Arch(_) => "arch",
            Self::Calib(_) => "calib",
            Self::Cnn(_) => "cnn",
            Self::Explore(_) => "explore",
            Self::ModelConfig(_) => "model_config",
            Self::SimConfig(_) => "sim_config",
            Self::Json(_) => "json",
            Self::Scenario { .. } => "scenario",
            Self::Usage(_) => "usage",
            Self::Io { .. } => "io",
            Self::Busy { .. } => "busy",
            Self::Draining => "draining",
            Self::Protocol(_) => "protocol",
            Self::Remote { .. } => "remote",
            Self::BatchPartial { .. } => "batch_partial",
        }
    }

    /// The documented, stable process exit code for this error:
    ///
    /// | code | errors |
    /// |------|--------|
    /// | 2    | `Usage` |
    /// | 3    | `Scenario`, `Json` (malformed input) |
    /// | 4    | `Arch`, `Cnn`, `Explore`, `ModelConfig`, `SimConfig` (domain) |
    /// | 5    | `Io`, `Calib` (calibration-store file faults) |
    /// | 6    | `BatchPartial` |
    /// | 7    | `Busy`, `Draining` (retryable; the server is fine) |
    /// | 8    | `Protocol` |
    /// | 9    | internal error (request panicked; no variant) |
    ///
    /// `Remote` carries the server-computed code verbatim so `mccm run
    /// --connect` exits exactly as the same scenario would locally.
    /// Success is 0 and 1 is left to the runtime (e.g. a panic in main),
    /// so scripts can distinguish "mccm said no" from "mccm blew up".
    pub fn exit_code(&self) -> u8 {
        match self {
            Self::Usage(_) => 2,
            Self::Scenario { .. } | Self::Json(_) => 3,
            Self::Arch(_)
            | Self::Cnn(_)
            | Self::Explore(_)
            | Self::ModelConfig(_)
            | Self::SimConfig(_) => 4,
            Self::Io { .. } | Self::Calib(_) => 5,
            Self::BatchPartial { .. } => 6,
            Self::Busy { .. } | Self::Draining => 7,
            Self::Protocol(_) => 8,
            Self::Remote { exit_code, .. } => *exit_code,
        }
    }

    /// Whether retrying the same request later can succeed without any
    /// change on the caller's side (admission-control rejections only).
    pub fn retryable(&self) -> bool {
        matches!(self, Self::Busy { .. } | Self::Draining)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Arch(e) => write!(f, "{e}"),
            Self::Calib(e) => write!(f, "{e}"),
            Self::Cnn(e) => write!(f, "{e}"),
            Self::Explore(e) => write!(f, "{e}"),
            Self::ModelConfig(e) => write!(f, "{e}"),
            Self::SimConfig(e) => write!(f, "{e}"),
            Self::Json(e) => write!(f, "{e}"),
            Self::Scenario { field, detail } => {
                write!(f, "scenario field `{field}`: {detail}")
            }
            Self::Usage(detail) => write!(f, "{detail}"),
            Self::Io { context, source } => write!(f, "{context}: {source}"),
            Self::Busy { retry_after_ms } => {
                write!(f, "server busy; retry after {retry_after_ms} ms")
            }
            Self::Draining => write!(f, "server draining; not admitting new requests"),
            Self::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            Self::Remote { kind, detail, .. } => write!(f, "remote {kind} error: {detail}"),
            Self::BatchPartial { failed, total } => {
                write!(f, "batch partially failed: {failed} of {total} scenarios")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Arch(e) => Some(e),
            Self::Calib(e) => Some(e),
            Self::Cnn(e) => Some(e),
            Self::Explore(e) => Some(e),
            Self::ModelConfig(e) => Some(e),
            Self::SimConfig(e) => Some(e),
            Self::Json(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            Self::Scenario { .. }
            | Self::Usage(_)
            | Self::Busy { .. }
            | Self::Draining
            | Self::Protocol(_)
            | Self::Remote { .. }
            | Self::BatchPartial { .. } => None,
        }
    }
}

impl From<ArchError> for Error {
    fn from(e: ArchError) -> Self {
        Self::Arch(e)
    }
}

impl From<CalibError> for Error {
    fn from(e: CalibError) -> Self {
        Self::Calib(e)
    }
}

impl From<CnnError> for Error {
    fn from(e: CnnError) -> Self {
        Self::Cnn(e)
    }
}

impl From<ExploreError> for Error {
    fn from(e: ExploreError) -> Self {
        Self::Explore(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Self::ModelConfig(e)
    }
}

impl From<SimConfigError> for Error {
    fn from(e: SimConfigError) -> Self {
        Self::SimConfig(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_crate_error_converts_and_keeps_its_source() {
        let cases: Vec<Error> = vec![
            ArchError::EmptySpec.into(),
            CnnError::EmptyModel.into(),
            ExploreError::BadConfig {
                detail: "islands".into(),
            }
            .into(),
            ConfigError::BadBandwidthDerate { derate: 2.0 }.into(),
            SimConfigError::TooFewImages {
                images: 1,
                minimum: 3,
            }
            .into(),
            JsonError {
                offset: 3,
                detail: "x".into(),
            }
            .into(),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_some(), "{e:?} should expose its source");
        }
        let s = Error::scenario("model.zoo", "unknown model");
        assert_eq!(s.to_string(), "scenario field `model.zoo`: unknown model");
        assert!(s.source().is_none());
    }

    #[test]
    fn exit_codes_match_the_documented_table() {
        let table: Vec<(Error, u8, &str)> = vec![
            (Error::Usage("bad flag".into()), 2, "usage"),
            (Error::scenario("model.zoo", "unknown"), 3, "scenario"),
            (
                JsonError {
                    offset: 0,
                    detail: "x".into(),
                }
                .into(),
                3,
                "json",
            ),
            (ArchError::EmptySpec.into(), 4, "arch"),
            (CnnError::EmptyModel.into(), 4, "cnn"),
            (
                ExploreError::BadConfig {
                    detail: "islands".into(),
                }
                .into(),
                4,
                "explore",
            ),
            (Error::io("x", std::io::Error::other("y")), 5, "io"),
            (
                CalibError::Format {
                    path: "store.json".into(),
                    detail: "missing `version`".into(),
                }
                .into(),
                5,
                "calib",
            ),
            (
                Error::BatchPartial {
                    failed: 1,
                    total: 3,
                },
                6,
                "batch_partial",
            ),
            (Error::Busy { retry_after_ms: 50 }, 7, "busy"),
            (Error::Draining, 7, "draining"),
            (Error::Protocol("short frame".into()), 8, "protocol"),
        ];
        for (e, code, kind) in &table {
            assert_eq!(e.exit_code(), *code, "{e}");
            assert_eq!(e.kind(), *kind, "{e}");
            assert!(!e.to_string().is_empty());
        }
        // Remote propagates the server-computed code verbatim.
        let remote = Error::Remote {
            kind: "arch".into(),
            exit_code: 4,
            detail: "infeasible".into(),
        };
        assert_eq!(remote.exit_code(), 4);
        assert_eq!(remote.kind(), "remote");
        // Only admission rejections are retryable.
        for (e, ..) in &table {
            assert_eq!(e.retryable(), e.exit_code() == 7, "{e}");
        }
    }

    #[test]
    fn inner_values_stay_matchable() {
        let e: Error = ExploreError::AttemptsExhausted {
            wanted: 5,
            got: 1,
            attempts: 64,
        }
        .into();
        match e {
            Error::Explore(ExploreError::AttemptsExhausted { wanted: 5, .. }) => {}
            other => panic!("lost the inner value: {other:?}"),
        }
    }
}
