//! The workspace-wide error type: every crate's typed error converges
//! here, so the scenario API (and anything built on it — the CLI, a
//! serving layer) handles one `Result<_, mccm::Error>` instead of five
//! unrelated error enums.

use std::fmt;

use crate::arch::ArchError;
use crate::cnn::CnnError;
use crate::core::ConfigError;
use crate::dse::ExploreError;
use crate::json::JsonError;
use crate::sim::SimConfigError;

/// Top-level error of the `mccm` facade.
///
/// Wraps each crate's typed error losslessly (the inner values remain
/// matchable and `source()` exposes them), plus the facade's own failure
/// modes: JSON syntax, scenario validation, CLI usage, and I/O.
#[derive(Debug)]
pub enum Error {
    /// Architecture specification / builder fault ([`ArchError`]).
    Arch(ArchError),
    /// CNN construction or validation fault ([`CnnError`]).
    Cnn(CnnError),
    /// Design-space exploration fault ([`ExploreError`]).
    Explore(ExploreError),
    /// Cost-model configuration fault ([`ConfigError`]).
    ModelConfig(ConfigError),
    /// Simulator configuration fault ([`SimConfigError`]).
    SimConfig(SimConfigError),
    /// JSON syntax fault ([`JsonError`]).
    Json(JsonError),
    /// A syntactically valid scenario with invalid content: an unknown
    /// name, a missing or mistyped field, an out-of-range value.
    Scenario {
        /// Dotted path of the offending field (e.g. `model.zoo`).
        field: String,
        /// What is wrong, including valid alternatives where known.
        detail: String,
    },
    /// Command-line misuse: unknown command, unknown/duplicate/valueless
    /// flag, missing required argument.
    Usage(String),
    /// An I/O fault, with the path or operation that failed.
    Io {
        /// What was being read or written.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl Error {
    /// Builds a [`Error::Scenario`] (convenience for the scenario
    /// parser).
    pub fn scenario(field: impl Into<String>, detail: impl Into<String>) -> Self {
        Self::Scenario {
            field: field.into(),
            detail: detail.into(),
        }
    }

    /// Builds an [`Error::Io`] tagged with its context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Arch(e) => write!(f, "{e}"),
            Self::Cnn(e) => write!(f, "{e}"),
            Self::Explore(e) => write!(f, "{e}"),
            Self::ModelConfig(e) => write!(f, "{e}"),
            Self::SimConfig(e) => write!(f, "{e}"),
            Self::Json(e) => write!(f, "{e}"),
            Self::Scenario { field, detail } => {
                write!(f, "scenario field `{field}`: {detail}")
            }
            Self::Usage(detail) => write!(f, "{detail}"),
            Self::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Arch(e) => Some(e),
            Self::Cnn(e) => Some(e),
            Self::Explore(e) => Some(e),
            Self::ModelConfig(e) => Some(e),
            Self::SimConfig(e) => Some(e),
            Self::Json(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            Self::Scenario { .. } | Self::Usage(_) => None,
        }
    }
}

impl From<ArchError> for Error {
    fn from(e: ArchError) -> Self {
        Self::Arch(e)
    }
}

impl From<CnnError> for Error {
    fn from(e: CnnError) -> Self {
        Self::Cnn(e)
    }
}

impl From<ExploreError> for Error {
    fn from(e: ExploreError) -> Self {
        Self::Explore(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Self::ModelConfig(e)
    }
}

impl From<SimConfigError> for Error {
    fn from(e: SimConfigError) -> Self {
        Self::SimConfig(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_crate_error_converts_and_keeps_its_source() {
        let cases: Vec<Error> = vec![
            ArchError::EmptySpec.into(),
            CnnError::EmptyModel.into(),
            ExploreError::BadConfig {
                detail: "islands".into(),
            }
            .into(),
            ConfigError::BadBandwidthDerate { derate: 2.0 }.into(),
            SimConfigError::TooFewImages {
                images: 1,
                minimum: 3,
            }
            .into(),
            JsonError {
                offset: 3,
                detail: "x".into(),
            }
            .into(),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_some(), "{e:?} should expose its source");
        }
        let s = Error::scenario("model.zoo", "unknown model");
        assert_eq!(s.to_string(), "scenario field `model.zoo`: unknown model");
        assert!(s.source().is_none());
    }

    #[test]
    fn inner_values_stay_matchable() {
        let e: Error = ExploreError::AttemptsExhausted {
            wanted: 5,
            got: 1,
            attempts: 64,
        }
        .into();
        match e {
            Error::Explore(ExploreError::AttemptsExhausted { wanted: 5, .. }) => {}
            other => panic!("lost the inner value: {other:?}"),
        }
    }
}
