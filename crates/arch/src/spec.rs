//! Multiple-CE accelerator specifications: the paper's notation (§III-B) as
//! data.
//!
//! A specification is an ordered list of *assignments*, each mapping a
//! contiguous range of convolution layers to a building block — a single
//! CE processing the range sequentially, or a set of pipelined CEs
//! processing it at tile granularity. Layer and CE indices are zero-based
//! internally; the textual notation (`{L1-L4: CE1, ...}`) is one-based as
//! in the paper.

use crate::error::ArchError;

/// A contiguous, inclusive range of convolution-layer indices
/// (zero-based). `last == None` denotes the paper's `Last`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerRange {
    /// First layer (zero-based, inclusive).
    pub first: usize,
    /// Last layer (zero-based, inclusive); `None` means "through the final
    /// layer of the CNN".
    pub last: Option<usize>,
}

impl LayerRange {
    /// Range covering `first..=last` (zero-based).
    pub const fn new(first: usize, last: usize) -> Self {
        Self {
            first,
            last: Some(last),
        }
    }

    /// Range from `first` through the last layer of the model.
    pub const fn through_last(first: usize) -> Self {
        Self { first, last: None }
    }

    /// Single layer.
    pub const fn single(layer: usize) -> Self {
        Self {
            first: layer,
            last: Some(layer),
        }
    }

    /// Resolves `Last` against a model with `num_layers` conv layers.
    pub fn resolve(&self, num_layers: usize) -> (usize, usize) {
        (
            self.first,
            self.last.unwrap_or(num_layers.saturating_sub(1)),
        )
    }
}

/// How a single-CE block walks its layer range.
///
/// `LayerByLayer` is the paper's default: each layer runs to completion,
/// spilling feature maps per Eq. 6 when they exceed the CE's buffers.
/// `DepthFirst` fuses consecutive layers DeFiNES-style: the CE tiles the
/// fused stack's output rows, keeps intermediate activations in on-chip
/// line buffers, and pays off-chip feature-map traffic only at fuse-group
/// boundaries. `fuse_depth` is the number of consecutive layers per fuse
/// group; `DepthFirst { fuse_depth: 1 }` is exactly `LayerByLayer`.
///
/// The schedule is meaningful for [`BlockSpec::Single`] blocks only —
/// pipelined blocks already overlap their layers at tile granularity, and
/// [`AcceleratorSpec::segments`] rejects depth-first pipelined
/// assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// Each layer runs to completion before the next starts.
    #[default]
    LayerByLayer,
    /// Consecutive layers are fused into groups of `fuse_depth` and
    /// executed depth-first over output rows.
    DepthFirst {
        /// Layers per fuse group (≥ 1).
        fuse_depth: usize,
    },
}

impl Schedule {
    /// Layers per fuse group: 1 for layer-by-layer.
    pub fn fuse_depth(&self) -> usize {
        match *self {
            Self::LayerByLayer => 1,
            Self::DepthFirst { fuse_depth } => fuse_depth,
        }
    }
}

/// The building block an assignment maps its layers onto (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockSpec {
    /// `CEz`: one CE processes the range layer by layer.
    Single(usize),
    /// `CEz-CEw`: `(w - z) + 1` tile-grained pipelined CEs. If the range
    /// has more layers than CEs, the block processes them in rounds of
    /// `(w - z) + 1` layers at a time.
    Pipelined {
        /// First CE id (zero-based, inclusive).
        first_ce: usize,
        /// Last CE id (zero-based, inclusive).
        last_ce: usize,
    },
}

impl BlockSpec {
    /// CE ids used by this block, in order.
    pub fn ces(&self) -> Vec<usize> {
        match *self {
            Self::Single(ce) => vec![ce],
            Self::Pipelined { first_ce, last_ce } => (first_ce..=last_ce).collect(),
        }
    }

    /// Number of CEs in this block.
    pub fn ce_count(&self) -> usize {
        match *self {
            Self::Single(_) => 1,
            Self::Pipelined { first_ce, last_ce } => last_ce - first_ce + 1,
        }
    }
}

/// One `{Lx-Ly : block}` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// The layers covered.
    pub range: LayerRange,
    /// The block processing them.
    pub block: BlockSpec,
    /// How a single-CE block walks the range (ignored for pipelined
    /// blocks, which must stay [`Schedule::LayerByLayer`]).
    pub schedule: Schedule,
}

impl Assignment {
    /// A layer-by-layer assignment (the default schedule).
    pub const fn new(range: LayerRange, block: BlockSpec) -> Self {
        Self {
            range,
            block,
            schedule: Schedule::LayerByLayer,
        }
    }

    /// The same assignment under a different schedule.
    #[must_use]
    pub const fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }
}

/// A complete multiple-CE accelerator description.
///
/// `coarse_pipeline` selects whether segments executed by distinct blocks
/// overlap different inputs (coarse-grained, whole-image pipelining as in
/// the Segmented and Hybrid architectures) or run strictly sequentially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceleratorSpec {
    /// Ordered layer-range → block assignments.
    pub assignments: Vec<Assignment>,
    /// Inter-segment (whole-image) pipelining across distinct blocks.
    pub coarse_pipeline: bool,
}

/// How one execution segment is processed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Executor {
    /// A single CE processes the segment's layers sequentially.
    SingleCe(usize),
    /// Pipelined CEs; layer `first + j` of the segment runs on `ces[j]`.
    PipelinedCes(Vec<usize>),
}

impl Executor {
    /// CE ids used by this executor.
    pub fn ces(&self) -> Vec<usize> {
        match self {
            Self::SingleCe(ce) => vec![*ce],
            Self::PipelinedCes(ces) => ces.clone(),
        }
    }
}

/// One execution segment: a contiguous run of layers processed to
/// completion by one block before (or concurrently with, under coarse
/// pipelining) the next segment.
///
/// Pipelined assignments longer than their CE count unroll into multiple
/// segments ("rounds"): `ceil(53 / 2) = 27` segments for ResNet-50 under
/// `{L1-Last: CE1-CE2}`, matching Fig. 6a.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Segment index in execution order.
    pub index: usize,
    /// First conv-layer index (zero-based, inclusive).
    pub first: usize,
    /// Last conv-layer index (zero-based, inclusive).
    pub last: usize,
    /// The block processing this segment.
    pub executor: Executor,
    /// How the segment's layers are walked (always
    /// [`Schedule::LayerByLayer`] for pipelined executors).
    pub schedule: Schedule,
}

impl Segment {
    /// Number of layers in the segment.
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Whether the segment is empty (never true for validated specs).
    pub fn is_empty(&self) -> bool {
        self.last < self.first
    }

    /// Conv-layer indices covered.
    pub fn layers(&self) -> impl Iterator<Item = usize> + '_ {
        self.first..=self.last
    }
}

impl AcceleratorSpec {
    /// Creates a spec; `coarse_pipeline` defaults to `true` when more than
    /// one distinct block exists (the common case for Segmented/Hybrid).
    pub fn new(assignments: Vec<Assignment>, coarse_pipeline: bool) -> Self {
        Self {
            assignments,
            coarse_pipeline,
        }
    }

    /// Total number of distinct CEs referenced.
    pub fn ce_count(&self) -> usize {
        self.assignments
            .iter()
            .flat_map(|a| a.block.ces())
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Validates the spec against a model with `num_layers` convolution
    /// layers and expands it into execution segments.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the spec is empty, ranges are inverted,
    /// out of bounds, overlapping or leave gaps, CE ids are non-contiguous,
    /// or a CE is used both as a single-CE and within a pipelined block.
    pub fn segments(&self, num_layers: usize) -> Result<Vec<Segment>, ArchError> {
        if self.assignments.is_empty() {
            return Err(ArchError::EmptySpec);
        }

        // CE role consistency and contiguity.
        let n_ces = self.ce_count();
        let mut role: Vec<Option<bool>> = vec![None; n_ces]; // true = pipelined
        for a in &self.assignments {
            let pipelined = matches!(a.block, BlockSpec::Pipelined { .. });
            if let BlockSpec::Pipelined { first_ce, last_ce } = a.block {
                if last_ce < first_ce {
                    return Err(ArchError::BadCeUsage {
                        ce: first_ce,
                        detail: "inverted CE range".into(),
                    });
                }
                if a.schedule != Schedule::LayerByLayer {
                    return Err(ArchError::BadCeUsage {
                        ce: first_ce,
                        detail: "depth-first schedule on a pipelined block (pipelined blocks \
                                 already overlap layers at tile granularity)"
                            .into(),
                    });
                }
            }
            if let Schedule::DepthFirst { fuse_depth } = a.schedule {
                if fuse_depth == 0 {
                    if let BlockSpec::Single(ce) = a.block {
                        return Err(ArchError::BadCeUsage {
                            ce,
                            detail: "depth-first fuse depth must be at least 1".into(),
                        });
                    }
                }
            }
            for ce in a.block.ces() {
                match role[ce] {
                    None => role[ce] = Some(pipelined),
                    Some(r) if r != pipelined => {
                        return Err(ArchError::BadCeUsage {
                            ce,
                            detail: "used both as single-CE and pipelined".into(),
                        })
                    }
                    _ => {}
                }
            }
        }
        if let Some(ce) = role.iter().position(Option::is_none) {
            return Err(ArchError::BadCeUsage {
                ce,
                detail: "CE id gap".into(),
            });
        }

        // Coverage and segment expansion.
        let mut segments = Vec::new();
        let mut next_layer = 0usize;
        for (i, a) in self.assignments.iter().enumerate() {
            let (first, last) = a.range.resolve(num_layers);
            if last < first || last >= num_layers {
                return Err(ArchError::BadLayerRange {
                    assignment: i,
                    detail: format!(
                        "range L{}-L{} outside 1..={num_layers}",
                        first + 1,
                        last + 1
                    ),
                });
            }
            if first != next_layer {
                return Err(ArchError::NonContiguousCoverage {
                    at_layer: next_layer,
                    detail: format!("assignment {i} starts at L{}", first + 1),
                });
            }
            match a.block {
                BlockSpec::Single(ce) => {
                    segments.push(Segment {
                        index: segments.len(),
                        first,
                        last,
                        executor: Executor::SingleCe(ce),
                        schedule: a.schedule,
                    });
                }
                BlockSpec::Pipelined { first_ce, last_ce } => {
                    let ces: Vec<usize> = (first_ce..=last_ce).collect();
                    let width = ces.len();
                    let mut lo = first;
                    while lo <= last {
                        let hi = (lo + width - 1).min(last);
                        segments.push(Segment {
                            index: segments.len(),
                            first: lo,
                            last: hi,
                            executor: Executor::PipelinedCes(ces[..hi - lo + 1].to_vec()),
                            schedule: Schedule::LayerByLayer,
                        });
                        lo = hi + 1;
                    }
                }
            }
            next_layer = last + 1;
        }
        if next_layer != num_layers {
            return Err(ArchError::NonContiguousCoverage {
                at_layer: next_layer,
                detail: format!("layers L{}..L{num_layers} unassigned", next_layer + 1),
            });
        }
        Ok(segments)
    }

    /// Conv-layer indices processed by each CE (union over all segments),
    /// given the segment expansion.
    pub fn ce_layers(&self, segments: &[Segment]) -> Vec<Vec<usize>> {
        let mut layers = vec![Vec::new(); self.ce_count()];
        for seg in segments {
            match &seg.executor {
                Executor::SingleCe(ce) => layers[*ce].extend(seg.layers()),
                Executor::PipelinedCes(ces) => {
                    for (offset, ce) in ces.iter().enumerate() {
                        layers[*ce].push(seg.first + offset);
                    }
                }
            }
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_spec() -> AcceleratorSpec {
        // {L1-L4: CE1, L5-L12: CE2}
        AcceleratorSpec::new(
            vec![
                Assignment {
                    schedule: Schedule::LayerByLayer,
                    range: LayerRange::new(0, 3),
                    block: BlockSpec::Single(0),
                },
                Assignment {
                    schedule: Schedule::LayerByLayer,
                    range: LayerRange::through_last(4),
                    block: BlockSpec::Single(1),
                },
            ],
            true,
        )
    }

    #[test]
    fn single_blocks_expand_to_one_segment_each() {
        let segs = seg_spec().segments(12).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].first, segs[0].last), (0, 3));
        assert_eq!((segs[1].first, segs[1].last), (4, 11));
        assert_eq!(segs[1].executor, Executor::SingleCe(1));
    }

    #[test]
    fn pipelined_block_unrolls_rounds() {
        // {L1-Last: CE1-CE2} over 53 layers -> 27 rounds (Fig. 6a).
        let spec = AcceleratorSpec::new(
            vec![Assignment {
                schedule: Schedule::LayerByLayer,
                range: LayerRange::through_last(0),
                block: BlockSpec::Pipelined {
                    first_ce: 0,
                    last_ce: 1,
                },
            }],
            false,
        );
        let segs = spec.segments(53).unwrap();
        assert_eq!(segs.len(), 27);
        assert_eq!(segs[0].len(), 2);
        assert_eq!(segs[26].len(), 1); // final odd layer
        assert_eq!(segs[26].executor, Executor::PipelinedCes(vec![0]));
    }

    #[test]
    fn ce_layers_round_robin() {
        let spec = AcceleratorSpec::new(
            vec![Assignment {
                schedule: Schedule::LayerByLayer,
                range: LayerRange::through_last(0),
                block: BlockSpec::Pipelined {
                    first_ce: 0,
                    last_ce: 2,
                },
            }],
            false,
        );
        let segs = spec.segments(7).unwrap();
        let per_ce = spec.ce_layers(&segs);
        assert_eq!(per_ce[0], vec![0, 3, 6]);
        assert_eq!(per_ce[1], vec![1, 4]);
        assert_eq!(per_ce[2], vec![2, 5]);
    }

    #[test]
    fn gap_rejected() {
        let spec = AcceleratorSpec::new(
            vec![
                Assignment {
                    schedule: Schedule::LayerByLayer,
                    range: LayerRange::new(0, 3),
                    block: BlockSpec::Single(0),
                },
                Assignment {
                    schedule: Schedule::LayerByLayer,
                    range: LayerRange::new(6, 11),
                    block: BlockSpec::Single(1),
                },
            ],
            true,
        );
        assert!(matches!(
            spec.segments(12),
            Err(ArchError::NonContiguousCoverage { at_layer: 4, .. })
        ));
    }

    #[test]
    fn missing_tail_rejected() {
        let spec = AcceleratorSpec::new(
            vec![Assignment {
                schedule: Schedule::LayerByLayer,
                range: LayerRange::new(0, 3),
                block: BlockSpec::Single(0),
            }],
            true,
        );
        assert!(matches!(
            spec.segments(12),
            Err(ArchError::NonContiguousCoverage { .. })
        ));
    }

    #[test]
    fn mixed_ce_role_rejected() {
        let spec = AcceleratorSpec::new(
            vec![
                Assignment {
                    schedule: Schedule::LayerByLayer,
                    range: LayerRange::new(0, 1),
                    block: BlockSpec::Pipelined {
                        first_ce: 0,
                        last_ce: 1,
                    },
                },
                Assignment {
                    schedule: Schedule::LayerByLayer,
                    range: LayerRange::through_last(2),
                    block: BlockSpec::Single(1),
                },
            ],
            true,
        );
        assert!(matches!(
            spec.segments(12),
            Err(ArchError::BadCeUsage { ce: 1, .. })
        ));
    }

    #[test]
    fn ce_id_gap_rejected() {
        let spec = AcceleratorSpec::new(
            vec![
                Assignment {
                    schedule: Schedule::LayerByLayer,
                    range: LayerRange::new(0, 5),
                    block: BlockSpec::Single(0),
                },
                Assignment {
                    schedule: Schedule::LayerByLayer,
                    range: LayerRange::through_last(6),
                    block: BlockSpec::Single(2),
                },
            ],
            true,
        );
        assert!(matches!(
            spec.segments(12),
            Err(ArchError::BadCeUsage { ce: 1, .. })
        ));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let spec = AcceleratorSpec::new(
            vec![Assignment {
                schedule: Schedule::LayerByLayer,
                range: LayerRange::new(0, 15),
                block: BlockSpec::Single(0),
            }],
            true,
        );
        assert!(matches!(
            spec.segments(12),
            Err(ArchError::BadLayerRange { .. })
        ));
    }

    #[test]
    fn ce_count_counts_distinct() {
        assert_eq!(seg_spec().ce_count(), 2);
        let spec = AcceleratorSpec::new(
            vec![Assignment {
                schedule: Schedule::LayerByLayer,
                range: LayerRange::through_last(0),
                block: BlockSpec::Pipelined {
                    first_ce: 0,
                    last_ce: 3,
                },
            }],
            false,
        );
        assert_eq!(spec.ce_count(), 4);
    }
}
