//! The fully built accelerator: the "generic multiple-CE accelerator
//! representation" fed into the analytical cost model (§III-B).

use std::sync::Arc;

use mccm_cnn::ConvInfo;
use mccm_fpga::{FpgaBoard, Precision};

use crate::builder::BufferPlan;
use crate::engine::ComputeEngine;
use crate::notation;
use crate::spec::{AcceleratorSpec, Executor, Segment};

/// A multiple-CE accelerator with all implementation details decided:
/// segments, engines (PEs + parallelism), and buffer plan. Produced by
/// [`MultipleCeBuilder`](crate::MultipleCeBuilder); consumed by the cost
/// model (`mccm-core`) and the reference simulator (`mccm-sim`).
///
/// The sweep-invariant inputs (layer records, board, model name) are
/// shared with the originating builder behind [`Arc`]s: a built design is
/// a borrowed view of its builder's context plus the per-design decisions
/// (spec, segments, engines, buffer plan). Cloning a `BuiltAccelerator`
/// — and building one — therefore never deep-copies the CNN or board.
#[derive(Debug, Clone)]
pub struct BuiltAccelerator {
    /// Name of the CNN this accelerator was built for (shared with the
    /// builder).
    pub model_name: Arc<str>,
    /// Per-conv-layer records of the CNN (in execution order; shared with
    /// the builder).
    pub convs: Arc<[ConvInfo]>,
    /// Target platform (shared with the builder).
    pub board: Arc<FpgaBoard>,
    /// Data-type widths.
    pub precision: Precision,
    /// The originating specification.
    pub spec: AcceleratorSpec,
    /// Execution segments in order.
    pub segments: Vec<Segment>,
    /// Configured engines, indexed by CE id.
    pub ces: Vec<ComputeEngine>,
    /// On-chip buffer plan.
    pub buffers: BufferPlan,
    /// Per-conv-layer off-chip weight compression ratio in `(0, 1]`
    /// (1.0 = uncompressed). Weights are stored compressed off-chip and
    /// decompressed on the fly into the (unchanged) on-chip buffers, so
    /// compression scales traffic and transfer time only — the selective
    /// optimization the paper's Use Case 2 guides (§V-D). Empty means all
    /// layers uncompressed.
    pub weight_compression: Vec<f64>,
}

impl BuiltAccelerator {
    /// Whether coarse-grained (whole-image) pipelining applies across
    /// distinct blocks.
    pub fn coarse_pipeline(&self) -> bool {
        self.spec.coarse_pipeline
    }

    /// Number of compute engines.
    pub fn ce_count(&self) -> usize {
        self.ces.len()
    }

    /// The paper-notation string for this accelerator.
    pub fn notation(&self) -> String {
        notation::format(&self.spec)
    }

    /// Off-chip weight bytes of a conv layer (compression applied).
    pub fn weight_bytes(&self, layer: usize) -> u64 {
        let raw = self.precision.weight_size(self.convs[layer].weights);
        match self.weight_compression.get(layer) {
            // The compressed size is `ceil(raw × ratio)` with ratio in
            // (0, 1]: non-negative and no larger than `raw`, so the round
            // trip through f64 is lossless for any realistic layer.
            #[allow(clippy::cast_precision_loss)]
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(&ratio) if ratio < 1.0 => (raw as f64 * ratio).ceil() as u64,
            _ => raw,
        }
    }

    /// On-chip (decompressed) weight bytes of a conv layer — the size its
    /// buffer must hold regardless of off-chip compression.
    pub fn weight_buffer_bytes(&self, layer: usize) -> u64 {
        self.precision.weight_size(self.convs[layer].weights)
    }

    /// Returns a copy with the given layers' off-chip weights compressed
    /// by `ratio` (compressed size = `ratio ×` raw size).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not in `(0, 1]` or a layer index is out of
    /// range.
    #[must_use]
    pub fn with_weight_compression(mut self, layers: &[usize], ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "ratio must be in (0, 1], got {ratio}"
        );
        if self.weight_compression.is_empty() {
            self.weight_compression = vec![1.0; self.convs.len()];
        }
        for &l in layers {
            self.weight_compression[l] = ratio;
        }
        self
    }

    /// IFM bytes of a conv layer.
    pub fn ifm_bytes(&self, layer: usize) -> u64 {
        self.precision
            .activation_size(self.convs[layer].ifm.elements())
    }

    /// OFM bytes of a conv layer.
    pub fn ofm_bytes(&self, layer: usize) -> u64 {
        self.precision
            .activation_size(self.convs[layer].ofm.elements())
    }

    /// The CE processing `layer` within `segment`.
    pub fn ce_for(&self, segment: &Segment, layer: usize) -> usize {
        match &segment.executor {
            Executor::SingleCe(ce) => *ce,
            Executor::PipelinedCes(ces) => ces[layer - segment.first],
        }
    }

    /// Total off-chip weight bytes of the CNN (the minimum off-chip weight
    /// traffic; compression applied).
    pub fn total_weight_bytes(&self) -> u64 {
        (0..self.convs.len()).map(|l| self.weight_bytes(l)).sum()
    }
}
