//! Multiple-CE accelerator descriptions and the Multiple-CE Builder.
//!
//! This crate implements the front half of the MCCM evaluation methodology
//! (§III of the paper): the notation that expresses any multiple-CE
//! accelerator (`{L1-L4: CE1, L5-Last: CE2-CE4}`), the three
//! state-of-the-art architecture templates (Segmented, SegmentedRR,
//! Hybrid), and the builder heuristics that decide implementation details —
//! PE distribution, per-CE parallelism strategies, and on-chip buffer
//! allocation. The output, [`BuiltAccelerator`], is the generic
//! representation consumed by the analytical cost model (`mccm-core`) and
//! the reference simulator (`mccm-sim`).
//!
//! ```
//! use mccm_arch::{notation, MultipleCeBuilder};
//! use mccm_cnn::zoo;
//! use mccm_fpga::FpgaBoard;
//!
//! # fn main() -> Result<(), mccm_arch::ArchError> {
//! let model = zoo::mobilenet_v2();
//! let spec = notation::parse("{L1-L3: CE1-CE3, L4-Last: CE4}")?;
//! let acc = MultipleCeBuilder::new(&model, &FpgaBoard::zc706()).build(&spec)?;
//! assert_eq!(acc.ce_count(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod accelerator;
pub mod builder;
mod engine;
mod error;
pub mod notation;
mod spec;
pub mod templates;

pub use accelerator::BuiltAccelerator;
pub use builder::{
    ce_needs, depth_first_ideal, distribute_slack, fuse_groups, fused_group_bytes, handoff_need,
    BufferPlan, BuilderOptions, CeBufferAlloc, CeContext, InterSegmentBuffer, MultipleCeBuilder,
    PeAllocation,
};
pub use engine::{CeRole, ComputeEngine, Parallelism};
pub use error::ArchError;
pub use spec::{AcceleratorSpec, Assignment, BlockSpec, Executor, LayerRange, Schedule, Segment};
pub use templates::Architecture;
