//! The Multiple-CE Builder (§III-A): turns a specification, a CNN, and a
//! platform into a [`BuiltAccelerator`] with all implementation details
//! decided — segment expansion, PE distribution, per-CE parallelism, and
//! the on-chip buffer plan.

mod buffers;
mod parallelism;
mod pe_alloc;

pub use buffers::{
    ce_needs, depth_first_ideal, distribute_slack, fuse_groups, fused_group_bytes, handoff_need,
    BufferPlan, CeBufferAlloc, InterSegmentBuffer,
};
pub use parallelism::{select_parallelism, select_row_parallelism};
pub use pe_alloc::distribute_pes;

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use mccm_cnn::{CnnModel, ConvInfo};
use mccm_fpga::{FpgaBoard, Precision};

use crate::accelerator::BuiltAccelerator;
use crate::engine::{CeRole, ComputeEngine, Parallelism};
use crate::error::ArchError;
use crate::spec::{AcceleratorSpec, BlockSpec, Schedule, Segment};

/// How the DSP budget is split across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeAllocation {
    /// Proportional to each engine's workload in MACs (the paper's
    /// heuristic, §II-C/§IV-A1).
    #[default]
    Proportional,
    /// Equal share per engine. Kept for the ablation study: it unbalances
    /// pipelines and inflates single-CE segment latencies.
    Uniform,
}

/// Non-default builder heuristics, used by the ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuilderOptions {
    /// PE distribution policy.
    pub pe_allocation: PeAllocation,
    /// Allow pipelined engines to parallelize across OFM rows (3-D search)
    /// instead of the row-pipelined default (`p_oh = 1`). Row parallelism
    /// collapses tile counts and hides the per-row weight re-streaming that
    /// real tile-grained pipelines pay.
    pub pipelined_row_parallelism: bool,
}

/// Memo key of one parallelism search: PE budget, whether OFM-row
/// parallelism is allowed, the CE's schedule, and the exact layer set the
/// CE processes. The CNN itself is fixed per [`BuildContext`], so this key
/// captures every input of the search. (The search itself is
/// schedule-independent today — fused groups run the same loop nest — but
/// the schedule is part of the key so a future schedule-aware search
/// cannot silently alias cache entries across schedules.)
type ParKey = (u32, bool, Schedule, Vec<usize>);

/// Memo key of one per-CE context: PE budget, contiguous layer range
/// (`first`, `len`), role, schedule, whether OFM-row parallelism is
/// allowed, and the data-type widths. Unlike [`ParKey`] this includes the
/// precision because buffer needs scale with it, while the parallelism
/// search does not — and cloned builders reconfigured via
/// `with_precision` share one build context.
type CtxKey = (u32, usize, usize, CeRole, Schedule, bool, Precision);

/// One CE's implementation context, planned in isolation from the rest of
/// the design: the parallelism the search selects for a contiguous layer
/// range and the buffer *needs* that parallelism implies (grants start at
/// the minimum; callers run [`distribute_slack`] across a whole design).
///
/// [`MultipleCeBuilder::ce_context`] memoizes these per
/// (pes, range, role, schedule) — the delta-evaluation path in `mccm-dse`
/// assembles whole designs from cached contexts without paying a full
/// [`MultipleCeBuilder::build`], and the invariant is that a context
/// planned alone is identical to the same CE inside a full build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CeContext {
    /// Selected parallelism — identical to the full build's choice for a
    /// CE with the same budget, range, role, and schedule.
    pub parallelism: Parallelism,
    /// Buffer needs at that parallelism, with the depth-first ideal raise
    /// already applied for single-CE ranges (a single-CE range is its own
    /// segment in the designs this hook serves).
    pub needs: CeBufferAlloc,
}

/// Upper bound on memoized search results per build context. The PE
/// budget in the key depends on the whole design's workload split, so a
/// very long sweep can keep minting fresh `(pes, layers)` pairs; past
/// this cap new results are simply not inserted (lookups stay correct,
/// memory stays bounded — results never depend on cache contents). At
/// ~100 bytes/entry the cap bounds the cache at tens of MB; sweeps mint
/// well under two entries per fresh design and revisit keys heavily, so
/// the cap only bites on sweeps far past the 100k-design scale.
const MEMO_CAP: usize = 1 << 18;

/// Sweep-invariant state shared by every build of one `(CNN, board)`
/// pair: the candidate factor table for the board's full DSP budget
/// (per-CE budgets use prefixes of it) and the memoized results of
/// [`select_parallelism`] — in design-space sweeps the same segment
/// boundaries recur constantly, and the cubic factor search is the
/// dominant per-design cost.
///
/// The context sits behind an [`Arc`] so cloned builders (and the
/// sharded `par_*` sweeps, which share one builder across worker
/// threads) all feed the same cache.
#[derive(Debug, Default)]
struct BuildContext {
    /// Ascending candidate factors for the board's full DSP budget.
    candidates: Vec<u32>,
    /// Memoized search results.
    memo: RwLock<HashMap<ParKey, Parallelism>>,
    /// Memoized per-CE contexts (delta-evaluation hook).
    ce_ctx: RwLock<HashMap<CtxKey, CeContext>>,
}

/// Builds accelerators for one (CNN, board) pair.
///
/// The builder owns a long-lived build context: the CNN's convolution
/// view, the board, and the model name live behind [`Arc`]s that every
/// built design shares (a build bumps three reference counts instead of
/// deep-cloning layer records and board strings), and per-CE parallelism
/// searches are memoized across builds — the properties that make
/// 100k-design sweeps cheap.
///
/// # Examples
///
/// ```
/// use mccm_arch::{templates, MultipleCeBuilder};
/// use mccm_cnn::zoo;
/// use mccm_fpga::FpgaBoard;
///
/// # fn main() -> Result<(), mccm_arch::ArchError> {
/// let model = zoo::resnet50();
/// let board = FpgaBoard::zcu102();
/// let builder = MultipleCeBuilder::new(&model, &board);
/// let spec = templates::segmented_rr(&model, 4)?;
/// let acc = builder.build(&spec)?;
/// assert_eq!(acc.ce_count(), 4);
/// assert_eq!(acc.notation(), "{L1-Last: CE1-CE4}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultipleCeBuilder {
    model_name: Arc<str>,
    convs: Arc<[ConvInfo]>,
    board: Arc<FpgaBoard>,
    precision: Precision,
    options: BuilderOptions,
    memoize: bool,
    ctx: Arc<BuildContext>,
}

impl MultipleCeBuilder {
    /// Creates a builder with default (8-bit) precision and heuristics.
    pub fn new(model: &CnnModel, board: &FpgaBoard) -> Self {
        let candidates = parallelism::candidates(board.dsps);
        Self {
            model_name: model.name().into(),
            convs: model.conv_view().into(),
            board: Arc::new(board.clone()),
            precision: Precision::default(),
            options: BuilderOptions::default(),
            memoize: true,
            ctx: Arc::new(BuildContext {
                candidates,
                memo: RwLock::new(HashMap::new()),
                ce_ctx: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Overrides the data-type widths.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Overrides builder heuristics (ablation studies).
    #[must_use]
    pub fn with_options(mut self, options: BuilderOptions) -> Self {
        self.options = options;
        self
    }

    /// Enables or disables the shared parallelism memo cache (on by
    /// default). Build results are identical either way — the switch
    /// exists so benches can measure the unmemoized per-design baseline.
    #[must_use]
    pub fn with_memoization(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Number of convolution layers of the underlying model.
    pub fn layer_count(&self) -> usize {
        self.convs.len()
    }

    /// The board this builder targets.
    pub fn board(&self) -> &FpgaBoard {
        &self.board
    }

    /// The data-type widths builds use.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The builder heuristics in effect (PE allocation policy, row
    /// parallelism) — read by the delta-evaluation path so its PE split
    /// mirrors [`Self::build`]'s exactly.
    pub fn options(&self) -> BuilderOptions {
        self.options
    }

    /// An opaque token identifying this builder's shared build context.
    /// Builders cloned from one another share one context (and thus one
    /// memo cache) and report the same token; independently constructed
    /// builders report different tokens while both are alive. Session
    /// caches use this hook to assert that a warmed builder really is
    /// being reused rather than reconstructed.
    pub fn context_token(&self) -> usize {
        Arc::as_ptr(&self.ctx) as usize
    }

    /// Number of memoized parallelism-search results held by the shared
    /// build context — a warmth indicator for session caches (zero on a
    /// freshly constructed builder, growing as designs are built).
    pub fn memo_len(&self) -> usize {
        self.ctx.memo.read().expect("memo poisoned").len()
    }

    /// Number of memoized per-CE contexts held by the shared build
    /// context (the [`Self::ce_context`] memo) — the delta-evaluation
    /// analogue of [`Self::memo_len`].
    pub fn ce_context_memo_len(&self) -> usize {
        self.ctx.ce_ctx.read().expect("ce-ctx memo poisoned").len()
    }

    /// Plans one CE's context — parallelism plus buffer needs — for the
    /// contiguous layer range `first..first + len` with `pes` PEs in
    /// `role` under `schedule`, without building a whole accelerator.
    /// Results are memoized in the shared build context alongside the
    /// parallelism memo (and covered by [`Self::context_token`]).
    ///
    /// The context is bit-identical to the corresponding CE of a full
    /// [`Self::build`] whose workload split grants the same `pes` to the
    /// same range — the property the delta evaluation path in `mccm-dse`
    /// relies on to recombine cached segment costs.
    ///
    /// # Panics
    ///
    /// Debug-asserts the range is non-empty and within the model.
    pub fn ce_context(
        &self,
        pes: u32,
        first: usize,
        len: usize,
        role: CeRole,
        schedule: Schedule,
    ) -> CeContext {
        debug_assert!(len > 0 && first + len <= self.convs.len());
        let allow_rows = match role {
            CeRole::Single => true,
            CeRole::Pipelined => self.options.pipelined_row_parallelism,
        };
        if !self.memoize {
            return self.plan_ce_context(pes, first, len, role, schedule, allow_rows);
        }
        let key: CtxKey = (pes, first, len, role, schedule, allow_rows, self.precision);
        if let Some(c) = self
            .ctx
            .ce_ctx
            .read()
            .expect("ce-ctx memo poisoned")
            .get(&key)
        {
            return *c;
        }
        let c = self.plan_ce_context(pes, first, len, role, schedule, allow_rows);
        let mut memo = self.ctx.ce_ctx.write().expect("ce-ctx memo poisoned");
        if memo.len() < MEMO_CAP {
            memo.insert(key, c);
        }
        c
    }

    fn plan_ce_context(
        &self,
        pes: u32,
        first: usize,
        len: usize,
        role: CeRole,
        schedule: Schedule,
        allow_rows: bool,
    ) -> CeContext {
        let layers: Vec<usize> = (first..first + len).collect();
        let parallelism = self.parallelism_for(pes, &layers, allow_rows, schedule);
        let mut needs = buffers::ce_needs(
            &self.convs,
            &layers,
            role,
            u64::from(parallelism.dims[0]),
            self.precision,
        );
        // Single-CE ranges are their own segment in the designs this hook
        // serves: apply the depth-first ideal raise the full planner
        // applies per single-CE segment.
        if matches!(role, CeRole::Single) {
            let fused = buffers::depth_first_ideal(
                &self.convs,
                first,
                first + len - 1,
                schedule.fuse_depth(),
                self.precision,
            );
            needs.ideal_bytes = needs.ideal_bytes.max(fused);
        }
        CeContext { parallelism, needs }
    }

    /// Memoized per-CE parallelism selection: cache hit for layer sets
    /// (and PE budgets) seen in any earlier build of this builder or its
    /// clones; otherwise the precomputed-grid search.
    fn parallelism_for(
        &self,
        pes: u32,
        layers: &[usize],
        allow_rows: bool,
        schedule: Schedule,
    ) -> Parallelism {
        if layers.is_empty() || pes <= 1 {
            return Parallelism::scalar();
        }
        if !self.memoize {
            return self.search_parallelism(pes, layers, allow_rows);
        }
        let key: ParKey = (pes, allow_rows, schedule, layers.to_vec());
        if let Some(p) = self.ctx.memo.read().expect("memo poisoned").get(&key) {
            return *p;
        }
        let p = self.search_parallelism(pes, layers, allow_rows);
        let mut memo = self.ctx.memo.write().expect("memo poisoned");
        if memo.len() < MEMO_CAP {
            memo.insert(key, p);
        }
        p
    }

    fn search_parallelism(&self, pes: u32, layers: &[usize], allow_rows: bool) -> Parallelism {
        let cand = parallelism::candidate_prefix(&self.ctx.candidates, pes);
        let dims: Vec<[u32; 6]> = layers.iter().map(|&l| self.convs[l].dims).collect();
        parallelism::search_parallelism(cand, pes, allow_rows, &dims)
    }

    /// Builds a specification into a complete accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] when the spec fails validation (coverage, CE
    /// roles) or the platform cannot host it (fewer DSPs than CEs).
    pub fn build(&self, spec: &AcceleratorSpec) -> Result<BuiltAccelerator, ArchError> {
        let segments = spec.segments(self.convs.len())?;
        let n_ces = spec.ce_count();
        if (self.board.dsps as usize) < n_ces {
            return Err(ArchError::Infeasible {
                detail: format!("{n_ces} CEs exceed {} DSPs", self.board.dsps),
            });
        }

        // Roles and schedules from the spec (validated consistent by
        // `segments`).
        let mut roles = vec![CeRole::Single; n_ces];
        let mut schedules = vec![Schedule::LayerByLayer; n_ces];
        for a in &spec.assignments {
            match a.block {
                BlockSpec::Pipelined { first_ce, last_ce } => {
                    for r in roles.iter_mut().take(last_ce + 1).skip(first_ce) {
                        *r = CeRole::Pipelined;
                    }
                }
                BlockSpec::Single(ce) => schedules[ce] = a.schedule,
            }
        }

        // PE distribution proportional to per-CE workload.
        let ce_layers = spec.ce_layers(&segments);
        let workloads: Vec<u64> = ce_layers
            .iter()
            .map(|layers| layers.iter().map(|&l| self.convs[l].macs).sum())
            .collect();
        let pes = match self.options.pe_allocation {
            PeAllocation::Proportional => distribute_pes(self.board.dsps, &workloads),
            PeAllocation::Uniform => distribute_pes(self.board.dsps, &vec![1u64; n_ces]),
        };

        // Parallelism per CE, minimizing Eq. (1) latency over its layers.
        // Pipelined engines are row-pipelined: they parallelize filters and
        // columns only (one OFM row per pipeline stage).
        let ces: Vec<ComputeEngine> = ce_layers
            .into_iter()
            .enumerate()
            .map(|(id, layers)| {
                let allow_rows = match roles[id] {
                    CeRole::Single => true,
                    CeRole::Pipelined => self.options.pipelined_row_parallelism,
                };
                let parallelism = self.parallelism_for(pes[id], &layers, allow_rows, schedules[id]);
                ComputeEngine {
                    id,
                    pes: pes[id],
                    parallelism,
                    role: roles[id],
                    schedule: schedules[id],
                    layers,
                }
            })
            .collect();

        let buffers = buffers::plan_buffers(
            &self.convs,
            &segments,
            &ces,
            spec.coarse_pipeline,
            self.precision,
            self.board.bram_bytes(),
        );

        Ok(BuiltAccelerator {
            model_name: Arc::clone(&self.model_name),
            convs: Arc::clone(&self.convs),
            board: Arc::clone(&self.board),
            precision: self.precision,
            spec: spec.clone(),
            segments,
            ces,
            buffers,
            weight_compression: Vec::new(),
        })
    }

    /// Convenience: builds every spec in the iterator, skipping
    /// combinations that are genuinely infeasible on this board.
    ///
    /// # Errors
    ///
    /// Propagates any builder fault other than [`ArchError::Infeasible`]
    /// — real bugs must not be silently reported as "infeasible" (the old
    /// code swallowed every error here via `.ok()`, mirroring the bug
    /// fixed in `Explorer::sweep_baselines`).
    pub fn build_sweep(
        &self,
        specs: impl IntoIterator<Item = AcceleratorSpec>,
    ) -> Result<Vec<BuiltAccelerator>, ArchError> {
        let mut out = Vec::new();
        for spec in specs {
            match self.build(&spec) {
                Ok(acc) => out.push(acc),
                Err(ArchError::Infeasible { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

/// Convenience validating a segment list is internally consistent (used by
/// tests and the simulator's defensive checks).
pub fn check_segments(segments: &[Segment], num_layers: usize) -> bool {
    let mut next = 0usize;
    for s in segments {
        if s.first != next || s.last < s.first {
            return false;
        }
        next = s.last + 1;
    }
    next == num_layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates;
    use mccm_cnn::zoo;

    #[test]
    fn builds_all_templates_for_resnet50() {
        let m = zoo::resnet50();
        let board = FpgaBoard::vcu108();
        let b = MultipleCeBuilder::new(&m, &board);
        for arch in templates::Architecture::ALL {
            for k in 2..=11 {
                let spec = arch.instantiate(&m, k).unwrap();
                let acc = b.build(&spec).unwrap();
                assert_eq!(acc.ce_count(), k, "{arch} {k}");
                let total_pes: u32 = acc.ces.iter().map(|c| c.pes).sum();
                assert_eq!(total_pes, board.dsps, "{arch} {k}");
                assert!(check_segments(&acc.segments, 53));
                for ce in &acc.ces {
                    assert!(ce.parallelism.total() <= u64::from(ce.pes));
                    assert!(!ce.layers.is_empty());
                }
            }
        }
    }

    #[test]
    fn memoized_builds_match_unmemoized() {
        // The memo cache must be behaviorally invisible: repeated builds
        // (warm cache) and a cache-disabled builder all agree exactly.
        let m = zoo::xception();
        let board = FpgaBoard::vcu110();
        let warm = MultipleCeBuilder::new(&m, &board);
        let cold = MultipleCeBuilder::new(&m, &board).with_memoization(false);
        for arch in templates::Architecture::ALL {
            for k in [2usize, 5, 9] {
                let spec = arch.instantiate(&m, k).unwrap();
                let first = warm.build(&spec).unwrap();
                let again = warm.build(&spec).unwrap();
                let reference = cold.build(&spec).unwrap();
                for (a, b) in first.ces.iter().zip(&reference.ces) {
                    assert_eq!(a, b, "{arch} {k}");
                }
                for (a, b) in first.ces.iter().zip(&again.ces) {
                    assert_eq!(a, b, "{arch} {k} (warm)");
                }
                assert_eq!(first.buffers, reference.buffers, "{arch} {k}");
            }
        }
    }

    #[test]
    fn clones_share_the_memo_cache() {
        let m = zoo::mobilenet_v2();
        let b = MultipleCeBuilder::new(&m, &FpgaBoard::zc706());
        let clone = b.clone();
        let spec = templates::segmented(&m, 4).unwrap();
        let a = b.build(&spec).unwrap();
        // The clone's build hits the cache populated by `b` and must be
        // identical.
        let c = clone.build(&spec).unwrap();
        assert_eq!(a.ces, c.ces);
        assert!(!clone.ctx.memo.read().unwrap().is_empty());
        assert_eq!(
            Arc::as_ptr(&b.ctx),
            Arc::as_ptr(&clone.ctx),
            "clones must share one build context"
        );
    }

    #[test]
    fn context_token_tracks_sharing_and_memo_len_tracks_warmth() {
        let m = zoo::mobilenet_v2();
        let board = FpgaBoard::zc706();
        let a = MultipleCeBuilder::new(&m, &board);
        let clone = a.clone();
        let fresh = MultipleCeBuilder::new(&m, &board);
        assert_eq!(a.context_token(), clone.context_token());
        assert_ne!(a.context_token(), fresh.context_token());
        assert_eq!(a.memo_len(), 0);
        a.build(&templates::segmented(&m, 4).unwrap()).unwrap();
        assert!(a.memo_len() > 0);
        assert_eq!(a.memo_len(), clone.memo_len(), "clones share the memo");
        assert_eq!(fresh.memo_len(), 0);
        assert_eq!(a.precision(), Precision::default());
        assert_eq!(a.board().name, board.name);
    }

    #[test]
    fn ce_context_matches_full_build() {
        // A context planned in isolation must be bit-identical to the
        // same CE inside a full build: same parallelism, same buffer
        // needs (grants aside — the full plan distributes slack).
        let m = zoo::mobilenet_v2();
        let board = FpgaBoard::zc706();
        let b = MultipleCeBuilder::new(&m, &board);
        for spec in [
            templates::hybrid(&m, 5).unwrap(),
            templates::segmented(&m, 4).unwrap(),
        ] {
            let acc = b.build(&spec).unwrap();
            for (ce, alloc) in acc.ces.iter().zip(&acc.buffers.ce) {
                let first = ce.layers[0];
                let len = ce.layers.len();
                if !ce.layers.iter().enumerate().all(|(i, &l)| l == first + i) {
                    continue; // hook serves contiguous ranges only
                }
                let ctx = b.ce_context(ce.pes, first, len, ce.role, ce.schedule);
                assert_eq!(ctx.parallelism, ce.parallelism);
                assert_eq!(ctx.needs.min_bytes, alloc.min_bytes);
                assert_eq!(ctx.needs.ideal_bytes, alloc.ideal_bytes);
                assert_eq!(ctx.needs.fm_tile_bytes, alloc.fm_tile_bytes);
                assert_eq!(ctx.needs.weight_stream_bytes, alloc.weight_stream_bytes);
                assert_eq!(ctx.needs.weights_total_bytes, alloc.weights_total_bytes);
            }
        }
        assert!(b.ce_context_memo_len() > 0);
        assert_eq!(b.clone().ce_context_memo_len(), b.ce_context_memo_len());
    }

    #[test]
    fn ce_context_memo_is_behaviorally_invisible() {
        let m = zoo::xception();
        let board = FpgaBoard::vcu108();
        let warm = MultipleCeBuilder::new(&m, &board);
        let cold = MultipleCeBuilder::new(&m, &board).with_memoization(false);
        let n = m.conv_view().len();
        for (first, len, role) in [
            (0usize, 1usize, CeRole::Pipelined),
            (0, 4, CeRole::Single),
            (4, n - 4, CeRole::Single),
        ] {
            let a = warm.ce_context(256, first, len, role, Schedule::LayerByLayer);
            let again = warm.ce_context(256, first, len, role, Schedule::LayerByLayer);
            let reference = cold.ce_context(256, first, len, role, Schedule::LayerByLayer);
            assert_eq!(a, reference);
            assert_eq!(a, again);
        }
        assert_eq!(cold.ce_context_memo_len(), 0);
    }

    #[test]
    fn pe_distribution_tracks_workload() {
        let m = zoo::resnet50();
        let b = MultipleCeBuilder::new(&m, &FpgaBoard::zcu102());
        let spec = templates::segmented(&m, 4).unwrap();
        let acc = b.build(&spec).unwrap();
        // MAC-balanced segments should give roughly equal PEs.
        let pes: Vec<u32> = acc.ces.iter().map(|c| c.pes).collect();
        let max = f64::from(*pes.iter().max().unwrap());
        let min = f64::from(*pes.iter().min().unwrap());
        assert!(max / min < 2.0, "pes {pes:?}");
    }

    #[test]
    fn hybrid_roles() {
        let m = zoo::mobilenet_v2();
        let b = MultipleCeBuilder::new(&m, &FpgaBoard::zc706());
        let acc = b.build(&templates::hybrid(&m, 5).unwrap()).unwrap();
        for ce in &acc.ces[..4] {
            assert_eq!(ce.role, CeRole::Pipelined);
            assert_eq!(ce.layers.len(), 1);
        }
        assert_eq!(acc.ces[4].role, CeRole::Single);
        assert_eq!(acc.ces[4].layers.len(), 52 - 4);
    }

    #[test]
    fn infeasible_when_more_ces_than_dsps() {
        let m = zoo::mobilenet_v2();
        let tiny = FpgaBoard::new("tiny", 3, mccm_fpga::MiB(0.1), 1.0);
        let b = MultipleCeBuilder::new(&m, &tiny);
        let spec = templates::segmented(&m, 5).unwrap();
        assert!(matches!(b.build(&spec), Err(ArchError::Infeasible { .. })));
    }

    #[test]
    fn build_sweep_skips_infeasible() {
        let m = zoo::resnet50();
        let b = MultipleCeBuilder::new(&m, &FpgaBoard::vcu110());
        let specs = (2..=11).map(|k| templates::hybrid(&m, k).unwrap());
        let built = b.build_sweep(specs).unwrap();
        assert_eq!(built.len(), 10);
    }

    #[test]
    fn precision_scales_buffer_needs() {
        let m = zoo::resnet50();
        let board = FpgaBoard::zcu102();
        let spec = templates::segmented_rr(&m, 4).unwrap();
        let acc8 = MultipleCeBuilder::new(&m, &board).build(&spec).unwrap();
        let acc16 = MultipleCeBuilder::new(&m, &board)
            .with_precision(Precision::INT16)
            .build(&spec)
            .unwrap();
        assert_eq!(acc16.total_weight_bytes(), 2 * acc8.total_weight_bytes());
        for (a8, a16) in acc8.buffers.ce.iter().zip(&acc16.buffers.ce) {
            assert!(a16.min_bytes >= a8.min_bytes);
        }
    }

    #[test]
    fn notation_round_trip_through_build() {
        let m = zoo::resnet50();
        let b = MultipleCeBuilder::new(&m, &FpgaBoard::vcu108());
        let spec = crate::notation::parse("{L1-L10: CE1, L11-Last: CE2}").unwrap();
        let acc = b.build(&spec).unwrap();
        assert_eq!(acc.notation(), "{L1-L10: CE1, L11-Last: CE2}");
        assert_eq!(acc.segments.len(), 2);
    }
}
