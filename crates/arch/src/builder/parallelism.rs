//! Per-CE parallelism-strategy selection.
//!
//! Given a CE's PE budget and the set of layers it processes, the builder
//! searches 3-D `(p_f, p_oh, p_ow)` configurations (filters × OFM height ×
//! OFM width — the strategy found best on average by Ma et al. \[23\]) and
//! picks the one minimizing the CE's total Eq. (1) latency over its layers.
//! 1-D and 2-D strategies fall out naturally when a factor is 1, which the
//! search prefers automatically for layers whose dimensions don't divide
//! well (§II-B).
//!
//! The more diverse the layers a CE processes, the harder it is to avoid
//! PE underutilization (§IV-A1) — that trade-off is exactly what this
//! search surfaces: a CE serving one layer gets factors that divide that
//! layer perfectly, while a CE serving many gets a compromise.
//!
//! The search is the dominant per-design cost of design-space sweeps, so
//! it is engineered for the hot path: the candidate table is computed once
//! per builder (per-PE-budget views are prefixes of it, see
//! [`candidate_prefix`]), and the per-layer `ceil(extent / factor)` terms
//! of Eq. (1) are precomputed over the candidate grid instead of being
//! re-derived inside the triple loop. [`MultipleCeBuilder`] additionally
//! memoizes whole search results per `(pes, layer set)` — see
//! `builder/mod.rs`.
//!
//! [`MultipleCeBuilder`]: crate::MultipleCeBuilder

use mccm_cnn::ConvInfo;
use mccm_quantity::Cycles;

use crate::engine::Parallelism;

/// Candidate per-dimension factors: small integers, powers of two, and
/// 3·2^k / 7·2^k families, covering the divisors of common CNN dimension
/// extents (64, 112, 149, 224, 728, …).
///
/// The table is ascending and duplicate-free, so the candidate set for any
/// smaller budget `p < max` is exactly the prefix of values `≤ p`
/// ([`candidate_prefix`]) — which is what lets the builder compute this
/// once for the board's full DSP budget and reuse it for every CE.
pub(crate) fn candidates(max: u32) -> Vec<u32> {
    let mut c: Vec<u32> = (1..=8).collect();
    let mut p = 16u32;
    while p <= max {
        c.push(p);
        p *= 2;
    }
    for base in [3u32, 7] {
        let mut v = base * 2;
        while v <= max {
            c.push(v);
            v *= 2;
        }
    }
    // Odd extents appearing in the zoo (Xception valid-padding chain,
    // DenseNet transitions).
    c.extend([5, 9, 10, 13, 19, 37, 74, 149].iter().copied());
    c.retain(|&v| v <= max);
    c.sort_unstable();
    c.dedup();
    c
}

/// The prefix of an ascending candidate `table` usable under a PE budget
/// of `pes` — identical to `candidates(pes)` when `table` was built for
/// any budget `≥ pes`.
pub(crate) fn candidate_prefix(table: &[u32], pes: u32) -> &[u32] {
    &table[..table.partition_point(|&v| v <= pes)]
}

/// Selects the 3-D parallelism for a CE with `pes` PEs processing
/// `layers`, minimizing total Eq. (1) cycles (ties: higher filter
/// parallelism, then higher row parallelism, for weight-reuse-friendly
/// configurations).
///
/// Returns scalar parallelism for an empty layer set.
pub fn select_parallelism(pes: u32, layers: &[&ConvInfo]) -> Parallelism {
    select_parallelism_dims(pes, layers, true)
}

/// Parallelism selection for row-pipelined engines: tile-grained pipelines
/// (TGPA \[41\], DNNBuilder \[49\]) process one OFM row per stage, so their
/// engines parallelize across filters and within the row (`p_oh = 1`).
pub fn select_row_parallelism(pes: u32, layers: &[&ConvInfo]) -> Parallelism {
    select_parallelism_dims(pes, layers, false)
}

fn select_parallelism_dims(pes: u32, layers: &[&ConvInfo], allow_rows: bool) -> Parallelism {
    if layers.is_empty() || pes <= 1 {
        return Parallelism::scalar();
    }
    let table = candidates(pes);
    let dims: Vec<[u32; 6]> = layers.iter().map(|l| l.dims).collect();
    search_parallelism(&table, pes, allow_rows, &dims)
}

/// The factor search itself, over a candidate table already restricted to
/// `≤ pes` and the layers' raw loop extents.
///
/// Iteration order and tie-breaking are load-bearing: results must be
/// identical to the historical nested `total_cycles` search, so sweeps
/// stay deterministic across the memoized and unmemoized paths. The only
/// changes here are algebraic: Eq. (1)'s per-layer product is factored as
/// `(C·KH·KW) · ceil(F/p_f) · ceil(OH/p_oh) · ceil(OW/p_ow)` with the
/// invariant part and the two outer `ceil` terms hoisted out of the inner
/// loops, and the per-candidate `ceil` grids precomputed once.
pub(crate) fn search_parallelism(
    cand: &[u32],
    pes: u32,
    allow_rows: bool,
    dims: &[[u32; 6]],
) -> Parallelism {
    debug_assert!(!dims.is_empty() && pes > 1);
    let n = dims.len();
    // Per-layer Eq. (1) factor invariant under the 3-D search: C·KH·KW.
    let rest: Vec<u64> = dims
        .iter()
        .map(|d| u64::from(d[1]) * u64::from(d[4]) * u64::from(d[5]))
        .collect();
    // ceil(extent / candidate) grids, candidate-major.
    let nc = cand.len();
    let mut cf = vec![0u64; nc * n];
    let mut coh = vec![0u64; nc * n];
    let mut cow = vec![0u64; nc * n];
    for (i, &c) in cand.iter().enumerate() {
        for (l, d) in dims.iter().enumerate() {
            cf[i * n + l] = u64::from(d[0]).div_ceil(u64::from(c));
            coh[i * n + l] = u64::from(d[2]).div_ceil(u64::from(c));
            cow[i * n + l] = u64::from(d[3]).div_ceil(u64::from(c));
        }
    }
    // Row-pipelined engines fix p_oh = 1; `cand` always starts at 1.
    let row_cand = if allow_rows { cand } else { &cand[..1] };

    let mut best = Parallelism::scalar();
    // Scalar baseline: Σ_l rest · F · OH · OW (all ceil terms at factor 1).
    // The running cost is a cycle count — typed, so a traffic or MAC total
    // can never leak into the comparison.
    let mut best_cost: Cycles = dims
        .iter()
        .zip(&rest)
        .map(|(d, &r)| Cycles::new(r * u64::from(d[0]) * u64::from(d[2]) * u64::from(d[3])))
        .sum();
    let mut a = vec![0u64; n];
    let mut b = vec![0u64; n];
    for (i, &pf) in cand.iter().enumerate() {
        if pf > pes {
            break;
        }
        let max_oh = pes / pf;
        for (l, av) in a.iter_mut().enumerate() {
            *av = rest[l] * cf[i * n + l];
        }
        for (j, &poh) in row_cand.iter().enumerate() {
            if poh > max_oh {
                break;
            }
            let max_ow = max_oh / poh;
            for (l, bv) in b.iter_mut().enumerate() {
                *bv = a[l] * coh[j * n + l];
            }
            for (k, &pow) in cand.iter().enumerate() {
                if pow > max_ow {
                    break;
                }
                // Partial-sum abort: once the running cost exceeds the
                // incumbent it can never win (and can never tie, since the
                // abort only fires strictly above `best_cost`).
                //
                // The partial sum stays raw `u64` inside this cubic loop:
                // `Cycles`' saturating add costs an extra compare per term,
                // measurable across the whole search. Terms are products of
                // in-range layer extents, so plain addition cannot overflow
                // where saturation would have engaged; the typed comparison
                // happens once per candidate at the boundary below.
                let best_raw = best_cost.get();
                let mut raw = 0u64;
                for (l, &bv) in b.iter().enumerate() {
                    raw += bv * cow[k * n + l];
                    if raw > best_raw {
                        break;
                    }
                }
                let cost = Cycles::new(raw);
                if cost < best_cost
                    || (cost == best_cost
                        && (pf, poh, pow) > (best.dims[0], best.dims[2], best.dims[3]))
                {
                    best = Parallelism::spatial(pf, poh, pow);
                    best_cost = cost;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_cnn::zoo;

    fn layer_refs(convs: &[ConvInfo], idx: &[usize]) -> Vec<ConvInfo> {
        idx.iter().map(|&i| convs[i].clone()).collect()
    }

    /// The historical reference implementation: the literal nested search
    /// re-deriving Eq. (1) per configuration. Kept as the oracle for the
    /// optimized `search_parallelism`.
    fn reference_search(pes: u32, layers: &[&ConvInfo], allow_rows: bool) -> Parallelism {
        if layers.is_empty() || pes <= 1 {
            return Parallelism::scalar();
        }
        let cand = candidates(pes);
        let row_cand = if allow_rows { cand.clone() } else { vec![1u32] };
        let dims: Vec<[u32; 6]> = layers.iter().map(|l| l.dims).collect();
        let total = |p: &Parallelism| -> Cycles {
            dims.iter().map(|&d| Cycles::new(p.latency_cycles(d))).sum()
        };
        let mut best = Parallelism::scalar();
        let mut best_cost = total(&best);
        for &pf in &cand {
            if pf > pes {
                break;
            }
            let max_oh = pes / pf;
            for &poh in &row_cand {
                if poh > max_oh {
                    break;
                }
                let max_ow = max_oh / poh;
                for &pow in &cand {
                    if pow > max_ow {
                        break;
                    }
                    let p = Parallelism::spatial(pf, poh, pow);
                    let cost = total(&p);
                    if cost < best_cost
                        || (cost == best_cost
                            && (p.dims[0], p.dims[2], p.dims[3])
                                > (best.dims[0], best.dims[2], best.dims[3]))
                    {
                        best = p;
                        best_cost = cost;
                    }
                }
            }
        }
        best
    }

    #[test]
    fn optimized_search_matches_reference_exactly() {
        for model in [zoo::resnet50(), zoo::xception(), zoo::mobilenet_v2()] {
            let convs = model.conv_view();
            let sets: Vec<Vec<&ConvInfo>> = vec![
                vec![&convs[0]],
                convs.iter().take(5).collect(),
                convs.iter().skip(10).take(20).collect(),
                convs.iter().collect(),
            ];
            for layers in &sets {
                for pes in [2u32, 7, 100, 513, 2520] {
                    for allow_rows in [true, false] {
                        let fast = if allow_rows {
                            select_parallelism(pes, layers)
                        } else {
                            select_row_parallelism(pes, layers)
                        };
                        let slow = reference_search(pes, layers, allow_rows);
                        assert_eq!(fast, slow, "{} pes={pes} rows={allow_rows}", model.name());
                    }
                }
            }
        }
    }

    #[test]
    fn candidate_prefix_matches_direct_candidates() {
        let table = candidates(4096);
        for pes in [1u32, 2, 8, 100, 149, 150, 1024, 4096] {
            assert_eq!(
                candidate_prefix(&table, pes),
                candidates(pes).as_slice(),
                "pes {pes}"
            );
        }
    }

    #[test]
    fn single_layer_gets_dividing_factors() {
        let m = zoo::resnet50();
        let convs = m.conv_view();
        // conv1: [64, 3, 112, 112, 7, 7]; 256 PEs should divide perfectly.
        let layers = layer_refs(&convs, &[0]);
        let refs: Vec<&ConvInfo> = layers.iter().collect();
        let p = select_parallelism(256, &refs);
        let dims = convs[0].dims;
        // Perfect division -> utilization equals engaged/allocated ratio.
        let cycles = Cycles::new(p.latency_cycles(dims));
        let macs: u64 = dims.iter().map(|&d| u64::from(d)).product();
        #[allow(clippy::cast_precision_loss)] // layer MACs ≪ 2^53
        let util = macs as f64 / (cycles.as_f64() * 256.0);
        assert!(util > 0.95, "util {util}, p {p}");
    }

    #[test]
    fn respects_pe_budget() {
        let m = zoo::xception();
        let convs = m.conv_view();
        let layers: Vec<ConvInfo> = convs.iter().take(20).cloned().collect();
        let refs: Vec<&ConvInfo> = layers.iter().collect();
        for pes in [1u32, 7, 64, 300, 1800] {
            let p = select_parallelism(pes, &refs);
            assert!(p.total() <= u64::from(pes), "{pes} PEs, chose {p}");
        }
    }

    #[test]
    fn diverse_layers_yield_lower_utilization_than_single() {
        let m = zoo::resnet50();
        let convs = m.conv_view();
        let all: Vec<ConvInfo> = convs.to_vec();
        let refs_all: Vec<&ConvInfo> = all.iter().collect();
        let p_all = select_parallelism(512, &refs_all);
        // Average utilization across all layers under the compromise config.
        #[allow(clippy::cast_precision_loss)] // layer count ≪ 2^53
        let layers = all.len() as f64;
        let avg_all: f64 = all
            .iter()
            .map(|l| p_all.utilization(l.dims, 512))
            .sum::<f64>()
            / layers;

        // Per-layer specialized engines do at least as well on their layer.
        let mut better = 0;
        for l in all.iter().take(10) {
            let refs = [l];
            let p = select_parallelism(512, &refs);
            if p.utilization(l.dims, 512) >= p_all.utilization(l.dims, 512) {
                better += 1;
            }
        }
        assert_eq!(better, 10);
        assert!(
            avg_all > 0.2,
            "compromise config should still be usable: {avg_all}"
        );
    }

    #[test]
    fn empty_layers_scalar() {
        assert_eq!(select_parallelism(128, &[]), Parallelism::scalar());
    }

    #[test]
    fn deterministic() {
        let m = zoo::mobilenet_v2();
        let convs = m.conv_view();
        let layers: Vec<ConvInfo> = convs.to_vec();
        let refs: Vec<&ConvInfo> = layers.iter().collect();
        assert_eq!(
            select_parallelism(900, &refs),
            select_parallelism(900, &refs)
        );
    }

    #[test]
    fn candidates_are_sorted_unique() {
        let c = candidates(1024);
        let mut sorted = c.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(c, sorted);
        assert!(c.contains(&7) && c.contains(&112) && c.contains(&149));
    }
}
