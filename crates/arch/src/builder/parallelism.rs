//! Per-CE parallelism-strategy selection.
//!
//! Given a CE's PE budget and the set of layers it processes, the builder
//! searches 3-D `(p_f, p_oh, p_ow)` configurations (filters × OFM height ×
//! OFM width — the strategy found best on average by Ma et al. \[23\]) and
//! picks the one minimizing the CE's total Eq. (1) latency over its layers.
//! 1-D and 2-D strategies fall out naturally when a factor is 1, which the
//! search prefers automatically for layers whose dimensions don't divide
//! well (§II-B).
//!
//! The more diverse the layers a CE processes, the harder it is to avoid
//! PE underutilization (§IV-A1) — that trade-off is exactly what this
//! search surfaces: a CE serving one layer gets factors that divide that
//! layer perfectly, while a CE serving many gets a compromise.

use mccm_cnn::ConvInfo;

use crate::engine::Parallelism;

/// Candidate per-dimension factors: small integers, powers of two, and
/// 3·2^k / 7·2^k families, covering the divisors of common CNN dimension
/// extents (64, 112, 149, 224, 728, …).
fn candidates(max: u32) -> Vec<u32> {
    let mut c: Vec<u32> = (1..=8).collect();
    let mut p = 16u32;
    while p <= max {
        c.push(p);
        p *= 2;
    }
    for base in [3u32, 7] {
        let mut v = base * 2;
        while v <= max {
            c.push(v);
            v *= 2;
        }
    }
    // Odd extents appearing in the zoo (Xception valid-padding chain,
    // DenseNet transitions).
    c.extend([5, 9, 10, 13, 19, 37, 74, 149].iter().copied());
    c.retain(|&v| v <= max);
    c.sort_unstable();
    c.dedup();
    c
}

/// Selects the 3-D parallelism for a CE with `pes` PEs processing
/// `layers`, minimizing total Eq. (1) cycles (ties: higher filter
/// parallelism, then higher row parallelism, for weight-reuse-friendly
/// configurations).
///
/// Returns scalar parallelism for an empty layer set.
pub fn select_parallelism(pes: u32, layers: &[&ConvInfo]) -> Parallelism {
    select_parallelism_dims(pes, layers, true)
}

/// Parallelism selection for row-pipelined engines: tile-grained pipelines
/// (TGPA \[41\], DNNBuilder \[49\]) process one OFM row per stage, so their
/// engines parallelize across filters and within the row (`p_oh = 1`).
pub fn select_row_parallelism(pes: u32, layers: &[&ConvInfo]) -> Parallelism {
    select_parallelism_dims(pes, layers, false)
}

fn select_parallelism_dims(pes: u32, layers: &[&ConvInfo], allow_rows: bool) -> Parallelism {
    if layers.is_empty() || pes <= 1 {
        return Parallelism::scalar();
    }
    let cand = candidates(pes);
    let row_cand = if allow_rows { cand.clone() } else { vec![1u32] };
    let dims: Vec<[u32; 6]> = layers.iter().map(|l| l.dims).collect();

    let mut best = Parallelism::scalar();
    let mut best_cost = total_cycles(&best, &dims);
    for &pf in &cand {
        if pf > pes {
            break;
        }
        let max_oh = pes / pf;
        for &poh in &row_cand {
            if poh > max_oh {
                break;
            }
            let max_ow = max_oh / poh;
            for &pow in &cand {
                if pow > max_ow {
                    break;
                }
                let p = Parallelism::spatial(pf, poh, pow);
                let cost = total_cycles(&p, &dims);
                if cost < best_cost
                    || (cost == best_cost
                        && (p.dims[0], p.dims[2], p.dims[3])
                            > (best.dims[0], best.dims[2], best.dims[3]))
                {
                    best = p;
                    best_cost = cost;
                }
            }
        }
    }
    best
}

fn total_cycles(p: &Parallelism, dims: &[[u32; 6]]) -> u64 {
    dims.iter().map(|&d| p.latency_cycles(d)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_cnn::zoo;

    fn layer_refs(convs: &[ConvInfo], idx: &[usize]) -> Vec<ConvInfo> {
        idx.iter().map(|&i| convs[i].clone()).collect()
    }

    #[test]
    fn single_layer_gets_dividing_factors() {
        let m = zoo::resnet50();
        let convs = m.conv_view();
        // conv1: [64, 3, 112, 112, 7, 7]; 256 PEs should divide perfectly.
        let layers = layer_refs(&convs, &[0]);
        let refs: Vec<&ConvInfo> = layers.iter().collect();
        let p = select_parallelism(256, &refs);
        let dims = convs[0].dims;
        // Perfect division -> utilization equals engaged/allocated ratio.
        let cycles = p.latency_cycles(dims);
        let macs: u64 = dims.iter().map(|&d| d as u64).product();
        let util = macs as f64 / (cycles as f64 * 256.0);
        assert!(util > 0.95, "util {util}, p {p}");
    }

    #[test]
    fn respects_pe_budget() {
        let m = zoo::xception();
        let convs = m.conv_view();
        let layers: Vec<ConvInfo> = convs.iter().take(20).cloned().collect();
        let refs: Vec<&ConvInfo> = layers.iter().collect();
        for pes in [1u32, 7, 64, 300, 1800] {
            let p = select_parallelism(pes, &refs);
            assert!(p.total() <= pes as u64, "{pes} PEs, chose {p}");
        }
    }

    #[test]
    fn diverse_layers_yield_lower_utilization_than_single() {
        let m = zoo::resnet50();
        let convs = m.conv_view();
        let all: Vec<ConvInfo> = convs.to_vec();
        let refs_all: Vec<&ConvInfo> = all.iter().collect();
        let p_all = select_parallelism(512, &refs_all);
        // Average utilization across all layers under the compromise config.
        let avg_all: f64 = all
            .iter()
            .map(|l| p_all.utilization(l.dims, 512))
            .sum::<f64>()
            / all.len() as f64;

        // Per-layer specialized engines do at least as well on their layer.
        let mut better = 0;
        for l in all.iter().take(10) {
            let refs = [l];
            let p = select_parallelism(512, &refs);
            if p.utilization(l.dims, 512) >= p_all.utilization(l.dims, 512) {
                better += 1;
            }
        }
        assert_eq!(better, 10);
        assert!(avg_all > 0.2, "compromise config should still be usable: {avg_all}");
    }

    #[test]
    fn empty_layers_scalar() {
        assert_eq!(select_parallelism(128, &[]), Parallelism::scalar());
    }

    #[test]
    fn deterministic() {
        let m = zoo::mobilenet_v2();
        let convs = m.conv_view();
        let layers: Vec<ConvInfo> = convs.to_vec();
        let refs: Vec<&ConvInfo> = layers.iter().collect();
        assert_eq!(select_parallelism(900, &refs), select_parallelism(900, &refs));
    }

    #[test]
    fn candidates_are_sorted_unique() {
        let c = candidates(1024);
        let mut sorted = c.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(c, sorted);
        assert!(c.contains(&7) && c.contains(&112) && c.contains(&149));
    }
}
