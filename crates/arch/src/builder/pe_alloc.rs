//! PE (DSP) distribution across compute engines.
//!
//! The paper's methodology assigns PEs to each CE proportionally to its
//! relative workload (§II-C, §IV-A1: "balancing the pipeline stages, i.e.
//! assigning PEs to each CE proportional to its relative workload"). This
//! module implements that with largest-remainder rounding so the total is
//! exactly the board's DSP budget and every CE receives at least one PE.

/// Distributes `total` PEs over CEs proportionally to `workloads` (MACs),
/// guaranteeing ≥ 1 PE per CE and an exact total.
///
/// # Panics
///
/// Panics if `workloads` is empty or `total < workloads.len()` (callers
/// validate feasibility first).
pub fn distribute_pes(total: u32, workloads: &[u64]) -> Vec<u32> {
    let n = workloads.len();
    assert!(n > 0, "no CEs to allocate to");
    assert!(total as usize >= n, "fewer PEs ({total}) than CEs ({n})");

    let n_u32 = u32::try_from(n).expect("CE count fits u32 (bounded by the PE budget)");

    let sum: u64 = workloads.iter().sum();
    if sum == 0 {
        // Degenerate: spread evenly.
        let base = total / n_u32;
        let mut out = vec![base; n];
        for item in out.iter_mut().take(total as usize % n) {
            *item += 1;
        }
        return out;
    }

    // Reserve one PE per CE, distribute the rest proportionally.
    let spare = total - n_u32;
    let mut alloc: Vec<u32> = vec![1; n];
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut assigned = 0u32;
    for (i, &w) in workloads.iter().enumerate() {
        // Workload MAC counts stay below 2^53, so the proportional shares
        // are exact; the floor of a share of a u32 budget refits u32.
        #[allow(clippy::cast_precision_loss)]
        let exact = f64::from(spare) * w as f64 / sum as f64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let floor = exact.floor() as u32;
        alloc[i] += floor;
        assigned += floor;
        remainders.push((i, exact - f64::from(floor)));
    }
    // Largest remainders (ties broken by index for determinism).
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for &(i, _) in remainders.iter().take((spare - assigned) as usize) {
        alloc[i] += 1;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_total_and_min_one() {
        let alloc = distribute_pes(768, &[100, 1, 1]);
        assert_eq!(alloc.iter().sum::<u32>(), 768);
        assert!(alloc.iter().all(|&a| a >= 1));
        assert!(alloc[0] > 700);
    }

    #[test]
    fn proportionality() {
        let alloc = distribute_pes(900, &[3, 1]);
        assert_eq!(alloc.iter().sum::<u32>(), 900);
        // 3:1 split of 898 spare plus the reserved 1s.
        assert!((f64::from(alloc[0]) / f64::from(alloc[1]) - 3.0).abs() < 0.05);
    }

    #[test]
    fn zero_workloads_spread_evenly() {
        let alloc = distribute_pes(10, &[0, 0, 0]);
        assert_eq!(alloc.iter().sum::<u32>(), 10);
        assert!(alloc.iter().all(|&a| a >= 3));
    }

    #[test]
    fn tight_budget_gives_one_each() {
        let alloc = distribute_pes(3, &[5, 5, 5]);
        assert_eq!(alloc, vec![1, 1, 1]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let a = distribute_pes(11, &[1, 1, 1, 1]);
        let b = distribute_pes(11, &[1, 1, 1, 1]);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<u32>(), 11);
    }

    #[test]
    #[should_panic(expected = "fewer PEs")]
    fn infeasible_panics() {
        distribute_pes(2, &[1, 1, 1]);
    }
}
