//! On-chip buffer distribution (the Multiple-CE Builder's "PE & Buffer
//! Distribution" stage, §III-A).
//!
//! The planner computes, per CE, the *minimum* buffering the design needs
//! to function (double-buffered row tiles and a weight stream buffer) and
//! the *ideal* buffering that guarantees the paper's minimum off-chip
//! accesses (Eq. 4 for single-CE blocks, Eq. 5 for pipelined blocks), plus
//! the inter-segment buffers of Eq. 8. When the board's BRAM cannot hold
//! the ideal, capacity is granted in a fixed priority order reflecting the
//! traffic saved per buffer byte:
//!
//! 1. mandatory tile minimums for every CE;
//! 2. per-round weight residency for pipelined CEs (avoids re-streaming
//!    weights on every pipeline stage — the dominant traffic term);
//! 3. full weight residency for pipelined CEs (avoids per-round reloads);
//! 4. inter-segment handoff buffers, smallest first (avoids spilling whole
//!    intermediate images, Eq. 9);
//! 5. single-CE feature-map buffers, proportional to residual demand
//!    (reduces Eq. 6 spills).
//!
//! The resulting [`BufferPlan`] records needs and grants; the cost model
//! (`mccm-core`) derives weight-residency classes and spill policies from
//! it.

use mccm_cnn::ConvInfo;
use mccm_fpga::Precision;

use crate::engine::{CeRole, ComputeEngine};
use crate::spec::{Executor, Segment};

/// On-chip bytes a depth-first fuse group `first..=last` needs to execute
/// without spilling intermediates: every fused layer's (decompressed)
/// weights resident simultaneously, a line buffer of `K` input rows per
/// fused layer, and a double-buffered output row for the group's last
/// layer.
///
/// This is the single definition of the fused working set — the buffer
/// planner sizes depth-first CEs by it and the cost model checks fusion
/// feasibility against it, so the two can never disagree.
pub fn fused_group_bytes(
    convs: &[ConvInfo],
    first: usize,
    last: usize,
    precision: Precision,
) -> u64 {
    let weights: u64 = convs[first..=last]
        .iter()
        .map(|l| precision.weight_size(l.weights))
        .sum();
    let line_elements: u64 = convs[first..=last]
        .iter()
        .map(|l| u64::from(l.spec.kernel.0) * l.ifm.row_elements())
        .sum();
    let out_elements = 2 * convs[last].ofm.row_elements();
    weights + precision.activation_size(line_elements + out_elements)
}

/// The consecutive fuse groups a depth-first segment `first..=last` splits
/// into: chunks of `fuse_depth` layers, the last possibly shorter.
pub fn fuse_groups(
    first: usize,
    last: usize,
    fuse_depth: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let depth = fuse_depth.max(1);
    (first..=last)
        .step_by(depth)
        .map(move |lo| (lo, (lo + depth - 1).min(last)))
}

/// Buffer allocation for one compute engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CeBufferAlloc {
    /// Granted on-chip capacity in bytes.
    pub bytes: u64,
    /// Mandatory minimum (`fm_tile_bytes + weight_stream_bytes`).
    pub min_bytes: u64,
    /// Capacity that guarantees minimum off-chip accesses for this CE.
    pub ideal_bytes: u64,
    /// Double-buffered feature-map row tiles (input rows + output row).
    pub fm_tile_bytes: u64,
    /// Double-buffered weight streaming tile.
    pub weight_stream_bytes: u64,
    /// Total weight bytes over all layers this CE processes.
    pub weights_total_bytes: u64,
    /// Largest single-layer weight bytes among its layers.
    pub weights_max_layer_bytes: u64,
    /// Largest feature-map working set (IFM + OFM + residual copies) among
    /// its layers, in bytes — Eq. (4)'s first term.
    pub fm_working_set_bytes: u64,
}

impl CeBufferAlloc {
    /// Capacity available for weights beyond the FM tiles.
    pub fn weight_capacity(&self) -> u64 {
        self.bytes.saturating_sub(self.fm_tile_bytes)
    }
}

/// Inter-segment interface buffer (Eq. 8's `interSegBufferSz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterSegmentBuffer {
    /// Bytes needed to keep the handoff on-chip (doubled when the handoff
    /// is pipelined).
    pub bytes_needed: u64,
    /// Whether the planner could grant it on-chip.
    pub on_chip: bool,
    /// Whether the two segments overlap different inputs (coarse
    /// pipelining between distinct blocks), requiring double buffering.
    pub pipelined_handoff: bool,
    /// Whether both segments run on the same block (consecutive rounds of
    /// a round-robin pipelined block). Such handoffs stream through
    /// off-chip memory by design (TGPA \[41\]) and are never granted BRAM.
    pub same_block: bool,
}

/// Complete buffer plan for a built accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferPlan {
    /// Per-CE allocations, indexed by CE id.
    pub ce: Vec<CeBufferAlloc>,
    /// Handoff buffers between consecutive segments (`len = segments - 1`).
    pub inter_segment: Vec<InterSegmentBuffer>,
    /// Board BRAM capacity the plan was fitted to.
    pub bram_bytes: u64,
    /// Whether even the mandatory minimums fit.
    pub fits_minimums: bool,
}

impl BufferPlan {
    /// Total granted on-chip bytes (CE buffers + on-chip handoffs).
    pub fn total_bytes(&self) -> u64 {
        let ce: u64 = self.ce.iter().map(|c| c.bytes).sum();
        let seg: u64 = self
            .inter_segment
            .iter()
            .filter(|b| b.on_chip)
            .map(|b| b.bytes_needed)
            .sum();
        ce + seg
    }
}

/// The buffer *needs* of one CE processing `layers` (global layer
/// indices into `convs`) in `role` with input-channel parallelism `pf`:
/// mandatory minimums, the ideal that guarantees minimum accesses, and
/// the weight/FM statistics the cost model reads. The grant starts at
/// the minimum; [`distribute_slack`] raises it.
///
/// This is the single definition of per-CE buffer demand — both the full
/// [`plan_buffers`] pass and the per-segment builder hook
/// (`MultipleCeBuilder::ce_context`) call it, so a segment planned alone
/// is byte-identical to the same segment inside a whole-design plan.
pub fn ce_needs(
    convs: &[ConvInfo],
    layers: &[usize],
    role: CeRole,
    pf: u64,
    precision: Precision,
) -> CeBufferAlloc {
    let wb = |l: &ConvInfo| precision.weight_size(l.weights);
    let ab = u64::from(precision.activation_bytes);
    // Consumer kernel height per layer: rows of a layer's OFM the next
    // layer needs before producing one row (1 for the final layer).
    let next_k =
        |idx: usize| -> u64 { convs.get(idx + 1).map_or(1, |n| u64::from(n.spec.kernel.0)) };
    let layers: Vec<&ConvInfo> = layers.iter().map(|&l| &convs[l]).collect();

    let weight_stream = 2
        * layers
            .iter()
            .map(|l| {
                pf.min(u64::from(l.dims[0]))
                    * u64::from(l.dims[1])
                    * (u64::from(l.dims[4]) * u64::from(l.dims[5]))
            })
            .max()
            .unwrap_or(0)
        * u64::from(precision.weight_bytes);

    let fm_tile = match role {
        // Streaming spill tiles: K input rows + 1 output row, double
        // buffered.
        CeRole::Single => {
            2 * layers
                .iter()
                .map(|l| u64::from(l.spec.kernel.0) * l.ifm.row_elements() + l.ofm.row_elements())
                .max()
                .unwrap_or(0)
                * ab
        }
        // Pipeline row tiles: enough producer rows for one output
        // row on the input side, one row on the output side, double
        // buffered.
        CeRole::Pipelined => {
            2 * layers
                .iter()
                .map(|l| {
                    u64::from(l.spec.kernel.0) * l.ifm.row_elements()
                        + next_k(l.index) * l.ofm.row_elements()
                })
                .max()
                .unwrap_or(0)
                * ab
        }
    };

    let weights_total: u64 = layers.iter().map(|l| wb(l)).sum();
    let weights_max = layers.iter().map(|l| wb(l)).max().unwrap_or(0);
    let fm_ws = layers
        .iter()
        .map(|l| l.fm_working_set * ab)
        .max()
        .unwrap_or(0);

    let min_bytes = fm_tile + weight_stream;
    let ideal_bytes = match role {
        CeRole::Single => weight_stream + fm_tile.max(fm_ws),
        CeRole::Pipelined => fm_tile + weights_total,
    };
    CeBufferAlloc {
        bytes: min_bytes,
        min_bytes,
        ideal_bytes,
        fm_tile_bytes: fm_tile,
        weight_stream_bytes: weight_stream,
        weights_total_bytes: weights_total,
        weights_max_layer_bytes: weights_max,
        fm_working_set_bytes: fm_ws,
    }
}

/// The largest fuse-group working set of a depth-first segment
/// `first..=last` at `fuse_depth` — the amount a depth-first CE's ideal
/// is raised to so generous BRAM lets every group fuse (`0` for
/// layer-by-layer depth 1).
pub fn depth_first_ideal(
    convs: &[ConvInfo],
    first: usize,
    last: usize,
    fuse_depth: usize,
    precision: Precision,
) -> u64 {
    if fuse_depth <= 1 {
        return 0;
    }
    fuse_groups(first, last, fuse_depth)
        .map(|(lo, hi)| fused_group_bytes(convs, lo, hi, precision))
        .max()
        .unwrap_or(0)
}

/// The inter-segment handoff buffer after the segment whose last layer is
/// `producer_last`: the producer's full OFM, doubled when the handoff is
/// pipelined (coarse pipelining between disjoint blocks). Starts
/// off-chip; [`distribute_slack`] grants BRAM.
pub fn handoff_need(
    convs: &[ConvInfo],
    producer_last: usize,
    precision: Precision,
    pipelined_handoff: bool,
    same_block: bool,
) -> InterSegmentBuffer {
    let fm_bytes = convs[producer_last].ofm.elements() * u64::from(precision.activation_bytes);
    InterSegmentBuffer {
        bytes_needed: if pipelined_handoff {
            2 * fm_bytes
        } else {
            fm_bytes
        },
        on_chip: false,
        pipelined_handoff,
        same_block,
    }
}

/// Distributes the BRAM slack above the mandatory minimums across CE
/// grants and handoff buffers in the fixed priority order (2–5 of the
/// module docs). Returns whether even the minimums fit; when they do
/// not, every grant stays at its minimum and every handoff off-chip —
/// exactly the plan the cost model then degrades around.
///
/// `role_of(i)` is CE `i`'s role — a closure so callers without built
/// [`ComputeEngine`]s (the per-segment delta path) can use it too.
pub fn distribute_slack(
    allocs: &mut [CeBufferAlloc],
    role_of: impl Fn(usize) -> CeRole,
    inter: &mut [InterSegmentBuffer],
    bram_bytes: u64,
) -> bool {
    let spent: u64 = allocs.iter().map(|a| a.bytes).sum();
    let fits_minimums = spent <= bram_bytes;
    if !fits_minimums {
        return fits_minimums;
    }
    let mut slack = bram_bytes - spent;

    // Priority 2: per-round weight residency for pipelined CEs.
    let mut upgrades: Vec<(usize, u64)> = allocs
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            matches!(role_of(*i), CeRole::Pipelined)
                && a.fm_tile_bytes + a.weights_max_layer_bytes > a.bytes
        })
        .map(|(i, a)| (i, a.fm_tile_bytes + a.weights_max_layer_bytes - a.bytes))
        .collect();
    upgrades.sort_by_key(|&(i, cost)| (cost, i));
    for (i, cost) in upgrades {
        if cost <= slack {
            allocs[i].bytes += cost;
            slack -= cost;
        }
    }

    // Priority 3: full weight residency for pipelined CEs.
    let mut upgrades: Vec<(usize, u64)> = allocs
        .iter()
        .enumerate()
        .filter(|(i, a)| matches!(role_of(*i), CeRole::Pipelined) && a.ideal_bytes > a.bytes)
        .map(|(i, a)| (i, a.ideal_bytes - a.bytes))
        .collect();
    upgrades.sort_by_key(|&(i, cost)| (cost, i));
    for (i, cost) in upgrades {
        if cost <= slack {
            allocs[i].bytes += cost;
            slack -= cost;
        }
    }

    // Priority 4: inter-segment buffers between distinct blocks, smallest
    // first. Same-block (round-robin) handoffs always stream off-chip.
    let mut order: Vec<usize> = (0..inter.len()).filter(|&i| !inter[i].same_block).collect();
    order.sort_by_key(|&i| (inter[i].bytes_needed, i));
    for i in order {
        if inter[i].bytes_needed <= slack {
            inter[i].on_chip = true;
            slack -= inter[i].bytes_needed;
        }
    }

    // Priority 5: single-CE FM buffers, proportional to residual demand.
    for _pass in 0..2 {
        let residuals: Vec<(usize, u64)> = allocs
            .iter()
            .enumerate()
            .filter(|(i, a)| matches!(role_of(*i), CeRole::Single) && a.ideal_bytes > a.bytes)
            .map(|(i, a)| (i, a.ideal_bytes - a.bytes))
            .collect();
        let total_res: u64 = residuals.iter().map(|&(_, r)| r).sum();
        if total_res == 0 || slack == 0 {
            break;
        }
        if total_res <= slack {
            for (i, r) in residuals {
                allocs[i].bytes += r;
            }
            break;
        }
        for (i, r) in residuals {
            // The quotient of (slack × r) / total_res is ≤ slack, a u64.
            #[allow(clippy::cast_possible_truncation)]
            let grant = ((u128::from(slack) * u128::from(r)) / u128::from(total_res)) as u64;
            let grant = grant.min(allocs[i].ideal_bytes - allocs[i].bytes);
            allocs[i].bytes += grant;
            slack -= grant;
        }
    }
    fits_minimums
}

/// Plans buffers for a set of engines and segments against a BRAM budget.
pub fn plan_buffers(
    convs: &[ConvInfo],
    segments: &[Segment],
    ces: &[ComputeEngine],
    coarse_pipeline: bool,
    precision: Precision,
    bram_bytes: u64,
) -> BufferPlan {
    // Per-CE needs.
    let mut allocs: Vec<CeBufferAlloc> = ces
        .iter()
        .map(|ce| {
            ce_needs(
                convs,
                &ce.layers,
                ce.role,
                u64::from(ce.parallelism.dims[0]),
                precision,
            )
        })
        .collect();

    // Depth-first CEs additionally want every fuse group's working set
    // (group weights + line buffers) resident; raise their ideal so
    // generous BRAM lets every group fuse. The layer-by-layer ideal stays
    // the floor — infeasible groups fall back to per-layer execution with
    // streaming tiles. Fuse depth 1 is layer-by-layer and changes nothing.
    for seg in segments {
        let Executor::SingleCe(ce) = &seg.executor else {
            continue;
        };
        let ce = *ce;
        let fused_need = depth_first_ideal(
            convs,
            seg.first,
            seg.last,
            seg.schedule.fuse_depth(),
            precision,
        );
        allocs[ce].ideal_bytes = allocs[ce].ideal_bytes.max(fused_need);
    }

    // Inter-segment handoffs.
    let mut inter: Vec<InterSegmentBuffer> = segments
        .windows(2)
        .map(|w| {
            let disjoint = {
                let a = w[0].executor.ces();
                let b = w[1].executor.ces();
                !a.iter().any(|ce| b.contains(ce))
            };
            handoff_need(
                convs,
                w[0].last,
                precision,
                coarse_pipeline && disjoint,
                !disjoint,
            )
        })
        .collect();

    let fits_minimums = distribute_slack(&mut allocs, |i| ces[i].role, &mut inter, bram_bytes);
    BufferPlan {
        ce: allocs,
        inter_segment: inter,
        bram_bytes,
        fits_minimums,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Parallelism;
    use crate::spec::{Executor, Schedule};
    use mccm_cnn::zoo;

    fn single_ce(id: usize, layers: Vec<usize>) -> ComputeEngine {
        ComputeEngine {
            id,
            pes: 64,
            parallelism: Parallelism::spatial(8, 2, 4),
            role: CeRole::Single,
            schedule: Schedule::LayerByLayer,
            layers,
        }
    }

    fn pipe_ce(id: usize, layers: Vec<usize>) -> ComputeEngine {
        ComputeEngine {
            id,
            pes: 64,
            parallelism: Parallelism::spatial(8, 2, 4),
            role: CeRole::Pipelined,
            schedule: Schedule::LayerByLayer,
            layers,
        }
    }

    fn two_segment_fixture() -> (Vec<ConvInfo>, Vec<Segment>, Vec<ComputeEngine>) {
        let m = zoo::mobilenet_v2();
        let convs = m.conv_view();
        let n = convs.len();
        let segments = vec![
            Segment {
                schedule: Schedule::LayerByLayer,
                index: 0,
                first: 0,
                last: 9,
                executor: Executor::SingleCe(0),
            },
            Segment {
                schedule: Schedule::LayerByLayer,
                index: 1,
                first: 10,
                last: n - 1,
                executor: Executor::SingleCe(1),
            },
        ];
        let ces = vec![
            single_ce(0, (0..10).collect()),
            single_ce(1, (10..n).collect()),
        ];
        (convs, segments, ces)
    }

    #[test]
    fn generous_bram_grants_ideals() {
        let (convs, segments, ces) = two_segment_fixture();
        let plan = plan_buffers(
            &convs,
            &segments,
            &ces,
            true,
            Precision::INT8,
            1 << 30, // 1 GiB
        );
        assert!(plan.fits_minimums);
        for a in &plan.ce {
            assert_eq!(a.bytes, a.ideal_bytes);
        }
        assert!(plan.inter_segment.iter().all(|b| b.on_chip));
        assert!(plan.total_bytes() <= 1 << 30);
    }

    #[test]
    fn tiny_bram_reports_unfit_minimums() {
        let (convs, segments, ces) = two_segment_fixture();
        let plan = plan_buffers(&convs, &segments, &ces, true, Precision::INT8, 1024);
        assert!(!plan.fits_minimums);
        assert!(plan.inter_segment.iter().all(|b| !b.on_chip));
    }

    #[test]
    fn allocation_never_exceeds_bram_when_feasible() {
        let (convs, segments, ces) = two_segment_fixture();
        for budget in [200_000u64, 500_000, 2_000_000, 8_000_000] {
            let plan = plan_buffers(&convs, &segments, &ces, true, Precision::INT8, budget);
            if plan.fits_minimums {
                assert!(plan.total_bytes() <= budget, "budget {budget}");
            }
        }
    }

    #[test]
    fn pipelined_weight_residency_prioritized() {
        let m = zoo::mobilenet_v2();
        let convs = m.conv_view();
        let segments = vec![Segment {
            schedule: Schedule::LayerByLayer,
            index: 0,
            first: 0,
            last: 1,
            executor: Executor::PipelinedCes(vec![0, 1]),
        }];
        let ces = vec![pipe_ce(0, vec![0]), pipe_ce(1, vec![1])];
        // Enough for minimums + weights but not much more.
        let min_plan = plan_buffers(&convs, &segments, &ces, false, Precision::INT8, 0);
        let need: u64 = min_plan.ce.iter().map(|a| a.ideal_bytes).sum();
        let plan = plan_buffers(&convs, &segments, &ces, false, Precision::INT8, need);
        assert!(plan.fits_minimums);
        for a in &plan.ce {
            assert!(a.weight_capacity() >= a.weights_total_bytes);
        }
    }

    #[test]
    fn pipelined_handoff_doubles_buffer() {
        let m = zoo::mobilenet_v2();
        let convs = m.conv_view();
        let n = convs.len();
        let segments = vec![
            Segment {
                schedule: Schedule::LayerByLayer,
                index: 0,
                first: 0,
                last: 9,
                executor: Executor::SingleCe(0),
            },
            Segment {
                schedule: Schedule::LayerByLayer,
                index: 1,
                first: 10,
                last: n - 1,
                executor: Executor::SingleCe(1),
            },
        ];
        let ces = vec![
            single_ce(0, (0..10).collect()),
            single_ce(1, (10..n).collect()),
        ];
        let coarse = plan_buffers(&convs, &segments, &ces, true, Precision::INT8, 1 << 30);
        let seq = plan_buffers(&convs, &segments, &ces, false, Precision::INT8, 1 << 30);
        assert_eq!(
            coarse.inter_segment[0].bytes_needed,
            2 * seq.inter_segment[0].bytes_needed
        );
        assert!(coarse.inter_segment[0].pipelined_handoff);
        assert!(!seq.inter_segment[0].pipelined_handoff);
    }

    #[test]
    fn shared_block_handoff_is_single_buffered() {
        // Consecutive rounds of the same pipelined block share CEs -> no
        // pipelined handoff even under coarse_pipeline = true.
        let m = zoo::mobilenet_v2();
        let convs = m.conv_view();
        let segments = vec![
            Segment {
                schedule: Schedule::LayerByLayer,
                index: 0,
                first: 0,
                last: 1,
                executor: Executor::PipelinedCes(vec![0, 1]),
            },
            Segment {
                schedule: Schedule::LayerByLayer,
                index: 1,
                first: 2,
                last: 3,
                executor: Executor::PipelinedCes(vec![0, 1]),
            },
        ];
        let ces = vec![pipe_ce(0, vec![0, 2]), pipe_ce(1, vec![1, 3])];
        let plan = plan_buffers(&convs, &segments, &ces, true, Precision::INT8, 1 << 30);
        assert!(!plan.inter_segment[0].pipelined_handoff);
        assert!(plan.inter_segment[0].same_block);
        // Round-robin handoffs stream off-chip regardless of BRAM budget.
        assert!(!plan.inter_segment[0].on_chip);
    }
}
