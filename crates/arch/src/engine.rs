//! Compute engines and their parallelism configuration.

use std::fmt;

use crate::spec::Schedule;

/// Per-dimension parallelism of a compute engine over the six convolution
/// loop dimensions `[F, C, OH, OW, KH, KW]` (§II-B).
///
/// The product of all entries is bounded by the engine's PE count; the
/// builder's default strategy parallelizes filters and the OFM spatial
/// dimensions (the 3-D strategy found best on average by Ma et al. \[23\]),
/// leaving `C`, `KH`, `KW` at 1, but any combination can be expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// Parallel factors for `[F, C, OH, OW, KH, KW]`.
    pub dims: [u32; 6],
}

impl Parallelism {
    /// No parallelism: one MAC per cycle.
    pub const fn scalar() -> Self {
        Self { dims: [1; 6] }
    }

    /// 3-D parallelism over filters and OFM height/width.
    pub const fn spatial(pf: u32, poh: u32, pow: u32) -> Self {
        Self {
            dims: [pf, 1, poh, pow, 1, 1],
        }
    }

    /// Total PEs engaged (product of all factors).
    pub fn total(&self) -> u64 {
        self.dims.iter().map(|&d| u64::from(d)).product()
    }

    /// Cycles to process a layer with loop extents `dims`, per Eq. (1):
    /// `Π_d ceil(|d| / Par(d))`.
    pub fn latency_cycles(&self, dims: [u32; 6]) -> u64 {
        self.dims
            .iter()
            .zip(dims.iter())
            .map(|(&p, &d)| u64::from(d).div_ceil(u64::from(p)))
            .product()
    }

    /// Cycles to produce `rows` OFM rows of a layer (the tile unit of
    /// pipelined-CEs blocks): Eq. (1) with the `OH` extent clamped to
    /// `rows`.
    pub fn tile_latency_cycles(&self, dims: [u32; 6], rows: u32) -> u64 {
        let mut d = dims;
        d[2] = rows.min(d[2]);
        self.latency_cycles(d)
    }

    /// PE utilization achieved on a layer: useful MACs over `pes × cycles`.
    ///
    /// The denominator uses the engine's allocated PE count (not just the
    /// engaged product), so unallocated PEs count as underutilization.
    pub fn utilization(&self, dims: [u32; 6], pes: u32) -> f64 {
        let macs: u64 = dims.iter().map(|&d| u64::from(d)).product();
        let cycles = self.latency_cycles(dims);
        if cycles == 0 || pes == 0 {
            return 0.0;
        }
        // Layer MAC and cycle counts sit far below 2^53: the f64 ratio is
        // exact to well past any tolerance the model compares at.
        #[allow(clippy::cast_precision_loss)]
        let ratio = macs as f64 / (cycles as f64 * f64::from(pes));
        ratio
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [pf, pc, poh, pow, pkh, pkw] = self.dims;
        write!(f, "F{pf}·C{pc}·OH{poh}·OW{pow}·KH{pkh}·KW{pkw}")
    }
}

/// Role of a CE within the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CeRole {
    /// Processes its layers one by one to completion.
    Single,
    /// A stage of a tile-grained pipelined block.
    Pipelined,
}

/// One configured compute engine of a built accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeEngine {
    /// CE id (zero-based; displayed one-based as `CE1`…).
    pub id: usize,
    /// PEs (DSPs) allocated to this engine.
    pub pes: u32,
    /// Loop parallelism configuration.
    pub parallelism: Parallelism,
    /// Single or pipelined role.
    pub role: CeRole,
    /// How a single-role engine walks its layers (always
    /// [`Schedule::LayerByLayer`] for pipelined engines).
    pub schedule: Schedule,
    /// Conv-layer indices this engine processes, in execution order.
    pub layers: Vec<usize>,
}

impl ComputeEngine {
    /// PE utilization on one of its layers.
    pub fn utilization(&self, dims: [u32; 6]) -> f64 {
        self.parallelism.utilization(dims, self.pes)
    }
}

impl fmt::Display for ComputeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CE{} ({} PEs, {}, {} layers)",
            self.id + 1,
            self.pes,
            self.parallelism,
            self.layers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_ceil_product() {
        // Paper's example (§IV-A1): a 4x2x2 CE processing a 6-filter layer
        // is fully utilized on the first 4 filters, half on the rest.
        let p = Parallelism::spatial(4, 2, 2);
        let dims = [6, 1, 4, 4, 1, 1];
        // ceil(6/4)=2, ceil(4/2)=2, ceil(4/2)=2 -> 8 cycles.
        assert_eq!(p.latency_cycles(dims), 8);
        // Full utilization would need 6*16/16 = 6 cycles -> util = 6/8.
        let util = p.utilization(dims, 16);
        assert!((util - 0.75).abs() < 1e-12);
    }

    #[test]
    fn perfect_division_is_full_utilization() {
        let p = Parallelism::spatial(4, 2, 2);
        let dims = [8, 1, 4, 4, 1, 1];
        assert_eq!(p.latency_cycles(dims), 2 * 2 * 2);
        assert!((p.utilization(dims, 16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tile_latency_clamps_rows() {
        let p = Parallelism::spatial(2, 1, 1);
        let dims = [4, 3, 10, 8, 3, 3];
        // One row: ceil(4/2)*3*1*8*3*3 = 2*3*8*9 = 432.
        assert_eq!(p.tile_latency_cycles(dims, 1), 432);
        // Clamped at full height.
        assert_eq!(p.tile_latency_cycles(dims, 100), p.latency_cycles(dims));
    }

    #[test]
    fn scalar_parallelism_costs_all_macs() {
        let p = Parallelism::scalar();
        let dims = [2, 3, 4, 5, 3, 3];
        assert_eq!(p.latency_cycles(dims), 2 * 3 * 4 * 5 * 9);
        assert_eq!(p.total(), 1);
    }

    #[test]
    fn unallocated_pes_count_as_underutilization() {
        let p = Parallelism::spatial(4, 2, 2); // 16 engaged
        let dims = [8, 1, 4, 4, 1, 1];
        // 20 allocated PEs, 16 engaged perfectly -> util = 16/20.
        assert!((p.utilization(dims, 20) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Parallelism::spatial(4, 2, 2).to_string(),
            "F4·C1·OH2·OW2·KH1·KW1"
        );
        let ce = ComputeEngine {
            id: 0,
            pes: 16,
            parallelism: Parallelism::spatial(4, 2, 2),
            role: CeRole::Single,
            schedule: Schedule::LayerByLayer,
            layers: vec![0, 1],
        };
        assert!(ce.to_string().contains("CE1"));
    }
}
