//! Textual notation for multiple-CE accelerators (§III-B).
//!
//! Grammar (whitespace-insensitive, one-based indices as in the paper):
//!
//! ```text
//! spec       := '{' entry (',' entry)* '}'
//! entry      := layers ':' block schedule?
//! layers     := 'L' index | 'L' index '-' ('L' index | 'Last')
//! block      := 'CE' index | 'CE' index '-' 'CE' index
//! schedule   := '@' 'df' index
//! ```
//!
//! Examples from the paper: `{L1-L4: CE1, L5-L6: CE2, L7-L9: CE3,
//! L10-L12: CE4}` (Segmented) and `{L1-Last: CE1-CE4}` (SegmentedRR).
//! The `@df<n>` suffix (not in the paper) marks a single-CE block as
//! depth-first scheduled with fuse depth `n`: `{L1-L4: CE1 @df2}` fuses
//! the block's layers pairwise. Layer-by-layer blocks carry no suffix.
//!
//! The textual form does not carry the coarse-pipelining flag;
//! [`parse`] infers it (`true` when more than one distinct block exists),
//! and [`parse_with_pipelining`] overrides it explicitly.

use std::fmt::Write as _;

use crate::error::ArchError;
use crate::spec::{AcceleratorSpec, Assignment, BlockSpec, LayerRange, Schedule};

/// Formats a spec in the paper's notation.
///
/// # Examples
///
/// ```
/// use mccm_arch::notation;
/// use mccm_arch::{AcceleratorSpec, Assignment, BlockSpec, LayerRange};
///
/// let spec = AcceleratorSpec::new(
///     vec![Assignment::new(
///         LayerRange::through_last(0),
///         BlockSpec::Pipelined { first_ce: 0, last_ce: 3 },
///     )],
///     false,
/// );
/// assert_eq!(notation::format(&spec), "{L1-Last: CE1-CE4}");
/// ```
pub fn format(spec: &AcceleratorSpec) -> String {
    let mut out = String::from("{");
    for (i, a) in spec.assignments.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match (a.range.first, a.range.last) {
            (f, Some(l)) if f == l => {
                let _ = write!(out, "L{}", f + 1);
            }
            (f, Some(l)) => {
                let _ = write!(out, "L{}-L{}", f + 1, l + 1);
            }
            (f, None) => {
                let _ = write!(out, "L{}-Last", f + 1);
            }
        }
        out.push_str(": ");
        match a.block {
            BlockSpec::Single(ce) => {
                let _ = write!(out, "CE{}", ce + 1);
            }
            BlockSpec::Pipelined { first_ce, last_ce } => {
                let _ = write!(out, "CE{}-CE{}", first_ce + 1, last_ce + 1);
            }
        }
        if let Schedule::DepthFirst { fuse_depth } = a.schedule {
            let _ = write!(out, " @df{fuse_depth}");
        }
    }
    out.push('}');
    out
}

/// Parses the paper's notation, inferring coarse pipelining (`true` iff the
/// spec has more than one assignment).
///
/// # Errors
///
/// Returns [`ArchError::Parse`] on malformed input. Semantic validation
/// (coverage, CE roles) happens later in
/// [`AcceleratorSpec::segments`](crate::AcceleratorSpec::segments).
pub fn parse(input: &str) -> Result<AcceleratorSpec, ArchError> {
    let assignments = parse_assignments(input)?;
    let coarse = assignments.len() > 1;
    Ok(AcceleratorSpec::new(assignments, coarse))
}

/// Parses the paper's notation with an explicit coarse-pipelining flag.
///
/// # Errors
///
/// Returns [`ArchError::Parse`] on malformed input.
pub fn parse_with_pipelining(
    input: &str,
    coarse_pipeline: bool,
) -> Result<AcceleratorSpec, ArchError> {
    Ok(AcceleratorSpec::new(
        parse_assignments(input)?,
        coarse_pipeline,
    ))
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Self { input, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ArchError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn eat_keyword_ci(&mut self, word: &str) -> bool {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.len() >= word.len() && rest[..word.len()].eq_ignore_ascii_case(word) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Result<usize, ArchError> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let len = rest.bytes().take_while(u8::is_ascii_digit).count();
        if len == 0 {
            return Err(self.error("expected a number".into()));
        }
        let n: usize = rest[..len]
            .parse()
            .map_err(|_| self.error("number too large".into()))?;
        self.pos += len;
        if n == 0 {
            return Err(self.error("indices are one-based".into()));
        }
        Ok(n)
    }

    fn error(&self, detail: String) -> ArchError {
        ArchError::Parse {
            offset: self.pos,
            detail,
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos == self.input.len()
    }
}

fn parse_assignments(input: &str) -> Result<Vec<Assignment>, ArchError> {
    let mut c = Cursor::new(input);
    c.expect("{")?;
    let mut assignments = Vec::new();
    loop {
        // Layer range.
        if !c.eat_keyword_ci("L") {
            return Err(c.error("expected `L<n>`".into()));
        }
        let first = c.number()? - 1;
        let range = if c.eat("-") {
            if c.eat_keyword_ci("Last") {
                LayerRange::through_last(first)
            } else {
                if !c.eat_keyword_ci("L") {
                    return Err(c.error("expected `L<n>` or `Last` after `-`".into()));
                }
                let last = c.number()? - 1;
                if last < first {
                    return Err(c.error("inverted layer range".into()));
                }
                LayerRange::new(first, last)
            }
        } else {
            LayerRange::single(first)
        };
        c.expect(":")?;
        // Block.
        if !c.eat_keyword_ci("CE") {
            return Err(c.error("expected `CE<n>`".into()));
        }
        let first_ce = c.number()? - 1;
        let block = if c.eat("-") {
            if !c.eat_keyword_ci("CE") {
                return Err(c.error("expected `CE<n>` after `-`".into()));
            }
            let last_ce = c.number()? - 1;
            if last_ce < first_ce {
                return Err(c.error("inverted CE range".into()));
            }
            BlockSpec::Pipelined { first_ce, last_ce }
        } else {
            BlockSpec::Single(first_ce)
        };
        let schedule = if c.eat("@") {
            if !c.eat_keyword_ci("df") {
                return Err(c.error("expected `df<n>` after `@`".into()));
            }
            Schedule::DepthFirst {
                fuse_depth: c.number()?,
            }
        } else {
            Schedule::LayerByLayer
        };
        assignments.push(Assignment {
            range,
            block,
            schedule,
        });
        if c.eat(",") {
            continue;
        }
        c.expect("}")?;
        break;
    }
    if !c.at_end() {
        return Err(c.error("trailing input after `}`".into()));
    }
    Ok(assignments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_segmented_example() {
        let spec = parse("{L1-L4: CE1, L5-L6: CE2, L7-L9: CE3, L10-L12: CE4}").unwrap();
        assert_eq!(spec.assignments.len(), 4);
        assert!(spec.coarse_pipeline);
        assert_eq!(spec.assignments[0].range, LayerRange::new(0, 3));
        assert_eq!(spec.assignments[3].block, BlockSpec::Single(3));
    }

    #[test]
    fn parses_paper_segmented_rr_example() {
        let spec = parse("{L1-Last: CE1-CE4}").unwrap();
        assert!(!spec.coarse_pipeline); // single block -> inferred false
        assert_eq!(
            spec.assignments[0].block,
            BlockSpec::Pipelined {
                first_ce: 0,
                last_ce: 3
            }
        );
        assert_eq!(spec.assignments[0].range, LayerRange::through_last(0));
    }

    #[test]
    fn parses_single_layer_special_case() {
        // {Lx : CEz} special case from §III-B.
        let spec = parse("{L3: CE2, L4-Last: CE1}").unwrap();
        assert_eq!(spec.assignments[0].range, LayerRange::single(2));
    }

    #[test]
    fn round_trips() {
        for text in [
            "{L1-L4: CE1, L5-L6: CE2, L7-L9: CE3, L10-L12: CE4}",
            "{L1-Last: CE1-CE4}",
            "{L1: CE1, L2-L3: CE2-CE3, L4-Last: CE4}",
        ] {
            let spec = parse(text).unwrap();
            assert_eq!(format(&spec), text);
            assert_eq!(parse(&format(&spec)).unwrap(), spec);
        }
    }

    #[test]
    fn parses_depth_first_suffix() {
        let spec = parse("{L1-L4: CE1 @df2, L5-Last: CE2}").unwrap();
        assert_eq!(
            spec.assignments[0].schedule,
            Schedule::DepthFirst { fuse_depth: 2 }
        );
        assert_eq!(spec.assignments[1].schedule, Schedule::LayerByLayer);
    }

    #[test]
    fn depth_first_round_trips() {
        for text in [
            "{L1-L4: CE1 @df2, L5-Last: CE2}",
            "{L1-L4: CE1 @df1, L5-Last: CE2 @df3}",
            "{L1-L3: CE1-CE3, L4-Last: CE4 @df4}",
        ] {
            let spec = parse(text).unwrap();
            assert_eq!(format(&spec), text);
            assert_eq!(parse(&format(&spec)).unwrap(), spec);
        }
        // Case- and whitespace-insensitive like the rest of the grammar.
        assert_eq!(
            parse("{ l1 - l4 : ce1 @ DF2 , l5 - last : ce2 }").unwrap(),
            parse("{L1-L4: CE1 @df2, L5-Last: CE2}").unwrap()
        );
    }

    #[test]
    fn rejects_malformed_schedules() {
        for bad in [
            "{L1-L4: CE1 @df0, L5-Last: CE2}",
            "{L1-L4: CE1 @df, L5-Last: CE2}",
            "{L1-L4: CE1 @lbl, L5-Last: CE2}",
            "{L1-L4: CE1 @, L5-Last: CE2}",
        ] {
            assert!(parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn whitespace_and_case_insensitive() {
        let a = parse("{ l1 - last : ce1 - ce4 }").unwrap();
        let b = parse("{L1-Last: CE1-CE4}").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_pipelining_override() {
        let spec = parse_with_pipelining("{L1-Last: CE1-CE4}", true).unwrap();
        assert!(spec.coarse_pipeline);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "{}",
            "{L1-L4 CE1}",
            "{L0-L4: CE1}",
            "{L4-L1: CE1}",
            "{L1-L4: CE2-CE1}",
            "{L1-L4: CE1} trailing",
            "L1-L4: CE1",
            "{L1-: CE1}",
        ] {
            assert!(parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse("{L1-L4; CE1}").unwrap_err();
        assert!(matches!(err, ArchError::Parse { offset, .. } if offset > 0));
    }
}
