//! The three state-of-the-art multiple-CE architecture templates (§II-C)
//! and the custom Hybrid-head/Segmented-tail shape explored in Use Case 3.
//!
//! Templates turn a CNN plus a CE count into an [`AcceleratorSpec`]:
//!
//! * **Segmented** (Shen et al. \[33\]): `k` contiguous segments, one
//!   single-CE each, coarse-grained (whole-image) pipelining between them.
//!   Segment boundaries balance per-segment MACs.
//! * **SegmentedRR** (Wei et al. \[41\], engines per Ma et al. \[23\]): all
//!   layers round-robin over `k` tile-grained pipelined CEs.
//! * **Hybrid** (Qararyah et al. \[30\]): `k - 1` pipelined CEs dedicated to
//!   the first `k - 1` layers, one larger CE for the rest, coarse-grained
//!   pipelining between the two parts.

use mccm_cnn::CnnModel;

use crate::error::ArchError;
use crate::spec::{AcceleratorSpec, Assignment, BlockSpec, LayerRange, Schedule};

/// Partitions `weights[0..n]` into `k` contiguous, non-empty segments
/// minimizing the maximum segment weight (classic linear partition DP).
/// Returns the exclusive end index of each segment.
pub fn balanced_partition(weights: &[u64], k: usize) -> Vec<usize> {
    let n = weights.len();
    assert!(k >= 1 && k <= n, "need 1 <= k <= n ({k} vs {n})");
    let mut prefix = vec![0u64; n + 1];
    for (i, w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    let seg = |a: usize, b: usize| prefix[b] - prefix[a]; // [a, b)

    // dp[j][i]: minimal max-segment-weight splitting first i items into j
    // segments; choice[j][i]: start of the last segment.
    let mut dp = vec![vec![u64::MAX; n + 1]; k + 1];
    let mut choice = vec![vec![0usize; n + 1]; k + 1];
    dp[0][0] = 0;
    for j in 1..=k {
        for i in j..=n {
            for split in (j - 1)..i {
                if dp[j - 1][split] == u64::MAX {
                    continue;
                }
                let cost = dp[j - 1][split].max(seg(split, i));
                if cost < dp[j][i] {
                    dp[j][i] = cost;
                    choice[j][i] = split;
                }
            }
        }
    }

    let mut ends = vec![0usize; k];
    let mut i = n;
    for j in (1..=k).rev() {
        ends[j - 1] = i;
        i = choice[j][i];
    }
    ends
}

/// Per-conv-layer MACs, the workload measure used for balancing.
fn layer_macs(model: &CnnModel) -> Vec<u64> {
    model.conv_view().iter().map(|c| c.macs).collect()
}

/// The Segmented architecture \[32\], \[33\]: `ces` single-CE segments with
/// MAC-balanced boundaries and coarse-grained pipelining.
///
/// # Errors
///
/// Returns [`ArchError::Infeasible`] if `ces` is zero or exceeds the
/// number of convolution layers.
pub fn segmented(model: &CnnModel, ces: usize) -> Result<AcceleratorSpec, ArchError> {
    let macs = layer_macs(model);
    if ces == 0 || ces > macs.len() {
        return Err(ArchError::Infeasible {
            detail: format!("{ces} CEs for {} layers", macs.len()),
        });
    }
    let ends = balanced_partition(&macs, ces);
    let mut assignments = Vec::with_capacity(ces);
    let mut first = 0usize;
    for (ce, &end) in ends.iter().enumerate() {
        assignments.push(Assignment::new(
            LayerRange::new(first, end - 1),
            BlockSpec::Single(ce),
        ));
        first = end;
    }
    Ok(AcceleratorSpec::new(assignments, true))
}

/// The SegmentedRR architecture \[3\], \[38\], \[41\]: all layers round-robin
/// over `ces` tile-grained pipelined CEs (`{L1-Last: CE1-CEk}`).
///
/// # Errors
///
/// Returns [`ArchError::Infeasible`] if `ces` is zero or exceeds the
/// number of convolution layers.
pub fn segmented_rr(model: &CnnModel, ces: usize) -> Result<AcceleratorSpec, ArchError> {
    let n = model.conv_layer_count();
    if ces == 0 || ces > n {
        return Err(ArchError::Infeasible {
            detail: format!("{ces} CEs for {n} layers"),
        });
    }
    Ok(AcceleratorSpec::new(
        vec![Assignment::new(
            LayerRange::through_last(0),
            BlockSpec::Pipelined {
                first_ce: 0,
                last_ce: ces - 1,
            },
        )],
        false,
    ))
}

/// The Hybrid architecture \[1\], \[25\], \[30\], \[50\]: `ces - 1` pipelined CEs,
/// one per layer of the CNN head, plus one larger CE for the tail;
/// coarse-grained pipelining between the parts.
///
/// # Errors
///
/// Returns [`ArchError::Infeasible`] if `ces < 2` or the head would
/// swallow the whole CNN.
pub fn hybrid(model: &CnnModel, ces: usize) -> Result<AcceleratorSpec, ArchError> {
    let n = model.conv_layer_count();
    if ces < 2 || ces > n {
        return Err(ArchError::Infeasible {
            detail: format!("hybrid needs 2..={n} CEs, got {ces}"),
        });
    }
    let head = ces - 1;
    Ok(AcceleratorSpec::new(
        vec![
            Assignment::new(
                LayerRange::new(0, head - 1),
                BlockSpec::Pipelined {
                    first_ce: 0,
                    last_ce: head - 1,
                },
            ),
            Assignment::new(LayerRange::through_last(head), BlockSpec::Single(head)),
        ],
        true,
    ))
}

/// A custom architecture for design-space exploration (Use Case 3): a
/// Hybrid-like pipelined head over the first `head_layers` layers followed
/// by Segmented-like single-CE segments whose boundaries are given as
/// exclusive layer end indices (each > `head_layers`, strictly increasing,
/// last equal to the layer count).
///
/// # Errors
///
/// Returns [`ArchError::Infeasible`] on malformed boundaries.
pub fn custom_hybrid_segmented(
    model: &CnnModel,
    head_layers: usize,
    tail_ends: &[usize],
) -> Result<AcceleratorSpec, ArchError> {
    custom_hybrid_segmented_scheduled(model, head_layers, tail_ends, Schedule::LayerByLayer)
}

/// [`custom_hybrid_segmented`] with every tail (single-CE) segment carrying
/// `tail_schedule` — the shape the schedule-extended design space explores.
///
/// # Errors
///
/// Returns [`ArchError::Infeasible`] on malformed boundaries.
pub fn custom_hybrid_segmented_scheduled(
    model: &CnnModel,
    head_layers: usize,
    tail_ends: &[usize],
    tail_schedule: Schedule,
) -> Result<AcceleratorSpec, ArchError> {
    let n = model.conv_layer_count();
    if head_layers == 0 || head_layers >= n {
        return Err(ArchError::Infeasible {
            detail: format!("head must cover 1..{n} layers, got {head_layers}"),
        });
    }
    if tail_ends.is_empty() || *tail_ends.last().unwrap() != n {
        return Err(ArchError::Infeasible {
            detail: "tail must end at the last layer".into(),
        });
    }
    let mut assignments = vec![Assignment::new(
        LayerRange::new(0, head_layers - 1),
        BlockSpec::Pipelined {
            first_ce: 0,
            last_ce: head_layers - 1,
        },
    )];
    let mut first = head_layers;
    for (i, &end) in tail_ends.iter().enumerate() {
        if end <= first || end > n {
            return Err(ArchError::Infeasible {
                detail: format!("bad tail boundary {end} (segment {i})"),
            });
        }
        assignments.push(
            Assignment::new(
                LayerRange::new(first, end - 1),
                BlockSpec::Single(head_layers + i),
            )
            .with_schedule(tail_schedule),
        );
        first = end;
    }
    Ok(AcceleratorSpec::new(assignments, true))
}

/// The three baseline architectures by name, mirroring the paper's
/// evaluation (§V-A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Segmented \[33\].
    Segmented,
    /// SegmentedRR \[41\].
    SegmentedRr,
    /// Hybrid \[30\].
    Hybrid,
}

impl Architecture {
    /// All three baselines.
    pub const ALL: [Self; 3] = [Self::Segmented, Self::SegmentedRr, Self::Hybrid];

    /// Paper display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Segmented => "Segmented",
            Self::SegmentedRr => "SegmentedRR",
            Self::Hybrid => "Hybrid",
        }
    }

    /// Looks up an architecture by case-insensitive name (`"segmented"`,
    /// `"segmentedrr"` / `"rr"`, `"hybrid"`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "segmented" => Some(Self::Segmented),
            "segmentedrr" | "rr" => Some(Self::SegmentedRr),
            "hybrid" => Some(Self::Hybrid),
            _ => None,
        }
    }

    /// Canonical lowercase names accepted by [`Self::by_name`], in
    /// [`Self::ALL`] order.
    pub fn names() -> &'static [&'static str] {
        &["segmented", "segmentedrr", "hybrid"]
    }

    /// Instantiates this architecture for a model and CE count.
    ///
    /// # Errors
    ///
    /// Propagates the template's [`ArchError::Infeasible`] for invalid CE
    /// counts.
    pub fn instantiate(&self, model: &CnnModel, ces: usize) -> Result<AcceleratorSpec, ArchError> {
        match self {
            Self::Segmented => segmented(model, ces),
            Self::SegmentedRr => segmented_rr(model, ces),
            Self::Hybrid => hybrid(model, ces),
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_cnn::zoo;

    #[test]
    fn architecture_by_name_round_trips() {
        for (arch, name) in Architecture::ALL.into_iter().zip(Architecture::names()) {
            assert_eq!(Architecture::by_name(name), Some(arch));
            assert_eq!(
                Architecture::by_name(&arch.name().to_ascii_uppercase()),
                Some(arch)
            );
        }
        assert_eq!(Architecture::by_name("rr"), Some(Architecture::SegmentedRr));
        assert_eq!(Architecture::by_name("systolic"), None);
    }

    #[test]
    fn balanced_partition_minimizes_max() {
        let w = [10, 10, 10, 10];
        assert_eq!(balanced_partition(&w, 2), vec![2, 4]);
        let w = [100, 1, 1, 1, 1];
        assert_eq!(balanced_partition(&w, 2), vec![1, 5]);
        let w = [5, 5, 5];
        assert_eq!(balanced_partition(&w, 3), vec![1, 2, 3]);
    }

    #[test]
    fn balanced_partition_single_segment() {
        assert_eq!(balanced_partition(&[1, 2, 3], 1), vec![3]);
    }

    #[test]
    fn segmented_covers_model() {
        let m = zoo::resnet50();
        for k in 2..=11 {
            let spec = segmented(&m, k).unwrap();
            let segs = spec.segments(53).unwrap();
            assert_eq!(segs.len(), k);
            assert!(spec.coarse_pipeline);
            assert_eq!(segs.last().unwrap().last, 52);
        }
    }

    #[test]
    fn segmented_balances_macs() {
        let m = zoo::resnet50();
        let macs: Vec<u64> = m.conv_view().iter().map(|c| c.macs).collect();
        let total: u64 = macs.iter().sum();
        let spec = segmented(&m, 4).unwrap();
        let segs = spec.segments(53).unwrap();
        for seg in &segs {
            let seg_macs: u64 = seg.layers().map(|l| macs[l]).sum();
            // No segment should exceed ~2x the ideal share.
            assert!(seg_macs <= total / 2, "segment {} too heavy", seg.index);
        }
    }

    #[test]
    fn segmented_rr_is_single_pipelined_block() {
        let m = zoo::resnet50();
        let spec = segmented_rr(&m, 2).unwrap();
        assert!(!spec.coarse_pipeline);
        let segs = spec.segments(53).unwrap();
        assert_eq!(segs.len(), 27); // ceil(53/2), Fig. 6a
    }

    #[test]
    fn hybrid_shape() {
        let m = zoo::resnet50();
        let spec = hybrid(&m, 7).unwrap();
        let segs = spec.segments(53).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len(), 6); // 6 pipelined single-layer CEs
        assert_eq!(segs[1].len(), 47);
        assert_eq!(spec.ce_count(), 7);
    }

    #[test]
    fn hybrid_needs_two_ces() {
        let m = zoo::resnet50();
        assert!(hybrid(&m, 1).is_err());
        assert!(hybrid(&m, 2).is_ok());
    }

    #[test]
    fn custom_template() {
        let m = zoo::xception();
        let n = m.conv_layer_count();
        let spec = custom_hybrid_segmented(&m, 4, &[30, 50, n]).unwrap();
        let segs = spec.segments(n).unwrap();
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].len(), 4);
        assert_eq!(spec.ce_count(), 7);
        assert!(custom_hybrid_segmented(&m, 4, &[30, 50]).is_err());
        assert!(custom_hybrid_segmented(&m, 0, &[n]).is_err());
        assert!(custom_hybrid_segmented(&m, 4, &[2, n]).is_err());
    }

    #[test]
    fn custom_template_scheduled_tails() {
        let m = zoo::xception();
        let n = m.conv_layer_count();
        let df = Schedule::DepthFirst { fuse_depth: 3 };
        let spec = custom_hybrid_segmented_scheduled(&m, 4, &[30, 50, n], df).unwrap();
        // The pipelined head stays layer-by-layer; every tail segment
        // carries the requested schedule.
        assert_eq!(spec.assignments[0].schedule, Schedule::LayerByLayer);
        for a in &spec.assignments[1..] {
            assert_eq!(a.schedule, df);
        }
        // The default wrapper is the layer-by-layer special case.
        let lbl = custom_hybrid_segmented(&m, 4, &[30, 50, n]).unwrap();
        assert_eq!(
            custom_hybrid_segmented_scheduled(&m, 4, &[30, 50, n], Schedule::LayerByLayer).unwrap(),
            lbl
        );
    }

    #[test]
    fn architecture_enum_instantiates() {
        let m = zoo::mobilenet_v2();
        for arch in Architecture::ALL {
            let spec = arch.instantiate(&m, 3).unwrap();
            assert!(spec.segments(52).is_ok(), "{arch}");
        }
        assert_eq!(Architecture::SegmentedRr.to_string(), "SegmentedRR");
    }
}
