//! Error type for architecture specification and building.

use std::error::Error;
use std::fmt;

/// Error produced when parsing, validating, or building a multiple-CE
/// accelerator description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The specification has no assignments.
    EmptySpec,
    /// Assignments do not cover the model's convolution layers exactly
    /// once, in order.
    NonContiguousCoverage {
        /// Layer index where the gap or overlap occurs (zero-based).
        at_layer: usize,
        /// Explanation.
        detail: String,
    },
    /// A layer range is inverted or out of bounds.
    BadLayerRange {
        /// Offending assignment index.
        assignment: usize,
        /// Explanation.
        detail: String,
    },
    /// A compute engine id is used both as a single-CE and inside a
    /// pipelined block, or CE ids are not contiguous from zero.
    BadCeUsage {
        /// Offending CE id (zero-based).
        ce: usize,
        /// Explanation.
        detail: String,
    },
    /// Textual notation could not be parsed.
    Parse {
        /// Byte offset of the failure in the input.
        offset: usize,
        /// Explanation.
        detail: String,
    },
    /// The platform cannot host the design (e.g. fewer PEs than CEs).
    Infeasible {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySpec => write!(f, "accelerator specification has no assignments"),
            Self::NonContiguousCoverage { at_layer, detail } => {
                write!(f, "layer coverage broken at L{}: {detail}", at_layer + 1)
            }
            Self::BadLayerRange { assignment, detail } => {
                write!(f, "bad layer range in assignment {assignment}: {detail}")
            }
            Self::BadCeUsage { ce, detail } => {
                write!(f, "bad usage of CE{}: {detail}", ce + 1)
            }
            Self::Parse { offset, detail } => {
                write!(f, "parse error at byte {offset}: {detail}")
            }
            Self::Infeasible { detail } => write!(f, "infeasible design: {detail}"),
        }
    }
}

impl Error for ArchError {}
