//! Seeded random CNN generation for property tests and robustness
//! experiments.
//!
//! The generator produces plausible feed-forward CNNs: channel counts grow
//! while spatial dimensions shrink, with optional residual links and
//! depthwise/pointwise layers, so generated models stress the same code
//! paths as the real zoo without being degenerate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::{ConvSpec, Padding, Src};
use crate::model::{CnnModel, ModelBuilder};
use crate::tensor::TensorShape;

/// Configuration for [`random_cnn`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of convolution layers to generate (≥ 1).
    pub conv_layers: usize,
    /// Input spatial resolution (square).
    pub input_size: u32,
    /// Initial channel count.
    pub base_channels: u32,
    /// Probability of a residual connection closing over the previous two
    /// layers (applied where shapes allow).
    pub residual_prob: f64,
    /// Probability that a layer is depthwise (followed by its pointwise
    /// companion, consuming two of the layer budget).
    pub depthwise_prob: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            conv_layers: 12,
            input_size: 64,
            base_channels: 16,
            residual_prob: 0.3,
            depthwise_prob: 0.2,
        }
    }
}

/// Generates a random, valid CNN from a seed. Identical seeds and configs
/// produce identical models.
///
/// # Examples
///
/// ```
/// use mccm_cnn::synthetic::{random_cnn, SyntheticConfig};
///
/// let a = random_cnn(7, &SyntheticConfig::default());
/// let b = random_cnn(7, &SyntheticConfig::default());
/// assert_eq!(a, b);
/// assert!(a.conv_layer_count() >= 12);
/// ```
pub fn random_cnn(seed: u64, cfg: &SyntheticConfig) -> CnnModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = TensorShape::new(3, cfg.input_size, cfg.input_size);
    let mut b = ModelBuilder::new(format!("synthetic-{seed}"), input);

    let mut channels = cfg.base_channels;
    let mut made = 0usize;
    let mut n = 0usize;
    // Stem always present so channel counts leave 3.
    b.conv(
        "stem",
        ConvSpec::standard(3, 1, Padding::same(3, 3)),
        channels,
        0,
    );
    made += 1;

    while made < cfg.conv_layers {
        n += 1;
        let cur = b.last();
        let cur_shape = b.shape_of(cur);
        let can_stride = cur_shape.height >= 8;
        let stride = if can_stride && rng.random_bool(0.25) {
            2
        } else {
            1
        };

        if rng.random_bool(cfg.depthwise_prob) && made + 2 <= cfg.conv_layers {
            // Depthwise + pointwise pair.
            let d = b.conv(
                format!("dw{n}"),
                ConvSpec::depthwise(3, stride, Padding::same(3, 3)),
                cur_shape.channels,
                0,
            );
            if stride == 1 && rng.random_bool(0.5) {
                channels = (channels + rng.random_range(0..=channels / 2)).max(4);
            }
            b.conv_from(
                format!("pw{n}"),
                ConvSpec::pointwise(1),
                channels,
                Src::Layer(d),
                0,
            );
            made += 2;
        } else {
            let kernel = *[1u32, 3, 3, 5].get(rng.random_range(0..4)).unwrap();
            if stride == 2 {
                channels = (channels * 2).min(512);
            }
            let spec = if kernel == 1 {
                ConvSpec::pointwise(stride)
            } else {
                ConvSpec::standard(kernel, stride, Padding::same(kernel, kernel))
            };
            let prev2 = if b.shape_of(cur) == b.shape_of(b.last()) {
                Some(cur)
            } else {
                None
            };
            let c = b.conv(format!("conv{n}"), spec, channels, 0);
            made += 1;
            // Optionally close a residual over this layer when shapes match.
            if let Some(p) = prev2 {
                if stride == 1
                    && b.shape_of(Src::Layer(c)) == b.shape_of(p)
                    && rng.random_bool(cfg.residual_prob)
                {
                    b.add(format!("add{n}"), &[Src::Layer(c), p]);
                }
            }
        }
    }

    b.finish()
        .expect("synthetic CNNs are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig::default();
        assert_eq!(random_cnn(1, &cfg), random_cnn(1, &cfg));
        assert_ne!(random_cnn(1, &cfg), random_cnn(2, &cfg));
    }

    #[test]
    fn respects_layer_budget() {
        for seed in 0..20 {
            let cfg = SyntheticConfig {
                conv_layers: 9,
                ..Default::default()
            };
            let m = random_cnn(seed, &cfg);
            assert!(m.conv_layer_count() >= 9, "seed {seed}");
            assert!(m.conv_layer_count() <= 10, "seed {seed}");
        }
    }

    #[test]
    fn generates_valid_models_across_seeds() {
        // `finish` validates; just exercise a spread of seeds and configs.
        for seed in 0..30 {
            let cfg = SyntheticConfig {
                conv_layers: 4 + (seed as usize % 20),
                input_size: 32 + 16 * (seed as u32 % 4),
                ..Default::default()
            };
            let m = random_cnn(seed, &cfg);
            assert!(m.conv_weights() > 0);
            assert!(m.conv_macs() > 0);
        }
    }
}
