//! ResNet-50 / ResNet-152 (He et al., CVPR 2016), Keras-applications layout.
//!
//! Convolutions carry a bias and are followed by batch normalization
//! (Keras `use_bias=True` + BN: 5 extra parameters per output channel),
//! reproducing the Keras totals of 25,636,712 (ResNet-50) and 60,419,944
//! (ResNet-152) parameters. Downsampling blocks stride on the first 1×1
//! convolution and the projection shortcut (Keras v1 placement).

use crate::layer::{ConvSpec, Padding, PoolSpec, Src};
use crate::model::{CnnModel, ModelBuilder};
use crate::tensor::TensorShape;

/// Bias + batch-norm parameters per convolution output channel.
const EXTRA_PER_CHANNEL: u64 = 5;

fn extra(channels: u32) -> u64 {
    EXTRA_PER_CHANNEL * channels as u64
}

/// A bottleneck residual block: 1×1 → 3×3 → 1×1 with optional projection
/// shortcut. Returns the source representing the block output (the add).
fn bottleneck(
    b: &mut ModelBuilder,
    name: &str,
    input: Src,
    mid: u32,
    out: u32,
    stride: u32,
    project: bool,
) -> Src {
    let c1 = b.conv_from(
        format!("{name}_1x1a"),
        ConvSpec::pointwise(stride),
        mid,
        input,
        extra(mid),
    );
    let c2 = b.conv_from(
        format!("{name}_3x3"),
        ConvSpec::standard(3, 1, Padding::same(3, 3)),
        mid,
        Src::Layer(c1),
        extra(mid),
    );
    let c3 = b.conv_from(
        format!("{name}_1x1b"),
        ConvSpec::pointwise(1),
        out,
        Src::Layer(c2),
        extra(out),
    );
    let shortcut = if project {
        let p = b.conv_from(
            format!("{name}_proj"),
            ConvSpec::pointwise(stride),
            out,
            input,
            extra(out),
        );
        Src::Layer(p)
    } else {
        input
    };
    let s = b.add(format!("{name}_add"), &[Src::Layer(c3), shortcut]);
    Src::Layer(s)
}

/// Builds a bottleneck ResNet with the given per-stage block counts.
fn resnet(name: &str, blocks: [usize; 4]) -> CnnModel {
    let mut b = ModelBuilder::new(name, TensorShape::new(3, 224, 224));
    b.conv(
        "conv1",
        ConvSpec::standard(7, 2, Padding::new(3, 3)),
        64,
        extra(64),
    );
    b.pool("pool1", PoolSpec::max(3, 2, Padding::new(1, 1)));
    let mut x = b.last();

    let mids = [64u32, 128, 256, 512];
    for (stage, (&n, &mid)) in blocks.iter().zip(mids.iter()).enumerate() {
        let out = mid * 4;
        for block in 0..n {
            // First block of each stage projects; stages 3..5 downsample.
            let (stride, project) = if block == 0 {
                (if stage == 0 { 1 } else { 2 }, true)
            } else {
                (1, false)
            };
            x = bottleneck(
                &mut b,
                &format!("conv{}_{}", stage + 2, block + 1),
                x,
                mid,
                out,
                stride,
                project,
            );
        }
    }

    b.pool("avgpool", PoolSpec::global_avg());
    b.dense("fc1000", 1000, 1000);
    b.finish()
        .expect("resnet construction is internally consistent")
}

/// ResNet-50: 53 convolution layers, 25.6 M parameters (Table III).
pub fn resnet50() -> CnnModel {
    resnet("resnet50", [3, 4, 6, 3])
}

/// ResNet-152: 155 convolution layers, 60.4 M parameters (Table III).
pub fn resnet152() -> CnnModel {
    resnet("resnet152", [3, 8, 36, 3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_matches_keras() {
        let m = resnet50();
        assert_eq!(m.conv_layer_count(), 53);
        assert_eq!(m.conv_weights(), 23_454_912);
        assert_eq!(m.total_params(), 25_636_712);
    }

    #[test]
    fn resnet152_matches_keras() {
        let m = resnet152();
        assert_eq!(m.conv_layer_count(), 155);
        assert_eq!(m.total_params(), 60_419_944);
    }

    #[test]
    fn resnet50_stage_shapes() {
        let m = resnet50();
        let convs = m.conv_view();
        // Stem downsamples to 112, maxpool to 56; stages end at 56/28/14/7.
        assert_eq!((convs[0].ofm.height, convs[0].ofm.width), (112, 112));
        let last = convs.last().unwrap();
        assert_eq!(
            (last.ofm.channels, last.ofm.height, last.ofm.width),
            (2048, 7, 7)
        );
    }

    #[test]
    fn resnet50_macs_in_expected_range() {
        // ~3.8 GMACs for 224x224 ResNet-50 (v1 strides place the 3x3 of
        // downsampling blocks on the reduced resolution).
        let gmacs = resnet50().conv_macs() as f64 / 1e9;
        assert!((3.0..4.5).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn resnet50_residual_working_sets() {
        let m = resnet50();
        // Inside every non-first bottleneck, the block input is held for the
        // add: some conv must have a non-zero extra-live term.
        let any_extra = m
            .conv_view()
            .iter()
            .any(|c| c.fm_working_set > c.ifm.elements() + c.ofm.elements());
        assert!(any_extra);
    }
}
