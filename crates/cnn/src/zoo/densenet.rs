//! DenseNet-121 (Huang et al., CVPR 2017), Keras-applications layout.
//!
//! Pre-activation batch norms precede each convolution (4 parameters per
//! *input* channel, attached to the convolution they feed); convolutions
//! are bias-free. The final batch norm is attached to the global pooling
//! layer. Total parameters reproduce Keras' 8,062,504.

use crate::layer::{ConvSpec, Padding, PoolSpec, Src};
use crate::model::{CnnModel, ModelBuilder};
use crate::tensor::TensorShape;

/// Growth rate: channels added by each dense layer.
const GROWTH: u32 = 32;

fn bn(channels: u32) -> u64 {
    4 * channels as u64
}

/// One dense layer: BN-ReLU-1×1(4k) → BN-ReLU-3×3(k), output concatenated
/// onto the running feature map.
fn dense_layer(b: &mut ModelBuilder, name: &str, input: Src) -> Src {
    let in_c = b.shape_of(input).channels;
    let c1 = b.conv_from(
        format!("{name}_1x1"),
        ConvSpec::pointwise(1),
        4 * GROWTH,
        input,
        bn(in_c),
    );
    let c2 = b.conv_from(
        format!("{name}_3x3"),
        ConvSpec::standard(3, 1, Padding::same(3, 3)),
        GROWTH,
        Src::Layer(c1),
        bn(4 * GROWTH),
    );
    let cat = b.concat(format!("{name}_concat"), &[input, Src::Layer(c2)]);
    Src::Layer(cat)
}

/// DenseNet-121: 120 convolution layers, 8.1 M parameters (Table III).
pub fn densenet121() -> CnnModel {
    let mut b = ModelBuilder::new("densenet121", TensorShape::new(3, 224, 224));
    // Stem: conv-BN (post-activation for the stem only), maxpool.
    b.conv(
        "conv1",
        ConvSpec::standard(7, 2, Padding::new(3, 3)),
        64,
        bn(64),
    );
    b.pool("pool1", PoolSpec::max(3, 2, Padding::new(1, 1)));
    let mut x = b.last();

    let blocks = [6usize, 12, 24, 16];
    for (bi, &n) in blocks.iter().enumerate() {
        for li in 0..n {
            x = dense_layer(&mut b, &format!("dense{}_{}", bi + 1, li + 1), x);
        }
        if bi + 1 < blocks.len() {
            // Transition: BN-ReLU-1×1 halving channels, then 2×2 avg pool.
            let in_c = b.shape_of(x).channels;
            let t = b.conv_from(
                format!("transition{}", bi + 1),
                ConvSpec::pointwise(1),
                in_c / 2,
                x,
                bn(in_c),
            );
            let p = b.pool_from(
                format!("transition{}_pool", bi + 1),
                PoolSpec::avg(2, 2, Padding::valid()),
                Src::Layer(t),
            );
            x = Src::Layer(p);
        }
    }

    // Final BN is attached to the global pooling layer.
    let final_c = b.shape_of(x).channels;
    let gap = b.pool_from("avgpool", PoolSpec::global_avg(), x);
    b.layer_extra_params(gap, bn(final_c));
    b.dense("fc1000", 1000, 1000);
    b.finish()
        .expect("densenet construction is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densenet121_matches_keras() {
        let m = densenet121();
        assert_eq!(m.conv_layer_count(), 120);
        assert_eq!(m.total_params(), 8_062_504);
    }

    #[test]
    fn densenet121_channel_growth() {
        let m = densenet121();
        let convs = m.conv_view();
        // Last conv of block 4 sees 1024 - 32 input channels on its 1x1.
        let last = convs.last().unwrap();
        assert_eq!(last.ofm.channels, GROWTH);
        // Block boundaries: 64 + 6*32 = 256 -> 128; 128 + 12*32 = 512 -> 256;
        // 256 + 24*32 = 1024 -> 512; 512 + 16*32 = 1024 final.
        let t1 = convs.iter().find(|c| c.name == "transition1").unwrap();
        assert_eq!(t1.ifm.channels, 256);
        assert_eq!(t1.ofm.channels, 128);
        let t3 = convs.iter().find(|c| c.name == "transition3").unwrap();
        assert_eq!(t3.ifm.channels, 1024);
        assert_eq!(t3.ofm.channels, 512);
    }

    #[test]
    fn densenet121_concat_lifetimes_grow_working_sets() {
        let m = densenet121();
        // Mid-block dense layers must hold the running concat while
        // computing: working set > ifm + ofm for the 3x3 convs.
        let convs = m.conv_view();
        let mid = convs.iter().find(|c| c.name == "dense2_6_3x3").unwrap();
        assert!(mid.fm_working_set > mid.ifm.elements() + mid.ofm.elements());
    }

    #[test]
    fn densenet121_macs_in_expected_range() {
        // ~2.7-2.9 GMACs for 224x224 DenseNet-121.
        let gmacs = densenet121().conv_macs() as f64 / 1e9;
        assert!((2.2..3.2).contains(&gmacs), "got {gmacs} GMACs");
    }
}
