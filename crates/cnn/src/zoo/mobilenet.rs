//! MobileNetV2 (Sandler et al., CVPR 2018), Keras-applications layout.
//!
//! All convolutions are bias-free and followed by batch normalization
//! (4 extra parameters per output channel); the classifier is a biased
//! dense layer. Total parameters reproduce Keras' 3,538,984.

use crate::layer::{ConvSpec, Padding, PoolSpec, Src};
use crate::model::{CnnModel, ModelBuilder};
use crate::tensor::TensorShape;

fn bn(channels: u32) -> u64 {
    4 * channels as u64
}

/// One inverted-residual (MBConv) block.
///
/// `t` is the expansion factor; when `t == 1` the expansion convolution is
/// omitted (first block). A residual add applies when the block preserves
/// shape (`stride == 1` and `in == out` channels).
fn inverted_residual(
    b: &mut ModelBuilder,
    name: &str,
    input: Src,
    t: u32,
    out: u32,
    stride: u32,
) -> Src {
    let in_c = b.shape_of(input).channels;
    let mut x = input;
    if t != 1 {
        let e = b.conv_from(
            format!("{name}_expand"),
            ConvSpec::pointwise(1),
            in_c * t,
            x,
            bn(in_c * t),
        );
        x = Src::Layer(e);
    }
    let dw_c = b.shape_of(x).channels;
    let d = b.conv_from(
        format!("{name}_dw"),
        ConvSpec::depthwise(3, stride, Padding::same(3, 3)),
        dw_c,
        x,
        bn(dw_c),
    );
    let p = b.conv_from(
        format!("{name}_project"),
        ConvSpec::pointwise(1),
        out,
        Src::Layer(d),
        bn(out),
    );
    if stride == 1 && in_c == out {
        let s = b.add(format!("{name}_add"), &[Src::Layer(p), input]);
        Src::Layer(s)
    } else {
        Src::Layer(p)
    }
}

/// MobileNetV2: 52 convolution layers, 3.5 M parameters (Table III).
pub fn mobilenet_v2() -> CnnModel {
    let mut b = ModelBuilder::new("mobilenetv2", TensorShape::new(3, 224, 224));
    b.conv(
        "conv1",
        ConvSpec::standard(3, 2, Padding::same(3, 3)),
        32,
        bn(32),
    );
    let mut x = b.last();

    // (expansion t, output channels c, repeats n, first stride s).
    let cfg: [(u32, u32, usize, u32); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut idx = 0;
    for &(t, c, n, s) in &cfg {
        for rep in 0..n {
            idx += 1;
            let stride = if rep == 0 { s } else { 1 };
            x = inverted_residual(&mut b, &format!("block{idx}"), x, t, c, stride);
        }
    }

    b.conv_from("conv_last", ConvSpec::pointwise(1), 1280, x, bn(1280));
    b.pool("avgpool", PoolSpec::global_avg());
    b.dense("fc1000", 1000, 1000);
    b.finish()
        .expect("mobilenetv2 construction is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_v2_matches_keras() {
        let m = mobilenet_v2();
        assert_eq!(m.conv_layer_count(), 52);
        assert_eq!(m.total_params(), 3_538_984);
    }

    #[test]
    fn mobilenet_v2_shapes() {
        let m = mobilenet_v2();
        let convs = m.conv_view();
        assert_eq!((convs[0].ofm.height, convs[0].ofm.width), (112, 112));
        let last = convs.last().unwrap();
        assert_eq!(
            (last.ofm.channels, last.ofm.height, last.ofm.width),
            (1280, 7, 7)
        );
    }

    #[test]
    fn mobilenet_v2_has_depthwise_layers() {
        let m = mobilenet_v2();
        let dw = m.conv_view().iter().filter(|c| c.spec.depthwise).count();
        assert_eq!(dw, 17); // one per inverted-residual block
    }

    #[test]
    fn mobilenet_v2_macs_in_expected_range() {
        // ~0.3 GMACs for 224x224 MobileNetV2.
        let gmacs = mobilenet_v2().conv_macs() as f64 / 1e9;
        assert!((0.25..0.40).contains(&gmacs), "got {gmacs} GMACs");
    }
}
