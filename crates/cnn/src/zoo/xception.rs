//! Xception (Chollet, CVPR 2017), Keras-applications layout.
//!
//! Separable convolutions are modeled as an explicit depthwise layer
//! followed by a pointwise layer (the paper counts them separately:
//! 74 convolution layers in total). Batch normalization follows each
//! pointwise/standard convolution (4 parameters per output channel);
//! convolutions are bias-free. Total parameters reproduce Keras'
//! 22,910,480.

use crate::layer::{ConvSpec, Padding, PoolSpec, Src};
use crate::model::{CnnModel, ModelBuilder};
use crate::tensor::TensorShape;

fn bn(channels: u32) -> u64 {
    4 * channels as u64
}

/// Separable convolution: depthwise 3×3 (SAME) + pointwise, with batch norm
/// on the pointwise output only (as in Keras `SeparableConv2D` + BN).
fn sepconv(b: &mut ModelBuilder, name: &str, input: Src, out: u32) -> Src {
    let in_c = b.shape_of(input).channels;
    let d = b.conv_from(
        format!("{name}_dw"),
        ConvSpec::depthwise(3, 1, Padding::same(3, 3)),
        in_c,
        input,
        0,
    );
    let p = b.conv_from(
        format!("{name}_pw"),
        ConvSpec::pointwise(1),
        out,
        Src::Layer(d),
        bn(out),
    );
    Src::Layer(p)
}

/// Entry/exit module: two separable convolutions, a strided max pool, and a
/// strided 1×1 projection shortcut.
fn downsample_module(b: &mut ModelBuilder, name: &str, input: Src, c1: u32, c2: u32) -> Src {
    let s1 = sepconv(b, &format!("{name}_sep1"), input, c1);
    let s2 = sepconv(b, &format!("{name}_sep2"), s1, c2);
    let pooled = b.pool_from(
        format!("{name}_pool"),
        PoolSpec::max(3, 2, Padding::same(3, 3)),
        s2,
    );
    let res = b.conv_from(
        format!("{name}_res"),
        ConvSpec::pointwise(2),
        c2,
        input,
        bn(c2),
    );
    let add = b.add(
        format!("{name}_add"),
        &[Src::Layer(pooled), Src::Layer(res)],
    );
    Src::Layer(add)
}

/// Xception: 74 convolution layers, 22.9 M parameters (Table III).
/// Input resolution is 299×299.
pub fn xception() -> CnnModel {
    let mut b = ModelBuilder::new("xception", TensorShape::new(3, 299, 299));
    // Entry stem: two VALID convolutions.
    b.conv(
        "block1_conv1",
        ConvSpec::standard(3, 2, Padding::valid()),
        32,
        bn(32),
    );
    b.conv(
        "block1_conv2",
        ConvSpec::standard(3, 1, Padding::valid()),
        64,
        bn(64),
    );
    let mut x = b.last();

    // Entry flow downsampling modules.
    x = downsample_module(&mut b, "block2", x, 128, 128);
    x = downsample_module(&mut b, "block3", x, 256, 256);
    x = downsample_module(&mut b, "block4", x, 728, 728);

    // Middle flow: eight residual modules of three separable convolutions.
    for m in 0..8 {
        let name = format!("block{}", m + 5);
        let s1 = sepconv(&mut b, &format!("{name}_sep1"), x, 728);
        let s2 = sepconv(&mut b, &format!("{name}_sep2"), s1, 728);
        let s3 = sepconv(&mut b, &format!("{name}_sep3"), s2, 728);
        let add = b.add(format!("{name}_add"), &[s3, x]);
        x = Src::Layer(add);
    }

    // Exit flow.
    let s1 = sepconv(&mut b, "block13_sep1", x, 728);
    let s2 = sepconv(&mut b, "block13_sep2", s1, 1024);
    let pooled = b.pool_from("block13_pool", PoolSpec::max(3, 2, Padding::same(3, 3)), s2);
    let res = b.conv_from("block13_res", ConvSpec::pointwise(2), 1024, x, bn(1024));
    let add = b.add("block13_add", &[Src::Layer(pooled), Src::Layer(res)]);
    let s1 = sepconv(&mut b, "block14_sep1", Src::Layer(add), 1536);
    let s2 = sepconv(&mut b, "block14_sep2", s1, 2048);
    b.pool_from("avgpool", PoolSpec::global_avg(), s2);
    b.dense("fc1000", 1000, 1000);
    b.finish()
        .expect("xception construction is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xception_matches_keras() {
        let m = xception();
        assert_eq!(m.conv_layer_count(), 74);
        assert_eq!(m.total_params(), 22_910_480);
    }

    #[test]
    fn xception_spatial_progression() {
        let m = xception();
        let convs = m.conv_view();
        // 299 -> 149 (stem s2 valid) -> 147 (valid) -> 74 -> 37 -> 19 -> 10.
        assert_eq!(convs[0].ofm.height, 149);
        assert_eq!(convs[1].ofm.height, 147);
        let b2res = convs.iter().find(|c| c.name == "block2_res").unwrap();
        assert_eq!(b2res.ofm.height, 74);
        let b4res = convs.iter().find(|c| c.name == "block4_res").unwrap();
        assert_eq!(b4res.ofm.height, 19);
        let last = convs.last().unwrap();
        assert_eq!((last.ofm.channels, last.ofm.height), (2048, 10));
    }

    #[test]
    fn xception_mixes_conv_types() {
        let m = xception();
        let convs = m.conv_view();
        let dw = convs.iter().filter(|c| c.spec.depthwise).count();
        let pw = convs
            .iter()
            .filter(|c| !c.spec.depthwise && c.spec.kernel == (1, 1))
            .count();
        let std3 = convs
            .iter()
            .filter(|c| !c.spec.depthwise && c.spec.kernel == (3, 3))
            .count();
        assert_eq!(dw, 34); // 34 separable convolutions
        assert_eq!(pw, 34 + 4); // their pointwise halves + 4 residual 1x1s
        assert_eq!(std3, 2); // the stem
        assert_eq!(dw + pw + std3, 74);
    }

    #[test]
    fn xception_macs_in_expected_range() {
        // ~8.4 GMACs for 299x299 Xception.
        let gmacs = xception().conv_macs() as f64 / 1e9;
        assert!((7.5..9.0).contains(&gmacs), "got {gmacs} GMACs");
    }
}
