//! Ready-made CNN models: the five workloads of the paper's evaluation
//! (Table III), re-derived layer by layer and verified against the Keras
//! reference parameter counts.

mod densenet;
mod efficientnet;
mod mobilenet;
mod resnet;
mod vgg;
mod xception;

pub use densenet::densenet121;
pub use efficientnet::efficientnet_b0;
pub use mobilenet::mobilenet_v2;
pub use resnet::{resnet152, resnet50};
pub use vgg::vgg16;
pub use xception::xception;

use crate::model::CnnModel;

/// The paper's abbreviation for each evaluated CNN (Table III).
pub fn abbreviation(model_name: &str) -> &'static str {
    match model_name {
        "resnet152" => "Res152",
        "resnet50" => "Res50",
        "xception" => "XCp",
        "densenet121" => "Dns121",
        "mobilenetv2" => "MobV2",
        "vgg16" => "VGG16",
        "efficientnetb0" => "EffB0",
        _ => "?",
    }
}

/// All five evaluation CNNs in Table III order (Res152, Res50, XCp, Dns121,
/// MobV2).
pub fn all_models() -> Vec<CnnModel> {
    vec![
        resnet152(),
        resnet50(),
        xception(),
        densenet121(),
        mobilenet_v2(),
    ]
}

/// Additional workloads beyond Table III: the classic weights-heavy VGG-16
/// and the MBConv-based EfficientNet-B0 the paper names as sharing
/// MobileNetV2's core block (§V-A2).
pub fn extended_models() -> Vec<CnnModel> {
    vec![vgg16(), efficientnet_b0()]
}

/// Canonical names accepted by [`by_name`], in Table III order followed by
/// the extended workloads — the registry machine-readable front ends and
/// error messages list.
pub fn names() -> &'static [&'static str] {
    &[
        "resnet152",
        "resnet50",
        "xception",
        "densenet121",
        "mobilenetv2",
        "vgg16",
        "efficientnetb0",
    ]
}

/// Looks up a model constructor by name or abbreviation.
pub fn by_name(name: &str) -> Option<CnnModel> {
    match name {
        "resnet50" | "Res50" => Some(resnet50()),
        "resnet152" | "Res152" => Some(resnet152()),
        "xception" | "XCp" => Some(xception()),
        "densenet121" | "Dns121" => Some(densenet121()),
        "mobilenetv2" | "MobV2" => Some(mobilenet_v2()),
        "vgg16" | "VGG16" => Some(vgg16()),
        "efficientnetb0" | "EffB0" => Some(efficientnet_b0()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table III of the paper: weights (M) and conv layer counts.
    #[test]
    fn table_iii_reproduced() {
        let expect = [
            ("resnet152", 60.4, 155),
            ("resnet50", 25.6, 53),
            ("xception", 22.9, 74),
            ("densenet121", 8.1, 120),
            ("mobilenetv2", 3.5, 52),
        ];
        for (model, (name, weights_m, convs)) in all_models().iter().zip(expect) {
            assert_eq!(model.name(), name);
            assert_eq!(model.conv_layer_count(), convs, "{name}");
            let m = model.total_params() as f64 / 1e6;
            assert!(
                (m - weights_m).abs() < 0.05,
                "{name}: expected {weights_m} M params, got {m:.3} M"
            );
        }
    }

    #[test]
    fn abbreviations_match_paper() {
        for model in all_models() {
            assert_ne!(abbreviation(model.name()), "?");
        }
        assert_eq!(abbreviation("resnet50"), "Res50");
        assert_eq!(abbreviation("unknown"), "?");
    }

    #[test]
    fn name_registry_covers_every_model() {
        let names = names();
        assert_eq!(names.len(), all_models().len() + extended_models().len());
        for name in names {
            let model = by_name(name).expect(name);
            assert_eq!(model.name(), *name, "registry names are canonical");
        }
    }

    #[test]
    fn by_name_accepts_both_forms() {
        assert_eq!(by_name("Res50").unwrap().name(), "resnet50");
        assert_eq!(by_name("xception").unwrap().name(), "xception");
        assert_eq!(by_name("vgg16").unwrap().name(), "vgg16");
        assert!(by_name("alexnet").is_none());
    }
}
