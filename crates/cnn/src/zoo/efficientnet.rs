//! EfficientNet-B0 (Tan & Le, ICML 2019), Keras-applications layout.
//!
//! The paper motivates generality by noting that MobileNetV2's MBConv
//! block "is used in EfficientNet and MnasNet" (§V-A2); this constructor
//! provides that workload, including the squeeze-and-excitation gates
//! (modeled as 1×1 convolutions on the pooled tensor plus a broadcast
//! multiply). Total parameters reproduce Keras' 5,330,571.

use crate::layer::{ConvSpec, Padding, PoolSpec, Src};
use crate::model::{CnnModel, ModelBuilder};
use crate::tensor::TensorShape;

fn bn(channels: u32) -> u64 {
    4 * channels as u64
}

/// One MBConv block with squeeze-and-excitation.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    b: &mut ModelBuilder,
    name: &str,
    input: Src,
    kernel: u32,
    expand: u32,
    out: u32,
    stride: u32,
    se_from: u32,
) -> Src {
    let in_c = b.shape_of(input).channels;
    let mut x = input;
    if expand != 1 {
        let e = b.conv_from(
            format!("{name}_expand"),
            ConvSpec::pointwise(1),
            in_c * expand,
            x,
            bn(in_c * expand),
        );
        x = Src::Layer(e);
    }
    let exp_c = b.shape_of(x).channels;
    let d = b.conv_from(
        format!("{name}_dw"),
        ConvSpec::depthwise(kernel, stride, Padding::same(kernel, kernel)),
        exp_c,
        x,
        bn(exp_c),
    );

    // Squeeze-and-excitation: GAP -> 1x1 reduce (biased) -> 1x1 expand
    // (biased) -> broadcast multiply. The reduction width derives from the
    // block's *input* channels (se_ratio = 0.25).
    let se_c = (se_from / 4).max(1);
    let gap = b.pool_from(
        format!("{name}_se_squeeze"),
        PoolSpec::global_avg(),
        Src::Layer(d),
    );
    let r = b.conv_from(
        format!("{name}_se_reduce"),
        ConvSpec::pointwise(1),
        se_c,
        Src::Layer(gap),
        se_c as u64, // bias
    );
    let e = b.conv_from(
        format!("{name}_se_expand"),
        ConvSpec::pointwise(1),
        exp_c,
        Src::Layer(r),
        exp_c as u64, // bias
    );
    let gated = b.mul(format!("{name}_se_excite"), Src::Layer(d), Src::Layer(e));

    let p = b.conv_from(
        format!("{name}_project"),
        ConvSpec::pointwise(1),
        out,
        Src::Layer(gated),
        bn(out),
    );
    if stride == 1 && in_c == out {
        Src::Layer(b.add(format!("{name}_add"), &[Src::Layer(p), input]))
    } else {
        Src::Layer(p)
    }
}

/// EfficientNet-B0: 81 convolution layers (squeeze-excite 1×1s included),
/// 5.3 M parameters.
pub fn efficientnet_b0() -> CnnModel {
    let mut b = ModelBuilder::new("efficientnetb0", TensorShape::new(3, 224, 224));
    b.conv(
        "stem",
        ConvSpec::standard(3, 2, Padding::same(3, 3)),
        32,
        bn(32),
    );
    let mut x = b.last();

    // (kernel, repeats, out channels, expand, first stride).
    let cfg: [(u32, usize, u32, u32, u32); 7] = [
        (3, 1, 16, 1, 1),
        (3, 2, 24, 6, 2),
        (5, 2, 40, 6, 2),
        (3, 3, 80, 6, 2),
        (5, 3, 112, 6, 1),
        (5, 4, 192, 6, 2),
        (3, 1, 320, 6, 1),
    ];
    let mut idx = 0usize;
    for &(k, reps, out, expand, s) in &cfg {
        for rep in 0..reps {
            idx += 1;
            let stride = if rep == 0 { s } else { 1 };
            let in_c = b.shape_of(x).channels;
            x = mbconv(
                &mut b,
                &format!("block{idx}"),
                x,
                k,
                expand,
                out,
                stride,
                in_c,
            );
        }
    }

    b.conv_from("head", ConvSpec::pointwise(1), 1280, x, bn(1280));
    b.pool("avgpool", PoolSpec::global_avg());
    b.dense("fc1000", 1000, 1000);
    b.finish()
        .expect("efficientnet construction is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficientnet_b0_matches_keras() {
        let m = efficientnet_b0();
        // Keras reports 5,330,571 including the 7 statistics of its input
        // Normalization layer; the network itself has 5,330,564.
        assert_eq!(m.total_params(), 5_330_564);
        assert_eq!(m.total_params() + 7, 5_330_571);
    }

    #[test]
    fn efficientnet_b0_structure() {
        let m = efficientnet_b0();
        // stem + 16 blocks (first: 4 convs, rest: 5) + head.
        assert_eq!(m.conv_layer_count(), 1 + 4 + 15 * 5 + 1);
        let convs = m.conv_view();
        let last = convs.last().unwrap();
        assert_eq!((last.ofm.channels, last.ofm.height), (1280, 7));
    }

    #[test]
    fn se_gates_resolve_producers() {
        // The project conv consumes the multiply of the depthwise output
        // and the SE expand conv: both must appear as producers.
        let m = efficientnet_b0();
        let convs = m.conv_view();
        let proj = convs.iter().find(|c| c.name == "block2_project").unwrap();
        assert!(proj.producers.len() >= 2, "{:?}", proj.producers);
    }

    #[test]
    fn efficientnet_b0_macs_in_expected_range() {
        // ~0.39 GMACs for 224x224 EfficientNet-B0.
        let gmacs = efficientnet_b0().conv_macs() as f64 / 1e9;
        assert!((0.3..0.5).contains(&gmacs), "got {gmacs}");
    }
}
