//! VGG-16 (Simonyan & Zisserman, ICLR 2015), Keras-applications layout.
//!
//! A plain convolutional chain — no batch norm, biased convolutions and
//! dense layers — reproducing Keras' 138,357,544 parameters. Included
//! beyond the paper's Table III as the classic weights-heavy workload:
//! its 528 MB of fp32 weights (132 MB at 8-bit) stress the weight-traffic
//! paths of every architecture.

use crate::layer::{ConvSpec, Padding, PoolSpec};
use crate::model::{CnnModel, ModelBuilder};
use crate::tensor::TensorShape;

/// VGG-16: 13 convolution layers, 138.4 M parameters.
pub fn vgg16() -> CnnModel {
    let mut b = ModelBuilder::new("vgg16", TensorShape::new(3, 224, 224));
    let stages: [(usize, u32); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for (si, &(convs, channels)) in stages.iter().enumerate() {
        for ci in 0..convs {
            b.conv(
                format!("block{}_conv{}", si + 1, ci + 1),
                ConvSpec::standard(3, 1, Padding::same(3, 3)),
                channels,
                channels as u64, // bias
            );
        }
        b.pool(
            format!("block{}_pool", si + 1),
            PoolSpec::max(2, 2, Padding::valid()),
        );
    }
    b.dense("fc1", 4096, 4096);
    b.dense("fc2", 4096, 4096);
    b.dense("fc1000", 1000, 1000);
    b.finish()
        .expect("vgg16 construction is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_matches_keras() {
        let m = vgg16();
        assert_eq!(m.conv_layer_count(), 13);
        assert_eq!(m.total_params(), 138_357_544);
    }

    #[test]
    fn vgg16_shapes() {
        let m = vgg16();
        let convs = m.conv_view();
        assert_eq!(convs[0].ofm, TensorShape::new(64, 224, 224));
        let last = convs.last().unwrap();
        assert_eq!(last.ofm, TensorShape::new(512, 14, 14));
    }

    #[test]
    fn vgg16_macs_in_expected_range() {
        // ~15.3 GMACs for 224x224 VGG-16 convolutions.
        let gmacs = vgg16().conv_macs() as f64 / 1e9;
        assert!((14.0..17.0).contains(&gmacs), "got {gmacs}");
    }
}
