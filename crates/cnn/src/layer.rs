//! CNN layers: convolutions, pooling, merges, and fully-connected operators.

use std::fmt;

use crate::tensor::TensorShape;

/// Identifier of a layer inside a [`CnnModel`](crate::CnnModel): its index
/// in the model's topologically ordered layer list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub usize);

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0 + 1)
    }
}

/// Source of a layer's input feature maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// The model input image.
    Input,
    /// The output feature maps of an earlier layer.
    Layer(LayerId),
}

/// Spatial padding applied symmetrically on each side of a dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Padding {
    /// Rows added above and below.
    pub h: u32,
    /// Columns added left and right.
    pub w: u32,
}

impl Padding {
    /// Symmetric padding of `h` rows and `w` columns per side.
    pub const fn new(h: u32, w: u32) -> Self {
        Self { h, w }
    }

    /// `SAME` padding for a given (odd) kernel.
    pub const fn same(kernel_h: u32, kernel_w: u32) -> Self {
        Self {
            h: (kernel_h - 1) / 2,
            w: (kernel_w - 1) / 2,
        }
    }

    /// No padding (`VALID`).
    pub const fn valid() -> Self {
        Self { h: 0, w: 0 }
    }
}

/// Convolution parameters.
///
/// Standard, depthwise, and pointwise (1×1) convolutions are all expressed
/// here; `depthwise` toggles per-channel filtering (groups = channels), and
/// pointwise is simply `kernel = (1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Kernel size `(rows, cols)`.
    pub kernel: (u32, u32),
    /// Stride `(rows, cols)`.
    pub stride: (u32, u32),
    /// Symmetric zero padding.
    pub padding: Padding,
    /// Depthwise convolution: one filter per input channel, no cross-channel
    /// reduction.
    pub depthwise: bool,
}

impl ConvSpec {
    /// Standard convolution with square kernel/stride and explicit padding.
    pub const fn standard(kernel: u32, stride: u32, padding: Padding) -> Self {
        Self {
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding,
            depthwise: false,
        }
    }

    /// Pointwise (1×1) convolution.
    pub const fn pointwise(stride: u32) -> Self {
        Self {
            kernel: (1, 1),
            stride: (stride, stride),
            padding: Padding::valid(),
            depthwise: false,
        }
    }

    /// Depthwise convolution with square kernel.
    pub const fn depthwise(kernel: u32, stride: u32, padding: Padding) -> Self {
        Self {
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding,
            depthwise: true,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub const fn out_spatial(&self, h: u32, w: u32) -> (u32, u32) {
        let oh = (h + 2 * self.padding.h - self.kernel.0) / self.stride.0 + 1;
        let ow = (w + 2 * self.padding.w - self.kernel.1) / self.stride.1 + 1;
        (oh, ow)
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
    /// Global average pooling (collapses spatial dims to 1×1).
    GlobalAvg,
}

/// Pooling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Flavor.
    pub kind: PoolKind,
    /// Window size (ignored for global pooling).
    pub kernel: (u32, u32),
    /// Stride (ignored for global pooling).
    pub stride: (u32, u32),
    /// Symmetric padding (ignored for global pooling).
    pub padding: Padding,
}

impl PoolSpec {
    /// Max pooling with square window.
    pub const fn max(kernel: u32, stride: u32, padding: Padding) -> Self {
        Self {
            kind: PoolKind::Max,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding,
        }
    }

    /// Average pooling with square window.
    pub const fn avg(kernel: u32, stride: u32, padding: Padding) -> Self {
        Self {
            kind: PoolKind::Avg,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding,
        }
    }

    /// Global average pooling.
    pub const fn global_avg() -> Self {
        Self {
            kind: PoolKind::GlobalAvg,
            kernel: (0, 0),
            stride: (0, 0),
            padding: Padding::valid(),
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub const fn out_spatial(&self, h: u32, w: u32) -> (u32, u32) {
        if matches!(self.kind, PoolKind::GlobalAvg) {
            return (1, 1);
        }
        let oh = (h + 2 * self.padding.h - self.kernel.0) / self.stride.0 + 1;
        let ow = (w + 2 * self.padding.w - self.kernel.1) / self.stride.1 + 1;
        (oh, ow)
    }
}

/// The operator a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerOp {
    /// Convolution (standard / depthwise / pointwise). These are the layers
    /// mapped onto compute engines.
    Conv(ConvSpec),
    /// Pooling. Shape-transforming only; fused into the surrounding
    /// dataflow by the baseline accelerators.
    Pool(PoolSpec),
    /// Element-wise addition of all inputs (residual connections). Fused
    /// into the producing engine by the baseline accelerators; zero-cost in
    /// the model, but its operands extend feature-map lifetimes.
    Add,
    /// Channel-wise concatenation of all inputs (dense connections).
    /// Layout-level no-op, but it extends feature-map lifetimes.
    Concat,
    /// Element-wise multiplication of the first input by a per-channel
    /// gate (squeeze-and-excitation). The gate input has matching channels
    /// and 1×1 (or matching) spatial dims; fused into the producing engine
    /// like [`LayerOp::Add`].
    Mul,
    /// Fully-connected layer. Kept for parameter-count fidelity (Table III
    /// counts total weights); runs off-accelerator in the baseline designs.
    Dense {
        /// Input features.
        inputs: u32,
        /// Output features.
        outputs: u32,
    },
}

/// One CNN layer: operator, input/output shapes, and DAG wiring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Position in the model's layer list.
    pub id: LayerId,
    /// Human-readable name (unique within a model).
    pub name: String,
    /// Operator.
    pub op: LayerOp,
    /// Input feature-map shape. For [`LayerOp::Add`] this is the common
    /// shape of every operand; for [`LayerOp::Concat`] it equals the output
    /// shape (channels already summed).
    pub ifm: TensorShape,
    /// Output feature-map shape.
    pub ofm: TensorShape,
    /// Producers of this layer's IFMs. Exactly one for conv/pool/dense, two
    /// or more for add/concat.
    pub inputs: Vec<Src>,
    /// Parameters beyond the operator weights (batch-norm scales/statistics,
    /// biases) attached to this layer, counted for Table III fidelity.
    pub extra_params: u64,
}

impl Layer {
    /// Number of operator weights (convolution filters or dense weight
    /// matrix), excluding [`extra_params`](Self::extra_params).
    ///
    /// These are the `weights` of the paper's equations: the data that must
    /// be fetched from off-chip memory at least once per inference.
    pub fn weight_count(&self) -> u64 {
        match self.op {
            LayerOp::Conv(spec) => {
                let (kh, kw) = spec.kernel;
                let k = kh as u64 * kw as u64;
                if spec.depthwise {
                    self.ifm.channels as u64 * k
                } else {
                    self.ofm.channels as u64 * self.ifm.channels as u64 * k
                }
            }
            LayerOp::Pool(_) | LayerOp::Add | LayerOp::Concat | LayerOp::Mul => 0,
            LayerOp::Dense { inputs, outputs } => inputs as u64 * outputs as u64,
        }
    }

    /// Total parameters including batch-norm/bias extras.
    pub fn param_count(&self) -> u64 {
        self.weight_count() + self.extra_params
    }

    /// Multiply-accumulate operations to evaluate this layer on one input.
    pub fn macs(&self) -> u64 {
        match self.op {
            LayerOp::Conv(spec) => {
                let (kh, kw) = spec.kernel;
                let k = kh as u64 * kw as u64;
                let out = self.ofm.elements();
                if spec.depthwise {
                    out * k
                } else {
                    out * self.ifm.channels as u64 * k
                }
            }
            LayerOp::Pool(_) | LayerOp::Add | LayerOp::Concat | LayerOp::Mul => 0,
            LayerOp::Dense { inputs, outputs } => inputs as u64 * outputs as u64,
        }
    }

    /// Whether this layer is a convolution (the layers mapped to CEs).
    pub fn is_conv(&self) -> bool {
        matches!(self.op, LayerOp::Conv(_))
    }

    /// Convolution spec if this layer is a convolution.
    pub fn conv_spec(&self) -> Option<&ConvSpec> {
        match &self.op {
            LayerOp::Conv(spec) => Some(spec),
            _ => None,
        }
    }

    /// The six disjoint convolution-loop dimensions `[F, C, OH, OW, KH, KW]`
    /// (§II-B: filters, input channels, output rows/cols, kernel rows/cols).
    ///
    /// For depthwise convolutions the cross-channel reduction loop collapses
    /// to 1 and `F` equals the channel count.
    ///
    /// Returns `None` for non-convolution layers.
    pub fn loop_dims(&self) -> Option<[u32; 6]> {
        let spec = self.conv_spec()?;
        let c = if spec.depthwise { 1 } else { self.ifm.channels };
        Some([
            self.ofm.channels,
            c,
            self.ofm.height,
            self.ofm.width,
            spec.kernel.0,
            spec.kernel.1,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer(spec: ConvSpec, ifm: TensorShape, out_channels: u32) -> Layer {
        let (oh, ow) = spec.out_spatial(ifm.height, ifm.width);
        Layer {
            id: LayerId(0),
            name: "t".into(),
            op: LayerOp::Conv(spec),
            ifm,
            ofm: TensorShape::new(out_channels, oh, ow),
            inputs: vec![Src::Input],
            extra_params: 0,
        }
    }

    #[test]
    fn standard_conv_weights_and_macs() {
        // 3x3 conv, 3->64 channels, 224x224 with SAME padding, stride 1.
        let l = conv_layer(
            ConvSpec::standard(3, 1, Padding::same(3, 3)),
            TensorShape::new(3, 224, 224),
            64,
        );
        assert_eq!(l.weight_count(), 64 * 3 * 3 * 3);
        assert_eq!(l.ofm, TensorShape::new(64, 224, 224));
        assert_eq!(l.macs(), 64 * 224 * 224 * 3 * 9);
    }

    #[test]
    fn depthwise_conv_weights_and_macs() {
        let l = conv_layer(
            ConvSpec::depthwise(3, 1, Padding::same(3, 3)),
            TensorShape::new(32, 112, 112),
            32,
        );
        assert_eq!(l.weight_count(), 32 * 9);
        assert_eq!(l.macs(), 32 * 112 * 112 * 9);
        assert_eq!(l.loop_dims(), Some([32, 1, 112, 112, 3, 3]));
    }

    #[test]
    fn pointwise_conv_is_1x1() {
        let l = conv_layer(ConvSpec::pointwise(1), TensorShape::new(64, 56, 56), 256);
        assert_eq!(l.weight_count(), 64 * 256);
        assert_eq!(l.ofm, TensorShape::new(256, 56, 56));
    }

    #[test]
    fn strided_conv_downsamples() {
        // 7x7 stride-2 pad-3 on 224 -> 112 (ResNet stem).
        let spec = ConvSpec::standard(7, 2, Padding::new(3, 3));
        assert_eq!(spec.out_spatial(224, 224), (112, 112));
        // 3x3 stride-2 pad-1 on 112 -> 56.
        let spec = ConvSpec::standard(3, 2, Padding::new(1, 1));
        assert_eq!(spec.out_spatial(112, 112), (56, 56));
    }

    #[test]
    fn valid_padding_shrinks() {
        // Xception stem: 3x3 stride-2 valid on 299 -> 149.
        let spec = ConvSpec::standard(3, 2, Padding::valid());
        assert_eq!(spec.out_spatial(299, 299), (149, 149));
        // then 3x3 stride-1 valid on 149 -> 147.
        let spec = ConvSpec::standard(3, 1, Padding::valid());
        assert_eq!(spec.out_spatial(149, 149), (147, 147));
    }

    #[test]
    fn pool_shapes() {
        let p = PoolSpec::max(3, 2, Padding::new(1, 1));
        assert_eq!(p.out_spatial(112, 112), (56, 56));
        let g = PoolSpec::global_avg();
        assert_eq!(g.out_spatial(7, 7), (1, 1));
    }

    #[test]
    fn dense_params_and_macs() {
        let l = Layer {
            id: LayerId(0),
            name: "fc".into(),
            op: LayerOp::Dense {
                inputs: 2048,
                outputs: 1000,
            },
            ifm: TensorShape::new(2048, 1, 1),
            ofm: TensorShape::new(1000, 1, 1),
            inputs: vec![Src::Input],
            extra_params: 1000,
        };
        assert_eq!(l.weight_count(), 2048 * 1000);
        assert_eq!(l.param_count(), 2048 * 1000 + 1000);
        assert_eq!(l.macs(), 2048 * 1000);
    }

    #[test]
    fn merge_ops_are_free() {
        let l = Layer {
            id: LayerId(2),
            name: "add".into(),
            op: LayerOp::Add,
            ifm: TensorShape::new(256, 56, 56),
            ofm: TensorShape::new(256, 56, 56),
            inputs: vec![Src::Layer(LayerId(0)), Src::Layer(LayerId(1))],
            extra_params: 0,
        };
        assert_eq!(l.weight_count(), 0);
        assert_eq!(l.macs(), 0);
        assert!(!l.is_conv());
        assert_eq!(l.loop_dims(), None);
    }

    #[test]
    fn loop_dims_standard() {
        let l = conv_layer(
            ConvSpec::standard(3, 1, Padding::same(3, 3)),
            TensorShape::new(16, 8, 8),
            32,
        );
        assert_eq!(l.loop_dims(), Some([32, 16, 8, 8, 3, 3]));
    }

    #[test]
    fn layer_id_displays_one_based() {
        assert_eq!(LayerId(0).to_string(), "L1");
        assert_eq!(LayerId(11).to_string(), "L12");
    }
}
