//! Feature-map tensor shapes.

use std::fmt;

/// Shape of a feature map (one image, no batch dimension): `channels ×
/// height × width`.
///
/// Feature maps (FMs) are the activations flowing between CNN layers; the
/// paper calls a layer's input FMs `IFMs` and its output FMs `OFMs`
/// (§II-A). All cost-model quantities that involve FM storage or movement
/// are derived from these shapes.
///
/// # Examples
///
/// ```
/// use mccm_cnn::TensorShape;
///
/// let ifm = TensorShape::new(64, 56, 56);
/// assert_eq!(ifm.elements(), 64 * 56 * 56);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorShape {
    /// Number of channels (2-D slices).
    pub channels: u32,
    /// Rows per channel.
    pub height: u32,
    /// Columns per channel.
    pub width: u32,
}

impl TensorShape {
    /// Creates a shape from channel count and spatial dimensions.
    pub const fn new(channels: u32, height: u32, width: u32) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Total number of elements in the tensor.
    pub const fn elements(&self) -> u64 {
        self.channels as u64 * self.height as u64 * self.width as u64
    }

    /// Elements in a single row across all channels (`channels × width`).
    ///
    /// This is the natural tile unit for row-granularity pipelining
    /// (TGPA-style, see `mccm-arch`).
    pub const fn row_elements(&self) -> u64 {
        self.channels as u64 * self.width as u64
    }

    /// Returns a copy with a different channel count.
    pub const fn with_channels(self, channels: u32) -> Self {
        Self { channels, ..self }
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_multiplies_dims() {
        assert_eq!(TensorShape::new(3, 224, 224).elements(), 3 * 224 * 224);
        assert_eq!(TensorShape::new(1, 1, 1).elements(), 1);
    }

    #[test]
    fn row_elements_spans_channels() {
        assert_eq!(TensorShape::new(64, 56, 56).row_elements(), 64 * 56);
    }

    #[test]
    fn with_channels_preserves_spatial() {
        let s = TensorShape::new(3, 10, 12).with_channels(8);
        assert_eq!(s, TensorShape::new(8, 10, 12));
    }

    #[test]
    fn display_is_c_h_w() {
        assert_eq!(TensorShape::new(64, 112, 112).to_string(), "64x112x112");
    }

    #[test]
    fn elements_do_not_overflow_u32_sizes() {
        // Largest realistic FM: channels and spatial dims near u32::MAX would
        // overflow, but products are computed in u64.
        let s = TensorShape::new(4096, 4096, 4096);
        assert_eq!(s.elements(), 4096u64 * 4096 * 4096);
    }
}
