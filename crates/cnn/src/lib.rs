//! CNN representation for the MCCM cost model: tensor shapes, layers, model
//! DAGs, a verified model zoo, and synthetic model generation.
//!
//! This crate is the workload substrate of the MCCM reproduction
//! (ISPASS 2025): it provides the per-layer convolution dimensions the
//! analytical model consumes, the feature-map liveness analysis behind the
//! buffer equations, and layer-exact re-derivations of the five CNNs
//! evaluated in the paper (Table III).
//!
//! # Quick start
//!
//! ```
//! use mccm_cnn::zoo;
//!
//! let model = zoo::resnet50();
//! assert_eq!(model.conv_layer_count(), 53);
//!
//! // The conv view is what the accelerator builder maps onto engines.
//! let convs = model.conv_view();
//! assert_eq!(convs[0].dims, [64, 3, 112, 112, 7, 7]); // [F, C, OH, OW, KH, KW]
//! ```

#![warn(missing_docs)]

mod error;
mod layer;
mod model;
pub mod synthetic;
mod tensor;
pub mod zoo;

pub use error::CnnError;
pub use layer::{ConvSpec, Layer, LayerId, LayerOp, Padding, PoolKind, PoolSpec, Src};
pub use model::{CnnModel, ConvInfo, ModelBuilder, ModelStats};
pub use tensor::TensorShape;
