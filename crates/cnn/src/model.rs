//! CNN models: layer DAGs, validation, statistics, and the convolution view
//! consumed by the accelerator builder and cost model.

use std::collections::HashSet;

use crate::error::CnnError;
use crate::layer::{ConvSpec, Layer, LayerId, LayerOp, PoolSpec, Src};
use crate::tensor::TensorShape;

/// A validated CNN: a topologically ordered DAG of [`Layer`]s.
///
/// Models are immutable once built; construct them through
/// [`ModelBuilder`] (or the ready-made constructors in [`crate::zoo`]).
///
/// # Examples
///
/// ```
/// use mccm_cnn::{ConvSpec, ModelBuilder, Padding, TensorShape};
///
/// # fn main() -> Result<(), mccm_cnn::CnnError> {
/// let mut b = ModelBuilder::new("tiny", TensorShape::new(3, 32, 32));
/// b.conv("c1", ConvSpec::standard(3, 1, Padding::same(3, 3)), 16, 0);
/// b.conv("c2", ConvSpec::pointwise(1), 32, 0);
/// let model = b.finish()?;
/// assert_eq!(model.conv_layer_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnnModel {
    name: String,
    input: TensorShape,
    layers: Vec<Layer>,
    /// For each layer, the index of its last consumer (`None` if it is a
    /// terminal output). Precomputed for feature-map liveness queries.
    last_consumer: Vec<Option<usize>>,
}

impl CnnModel {
    /// Model name (e.g. `"resnet50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shape of the model input image.
    pub fn input(&self) -> TensorShape {
        self.input
    }

    /// All layers in topological order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only minted by this model's
    /// builder, so this indicates a cross-model mixup).
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.0]
    }

    /// Number of convolution layers (the layers mapped to compute engines;
    /// Table III's "Conv layers").
    pub fn conv_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_conv()).count()
    }

    /// Total parameters, including batch-norm and bias extras (Table III's
    /// "Weights (M)").
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Convolution weights only — the data the accelerator streams from
    /// off-chip memory.
    pub fn conv_weights(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.is_conv())
            .map(Layer::weight_count)
            .sum()
    }

    /// Total multiply-accumulate operations per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Multiply-accumulate operations in convolution layers only.
    pub fn conv_macs(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.is_conv())
            .map(Layer::macs)
            .sum()
    }

    /// Extra feature-map elements that must stay resident while `layer`
    /// executes: outputs of earlier layers that still have a consumer at or
    /// after `layer`, excluding `layer`'s own direct inputs.
    ///
    /// This is the "multiple copies of the FMs in case a layer has residual
    /// connections" term of Eq. (4).
    pub fn extra_live_elements(&self, layer: LayerId) -> u64 {
        let i = layer.0;
        let direct: HashSet<usize> = self.layers[i]
            .inputs
            .iter()
            .filter_map(|s| match s {
                Src::Layer(id) => Some(id.0),
                Src::Input => None,
            })
            .collect();
        self.layers[..i]
            .iter()
            .enumerate()
            .filter(|(j, _)| !direct.contains(j) && self.last_consumer[*j].is_some_and(|c| c >= i))
            .map(|(_, l)| l.ofm.elements())
            .sum()
    }

    /// Feature-map working set of a layer: IFMs + OFMs + extra live copies
    /// (Eq. (4)'s `FMsSz`).
    pub fn fm_working_set(&self, layer: LayerId) -> u64 {
        let l = &self.layers[layer.0];
        l.ifm.elements() + l.ofm.elements() + self.extra_live_elements(layer)
    }

    /// The convolution view: per-conv-layer records in execution order.
    ///
    /// The paper's notation (`L1`, `L2`, …) and all CE mappings index
    /// convolution layers only; this view is what `mccm-arch` and
    /// `mccm-core` consume.
    pub fn conv_view(&self) -> Vec<ConvInfo> {
        // Conv index per layer id, for producer resolution.
        let mut conv_index = vec![usize::MAX; self.layers.len()];
        let mut idx = 0usize;
        for (i, l) in self.layers.iter().enumerate() {
            if l.is_conv() {
                conv_index[i] = idx;
                idx += 1;
            }
        }
        // Producer conv sets per layer: the convolutions whose outputs feed
        // a layer, looking through pools/adds/concats. Computed in
        // topological order, so transparent layers union their inputs'
        // already-resolved sets.
        let mut producers: Vec<Vec<usize>> = Vec::with_capacity(self.layers.len());
        for l in &self.layers {
            let mut set: Vec<usize> = Vec::new();
            for src in &l.inputs {
                match src {
                    Src::Input => {}
                    Src::Layer(id) => {
                        if self.layers[id.0].is_conv() {
                            set.push(conv_index[id.0]);
                        } else {
                            set.extend(producers[id.0].iter().copied());
                        }
                    }
                }
            }
            set.sort_unstable();
            set.dedup();
            producers.push(set);
        }

        self.layers
            .iter()
            .filter(|l| l.is_conv())
            .map(|l| {
                let spec = *l.conv_spec().expect("filtered to convs");
                ConvInfo {
                    index: conv_index[l.id.0],
                    layer_id: l.id,
                    name: l.name.clone(),
                    ifm: l.ifm,
                    ofm: l.ofm,
                    spec,
                    weights: l.weight_count(),
                    macs: l.macs(),
                    dims: l.loop_dims().expect("filtered to convs"),
                    fm_working_set: self.fm_working_set(l.id),
                    producers: producers[l.id.0].clone(),
                }
            })
            .collect()
    }

    /// Summary statistics (Table III row).
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            name: self.name.clone(),
            conv_layers: self.conv_layer_count(),
            total_params: self.total_params(),
            conv_weights: self.conv_weights(),
            conv_macs: self.conv_macs(),
            max_fm_working_set: self
                .layers
                .iter()
                .filter(|l| l.is_conv())
                .map(|l| self.fm_working_set(l.id))
                .max()
                .unwrap_or(0),
        }
    }
}

/// Summary statistics of a model (Table III plus derived quantities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Model name.
    pub name: String,
    /// Number of convolution layers.
    pub conv_layers: usize,
    /// Total parameters including batch-norm/bias extras.
    pub total_params: u64,
    /// Convolution weights only.
    pub conv_weights: u64,
    /// MACs in convolution layers.
    pub conv_macs: u64,
    /// Largest per-conv-layer feature-map working set, in elements.
    pub max_fm_working_set: u64,
}

/// One convolution layer as seen by the accelerator builder and cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvInfo {
    /// Zero-based convolution index (the paper's `L{index+1}`).
    pub index: usize,
    /// Id of the backing layer in the full model.
    pub layer_id: LayerId,
    /// Layer name.
    pub name: String,
    /// Input feature-map shape.
    pub ifm: TensorShape,
    /// Output feature-map shape.
    pub ofm: TensorShape,
    /// Convolution parameters.
    pub spec: ConvSpec,
    /// Weight elements.
    pub weights: u64,
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Disjoint loop dimensions `[F, C, OH, OW, KH, KW]`.
    pub dims: [u32; 6],
    /// Feature-map working set (IFM + OFM + live residual copies).
    pub fm_working_set: u64,
    /// Conv indices whose outputs feed this layer's IFMs, resolved through
    /// pools/adds/concats (empty when fed by the model input only). Drives
    /// row-dependency scheduling in pipelined blocks.
    pub producers: Vec<usize>,
}

/// Incremental constructor for [`CnnModel`].
///
/// Layers are appended in topological order; by default each new layer
/// consumes the previous layer's output, and explicit sources support
/// residual and dense wiring. [`finish`](Self::finish) validates the DAG.
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    name: String,
    input: TensorShape,
    layers: Vec<Layer>,
}

impl ModelBuilder {
    /// Starts a model with the given input image shape.
    pub fn new(name: impl Into<String>, input: TensorShape) -> Self {
        Self {
            name: name.into(),
            input,
            layers: Vec::new(),
        }
    }

    /// Shape produced by a source.
    pub fn shape_of(&self, src: Src) -> TensorShape {
        match src {
            Src::Input => self.input,
            Src::Layer(id) => self.layers[id.0].ofm,
        }
    }

    /// The most recently added layer's output, or the model input if no
    /// layer exists yet.
    pub fn last(&self) -> Src {
        self.layers.last().map_or(Src::Input, |l| Src::Layer(l.id))
    }

    fn push(
        &mut self,
        name: impl Into<String>,
        op: LayerOp,
        ifm: TensorShape,
        ofm: TensorShape,
        inputs: Vec<Src>,
        extra_params: u64,
    ) -> LayerId {
        let id = LayerId(self.layers.len());
        self.layers.push(Layer {
            id,
            name: name.into(),
            op,
            ifm,
            ofm,
            inputs,
            extra_params,
        });
        id
    }

    /// Appends a convolution consuming the previous layer.
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        spec: ConvSpec,
        out_channels: u32,
        extra_params: u64,
    ) -> LayerId {
        let src = self.last();
        self.conv_from(name, spec, out_channels, src, extra_params)
    }

    /// Appends a convolution consuming an explicit source.
    pub fn conv_from(
        &mut self,
        name: impl Into<String>,
        spec: ConvSpec,
        out_channels: u32,
        src: Src,
        extra_params: u64,
    ) -> LayerId {
        let ifm = self.shape_of(src);
        let (oh, ow) = spec.out_spatial(ifm.height, ifm.width);
        let out_channels = if spec.depthwise {
            ifm.channels
        } else {
            out_channels
        };
        let ofm = TensorShape::new(out_channels, oh, ow);
        self.push(name, LayerOp::Conv(spec), ifm, ofm, vec![src], extra_params)
    }

    /// Appends a pooling layer consuming the previous layer.
    pub fn pool(&mut self, name: impl Into<String>, spec: PoolSpec) -> LayerId {
        let src = self.last();
        self.pool_from(name, spec, src)
    }

    /// Appends a pooling layer consuming an explicit source.
    pub fn pool_from(&mut self, name: impl Into<String>, spec: PoolSpec, src: Src) -> LayerId {
        let ifm = self.shape_of(src);
        let (oh, ow) = spec.out_spatial(ifm.height, ifm.width);
        let ofm = TensorShape::new(ifm.channels, oh, ow);
        self.push(name, LayerOp::Pool(spec), ifm, ofm, vec![src], 0)
    }

    /// Appends an element-wise addition of two or more sources.
    pub fn add(&mut self, name: impl Into<String>, srcs: &[Src]) -> LayerId {
        let ifm = self.shape_of(srcs[0]);
        self.push(name, LayerOp::Add, ifm, ifm, srcs.to_vec(), 0)
    }

    /// Appends an element-wise multiplication: the first source gated by
    /// the second (per-channel broadcast, squeeze-and-excitation style).
    pub fn mul(&mut self, name: impl Into<String>, main: Src, gate: Src) -> LayerId {
        let ifm = self.shape_of(main);
        self.push(name, LayerOp::Mul, ifm, ifm, vec![main, gate], 0)
    }

    /// Appends a channel concatenation of two or more sources.
    pub fn concat(&mut self, name: impl Into<String>, srcs: &[Src]) -> LayerId {
        let first = self.shape_of(srcs[0]);
        let channels = srcs.iter().map(|&s| self.shape_of(s).channels).sum();
        let shape = TensorShape::new(channels, first.height, first.width);
        self.push(name, LayerOp::Concat, shape, shape, srcs.to_vec(), 0)
    }

    /// Attaches extra (batch-norm/bias) parameters to an already-added
    /// layer. Used for normalization that Keras counts on non-convolution
    /// layers (e.g. DenseNet's final batch norm).
    pub fn layer_extra_params(&mut self, id: LayerId, extra_params: u64) {
        self.layers[id.0].extra_params += extra_params;
    }

    /// Appends a fully-connected layer consuming the previous layer.
    pub fn dense(&mut self, name: impl Into<String>, outputs: u32, extra_params: u64) -> LayerId {
        let src = self.last();
        let ifm = self.shape_of(src);
        let inputs = u32::try_from(ifm.elements()).expect("dense input feature count fits in u32");
        self.push(
            name,
            LayerOp::Dense { inputs, outputs },
            ifm,
            TensorShape::new(outputs, 1, 1),
            vec![src],
            extra_params,
        )
    }

    /// Validates and freezes the model.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError`] if the model is empty, a layer references a
    /// non-preceding source, input arities or shapes are inconsistent, or
    /// layer names collide.
    pub fn finish(self) -> Result<CnnModel, CnnError> {
        if self.layers.is_empty() {
            return Err(CnnError::EmptyModel);
        }
        let mut names = HashSet::new();
        for l in &self.layers {
            if !names.insert(l.name.as_str()) {
                return Err(CnnError::DuplicateName(l.name.clone()));
            }
        }
        for (i, l) in self.layers.iter().enumerate() {
            for src in &l.inputs {
                if let Src::Layer(id) = src {
                    if id.0 >= i {
                        return Err(CnnError::ForwardReference {
                            layer: i,
                            source: id.0,
                        });
                    }
                }
            }
            let arity_ok = match l.op {
                LayerOp::Add | LayerOp::Concat => l.inputs.len() >= 2,
                LayerOp::Mul => l.inputs.len() == 2,
                _ => l.inputs.len() == 1,
            };
            if !arity_ok {
                let expected = match l.op {
                    LayerOp::Add | LayerOp::Concat => "at least 2",
                    LayerOp::Mul => "exactly 2",
                    _ => "exactly 1",
                };
                return Err(CnnError::BadInputArity {
                    layer: i,
                    found: l.inputs.len(),
                    expected,
                });
            }
            self.check_shapes(i, l)?;
        }
        let last_consumer = compute_last_consumers(&self.layers);
        Ok(CnnModel {
            name: self.name,
            input: self.input,
            layers: self.layers,
            last_consumer,
        })
    }

    fn shape_of_at(&self, src: Src) -> TensorShape {
        self.shape_of(src)
    }

    fn check_shapes(&self, i: usize, l: &Layer) -> Result<(), CnnError> {
        let mismatch = |detail: String| CnnError::ShapeMismatch { layer: i, detail };
        match l.op {
            LayerOp::Conv(spec) => {
                let src = self.shape_of_at(l.inputs[0]);
                if src != l.ifm {
                    return Err(mismatch(format!("ifm {} != source {}", l.ifm, src)));
                }
                let (oh, ow) = spec.out_spatial(src.height, src.width);
                if (l.ofm.height, l.ofm.width) != (oh, ow) {
                    return Err(mismatch(format!(
                        "ofm spatial {}x{} != derived {oh}x{ow}",
                        l.ofm.height, l.ofm.width
                    )));
                }
                if spec.depthwise && l.ofm.channels != src.channels {
                    return Err(mismatch(
                        "depthwise output channels differ from input".into(),
                    ));
                }
            }
            LayerOp::Pool(spec) => {
                let src = self.shape_of_at(l.inputs[0]);
                let (oh, ow) = spec.out_spatial(src.height, src.width);
                if l.ofm != TensorShape::new(src.channels, oh, ow) {
                    return Err(mismatch("pool output shape inconsistent".into()));
                }
            }
            LayerOp::Add => {
                for &s in &l.inputs {
                    let shape = self.shape_of_at(s);
                    if shape != l.ifm {
                        return Err(mismatch(format!(
                            "add operand {shape} differs from {}",
                            l.ifm
                        )));
                    }
                }
            }
            LayerOp::Concat => {
                let channels: u32 = l.inputs.iter().map(|&s| self.shape_of_at(s).channels).sum();
                if channels != l.ofm.channels {
                    return Err(mismatch("concat channel sum mismatch".into()));
                }
                for &s in &l.inputs {
                    let shape = self.shape_of_at(s);
                    if (shape.height, shape.width) != (l.ofm.height, l.ofm.width) {
                        return Err(mismatch("concat spatial mismatch".into()));
                    }
                }
            }
            LayerOp::Mul => {
                let main = self.shape_of_at(l.inputs[0]);
                let gate = self.shape_of_at(l.inputs[1]);
                if main != l.ifm || main != l.ofm {
                    return Err(mismatch("mul output must match its main input".into()));
                }
                if gate.channels != main.channels {
                    return Err(mismatch("mul gate channel mismatch".into()));
                }
                let gate_ok = (gate.height, gate.width) == (1, 1)
                    || (gate.height, gate.width) == (main.height, main.width);
                if !gate_ok {
                    return Err(mismatch("mul gate must be 1x1 or same spatial".into()));
                }
            }
            LayerOp::Dense { inputs, .. } => {
                let src = self.shape_of_at(l.inputs[0]);
                if src.elements() != inputs as u64 {
                    return Err(mismatch(format!(
                        "dense inputs {inputs} != source elements {}",
                        src.elements()
                    )));
                }
            }
        }
        Ok(())
    }
}

fn compute_last_consumers(layers: &[Layer]) -> Vec<Option<usize>> {
    let mut last = vec![None; layers.len()];
    for (i, l) in layers.iter().enumerate() {
        for src in &l.inputs {
            if let Src::Layer(id) = src {
                last[id.0] = Some(i);
            }
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Padding;

    fn chain() -> ModelBuilder {
        let mut b = ModelBuilder::new("chain", TensorShape::new(3, 32, 32));
        b.conv("c1", ConvSpec::standard(3, 1, Padding::same(3, 3)), 8, 0);
        b.conv("c2", ConvSpec::standard(3, 2, Padding::same(3, 3)), 16, 0);
        b
    }

    #[test]
    fn builder_chains_shapes() {
        let m = chain().finish().unwrap();
        assert_eq!(m.layers()[0].ifm, TensorShape::new(3, 32, 32));
        assert_eq!(m.layers()[0].ofm, TensorShape::new(8, 32, 32));
        assert_eq!(m.layers()[1].ofm, TensorShape::new(16, 16, 16));
    }

    #[test]
    fn empty_model_rejected() {
        let b = ModelBuilder::new("empty", TensorShape::new(3, 8, 8));
        assert_eq!(b.finish().unwrap_err(), CnnError::EmptyModel);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = ModelBuilder::new("dup", TensorShape::new(3, 8, 8));
        b.conv("x", ConvSpec::pointwise(1), 4, 0);
        b.conv("x", ConvSpec::pointwise(1), 4, 0);
        assert!(matches!(b.finish(), Err(CnnError::DuplicateName(_))));
    }

    #[test]
    fn residual_extends_liveness() {
        // x -> c1 -> c2 -> add(c2, c1's input source x=c0) pattern:
        // c0 -> c1 -> c2, add(c2, c0); next conv consumes add.
        let mut b = ModelBuilder::new("res", TensorShape::new(3, 16, 16));
        let c0 = b.conv("c0", ConvSpec::pointwise(1), 8, 0);
        let _c1 = b.conv("c1", ConvSpec::standard(3, 1, Padding::same(3, 3)), 8, 0);
        let c2 = b.conv("c2", ConvSpec::pointwise(1), 8, 0);
        let s = b.add("add", &[Src::Layer(c2), Src::Layer(c0)]);
        let _c3 = b.conv_from("c3", ConvSpec::pointwise(1), 8, Src::Layer(s), 0);
        let m = b.finish().unwrap();

        // While c1 executes, c0's output must stay live for the add
        // (c0 is also c1's direct input, so it is in the IFM term, not extra);
        // while c2 executes, c0 is extra-live (not a direct input of c2).
        let c1_id = LayerId(1);
        let c2_id = LayerId(2);
        assert_eq!(m.extra_live_elements(c1_id), 0); // c0 is direct input of c1
        assert_eq!(m.extra_live_elements(c2_id), 8 * 16 * 16); // c0 held for add
                                                               // Working set of c2 = ifm + ofm + held copy.
        assert_eq!(m.fm_working_set(c2_id), (8 + 8 + 8) * 16 * 16);
    }

    #[test]
    fn concat_grows_channels() {
        let mut b = ModelBuilder::new("cat", TensorShape::new(4, 8, 8));
        let a = b.conv("a", ConvSpec::pointwise(1), 4, 0);
        let c = b.conv("b", ConvSpec::pointwise(1), 6, 0);
        let cat = b.concat("cat", &[Src::Layer(a), Src::Layer(c)]);
        let m = b.finish().unwrap();
        assert_eq!(m.layer(cat).ofm.channels, 10);
    }

    #[test]
    fn add_shape_mismatch_rejected() {
        let mut b = ModelBuilder::new("bad", TensorShape::new(3, 8, 8));
        let a = b.conv("a", ConvSpec::pointwise(1), 4, 0);
        let c = b.conv("b", ConvSpec::pointwise(1), 6, 0);
        b.add("add", &[Src::Layer(a), Src::Layer(c)]);
        assert!(matches!(b.finish(), Err(CnnError::ShapeMismatch { .. })));
    }

    #[test]
    fn conv_view_indexes_convs_only() {
        let mut b = chain();
        b.pool("p", PoolSpec::max(2, 2, Padding::valid()));
        b.conv("c3", ConvSpec::pointwise(1), 32, 0);
        let m = b.finish().unwrap();
        let view = m.conv_view();
        assert_eq!(view.len(), 3);
        assert_eq!(view[0].name, "c1");
        assert_eq!(view[2].name, "c3");
        assert_eq!(view[2].index, 2);
        // The pool halves spatial dims feeding c3.
        assert_eq!(view[2].ifm, TensorShape::new(16, 8, 8));
    }

    #[test]
    fn stats_aggregate() {
        let m = chain().finish().unwrap();
        let s = m.stats();
        assert_eq!(s.conv_layers, 2);
        assert_eq!(s.conv_weights, 8 * 3 * 9 + 16 * 8 * 9);
        assert_eq!(s.total_params, s.conv_weights);
        assert!(s.conv_macs > 0);
        assert!(s.max_fm_working_set > 0);
    }

    #[test]
    fn dense_after_global_pool() {
        let mut b = chain();
        b.pool("gap", PoolSpec::global_avg());
        b.dense("fc", 10, 10);
        let m = b.finish().unwrap();
        let fc = m.layers().last().unwrap();
        assert_eq!(fc.weight_count(), 16 * 10);
        assert_eq!(fc.param_count(), 16 * 10 + 10);
    }
}
