//! Error type for CNN model construction and validation.

use std::error::Error;
use std::fmt;

/// Error produced when building or validating a [`CnnModel`](crate::CnnModel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CnnError {
    /// The model contains no layers.
    EmptyModel,
    /// A layer references a source that does not precede it.
    ForwardReference {
        /// The offending layer's index.
        layer: usize,
        /// The referenced (non-preceding) layer index.
        source: usize,
    },
    /// A layer has the wrong number of inputs for its operator.
    BadInputArity {
        /// The offending layer's index.
        layer: usize,
        /// Inputs found.
        found: usize,
        /// Short description of what the operator expects.
        expected: &'static str,
    },
    /// Declared shapes are inconsistent with the operator or its sources.
    ShapeMismatch {
        /// The offending layer's index.
        layer: usize,
        /// Explanation of the inconsistency.
        detail: String,
    },
    /// Two layers share a name.
    DuplicateName(String),
}

impl fmt::Display for CnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyModel => write!(f, "model has no layers"),
            Self::ForwardReference { layer, source } => {
                write!(f, "layer {layer} references non-preceding layer {source}")
            }
            Self::BadInputArity {
                layer,
                found,
                expected,
            } => {
                write!(f, "layer {layer} has {found} inputs, expected {expected}")
            }
            Self::ShapeMismatch { layer, detail } => {
                write!(f, "layer {layer} shape mismatch: {detail}")
            }
            Self::DuplicateName(name) => write!(f, "duplicate layer name `{name}`"),
        }
    }
}

impl Error for CnnError {}
