//! Energy estimation on top of an evaluation — an extension of the
//! paper's model.
//!
//! The paper motivates buffer and access minimization with the "time and
//! energy costly off-chip access" (§I); this module quantifies that with
//! the standard accelerator energy decomposition: MAC switching energy,
//! on-chip buffer traffic, and off-chip DRAM traffic, plus static power
//! over the runtime. Default coefficients follow the well-known 45 nm
//! figures scaled to a modern FPGA process (DRAM ≈ two orders of
//! magnitude costlier per byte than on-chip SRAM).

use crate::quantity::{Bytes, Joules, Macs};
use crate::report::{EvalSummary, Evaluation};

/// Energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per MAC operation, in picojoules.
    pub pj_per_mac: f64,
    /// Energy per on-chip buffer byte moved, in picojoules.
    pub pj_per_onchip_byte: f64,
    /// Energy per off-chip DRAM byte moved, in picojoules.
    pub pj_per_dram_byte: f64,
    /// Static (leakage + clocking) power, in watts.
    pub static_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            pj_per_mac: 2.0,
            pj_per_onchip_byte: 6.0,
            pj_per_dram_byte: 650.0,
            static_w: 2.5,
        }
    }
}

/// Energy estimate for one inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// MAC switching energy.
    pub compute_j: Joules,
    /// On-chip buffer movement energy (approximated as one read and one
    /// write per useful MAC operand set).
    pub onchip_j: Joules,
    /// Off-chip DRAM energy.
    pub dram_j: Joules,
    /// Static energy over the inference latency.
    pub static_j: Joules,
}

impl EnergyEstimate {
    /// Total energy per inference.
    pub fn total_j(&self) -> Joules {
        self.compute_j + self.onchip_j + self.dram_j + self.static_j
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_j().millijoules()
    }

    /// Share of dynamic energy spent on DRAM traffic — the quantity the
    /// paper's access-minimization objective attacks.
    pub fn dram_share(&self) -> f64 {
        let dynamic = (self.compute_j + self.onchip_j + self.dram_j).get();
        if dynamic <= 0.0 {
            0.0
        } else {
            self.dram_j.get() / dynamic
        }
    }
}

impl EnergyModel {
    /// Estimates the energy of one inference from an evaluation.
    ///
    /// `total_macs` is the CNN's convolution MACs (from
    /// [`CnnModel::conv_macs`](mccm_cnn::CnnModel::conv_macs) or the
    /// built accelerator's conv view).
    pub fn estimate(&self, eval: &Evaluation, total_macs: Macs) -> EnergyEstimate {
        self.estimate_parts(total_macs, eval.offchip_bytes, eval.latency_s)
    }

    /// Estimates the energy of one inference from a lean [`EvalSummary`]
    /// — the fast-lane twin of [`Self::estimate`]. The summary carries
    /// its own MAC count, so big sweeps can rank on energy without ever
    /// materializing a full [`Evaluation`]. Bit-identical to
    /// `estimate(&evaluation, macs)` on the same design: both paths run
    /// [`Self::estimate_parts`] on the same three scalars.
    pub fn estimate_summary(&self, summary: &EvalSummary) -> EnergyEstimate {
        self.estimate_parts(summary.total_macs, summary.offchip_bytes, summary.latency_s)
    }

    /// The shared estimation core both lanes go through: MAC count,
    /// off-chip bytes, and latency fully determine the estimate.
    pub fn estimate_parts(
        &self,
        total_macs: Macs,
        offchip_bytes: Bytes,
        latency_s: f64,
    ) -> EnergyEstimate {
        // Each MAC reads two operands and accumulates locally; partial
        // sums and reuse keep on-chip traffic near 2 bytes/MAC at 8-bit.
        let onchip_bytes = total_macs.traffic_at(2);
        EnergyEstimate {
            compute_j: Joules::new(total_macs.as_f64() * self.pj_per_mac * 1e-12),
            onchip_j: Joules::new(onchip_bytes.as_f64() * self.pj_per_onchip_byte * 1e-12),
            dram_j: Joules::new(offchip_bytes.as_f64() * self.pj_per_dram_byte * 1e-12),
            static_j: Joules::new(self.static_w * latency_s),
        }
    }

    /// Energy efficiency at steady state, in GOPS/W (2 ops per MAC).
    ///
    /// GOPS/W equals operations per nanojoule: at steady state, static
    /// power amortizes over the initiation interval rather than the full
    /// latency.
    pub fn efficiency_gops_per_w(&self, eval: &Evaluation, total_macs: Macs) -> f64 {
        let e = self.estimate(eval, total_macs);
        let ii = 1.0 / eval.throughput_fps.max(1e-12);
        let per_inference_j = (e.compute_j + e.onchip_j + e.dram_j).get() + self.static_w * ii;
        let ops = 2.0 * total_macs.as_f64();
        ops / per_inference_j / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_arch::{templates, MultipleCeBuilder};
    use mccm_cnn::zoo;
    use mccm_fpga::FpgaBoard;

    fn eval_for(arch: templates::Architecture) -> (Evaluation, Macs) {
        let m = zoo::resnet50();
        let b = MultipleCeBuilder::new(&m, &FpgaBoard::zc706());
        let acc = b.build(&arch.instantiate(&m, 4).unwrap()).unwrap();
        (crate::CostModel::evaluate(&acc), Macs::new(m.conv_macs()))
    }

    #[test]
    fn energy_components_positive_and_sum() {
        let (eval, macs) = eval_for(templates::Architecture::Hybrid);
        let e = EnergyModel::default().estimate(&eval, macs);
        assert!(e.compute_j > Joules::ZERO && e.onchip_j > Joules::ZERO);
        assert!(e.dram_j > Joules::ZERO && e.static_j > Joules::ZERO);
        let parts = e.compute_j + e.onchip_j + e.dram_j + e.static_j;
        assert!((e.total_j().get() - parts.get()).abs() < 1e-15);
        // ResNet-50 at 8-bit on an FPGA: single-digit millijoule dynamic
        // energy, sub-second latency -> total in the 1-100 mJ band.
        assert!(
            e.total_mj() > 1.0 && e.total_mj() < 1000.0,
            "{} mJ",
            e.total_mj()
        );
    }

    #[test]
    fn access_heavy_designs_pay_more_dram_energy() {
        let (seg, macs) = eval_for(templates::Architecture::Hybrid);
        let (rr, _) = eval_for(templates::Architecture::SegmentedRr);
        let m = EnergyModel::default();
        let e_seg = m.estimate(&seg, macs);
        let e_rr = m.estimate(&rr, macs);
        // SegmentedRR moves ~5x the bytes on ZC706 -> more DRAM energy and
        // a larger DRAM share.
        assert!(e_rr.dram_j.get() > 2.0 * e_seg.dram_j.get());
        assert!(e_rr.dram_share() > e_seg.dram_share());
    }

    #[test]
    fn zero_coefficients_zero_energy() {
        let (eval, macs) = eval_for(templates::Architecture::Segmented);
        let m = EnergyModel {
            pj_per_mac: 0.0,
            pj_per_onchip_byte: 0.0,
            pj_per_dram_byte: 0.0,
            static_w: 0.0,
        };
        assert_eq!(m.estimate(&eval, macs).total_j(), Joules::ZERO);
    }

    #[test]
    fn summary_estimate_matches_full_estimate_bitwise() {
        // The fast-lane energy path must agree with the rich-lane path to
        // the bit: both go through estimate_parts on the same scalars, and
        // the summary's MAC count equals the CNN's conv_macs.
        for arch in templates::Architecture::ALL {
            let (eval, macs) = eval_for(arch);
            assert_eq!(eval.total_macs, macs);
            let m = EnergyModel::default();
            let full = m.estimate(&eval, macs);
            let fast = m.estimate_summary(&eval.summary());
            assert_eq!(full, fast, "{arch:?}");
            assert_eq!(
                full.total_j().get().to_bits(),
                fast.total_j().get().to_bits()
            );
        }
    }

    #[test]
    fn efficiency_is_finite_and_positive() {
        let (eval, macs) = eval_for(templates::Architecture::Hybrid);
        let gops_w = EnergyModel::default().efficiency_gops_per_w(&eval, macs);
        assert!(gops_w.is_finite() && gops_w > 0.0);
        // FPGA CNN accelerators land in the 10-1000 GOPS/W range.
        assert!(gops_w > 1.0 && gops_w < 10_000.0, "{gops_w} GOPS/W");
    }
}
