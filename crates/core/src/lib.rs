//! MCCM — the Multiple-CE accelerator analytical Cost Model (§IV of the
//! paper).
//!
//! Given a [`BuiltAccelerator`](mccm_arch::BuiltAccelerator) (a CNN mapped
//! onto compute engines by `mccm-arch`), [`CostModel::evaluate`] estimates
//! in microseconds what synthesis would take hours to measure: end-to-end
//! latency, steady-state throughput, the on-chip buffer requirement, and
//! off-chip accesses — plus the fine-grained breakdowns behind the paper's
//! bottleneck analyses (per-segment compute/memory time, PE utilization,
//! and weights-vs-FMs traffic splits).
//!
//! ```
//! use mccm_arch::{templates, MultipleCeBuilder};
//! use mccm_cnn::zoo;
//! use mccm_core::{CostModel, Metric};
//! use mccm_fpga::FpgaBoard;
//!
//! # fn main() -> Result<(), mccm_arch::ArchError> {
//! let model = zoo::mobilenet_v2();
//! let builder = MultipleCeBuilder::new(&model, &FpgaBoard::zc706());
//! let acc = builder.build(&templates::hybrid(&model, 4)?)?;
//! let eval = CostModel::evaluate(&acc);
//! println!("{eval}");
//! assert!(Metric::Throughput.value(&eval) > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod accuracy;
pub mod cancel;
mod config;
pub mod energy;
mod metrics;
mod model;
/// Dimensional-safety newtypes ([`quantity::Cycles`],
/// [`quantity::Bytes`], [`quantity::Macs`], …) used by every
/// model output — re-exported from the bottom-of-workspace
/// `mccm-quantity` crate so `mccm-arch` can share the same types.
pub mod quantity {
    pub use mccm_quantity::*;
}
mod report;

pub use accuracy::{accuracy_pct, AccuracyRecord, AccuracySummary};
pub use cancel::CancelToken;
pub use config::{ConfigError, ModelConfig, PipelineLatencyMode};
pub use energy::{EnergyEstimate, EnergyModel};
pub use metrics::{Metric, MetricSource};
pub use model::{CostModel, DesignCoupling, EvalScratch, SegmentCost};
pub use quantity::{Bandwidth, Bytes, Cycles, Joules, Macs, Pes, Throughput};
pub use report::{CeReport, EvalSummary, Evaluation, LayerReport, SegmentReport, SpillPolicy};
