//! Cooperative cancellation for long-running searches.
//!
//! A [`CancelToken`] is a shared flag a *controller* (a serving layer's
//! deadline watchdog, a Ctrl-C handler, a test) sets once and a *worker*
//! polls at its natural checkpoints — generation boundaries in the
//! `mccm-dse` optimizer, attempt boundaries in the samplers, cell
//! boundaries in the baseline sweeps, event-loop slices in the
//! `mccm-sim` simulator. Cancellation is advisory and monotonic: once
//! set it never resets, and a worker that observes it stops early and
//! returns the (honestly labelled) partial result it has instead of an
//! error.
//!
//! The token deliberately knows nothing about *time*: it is a plain
//! atomic flag with no deadline arithmetic, so the model crates' outputs
//! stay a pure function of their inputs (the workspace wall-clock lint
//! bans `Instant` here). Whoever owns a wall clock — the serve layer —
//! arms a timer and calls [`CancelToken::cancel`] when it expires.
//!
//! An un-fired token is free apart from one relaxed atomic load per
//! checkpoint, and a never-cancelled run takes exactly the code path a
//! token-less run takes — the worker-count bit-identity contract of the
//! `par_*` entry points is untouched.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, monotonic cancellation flag (see the module docs).
///
/// Clones share the flag: cancelling any clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`Self::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let twin = token.clone();
        assert!(!token.is_cancelled());
        assert!(!twin.is_cancelled());
        twin.cancel();
        assert!(token.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(twin.is_cancelled());
    }

    #[test]
    fn token_is_visible_across_threads() {
        let token = CancelToken::new();
        std::thread::scope(|s| {
            let t = token.clone();
            s.spawn(move || t.cancel());
        });
        assert!(token.is_cancelled());
    }
}
