//! Evaluation outputs: end-to-end metrics plus the fine-grained breakdowns
//! behind the paper's Use Case 2 (Figs. 6, 7, 9).
//!
//! Every discrete quantity in these records is a typed
//! [`quantity`](crate::quantity) newtype — [`Bytes`], [`Macs`],
//! [`Cycles`], [`Pes`] — so a traffic volume cannot silently add to a
//! cycle count anywhere downstream. Continuous measurements (seconds,
//! frames/s, fractions) stay `f64`: their unit is part of the field name
//! and they participate in genuinely mixed floating-point expressions.

use std::fmt;

use crate::quantity::{Bytes, Cycles, Macs, Pes, Throughput};

/// Off-chip spill policy chosen for a layer by Eq. (6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillPolicy {
    /// Everything needed stays on-chip; weights stream once.
    #[default]
    None,
    /// OFMs don't fit: streamed out once; IFMs/weights read once.
    OutputSpill,
    /// Output-stationary, locally input-stationary: each IFM element
    /// loaded once, weights re-loaded per IFM-buffer pass.
    LocalInputStationary,
    /// Output-stationary, locally weight-stationary: each weight loaded
    /// once, IFMs re-loaded per weight-buffer pass.
    LocalWeightStationary,
    /// Depth-first fused group member: intermediate FMs between the
    /// group's layers stay in on-chip line buffers, so the layer pays no
    /// FM traffic except a possible IFM load at the group's entry (first
    /// layer) or OFM store at its exit (last layer).
    Fused,
}

impl fmt::Display for SpillPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::None => "on-chip",
            Self::OutputSpill => "OFM-spill",
            Self::LocalInputStationary => "OS-IS",
            Self::LocalWeightStationary => "OS-WS",
            Self::Fused => "fused",
        };
        f.write_str(s)
    }
}

/// Per-layer evaluation record.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Conv-layer index.
    pub layer: usize,
    /// CE that processed it.
    pub ce: usize,
    /// Eq. (1) compute cycles.
    pub compute_cycles: Cycles,
    /// Off-chip weight traffic (loads only; weights are never written
    /// back).
    pub weight_traffic: Bytes,
    /// Off-chip feature-map loads.
    pub fm_load_traffic: Bytes,
    /// Off-chip feature-map stores.
    pub fm_store_traffic: Bytes,
    /// Spill policy chosen by Eq. (6) (single-CE layers) or `None`.
    pub policy: SpillPolicy,
    /// PE utilization on this layer.
    pub utilization: f64,
}

impl LayerReport {
    /// Off-chip feature-map traffic (loads + stores).
    pub fn fm_traffic(&self) -> Bytes {
        self.fm_load_traffic + self.fm_store_traffic
    }

    /// Total off-chip traffic of the layer.
    pub fn traffic(&self) -> Bytes {
        self.weight_traffic + self.fm_traffic()
    }
}

/// Per-segment evaluation record (the unit of Figs. 6 and 9).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentReport {
    /// Segment index in execution order.
    pub index: usize,
    /// First conv-layer index (zero-based, inclusive).
    pub first: usize,
    /// Last conv-layer index (zero-based, inclusive).
    pub last: usize,
    /// CEs executing this segment.
    pub ces: Vec<usize>,
    /// Pure compute time (seconds), memory stalls excluded.
    pub compute_s: f64,
    /// Off-chip memory access time (seconds).
    pub memory_s: f64,
    /// Contribution to end-to-end latency (seconds): per-tile/per-layer
    /// `max(compute, memory)` accumulated.
    pub time_s: f64,
    /// Off-chip weight traffic.
    pub weight_traffic: Bytes,
    /// Off-chip feature-map traffic.
    pub fm_traffic: Bytes,
    /// On-chip buffer requirement attributed to this segment: its
    /// executor's Eq. (4)/(5) term plus its outgoing handoff buffer.
    pub buffer_req_bytes: Bytes,
    /// MAC-weighted PE utilization of the segment's engines over the
    /// segment's runtime.
    pub utilization: f64,
}

impl SegmentReport {
    /// Total off-chip traffic of the segment.
    pub fn traffic(&self) -> Bytes {
        self.weight_traffic + self.fm_traffic
    }

    /// PE underutilization (1 − utilization), the quantity of Fig. 9b.
    pub fn underutilization(&self) -> f64 {
        1.0 - self.utilization
    }

    /// Fraction of segment time spent stalled on memory.
    pub fn memory_stall_fraction(&self) -> f64 {
        if self.time_s <= 0.0 {
            0.0
        } else {
            ((self.time_s - self.compute_s) / self.time_s).max(0.0)
        }
    }
}

/// Per-engine evaluation record.
#[derive(Debug, Clone, PartialEq)]
pub struct CeReport {
    /// CE id.
    pub ce: usize,
    /// Allocated PEs.
    pub pes: Pes,
    /// Busy time over one inference (seconds).
    pub busy_s: f64,
    /// MAC-weighted utilization while busy.
    pub utilization: f64,
}

/// Complete evaluation of one accelerator design: the four paper metrics
/// plus fine-grained breakdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Accelerator notation (`{L1-L4: CE1, …}`).
    pub notation: String,
    /// CNN name.
    pub model_name: String,
    /// Board name.
    pub board_name: String,
    /// Number of CEs.
    pub ce_count: usize,
    /// Total convolution MACs of the CNN per inference — the compute-side
    /// input of the energy model (identical for every design of the same
    /// CNN).
    pub total_macs: Macs,
    /// End-to-end single-input latency in seconds.
    pub latency_s: f64,
    /// Steady-state throughput in frames per second.
    pub throughput_fps: f64,
    /// On-chip buffer requirement to guarantee the design's minimum
    /// off-chip accesses (Eqs. 4/5/8) — may exceed the board's BRAM,
    /// exactly as in the paper's Fig. 8.
    pub buffer_req_bytes: Bytes,
    /// On-chip bytes actually granted by the builder's plan (≤ BRAM).
    pub buffer_alloc_bytes: Bytes,
    /// Off-chip traffic per inference (with the granted buffers).
    pub offchip_bytes: Bytes,
    /// Weight portion of `offchip_bytes`.
    pub offchip_weight_bytes: Bytes,
    /// Feature-map portion of `offchip_bytes`.
    pub offchip_fm_bytes: Bytes,
    /// Fraction of end-to-end time the engines stall on memory (§V-D's
    /// "29% of the overall execution time, CEs are idle").
    pub memory_stall_fraction: f64,
    /// Per-segment breakdown.
    pub segments: Vec<SegmentReport>,
    /// Per-engine breakdown.
    pub ces: Vec<CeReport>,
    /// Per-layer breakdown.
    pub layers: Vec<LayerReport>,
}

/// A lean, metrics-only view of an [`Evaluation`]: the design's notation
/// plus the scalar end-to-end metrics, without the per-segment /
/// per-engine / per-layer breakdown vectors.
///
/// Big design-space sweeps accumulate one record per evaluated design;
/// carrying full [`Evaluation`]s means cloning (and keeping alive) three
/// heap vectors per design. A 100k-design sweep only needs the scalars,
/// so workers convert each evaluation with [`Evaluation::summary`] and
/// drop the heavy breakdowns immediately.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSummary {
    /// Accelerator notation (`{L1-L4: CE1, …}`) identifying the design.
    pub notation: String,
    /// Number of CEs.
    pub ce_count: usize,
    /// Total convolution MACs of the CNN per inference (energy-model
    /// input, see [`Evaluation::total_macs`]).
    pub total_macs: Macs,
    /// End-to-end single-input latency in seconds.
    pub latency_s: f64,
    /// Steady-state throughput in frames per second.
    pub throughput_fps: f64,
    /// On-chip buffer requirement (Eqs. 4/5/8).
    pub buffer_req_bytes: Bytes,
    /// On-chip bytes actually granted by the builder's plan (≤ BRAM).
    pub buffer_alloc_bytes: Bytes,
    /// Off-chip traffic per inference.
    pub offchip_bytes: Bytes,
    /// Weight portion of `offchip_bytes`.
    pub offchip_weight_bytes: Bytes,
    /// Feature-map portion of `offchip_bytes`.
    pub offchip_fm_bytes: Bytes,
    /// Fraction of end-to-end time the engines stall on memory.
    pub memory_stall_fraction: f64,
}

impl EvalSummary {
    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_s * 1e3
    }

    /// Steady-state throughput as a typed rate.
    pub fn throughput(&self) -> Throughput {
        Throughput::new(self.throughput_fps)
    }

    /// On-chip buffer traffic the energy model charges per inference:
    /// each MAC reads two operands and accumulates locally; partial sums
    /// and reuse keep the traffic near 2 bytes/MAC at 8-bit.
    pub fn onchip_traffic_bytes(&self) -> Bytes {
        self.total_macs.traffic_at(2)
    }

    /// Off-chip traffic in MiB.
    pub fn offchip_mib(&self) -> f64 {
        self.offchip_bytes.mib()
    }

    /// Buffer requirement in MiB.
    pub fn buffer_mib(&self) -> f64 {
        self.buffer_req_bytes.mib()
    }
}

impl fmt::Display for EvalSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} CEs]: latency {:.2} ms, {:.1} FPS, buffers {:.2} MiB, off-chip {:.1} MiB",
            self.notation,
            self.ce_count,
            self.latency_ms(),
            self.throughput_fps,
            self.buffer_mib(),
            self.offchip_mib()
        )
    }
}

impl Evaluation {
    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_s * 1e3
    }

    /// Steady-state throughput as a typed rate.
    pub fn throughput(&self) -> Throughput {
        Throughput::new(self.throughput_fps)
    }

    /// On-chip buffer traffic the energy model charges per inference
    /// (see [`EvalSummary::onchip_traffic_bytes`]).
    pub fn onchip_traffic_bytes(&self) -> Bytes {
        self.total_macs.traffic_at(2)
    }

    /// The metrics-only view of this evaluation (drops the per-segment /
    /// per-engine / per-layer breakdowns).
    pub fn summary(&self) -> EvalSummary {
        EvalSummary {
            notation: self.notation.clone(),
            ce_count: self.ce_count,
            total_macs: self.total_macs,
            latency_s: self.latency_s,
            throughput_fps: self.throughput_fps,
            buffer_req_bytes: self.buffer_req_bytes,
            buffer_alloc_bytes: self.buffer_alloc_bytes,
            offchip_bytes: self.offchip_bytes,
            offchip_weight_bytes: self.offchip_weight_bytes,
            offchip_fm_bytes: self.offchip_fm_bytes,
            memory_stall_fraction: self.memory_stall_fraction,
        }
    }

    /// Off-chip traffic in MiB.
    pub fn offchip_mib(&self) -> f64 {
        self.offchip_bytes.mib()
    }

    /// Buffer requirement in MiB.
    pub fn buffer_mib(&self) -> f64 {
        self.buffer_req_bytes.mib()
    }

    /// Latency of processing a batch of `batch` inputs: the first input's
    /// end-to-end latency plus one steady-state initiation interval per
    /// further input — the paper's second latency definition (§IV-A1),
    /// which it sets aside because batching is not always an option.
    pub fn batch_latency_s(&self, batch: usize) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let extra = to_f64_lossless(batch) - 1.0;
        self.latency_s + extra / self.throughput_fps.max(1e-12)
    }

    /// Amortized per-input latency at batch size `batch`.
    pub fn amortized_latency_s(&self, batch: usize) -> f64 {
        if batch == 0 {
            0.0
        } else {
            self.batch_latency_s(batch) / to_f64_lossless(batch)
        }
    }

    /// Weight share of off-chip traffic in `[0, 1]` (Fig. 7).
    pub fn weight_traffic_share(&self) -> f64 {
        if self.offchip_bytes.is_zero() {
            0.0
        } else {
            self.offchip_weight_bytes.as_f64() / self.offchip_bytes.as_f64()
        }
    }
}

/// Batch sizes as `f64` — batch counts are small (≤ 2⁵³), so this is
/// exact; centralized so the cast-lint allow has a single audited site.
#[allow(clippy::cast_precision_loss)]
fn to_f64_lossless(batch: usize) -> f64 {
    batch as f64
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} [{} CEs]: latency {:.2} ms, {:.1} FPS, buffers {:.2} MiB, \
             off-chip {:.1} MiB",
            self.model_name,
            self.board_name,
            self.ce_count,
            self.latency_ms(),
            self.throughput_fps,
            self.buffer_mib(),
            self.offchip_mib()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_stub() -> Evaluation {
        Evaluation {
            notation: "{L1-Last: CE1}".into(),
            model_name: "m".into(),
            board_name: "b".into(),
            ce_count: 1,
            total_macs: Macs::new(1_000_000),
            latency_s: 0.010,
            throughput_fps: 100.0,
            buffer_req_bytes: Bytes::new(2 * 1024 * 1024),
            buffer_alloc_bytes: Bytes::new(1024 * 1024),
            offchip_bytes: Bytes::new(100),
            offchip_weight_bytes: Bytes::new(75),
            offchip_fm_bytes: Bytes::new(25),
            memory_stall_fraction: 0.1,
            segments: vec![],
            ces: vec![],
            layers: vec![],
        }
    }

    #[test]
    fn unit_conversions() {
        let e = eval_stub();
        assert!((e.latency_ms() - 10.0).abs() < 1e-12);
        assert!((e.buffer_mib() - 2.0).abs() < 1e-12);
        assert!((e.weight_traffic_share() - 0.75).abs() < 1e-12);
        assert_eq!(e.onchip_traffic_bytes(), Bytes::new(2_000_000));
        assert!((e.throughput().get() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn batch_latency_amortizes_toward_initiation_interval() {
        let e = eval_stub(); // 10 ms latency, 100 FPS -> II = 10 ms
        assert!((e.batch_latency_s(1) - 0.010).abs() < 1e-12);
        assert!((e.batch_latency_s(11) - 0.110).abs() < 1e-12);
        // Amortized latency approaches 1/throughput for large batches.
        assert!((e.amortized_latency_s(1000) - 0.01).abs() < 1e-4);
        assert_eq!(e.batch_latency_s(0), 0.0);
    }

    #[test]
    fn segment_derived_quantities() {
        let s = SegmentReport {
            index: 0,
            first: 0,
            last: 3,
            ces: vec![0],
            compute_s: 0.6,
            memory_s: 0.9,
            time_s: 1.0,
            weight_traffic: Bytes::new(10),
            fm_traffic: Bytes::new(30),
            buffer_req_bytes: Bytes::ZERO,
            utilization: 0.7,
        };
        assert_eq!(s.traffic(), Bytes::new(40));
        assert!((s.underutilization() - 0.3).abs() < 1e-12);
        assert!((s.memory_stall_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn layer_traffic_sums_typed_components() {
        let l = LayerReport {
            layer: 0,
            ce: 0,
            compute_cycles: Cycles::new(1000),
            weight_traffic: Bytes::new(7),
            fm_load_traffic: Bytes::new(5),
            fm_store_traffic: Bytes::new(3),
            policy: SpillPolicy::OutputSpill,
            utilization: 1.0,
        };
        assert_eq!(l.fm_traffic(), Bytes::new(8));
        assert_eq!(l.traffic(), Bytes::new(15));
    }

    #[test]
    fn display_contains_metrics() {
        let text = eval_stub().to_string();
        assert!(text.contains("100.0 FPS"));
        assert!(text.contains("10.00 ms"));
    }

    #[test]
    fn summary_keeps_scalars_and_drops_breakdowns() {
        let e = eval_stub();
        let s = e.summary();
        assert_eq!(s.notation, e.notation);
        assert_eq!(s.ce_count, e.ce_count);
        assert_eq!(s.buffer_req_bytes, e.buffer_req_bytes);
        assert!((s.latency_ms() - e.latency_ms()).abs() < 1e-12);
        assert!(s.to_string().contains("100.0 FPS"));
    }

    #[test]
    fn spill_policy_display() {
        assert_eq!(SpillPolicy::LocalWeightStationary.to_string(), "OS-WS");
        assert_eq!(SpillPolicy::default(), SpillPolicy::None);
    }
}
