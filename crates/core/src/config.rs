//! Cost-model configuration: evaluation-mode switches used by the
//! ablation studies, plus batch-latency semantics.

/// How pipelined-CEs block latency (Eq. 2) is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineLatencyMode {
    /// Asynchronous critical path of the row-dependency graph (default;
    /// matches FIFO-connected dataflow hardware — see DESIGN.md §2).
    #[default]
    CriticalPath,
    /// Literal lockstep stage sum: every stage waits for the slowest
    /// active engine. Kept for the ablation of this design choice; it
    /// over-serializes unbalanced rounds.
    LockstepStages,
}

/// Tunable evaluation parameters.
///
/// The defaults reproduce the paper's methodology; the alternatives feed
/// the ablation benches (`cargo run -p mccm-bench --bin ablation`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Pipelined-block latency evaluation mode.
    pub pipeline_latency: PipelineLatencyMode,
    /// Effective fraction of the board's off-chip bandwidth actually
    /// usable (DDR efficiency). 1.0 = nominal.
    pub bandwidth_derate: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self { pipeline_latency: PipelineLatencyMode::default(), bandwidth_derate: 1.0 }
    }
}

impl ModelConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches the pipelined-latency mode.
    #[must_use]
    pub fn with_pipeline_latency(mut self, mode: PipelineLatencyMode) -> Self {
        self.pipeline_latency = mode;
        self
    }

    /// Derates the off-chip bandwidth (0 < derate ≤ 1).
    ///
    /// # Panics
    ///
    /// Panics if `derate` is not in `(0, 1]`.
    #[must_use]
    pub fn with_bandwidth_derate(mut self, derate: f64) -> Self {
        assert!(derate > 0.0 && derate <= 1.0, "derate must be in (0, 1], got {derate}");
        self.bandwidth_derate = derate;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ModelConfig::default();
        assert_eq!(c.pipeline_latency, PipelineLatencyMode::CriticalPath);
        assert_eq!(c.bandwidth_derate, 1.0);
    }

    #[test]
    fn builders_chain() {
        let c = ModelConfig::new()
            .with_pipeline_latency(PipelineLatencyMode::LockstepStages)
            .with_bandwidth_derate(0.7);
        assert_eq!(c.pipeline_latency, PipelineLatencyMode::LockstepStages);
        assert!((c.bandwidth_derate - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "derate")]
    fn zero_derate_rejected() {
        let _ = ModelConfig::new().with_bandwidth_derate(0.0);
    }
}
