//! Cost-model configuration: evaluation-mode switches used by the
//! ablation studies, plus batch-latency semantics.

use std::error::Error;
use std::fmt;

/// Error produced when validating a [`ModelConfig`].
///
/// Carries the same `Display` + [`std::error::Error`] impls as the other
/// crates' error types, so a top-level error can wrap cost-model
/// configuration faults without stringifying them. The panicking
/// [`ModelConfig::with_bandwidth_derate`] builder remains for internal
/// callers with statically valid values; front ends use the `try_`
/// variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The bandwidth derate is outside `(0, 1]` (or not finite).
    BadBandwidthDerate {
        /// The rejected value.
        derate: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadBandwidthDerate { derate } => {
                write!(f, "bandwidth derate must be in (0, 1], got {derate}")
            }
        }
    }
}

impl Error for ConfigError {}

/// How pipelined-CEs block latency (Eq. 2) is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineLatencyMode {
    /// Asynchronous critical path of the row-dependency graph (default;
    /// matches FIFO-connected dataflow hardware — see DESIGN.md §2).
    #[default]
    CriticalPath,
    /// Literal lockstep stage sum: every stage waits for the slowest
    /// active engine. Kept for the ablation of this design choice; it
    /// over-serializes unbalanced rounds.
    LockstepStages,
}

/// Tunable evaluation parameters.
///
/// The defaults reproduce the paper's methodology; the alternatives feed
/// the ablation benches (`cargo run -p mccm-bench --bin ablation`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Pipelined-block latency evaluation mode.
    pub pipeline_latency: PipelineLatencyMode,
    /// Effective fraction of the board's off-chip bandwidth actually
    /// usable (DDR efficiency). 1.0 = nominal.
    pub bandwidth_derate: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            pipeline_latency: PipelineLatencyMode::default(),
            bandwidth_derate: 1.0,
        }
    }
}

impl ModelConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches the pipelined-latency mode.
    #[must_use]
    pub fn with_pipeline_latency(mut self, mode: PipelineLatencyMode) -> Self {
        self.pipeline_latency = mode;
        self
    }

    /// Derates the off-chip bandwidth (0 < derate ≤ 1).
    ///
    /// # Panics
    ///
    /// Panics if `derate` is not in `(0, 1]`.
    #[must_use]
    pub fn with_bandwidth_derate(self, derate: f64) -> Self {
        match self.try_with_bandwidth_derate(derate) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`Self::with_bandwidth_derate`] for
    /// machine-supplied values.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadBandwidthDerate`] when `derate` is not in
    /// `(0, 1]`.
    pub fn try_with_bandwidth_derate(mut self, derate: f64) -> Result<Self, ConfigError> {
        if !(derate > 0.0 && derate <= 1.0) {
            return Err(ConfigError::BadBandwidthDerate { derate });
        }
        self.bandwidth_derate = derate;
        Ok(self)
    }

    /// Checks the configuration as a whole (currently: the derate range).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.bandwidth_derate > 0.0 && self.bandwidth_derate <= 1.0) {
            return Err(ConfigError::BadBandwidthDerate {
                derate: self.bandwidth_derate,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ModelConfig::default();
        assert_eq!(c.pipeline_latency, PipelineLatencyMode::CriticalPath);
        assert_eq!(c.bandwidth_derate, 1.0);
    }

    #[test]
    fn builders_chain() {
        let c = ModelConfig::new()
            .with_pipeline_latency(PipelineLatencyMode::LockstepStages)
            .with_bandwidth_derate(0.7);
        assert_eq!(c.pipeline_latency, PipelineLatencyMode::LockstepStages);
        assert!((c.bandwidth_derate - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "derate")]
    fn zero_derate_rejected() {
        let _ = ModelConfig::new().with_bandwidth_derate(0.0);
    }

    #[test]
    fn try_derate_returns_typed_error() {
        for bad in [0.0, -1.0, 1.5, f64::NAN, f64::INFINITY] {
            match ModelConfig::new().try_with_bandwidth_derate(bad) {
                Err(ConfigError::BadBandwidthDerate { derate }) => {
                    assert!(derate.is_nan() == bad.is_nan() && (bad.is_nan() || derate == bad));
                }
                other => panic!("expected BadBandwidthDerate for {bad}, got {other:?}"),
            }
        }
        let ok = ModelConfig::new().try_with_bandwidth_derate(0.5).unwrap();
        assert!((ok.bandwidth_derate - 0.5).abs() < 1e-12);
        assert_eq!(ok.validate(), Ok(()));
        // The trait impls mccm::Error relies on.
        let err = ModelConfig::new()
            .try_with_bandwidth_derate(2.0)
            .unwrap_err();
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("derate"));
    }
}
