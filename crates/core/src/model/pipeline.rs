//! Pipelined-CEs block model: Eqs. (2), (3), (5), (7) with memory-access
//! time.
//!
//! The block processes its layers concurrently at tile granularity, one
//! OFM row per tile (Fig. 4b). Eq. (2) sums per-stage latencies; this
//! implementation evaluates the equivalent *asynchronous critical path*
//! of the row-dependency graph instead of a lockstep stage sum: FIFO-
//! connected engines do not barrier between tiles, so a layer's finish
//! time is bounded by (a) its own start plus its paced busy time and
//! (b) its producers' finish plus a trailing tile (see DESIGN.md §2 for
//! the equivalence discussion). Per Eq. (7), weights of layers whose
//! engine cannot hold them are re-streamed on every row tile; those
//! transfer times pace the rows, and the shared DMA channel lower-bounds
//! the round time by the total transferred bytes.

use mccm_arch::{BuiltAccelerator, CeRole};

use crate::config::PipelineLatencyMode;
use crate::model::single_ce::{mem_cycles, BlockOutcome};
use crate::report::{LayerReport, SpillPolicy};

/// Evaluates one pipelined round over layers `first..=last` running on
/// `ces[j] = ces[layer - first]`.
///
/// Returns a [`BlockOutcome`] whose `time_cycles` is the critical-path
/// round time, lower-bounded by the round's total DMA time and the
/// (double-buffered, TGPA-style) resident-weight prefetch.
#[allow(clippy::too_many_arguments)]
pub fn eval_pipelined_round(
    acc: &BuiltAccelerator,
    ces: &[usize],
    first: usize,
    last: usize,
    input_off_chip: bool,
    output_off_chip: bool,
    bpc: f64,
    mode: PipelineLatencyMode,
) -> BlockOutcome {
    let n = last - first + 1;
    debug_assert_eq!(ces.len(), n, "one CE per layer in a round");

    // Per-layer static data.
    let mut tile_lat = vec![0u64; n]; // compute cycles per row tile
    let mut n_tiles = vec![0u64; n];
    let mut resident = vec![false; n];
    let mut w_bytes = vec![0u64; n];
    let mut mem_bytes = vec![0u64; n]; // off-chip bytes streamed by the layer
    for j in 0..n {
        let l = first + j;
        let conv = &acc.convs[l];
        let ce = &acc.ces[ces[j]];
        debug_assert_eq!(ce.role, CeRole::Pipelined);
        let poh = ce.parallelism.dims[2].max(1).min(conv.ofm.height);
        n_tiles[j] = (conv.ofm.height as u64).div_ceil(poh as u64);
        tile_lat[j] = ce.parallelism.tile_latency_cycles(conv.dims, poh);
        w_bytes[j] = acc.weight_bytes(l);
        // Eq. (7): weights stay on-chip across the round's tiles iff the
        // engine's buffer (beyond its FM tiles) can hold them decompressed.
        resident[j] = acc.buffers.ce[ces[j]].weight_capacity() >= acc.weight_buffer_bytes(l);
        let mut bytes = if resident[j] { 0 } else { w_bytes[j] * n_tiles[j] };
        if j == 0 && input_off_chip {
            bytes += acc.ifm_bytes(l);
        }
        if j == n - 1 && output_off_chip {
            bytes += acc.ofm_bytes(l);
        }
        mem_bytes[j] = bytes;
    }

    // Per-row pacing including the layer's own streaming (weights per
    // tile, boundary rows), and total busy times.
    let eff_tile_lat: Vec<u64> = (0..n)
        .map(|j| tile_lat[j].max(mem_cycles(mem_bytes[j] / n_tiles[j].max(1), bpc)))
        .collect();
    let busy: Vec<u64> = (0..n).map(|j| n_tiles[j] * tile_lat[j]).collect();
    let busy_eff: Vec<u64> = (0..n).map(|j| n_tiles[j] * eff_tile_lat[j]).collect();

    // In-round producers (DAG edges resolved through pools/adds/concats by
    // `mccm-cnn`; producers before `first` sit in the segment's input
    // buffer and are always available).
    let in_round_producers: Vec<Vec<usize>> = (0..n)
        .map(|j| {
            acc.convs[first + j]
                .producers
                .iter()
                .filter(|&&p| p >= first && p < first + j)
                .map(|&p| p - first)
                .collect()
        })
        .collect();

    // Producer tiles layer j needs before its first tile: IFM rows for row
    // `poh-1` scaled to producer rows through any intermediate pooling.
    let first_need_tiles = |j: usize, p: usize| -> u64 {
        let conv = &acc.convs[first + j];
        let through = acc.ces[ces[j]].parallelism.dims[2].max(1).min(conv.ofm.height) - 1;
        let need = (through as u64 * conv.spec.stride.0 as u64 + conv.spec.kernel.0 as u64)
            .saturating_sub(conv.spec.padding.h as u64)
            .clamp(1, conv.ifm.height as u64);
        let prod_h = acc.convs[first + p].ofm.height as u64;
        let ifm_h = conv.ifm.height.max(1) as u64;
        let rows = ((need * prod_h).div_ceil(ifm_h)).min(prod_h);
        let p_poh = acc.ces[ces[p]].parallelism.dims[2].max(1) as u64;
        rows.div_ceil(p_poh).min(n_tiles[p])
    };

    // Critical path, computed twice: with memory pacing (timing) and
    // without (the pure-compute baseline reported for Fig. 6).
    let critical_path = |rate: &[u64]| -> (Vec<u64>, Vec<u64>) {
        let mut start = vec![0u64; n];
        let mut finish = vec![0u64; n];
        for j in 0..n {
            for &p in &in_round_producers[j] {
                start[j] = start[j].max(start[p] + first_need_tiles(j, p) * rate[p]);
            }
            finish[j] = start[j] + n_tiles[j] * rate[j];
            for &p in &in_round_producers[j] {
                // Trailing tile: the last rows wait for the producer's
                // final output.
                finish[j] = finish[j].max(finish[p] + rate[j]);
            }
        }
        (start, finish)
    };
    let (finish_eff, finish_pure) = match mode {
        PipelineLatencyMode::CriticalPath => {
            (critical_path(&eff_tile_lat).1, critical_path(&tile_lat).1)
        }
        PipelineLatencyMode::LockstepStages => {
            (lockstep_stages(&eff_tile_lat, &n_tiles, &in_round_producers, &first_need_tiles),
             lockstep_stages(&tile_lat, &n_tiles, &in_round_producers, &first_need_tiles))
        }
    };

    // Round weight load for resident layers: double-buffered against the
    // previous round, so only the excess beyond the round time is exposed.
    let resident_load_bytes: u64 =
        (0..n).filter(|&j| resident[j]).map(|j| w_bytes[j]).sum();
    let w_load_cycles = mem_cycles(resident_load_bytes, bpc);

    // The shared DMA channel serializes every stream in the round.
    let total_mem_cycles = mem_cycles(mem_bytes.iter().sum(), bpc) + w_load_cycles;

    let path = finish_eff.iter().copied().max().unwrap_or(0);
    let compute_cycles = finish_pure.iter().copied().max().unwrap_or(0);
    let time_cycles = path.max(total_mem_cycles).max(w_load_cycles);

    let mut layers = Vec::with_capacity(n);
    let mut useful_macs = 0u64;
    let mut busy_per_ce = Vec::with_capacity(n);
    for j in 0..n {
        let l = first + j;
        let conv = &acc.convs[l];
        useful_macs += conv.macs;
        busy_per_ce.push((ces[j], busy_eff[j]));
        let lw = if resident[j] { w_bytes[j] } else { w_bytes[j] * n_tiles[j] };
        let fm_load = if j == 0 && input_off_chip { acc.ifm_bytes(l) } else { 0 };
        let fm_store =
            if j == n - 1 && output_off_chip { acc.ofm_bytes(last) } else { 0 };
        layers.push(LayerReport {
            layer: l,
            ce: ces[j],
            compute_cycles: busy[j],
            weight_traffic: lw,
            fm_load_traffic: fm_load,
            fm_store_traffic: fm_store,
            policy: SpillPolicy::None,
            utilization: acc.ces[ces[j]].utilization(conv.dims),
        });
    }
    let weight_traffic: u64 = layers.iter().map(|l| l.weight_traffic).sum();
    let fm_traffic: u64 = layers.iter().map(|l| l.fm_traffic()).sum();

    BlockOutcome {
        time_cycles,
        compute_cycles,
        memory_cycles: total_mem_cycles,
        weight_traffic,
        fm_traffic,
        useful_macs,
        busy_per_ce,
        layers,
    }
}

/// Literal Eq. (2) evaluation: a global stage barrier per tile, each stage
/// as slow as its slowest active engine. A layer activates once its
/// producers have emitted its first-tile requirement and then produces one
/// tile per stage in which it is active. Kept for the ablation study.
fn lockstep_stages(
    rate: &[u64],
    n_tiles: &[u64],
    in_round_producers: &[Vec<usize>],
    first_need_tiles: &dyn Fn(usize, usize) -> u64,
) -> Vec<u64> {
    let n = rate.len();
    let mut produced = vec![0u64; n];
    let mut finish = vec![0u64; n];
    let mut elapsed = 0u64;
    let total: u64 = n_tiles.iter().sum();
    let mut guard = 0u64;
    while produced.iter().zip(n_tiles).any(|(&p, &t)| p < t) {
        guard += 1;
        if guard > 2 * total + 2 * n as u64 {
            break; // defensive; dependencies are acyclic so this is unreachable
        }
        let mut stage = 0u64;
        let mut active = Vec::new();
        for j in 0..n {
            if produced[j] >= n_tiles[j] {
                continue;
            }
            // Scale the first-tile requirement with progress: tile t needs
            // roughly first_need + t producer tiles.
            let ready = in_round_producers[j].iter().all(|&p| {
                let need = (first_need_tiles(j, p) + produced[j]).min(n_tiles[p]);
                produced[p] >= need
            });
            if ready {
                active.push(j);
                stage = stage.max(rate[j]);
            }
        }
        if active.is_empty() {
            break; // unreachable: the lowest unfinished layer is always ready
        }
        elapsed += stage;
        for j in active {
            produced[j] += 1;
            if produced[j] == n_tiles[j] {
                finish[j] = elapsed;
            }
        }
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_arch::{templates, MultipleCeBuilder};
    use mccm_cnn::zoo;
    use mccm_fpga::{FpgaBoard, MiB};

    fn head_acc(board: FpgaBoard, k: usize) -> BuiltAccelerator {
        let m = zoo::resnet50();
        let spec = templates::hybrid(&m, k).unwrap();
        MultipleCeBuilder::new(&m, &board).build(&spec).unwrap()
    }

    #[test]
    fn round_time_bounded_by_bottleneck_busy() {
        let acc = head_acc(FpgaBoard::zcu102(), 5);
        let ces = vec![0, 1, 2, 3];
        let o = eval_pipelined_round(&acc, &ces, 0, 3, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        // Latency at least the slowest CE's total busy time (Eq. 3 bound).
        let max_busy = o.busy_per_ce.iter().map(|&(_, b)| b).max().unwrap();
        assert!(o.time_cycles >= max_busy);
        // And the pure-compute path cannot exceed sequential execution.
        let sum_busy: u64 = o.layers.iter().map(|l| l.compute_cycles).sum();
        assert!(o.compute_cycles <= sum_busy);
    }

    #[test]
    fn pipeline_faster_than_sequential_execution() {
        // Row overlap: the critical path must beat executing the layers
        // back to back on their own engines.
        let acc = head_acc(FpgaBoard::zcu102(), 7);
        let ces: Vec<usize> = (0..6).collect();
        let o = eval_pipelined_round(&acc, &ces, 0, 5, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        let sequential: u64 = o.layers.iter().map(|l| l.compute_cycles).sum();
        assert!(
            o.compute_cycles < sequential,
            "pipelined {} vs sequential {sequential}",
            o.compute_cycles
        );
    }

    #[test]
    fn busy_counts_rows_times_tile_latency() {
        let acc = head_acc(FpgaBoard::zcu102(), 4);
        let ces = vec![0, 1, 2];
        let o = eval_pipelined_round(&acc, &ces, 0, 2, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        for (j, l) in o.layers.iter().enumerate() {
            let conv = &acc.convs[j];
            let poh = acc.ces[l.ce].parallelism.dims[2].max(1).min(conv.ofm.height);
            let tiles = (conv.ofm.height as u64).div_ceil(poh as u64);
            let lat = acc.ces[l.ce].parallelism.tile_latency_cycles(conv.dims, poh);
            assert_eq!(l.compute_cycles, tiles * lat, "layer {j}");
        }
    }

    #[test]
    fn weight_residency_controls_traffic() {
        // Generous BRAM: weights resident, each loaded once.
        let acc = head_acc(FpgaBoard::zcu102(), 5);
        let ces = vec![0, 1, 2, 3];
        let o = eval_pipelined_round(&acc, &ces, 0, 3, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        let w_once: u64 = (0..4).map(|l| acc.weight_bytes(l)).sum();
        assert_eq!(o.weight_traffic, w_once);

        // Tiny BRAM: weights streamed per row tile -> far more traffic.
        let tiny = FpgaBoard::new("tiny", 2520, MiB(0.05), 19.2);
        let acc = head_acc(tiny, 5);
        let o2 = eval_pipelined_round(&acc, &ces, 0, 3, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        assert!(o2.weight_traffic > w_once, "{} vs {w_once}", o2.weight_traffic);
    }

    #[test]
    fn io_traffic_charged_at_boundaries() {
        let acc = head_acc(FpgaBoard::zcu102(), 5);
        let ces = vec![0, 1, 2, 3];
        let both = eval_pipelined_round(&acc, &ces, 0, 3, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        let neither = eval_pipelined_round(&acc, &ces, 0, 3, false, false, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        assert_eq!(
            both.fm_traffic - neither.fm_traffic,
            acc.ifm_bytes(0) + acc.ofm_bytes(3)
        );
    }

    #[test]
    fn low_bandwidth_stalls_pipeline() {
        let slow = FpgaBoard::new("slow", 2520, MiB(0.05), 0.02);
        let acc = head_acc(slow, 5);
        let ces = vec![0, 1, 2, 3];
        let o = eval_pipelined_round(&acc, &ces, 0, 3, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        assert!(o.time_cycles > o.compute_cycles);
    }

    #[test]
    fn single_layer_round_works() {
        let acc = head_acc(FpgaBoard::zcu102(), 5);
        let o = eval_pipelined_round(&acc, &[0], 0, 0, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        assert_eq!(o.layers.len(), 1);
        assert!(o.time_cycles > 0);
    }

    #[test]
    fn strided_consumers_respect_dependencies() {
        // SegmentedRR on MobileNetV2 exercises stride-2 depthwise layers.
        let m = zoo::mobilenet_v2();
        let spec = templates::segmented_rr(&m, 4).unwrap();
        let acc = MultipleCeBuilder::new(&m, &FpgaBoard::zcu102()).build(&spec).unwrap();
        let o = eval_pipelined_round(&acc, &[0, 1, 2, 3], 0, 3, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
        assert!(o.useful_macs > 0);
        assert!(o.time_cycles >= o.busy_per_ce.iter().map(|&(_, b)| b).max().unwrap());
    }

    #[test]
    fn lockstep_mode_never_faster_than_critical_path() {
        // The lockstep stage barrier can only add serialization.
        let acc = head_acc(FpgaBoard::zcu102(), 7);
        let ces: Vec<usize> = (0..6).collect();
        let bpc = acc.board.bytes_per_cycle();
        let cp = eval_pipelined_round(
            &acc, &ces, 0, 5, true, true, bpc, PipelineLatencyMode::CriticalPath,
        );
        let ls = eval_pipelined_round(
            &acc, &ces, 0, 5, true, true, bpc, PipelineLatencyMode::LockstepStages,
        );
        assert!(ls.time_cycles >= cp.time_cycles, "{} vs {}", ls.time_cycles, cp.time_cycles);
        // Traffic is mode-independent.
        assert_eq!(ls.weight_traffic, cp.weight_traffic);
        assert_eq!(ls.fm_traffic, cp.fm_traffic);
    }

    #[test]
    fn residual_branch_rounds_use_dag_producers() {
        // Rounds spanning a ResNet block boundary include a projection conv
        // whose producer is the earlier block input, not the previous conv.
        let m = zoo::resnet50();
        let spec = templates::segmented_rr(&m, 8).unwrap();
        let acc = MultipleCeBuilder::new(&m, &FpgaBoard::zcu102()).build(&spec).unwrap();
        // Evaluate every round; the critical-path must stay finite and
        // bounded by the sequential sum.
        for seg in acc.segments.clone() {
            if let mccm_arch::Executor::PipelinedCes(ces) = &seg.executor {
                let o = eval_pipelined_round(&acc, ces, seg.first, seg.last, true, true, acc.board.bytes_per_cycle(), PipelineLatencyMode::CriticalPath);
                let seq: u64 = o.layers.iter().map(|l| l.compute_cycles).sum();
                assert!(o.compute_cycles <= seq + 1);
            }
        }
    }
}
