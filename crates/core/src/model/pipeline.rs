//! Pipelined-CEs block model: Eqs. (2), (3), (5), (7) with memory-access
//! time.
//!
//! The block processes its layers concurrently at tile granularity, one
//! OFM row per tile (Fig. 4b). Eq. (2) sums per-stage latencies; this
//! implementation evaluates the equivalent *asynchronous critical path*
//! of the row-dependency graph instead of a lockstep stage sum: FIFO-
//! connected engines do not barrier between tiles, so a layer's finish
//! time is bounded by (a) its own start plus its paced busy time and
//! (b) its producers' finish plus a trailing tile (see DESIGN.md §2 for
//! the equivalence discussion). Per Eq. (7), weights of layers whose
//! engine cannot hold them are re-streamed on every row tile; those
//! transfer times pace the rows, and the shared DMA channel lower-bounds
//! the round time by the total transferred bytes.

use mccm_arch::{BuiltAccelerator, CeRole};

use crate::config::PipelineLatencyMode;
use crate::model::single_ce::{BlockOutcome, BlockTotals};
use crate::quantity::{Bandwidth, Bytes, Cycles, Macs};
use crate::report::{LayerReport, SpillPolicy};

/// Reusable per-layer work arrays for [`eval_pipelined_round_core`]: one
/// slot per layer of the round being evaluated, grown on demand and kept
/// alive across rounds (and across designs, via
/// [`EvalScratch`](crate::EvalScratch)) so the steady-state pipelined
/// block model allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct PipeScratch {
    tile_lat: Vec<u64>,
    n_tiles: Vec<u64>,
    resident: Vec<bool>,
    w_bytes: Vec<u64>,
    mem_bytes: Vec<u64>,
    eff_tile_lat: Vec<u64>,
    start: Vec<u64>,
    finish_eff: Vec<u64>,
    finish_pure: Vec<u64>,
    produced: Vec<u64>,
    active: Vec<usize>,
}

/// Evaluates one pipelined round over layers `first..=last` running on
/// `ces[j] = ces[layer - first]`.
///
/// Returns a [`BlockOutcome`] whose `time_cycles` is the critical-path
/// round time, lower-bounded by the round's total DMA time and the
/// (double-buffered, TGPA-style) resident-weight prefetch.
#[allow(clippy::too_many_arguments)]
pub fn eval_pipelined_round(
    acc: &BuiltAccelerator,
    ces: &[usize],
    first: usize,
    last: usize,
    input_off_chip: bool,
    output_off_chip: bool,
    bw: Bandwidth,
    mode: PipelineLatencyMode,
) -> BlockOutcome {
    let n = last - first + 1;
    let mut scratch = PipeScratch::default();
    let mut layers = Vec::with_capacity(n);
    let mut busy_per_ce = Vec::with_capacity(n);
    let totals = eval_pipelined_round_core(
        acc,
        ces,
        first,
        last,
        input_off_chip,
        output_off_chip,
        bw,
        mode,
        &mut scratch,
        |l, ce, busy_pure, busy_eff, w_traffic, fm_load, fm_store| {
            busy_per_ce.push((ce, busy_eff));
            layers.push(LayerReport {
                layer: l,
                ce,
                compute_cycles: busy_pure,
                weight_traffic: w_traffic,
                fm_load_traffic: fm_load,
                fm_store_traffic: fm_store,
                policy: SpillPolicy::None,
                utilization: acc.ces[ce].utilization(acc.convs[l].dims),
            });
        },
    );
    BlockOutcome {
        time_cycles: totals.time_cycles,
        compute_cycles: totals.compute_cycles,
        memory_cycles: totals.memory_cycles,
        weight_traffic: totals.weight_traffic,
        fm_traffic: totals.fm_traffic,
        useful_macs: totals.useful_macs,
        busy_per_ce,
        layers,
    }
}

/// Allocation-free core of the pipelined-CEs block model, shared by both
/// evaluation lanes. Per-layer work arrays live in `scratch`; `on_layer`
/// receives `(layer, ce, busy_pure, busy_eff, weight_traffic, fm_load,
/// fm_store)` per stage, and the fast lane passes a no-op.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_pipelined_round_core(
    acc: &BuiltAccelerator,
    ces: &[usize],
    first: usize,
    last: usize,
    input_off_chip: bool,
    output_off_chip: bool,
    bw: Bandwidth,
    mode: PipelineLatencyMode,
    scratch: &mut PipeScratch,
    mut on_layer: impl FnMut(usize, usize, Cycles, Cycles, Bytes, Bytes, Bytes),
) -> BlockTotals {
    let n = last - first + 1;
    debug_assert_eq!(ces.len(), n, "one CE per layer in a round");

    // Per-layer static data (scratch-resident).
    scratch.tile_lat.clear();
    scratch.tile_lat.resize(n, 0); // compute cycles per row tile
    scratch.n_tiles.clear();
    scratch.n_tiles.resize(n, 0);
    scratch.resident.clear();
    scratch.resident.resize(n, false);
    scratch.w_bytes.clear();
    scratch.w_bytes.resize(n, 0);
    scratch.mem_bytes.clear();
    scratch.mem_bytes.resize(n, 0); // off-chip bytes streamed by the layer
    let tile_lat = &mut scratch.tile_lat;
    let n_tiles = &mut scratch.n_tiles;
    let resident = &mut scratch.resident;
    let w_bytes = &mut scratch.w_bytes;
    let mem_bytes = &mut scratch.mem_bytes;
    for j in 0..n {
        let l = first + j;
        let conv = &acc.convs[l];
        let ce = &acc.ces[ces[j]];
        debug_assert_eq!(ce.role, CeRole::Pipelined);
        let poh = ce.parallelism.dims[2].max(1).min(conv.ofm.height);
        n_tiles[j] = u64::from(conv.ofm.height).div_ceil(u64::from(poh));
        tile_lat[j] = ce.parallelism.tile_latency_cycles(conv.dims, poh);
        w_bytes[j] = acc.weight_bytes(l);
        // Eq. (7): weights stay on-chip across the round's tiles iff the
        // engine's buffer (beyond its FM tiles) can hold them decompressed.
        resident[j] = acc.buffers.ce[ces[j]].weight_capacity() >= acc.weight_buffer_bytes(l);
        let mut bytes = if resident[j] {
            0
        } else {
            w_bytes[j] * n_tiles[j]
        };
        if j == 0 && input_off_chip {
            bytes += acc.ifm_bytes(l);
        }
        if j == n - 1 && output_off_chip {
            bytes += acc.ofm_bytes(l);
        }
        mem_bytes[j] = bytes;
    }

    // Per-row pacing including the layer's own streaming (weights per
    // tile, boundary rows).
    let (tile_lat, n_tiles, resident, w_bytes, mem_bytes) =
        (&*tile_lat, &*n_tiles, &*resident, &*w_bytes, &*mem_bytes);
    let eff_tile_lat = &mut scratch.eff_tile_lat;
    eff_tile_lat.clear();
    eff_tile_lat.extend((0..n).map(|j| {
        let per_tile = Bytes::new(mem_bytes[j] / n_tiles[j].max(1));
        tile_lat[j].max(bw.cycles_for(per_tile).get())
    }));
    let eff_tile_lat = &*eff_tile_lat;

    // In-round producers (DAG edges resolved through pools/adds/concats by
    // `mccm-cnn`; producers before `first` sit in the segment's input
    // buffer and are always available). Iterated inline — collecting them
    // into a nested `Vec<Vec<usize>>` used to be a per-round allocation.
    let producers = |j: usize| {
        acc.convs[first + j]
            .producers
            .iter()
            .filter(move |&&p| p >= first && p < first + j)
            .map(move |&p| p - first)
    };

    // Producer tiles layer j needs before its first tile: IFM rows for row
    // `poh-1` scaled to producer rows through any intermediate pooling.
    let first_need_tiles = |j: usize, p: usize| -> u64 {
        let conv = &acc.convs[first + j];
        let through = acc.ces[ces[j]].parallelism.dims[2]
            .max(1)
            .min(conv.ofm.height)
            - 1;
        let need = (u64::from(through) * u64::from(conv.spec.stride.0)
            + u64::from(conv.spec.kernel.0))
        .saturating_sub(u64::from(conv.spec.padding.h))
        .clamp(1, u64::from(conv.ifm.height));
        let prod_h = u64::from(acc.convs[first + p].ofm.height);
        let ifm_h = u64::from(conv.ifm.height.max(1));
        let rows = ((need * prod_h).div_ceil(ifm_h)).min(prod_h);
        let p_poh = u64::from(acc.ces[ces[p]].parallelism.dims[2].max(1));
        rows.div_ceil(p_poh).min(n_tiles[p])
    };

    // Critical path, computed twice: with memory pacing (timing) and
    // without (the pure-compute baseline reported for Fig. 6).
    let critical_path = |rate: &[u64], start: &mut Vec<u64>, finish: &mut Vec<u64>| {
        start.clear();
        start.resize(n, 0);
        finish.clear();
        finish.resize(n, 0);
        for j in 0..n {
            for p in producers(j) {
                start[j] = start[j].max(start[p] + first_need_tiles(j, p) * rate[p]);
            }
            finish[j] = start[j] + n_tiles[j] * rate[j];
            for p in producers(j) {
                // Trailing tile: the last rows wait for the producer's
                // final output.
                finish[j] = finish[j].max(finish[p] + rate[j]);
            }
        }
    };
    {
        let PipeScratch {
            start,
            finish_eff,
            finish_pure,
            produced,
            active,
            ..
        } = scratch;
        match mode {
            PipelineLatencyMode::CriticalPath => {
                critical_path(eff_tile_lat, start, finish_eff);
                critical_path(tile_lat, start, finish_pure);
            }
            PipelineLatencyMode::LockstepStages => {
                lockstep_stages(
                    eff_tile_lat,
                    n_tiles,
                    &producers,
                    &first_need_tiles,
                    produced,
                    active,
                    finish_eff,
                );
                lockstep_stages(
                    tile_lat,
                    n_tiles,
                    &producers,
                    &first_need_tiles,
                    produced,
                    active,
                    finish_pure,
                );
            }
        }
    }
    let (finish_eff, finish_pure) = (&scratch.finish_eff, &scratch.finish_pure);

    // Round weight load for resident layers: double-buffered against the
    // previous round, so only the excess beyond the round time is exposed.
    let resident_load_bytes = Bytes::new((0..n).filter(|&j| resident[j]).map(|j| w_bytes[j]).sum());
    let w_load_cycles = bw.cycles_for(resident_load_bytes);

    // The shared DMA channel serializes every stream in the round.
    let total_mem_cycles = bw.cycles_for(Bytes::new(mem_bytes.iter().sum())) + w_load_cycles;

    let path = Cycles::new(finish_eff.iter().copied().max().unwrap_or(0));
    let compute_cycles = Cycles::new(finish_pure.iter().copied().max().unwrap_or(0));
    let time_cycles = path.max(total_mem_cycles).max(w_load_cycles);

    let mut out = BlockTotals {
        time_cycles,
        compute_cycles,
        memory_cycles: total_mem_cycles,
        ..BlockTotals::default()
    };
    for j in 0..n {
        let l = first + j;
        out.useful_macs += Macs::new(acc.convs[l].macs);
        let busy_pure = Cycles::new(n_tiles[j] * tile_lat[j]);
        let busy_eff = Cycles::new(n_tiles[j] * eff_tile_lat[j]);
        out.max_busy_cycles = out.max_busy_cycles.max(busy_eff);
        let lw = Bytes::new(if resident[j] {
            w_bytes[j]
        } else {
            w_bytes[j] * n_tiles[j]
        });
        let fm_load = if j == 0 && input_off_chip {
            Bytes::new(acc.ifm_bytes(l))
        } else {
            Bytes::ZERO
        };
        let fm_store = if j == n - 1 && output_off_chip {
            Bytes::new(acc.ofm_bytes(last))
        } else {
            Bytes::ZERO
        };
        out.weight_traffic += lw;
        out.fm_traffic += fm_load + fm_store;
        on_layer(l, ces[j], busy_pure, busy_eff, lw, fm_load, fm_store);
    }
    out
}

/// Literal Eq. (2) evaluation: a global stage barrier per tile, each stage
/// as slow as its slowest active engine. A layer activates once its
/// producers have emitted its first-tile requirement and then produces one
/// tile per stage in which it is active. Kept for the ablation study.
fn lockstep_stages<P, I>(
    rate: &[u64],
    n_tiles: &[u64],
    producers: &P,
    first_need_tiles: &dyn Fn(usize, usize) -> u64,
    produced: &mut Vec<u64>,
    active: &mut Vec<usize>,
    finish: &mut Vec<u64>,
) where
    P: Fn(usize) -> I,
    I: Iterator<Item = usize>,
{
    let n = rate.len();
    produced.clear();
    produced.resize(n, 0);
    finish.clear();
    finish.resize(n, 0);
    let mut elapsed = 0u64;
    let total: u64 = n_tiles.iter().sum();
    let mut guard = 0u64;
    while produced.iter().zip(n_tiles).any(|(&p, &t)| p < t) {
        guard += 1;
        if guard > 2 * total + 2 * n as u64 {
            break; // defensive; dependencies are acyclic so this is unreachable
        }
        let mut stage = 0u64;
        active.clear();
        for j in 0..n {
            if produced[j] >= n_tiles[j] {
                continue;
            }
            // Scale the first-tile requirement with progress: tile t needs
            // roughly first_need + t producer tiles.
            let ready = producers(j).all(|p| {
                let need = (first_need_tiles(j, p) + produced[j]).min(n_tiles[p]);
                produced[p] >= need
            });
            if ready {
                active.push(j);
                stage = stage.max(rate[j]);
            }
        }
        if active.is_empty() {
            break; // unreachable: the lowest unfinished layer is always ready
        }
        elapsed += stage;
        for &j in active.iter() {
            produced[j] += 1;
            if produced[j] == n_tiles[j] {
                finish[j] = elapsed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_arch::{templates, MultipleCeBuilder};
    use mccm_cnn::zoo;
    use mccm_fpga::{FpgaBoard, MiB};

    fn head_acc(board: FpgaBoard, k: usize) -> BuiltAccelerator {
        let m = zoo::resnet50();
        let spec = templates::hybrid(&m, k).unwrap();
        MultipleCeBuilder::new(&m, &board).build(&spec).unwrap()
    }

    #[test]
    fn round_time_bounded_by_bottleneck_busy() {
        let acc = head_acc(FpgaBoard::zcu102(), 5);
        let ces = vec![0, 1, 2, 3];
        let o = eval_pipelined_round(
            &acc,
            &ces,
            0,
            3,
            true,
            true,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        // Latency at least the slowest CE's total busy time (Eq. 3 bound).
        let max_busy = o.busy_per_ce.iter().map(|&(_, b)| b).max().unwrap();
        assert!(o.time_cycles >= max_busy);
        // And the pure-compute path cannot exceed sequential execution.
        let sum_busy: Cycles = o.layers.iter().map(|l| l.compute_cycles).sum();
        assert!(o.compute_cycles <= sum_busy);
    }

    #[test]
    fn pipeline_faster_than_sequential_execution() {
        // Row overlap: the critical path must beat executing the layers
        // back to back on their own engines.
        let acc = head_acc(FpgaBoard::zcu102(), 7);
        let ces: Vec<usize> = (0..6).collect();
        let o = eval_pipelined_round(
            &acc,
            &ces,
            0,
            5,
            true,
            true,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        let sequential: Cycles = o.layers.iter().map(|l| l.compute_cycles).sum();
        assert!(
            o.compute_cycles < sequential,
            "pipelined {} vs sequential {sequential}",
            o.compute_cycles
        );
    }

    #[test]
    fn busy_counts_rows_times_tile_latency() {
        let acc = head_acc(FpgaBoard::zcu102(), 4);
        let ces = vec![0, 1, 2];
        let o = eval_pipelined_round(
            &acc,
            &ces,
            0,
            2,
            true,
            true,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        for (j, l) in o.layers.iter().enumerate() {
            let conv = &acc.convs[j];
            let poh = acc.ces[l.ce].parallelism.dims[2]
                .max(1)
                .min(conv.ofm.height);
            let tiles = u64::from(conv.ofm.height).div_ceil(u64::from(poh));
            let lat = acc.ces[l.ce]
                .parallelism
                .tile_latency_cycles(conv.dims, poh);
            assert_eq!(l.compute_cycles, Cycles::new(tiles * lat), "layer {j}");
        }
    }

    #[test]
    fn weight_residency_controls_traffic() {
        // Generous BRAM: weights resident, each loaded once.
        let acc = head_acc(FpgaBoard::zcu102(), 5);
        let ces = vec![0, 1, 2, 3];
        let o = eval_pipelined_round(
            &acc,
            &ces,
            0,
            3,
            true,
            true,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        let w_once = Bytes::new((0..4).map(|l| acc.weight_bytes(l)).sum());
        assert_eq!(o.weight_traffic, w_once);

        // Tiny BRAM: weights streamed per row tile -> far more traffic.
        let tiny = FpgaBoard::new("tiny", 2520, MiB(0.05), 19.2);
        let acc = head_acc(tiny, 5);
        let o2 = eval_pipelined_round(
            &acc,
            &ces,
            0,
            3,
            true,
            true,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        assert!(
            o2.weight_traffic > w_once,
            "{} vs {w_once}",
            o2.weight_traffic
        );
    }

    #[test]
    fn io_traffic_charged_at_boundaries() {
        let acc = head_acc(FpgaBoard::zcu102(), 5);
        let ces = vec![0, 1, 2, 3];
        let both = eval_pipelined_round(
            &acc,
            &ces,
            0,
            3,
            true,
            true,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        let neither = eval_pipelined_round(
            &acc,
            &ces,
            0,
            3,
            false,
            false,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        assert_eq!(
            both.fm_traffic - neither.fm_traffic,
            Bytes::new(acc.ifm_bytes(0) + acc.ofm_bytes(3))
        );
    }

    #[test]
    fn low_bandwidth_stalls_pipeline() {
        let slow = FpgaBoard::new("slow", 2520, MiB(0.05), 0.02);
        let acc = head_acc(slow, 5);
        let ces = vec![0, 1, 2, 3];
        let o = eval_pipelined_round(
            &acc,
            &ces,
            0,
            3,
            true,
            true,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        assert!(o.time_cycles > o.compute_cycles);
    }

    #[test]
    fn single_layer_round_works() {
        let acc = head_acc(FpgaBoard::zcu102(), 5);
        let o = eval_pipelined_round(
            &acc,
            &[0],
            0,
            0,
            true,
            true,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        assert_eq!(o.layers.len(), 1);
        assert!(!o.time_cycles.is_zero());
    }

    #[test]
    fn strided_consumers_respect_dependencies() {
        // SegmentedRR on MobileNetV2 exercises stride-2 depthwise layers.
        let m = zoo::mobilenet_v2();
        let spec = templates::segmented_rr(&m, 4).unwrap();
        let acc = MultipleCeBuilder::new(&m, &FpgaBoard::zcu102())
            .build(&spec)
            .unwrap();
        let o = eval_pipelined_round(
            &acc,
            &[0, 1, 2, 3],
            0,
            3,
            true,
            true,
            Bandwidth::new(acc.board.bytes_per_cycle()),
            PipelineLatencyMode::CriticalPath,
        );
        assert!(!o.useful_macs.is_zero());
        assert!(o.time_cycles >= o.busy_per_ce.iter().map(|&(_, b)| b).max().unwrap());
    }

    #[test]
    fn lockstep_mode_never_faster_than_critical_path() {
        // The lockstep stage barrier can only add serialization.
        let acc = head_acc(FpgaBoard::zcu102(), 7);
        let ces: Vec<usize> = (0..6).collect();
        let bpc = Bandwidth::new(acc.board.bytes_per_cycle());
        let cp = eval_pipelined_round(
            &acc,
            &ces,
            0,
            5,
            true,
            true,
            bpc,
            PipelineLatencyMode::CriticalPath,
        );
        let ls = eval_pipelined_round(
            &acc,
            &ces,
            0,
            5,
            true,
            true,
            bpc,
            PipelineLatencyMode::LockstepStages,
        );
        assert!(
            ls.time_cycles >= cp.time_cycles,
            "{} vs {}",
            ls.time_cycles,
            cp.time_cycles
        );
        // Traffic is mode-independent.
        assert_eq!(ls.weight_traffic, cp.weight_traffic);
        assert_eq!(ls.fm_traffic, cp.fm_traffic);
    }

    #[test]
    fn residual_branch_rounds_use_dag_producers() {
        // Rounds spanning a ResNet block boundary include a projection conv
        // whose producer is the earlier block input, not the previous conv.
        let m = zoo::resnet50();
        let spec = templates::segmented_rr(&m, 8).unwrap();
        let acc = MultipleCeBuilder::new(&m, &FpgaBoard::zcu102())
            .build(&spec)
            .unwrap();
        // Evaluate every round; the critical-path must stay finite and
        // bounded by the sequential sum.
        for seg in acc.segments.clone() {
            if let mccm_arch::Executor::PipelinedCes(ces) = &seg.executor {
                let o = eval_pipelined_round(
                    &acc,
                    ces,
                    seg.first,
                    seg.last,
                    true,
                    true,
                    Bandwidth::new(acc.board.bytes_per_cycle()),
                    PipelineLatencyMode::CriticalPath,
                );
                let seq: Cycles = o.layers.iter().map(|l| l.compute_cycles).sum();
                assert!(o.compute_cycles <= seq + Cycles::new(1));
            }
        }
    }
}
