//! MCCM: bottom-up composition of the block models into full-accelerator
//! estimates (§IV-B).
//!
//! Per segment, the single-CE or pipelined-CEs block model produces a time
//! contribution and traffic; segments compose as follows:
//!
//! * **Latency** = Σ segment times (handoff loads/stores are already
//!   charged inside the boundary segments' layer/stage models).
//! * **Throughput** with coarse (whole-image) pipelining = 1 / the largest
//!   *block occupancy*: a block's occupancy is the sum of its segments'
//!   times, except a single-round pipelined block whose occupancy is its
//!   bottleneck CE's busy time (Eq. 3) — consecutive images overlap inside
//!   the pipeline. Without coarse pipelining, throughput = 1 / latency.
//! * **Buffers** (requirement, Eqs. 4/5/8) = Σ per-CE ideals + distinct-
//!   block handoff buffers; round-robin handoffs stream off-chip by design
//!   and add no requirement.
//! * **Accesses** = Σ segment traffic (Eqs. 6/7/9), including the model
//!   input load and output store.
//!
//! # Two evaluation lanes
//!
//! [`CostModel::evaluate`] (and `evaluate_with`) is the **rich-report
//! lane**: it returns a full [`Evaluation`] with per-segment, per-engine,
//! and per-layer breakdowns — the right lane for bottleneck analysis
//! (Use Case 2) and one-off studies. [`CostModel::evaluate_summary`]
//! (and `evaluate_summary_with`) is the **fast lane** for design-space
//! sweeps: it produces only the scalar [`EvalSummary`], reusing the
//! caller's [`EvalScratch`] buffers so the steady state performs no heap
//! allocation beyond the summary's notation string. Both lanes run the
//! exact same block-model cores, so the fast lane's summary is
//! bit-identical to `evaluate(...).summary()`.

pub(crate) mod pipeline;
pub(crate) mod single_ce;

use std::collections::HashMap;

use mccm_arch::{BuiltAccelerator, CeRole, Executor};

use crate::config::ModelConfig;
use crate::quantity::{Bandwidth, Bytes, Cycles, Macs, Pes};
use crate::report::{CeReport, EvalSummary, Evaluation, SegmentReport};
use pipeline::{eval_pipelined_round, eval_pipelined_round_core, PipeScratch};
use single_ce::{eval_single_ce, eval_single_ce_core, BlockOutcome};

/// The analytical cost model. Stateless: all inputs live in the
/// [`BuiltAccelerator`].
///
/// # Examples
///
/// ```
/// use mccm_arch::{templates, MultipleCeBuilder};
/// use mccm_cnn::zoo;
/// use mccm_core::{CostModel, EvalScratch};
/// use mccm_fpga::FpgaBoard;
///
/// # fn main() -> Result<(), mccm_arch::ArchError> {
/// let model = zoo::resnet50();
/// let board = FpgaBoard::zc706();
/// let builder = MultipleCeBuilder::new(&model, &board);
/// let acc = builder.build(&templates::segmented(&model, 4)?)?;
/// let eval = CostModel::evaluate(&acc);
/// assert!(eval.throughput_fps > 0.0);
/// assert!(eval.latency_s > 0.0);
///
/// // The sweep-friendly fast lane produces the identical summary.
/// let mut scratch = EvalScratch::new();
/// assert_eq!(CostModel::evaluate_summary(&acc, &mut scratch), eval.summary());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel;

/// Reusable scratch buffers for the summary fast lane
/// ([`CostModel::evaluate_summary`]).
///
/// Holds the pipelined-block work arrays and the dense block-occupancy
/// table that the rich lane keeps in per-call `Vec`s and `HashMap`s.
/// Create one per sweep worker and pass it to every evaluation: after the
/// first few designs the buffers reach steady-state capacity and the fast
/// lane stops allocating entirely (the returned summary's notation string
/// is the only remaining allocation).
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Dense per-block occupancy accumulators, one per distinct executor
    /// CE set. Executor CE sets are always contiguous ranges, so
    /// `(first_ce, len)` identifies a block exactly — no
    /// `HashMap<Vec<usize>, _>` needed.
    blocks: Vec<BlockSlot>,
    /// Pipelined-block per-layer work arrays.
    pipe: PipeScratch,
    /// Per-segment cost staging for [`CostModel::evaluate_summary_with`]
    /// (taken out of the scratch while the slice is recombined).
    costs: Vec<SegmentCost>,
}

#[derive(Debug, Clone, Copy)]
struct BlockSlot {
    first_ce: usize,
    len: usize,
    occupancy: Cycles,
    segments: usize,
    max_busy: Cycles,
    pipelined: bool,
}

impl EvalScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The cost of **one segment** — a contiguous run of layers on one
/// executor — as produced by the block-model cores, independent of every
/// other segment of the design.
///
/// A design's [`EvalSummary`] is a pure composition of its segments'
/// `SegmentCost`s plus the design-level [`DesignCoupling`] terms
/// ([`CostModel::recombine`]). The value is `Copy` and depends only on
/// the segment's layer range, executor shape (PEs, role, schedule), the
/// granted buffer bytes, and the in/out boundary placement — which is
/// what makes it cacheable across designs that share a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentCost {
    /// First CE of the executing block (CE ids are contiguous).
    pub first_ce: usize,
    /// CEs in the executing block (`1` for a single-CE segment).
    pub ce_len: usize,
    /// Whether the block carries pipelined-role CEs (drives the
    /// single-round initiation-interval rule, Eq. 3).
    pub pipelined: bool,
    /// The segment's wall time contribution to latency.
    pub time_cycles: Cycles,
    /// The compute-only portion of that time.
    pub compute_cycles: Cycles,
    /// Off-chip weight traffic the segment generates.
    pub weight_traffic: Bytes,
    /// Off-chip feature-map traffic the segment generates.
    pub fm_traffic: Bytes,
    /// The busiest CE's busy time within the segment's round.
    pub max_busy_cycles: Cycles,
}

/// The design-level coupling terms [`CostModel::recombine`] applies to a
/// slice of [`SegmentCost`]s: everything in an [`EvalSummary`] that is
/// *not* a per-segment quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignCoupling {
    /// The design's notation string.
    pub notation: String,
    /// Compute engines in the design.
    pub ce_count: usize,
    /// Total convolution MACs of the CNN.
    pub total_macs: Macs,
    /// Whether segments overlap across images (coarse pipelining).
    pub coarse_pipeline: bool,
    /// Board cycle time in seconds.
    pub cycle_time_s: f64,
    /// Derated off-chip bandwidth (shared-channel throughput bound).
    pub bandwidth: Bandwidth,
    /// Σ per-CE ideals + distinct-block handoffs (Eqs. 4/5/8).
    pub buffer_req_bytes: Bytes,
    /// Total granted on-chip buffer bytes.
    pub buffer_alloc_bytes: Bytes,
}

impl CostModel {
    /// Evaluates a built accelerator: latency, throughput, buffer
    /// requirement, off-chip accesses, and fine-grained breakdowns.
    pub fn evaluate(acc: &BuiltAccelerator) -> Evaluation {
        Self::evaluate_with(acc, &ModelConfig::default())
    }

    /// Evaluates under a non-default configuration (ablation modes,
    /// bandwidth derating).
    pub fn evaluate_with(acc: &BuiltAccelerator, config: &ModelConfig) -> Evaluation {
        let cyc = acc.board.cycle_time_s();
        let bw = Bandwidth::new(acc.board.bytes_per_cycle() * config.bandwidth_derate);
        let n_segments = acc.segments.len();

        let mut seg_reports = Vec::with_capacity(n_segments);
        let mut layers = Vec::with_capacity(acc.convs.len());
        let mut busy_cycles: Vec<Cycles> = vec![Cycles::ZERO; acc.ces.len()];
        let mut ce_macs: Vec<Macs> = vec![Macs::ZERO; acc.ces.len()];
        let mut latency_cycles = Cycles::ZERO;
        let mut compute_cycles_total = Cycles::ZERO;
        let mut total_w = Bytes::ZERO;
        let mut total_fm = Bytes::ZERO;

        // Block occupancy for coarse-pipelined throughput: keyed by the
        // executor's CE set.
        let mut occupancy: HashMap<Vec<usize>, Cycles> = HashMap::new();
        let mut block_segments: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut block_max_busy: HashMap<Vec<usize>, Cycles> = HashMap::new();

        for seg in &acc.segments {
            let input_off = seg.index == 0 || !acc.buffers.inter_segment[seg.index - 1].on_chip;
            let output_off =
                seg.index + 1 == n_segments || !acc.buffers.inter_segment[seg.index].on_chip;

            let outcome: BlockOutcome = match &seg.executor {
                Executor::SingleCe(ce) => eval_single_ce(
                    acc,
                    *ce,
                    seg.schedule,
                    seg.first,
                    seg.last,
                    input_off,
                    output_off,
                    bw,
                ),
                Executor::PipelinedCes(ces) => eval_pipelined_round(
                    acc,
                    ces,
                    seg.first,
                    seg.last,
                    input_off,
                    output_off,
                    bw,
                    config.pipeline_latency,
                ),
            };

            let key = {
                let mut k = seg.executor.ces();
                k.sort_unstable();
                k
            };
            *occupancy.entry(key.clone()).or_default() += outcome.time_cycles;
            *block_segments.entry(key.clone()).or_default() += 1;
            let round_busy = outcome
                .busy_per_ce
                .iter()
                .map(|&(_, b)| b)
                .max()
                .unwrap_or(Cycles::ZERO);
            let e = block_max_busy.entry(key).or_default();
            *e = (*e).max(round_busy);

            for &(ce, b) in &outcome.busy_per_ce {
                busy_cycles[ce] += b;
            }
            for lr in &outcome.layers {
                ce_macs[lr.ce] += Macs::new(acc.convs[lr.layer].macs);
            }

            let block_pes: Pes = seg
                .executor
                .ces()
                .iter()
                .map(|&c| Pes::new(acc.ces[c].pes))
                .sum();
            let utilization = if outcome.time_cycles.is_zero() {
                0.0
            } else {
                outcome.useful_macs.as_f64() / (block_pes.as_f64() * outcome.time_cycles.as_f64())
            };

            seg_reports.push(SegmentReport {
                index: seg.index,
                first: seg.first,
                last: seg.last,
                ces: seg.executor.ces(),
                compute_s: outcome.compute_cycles.to_seconds(cyc),
                memory_s: outcome.memory_cycles.to_seconds(cyc),
                time_s: outcome.time_cycles.to_seconds(cyc),
                weight_traffic: outcome.weight_traffic,
                fm_traffic: outcome.fm_traffic,
                buffer_req_bytes: segment_buffer_req(acc, seg.index),
                utilization,
            });

            latency_cycles += outcome.time_cycles;
            compute_cycles_total += outcome.compute_cycles;
            total_w += outcome.weight_traffic;
            total_fm += outcome.fm_traffic;
            layers.extend(outcome.layers);
        }

        // Throughput (§IV-B1).
        let bottleneck_cycles = if acc.coarse_pipeline() {
            let block_bound = occupancy
                .iter()
                .map(|(key, &occ)| {
                    // A single-segment pipelined block overlaps consecutive
                    // images: its initiation interval is its bottleneck CE
                    // busy time (Eq. 3), not the stage sum.
                    let single_round = block_segments[key] == 1
                        && key.iter().any(|&c| acc.ces[c].role == CeRole::Pipelined);
                    if single_round {
                        block_max_busy[key].max(Cycles::new(1))
                    } else {
                        occ
                    }
                })
                .max()
                .unwrap_or(latency_cycles);
            // Coarse-pipelined blocks share the off-chip channel: the
            // initiation interval cannot beat the per-image total traffic
            // over the full bandwidth.
            let mem_bound = bw.cycles_for(total_w + total_fm);
            block_bound.max(mem_bound)
        } else {
            latency_cycles
        };

        let latency_s = latency_cycles.to_seconds(cyc);
        let throughput_fps = if bottleneck_cycles.is_zero() {
            0.0
        } else {
            1.0 / bottleneck_cycles.to_seconds(cyc)
        };

        let buffer_req_bytes = buffer_requirement(acc);
        let ces = acc
            .ces
            .iter()
            .map(|ce| {
                let busy = busy_cycles[ce.id];
                CeReport {
                    ce: ce.id,
                    pes: Pes::new(ce.pes),
                    busy_s: busy.to_seconds(cyc),
                    utilization: if busy.is_zero() {
                        0.0
                    } else {
                        ce_macs[ce.id].as_f64() / (busy.as_f64() * f64::from(ce.pes))
                    },
                }
            })
            .collect();

        let memory_stall_fraction = if latency_cycles.is_zero() {
            0.0
        } else {
            (latency_cycles - compute_cycles_total.min(latency_cycles)).as_f64()
                / latency_cycles.as_f64()
        };

        Evaluation {
            notation: acc.notation(),
            model_name: acc.model_name.to_string(),
            board_name: acc.board.name.clone(),
            ce_count: acc.ce_count(),
            total_macs: total_macs(acc),
            latency_s,
            throughput_fps,
            buffer_req_bytes,
            buffer_alloc_bytes: Bytes::new(acc.buffers.total_bytes()),
            offchip_bytes: total_w + total_fm,
            offchip_weight_bytes: total_w,
            offchip_fm_bytes: total_fm,
            memory_stall_fraction,
            segments: seg_reports,
            ces,
            layers,
        }
    }

    /// Summary-only fast lane: the design's [`EvalSummary`] without any
    /// per-segment/per-engine/per-layer report construction, reusing the
    /// caller's scratch buffers across calls.
    ///
    /// Bit-identical to `evaluate(acc).summary()` — both lanes run the
    /// same block-model cores — but roughly an order of magnitude cheaper
    /// per design, which is what large sweeps pay per candidate.
    pub fn evaluate_summary(acc: &BuiltAccelerator, scratch: &mut EvalScratch) -> EvalSummary {
        Self::evaluate_summary_with(acc, &ModelConfig::default(), scratch)
    }

    /// [`Self::evaluate_summary`] under a non-default configuration;
    /// bit-identical to `evaluate_with(acc, config).summary()`.
    ///
    /// The fast lane is an explicit decomposition: each segment's
    /// [`SegmentCost`] is computed by the shared block-model cores, then
    /// [`Self::recombine`] applies the design-level [`DesignCoupling`]
    /// terms. Incremental evaluators reuse exactly this split, swapping
    /// cached `SegmentCost`s in for the fresh ones.
    pub fn evaluate_summary_with(
        acc: &BuiltAccelerator,
        config: &ModelConfig,
        scratch: &mut EvalScratch,
    ) -> EvalSummary {
        let mut costs = std::mem::take(&mut scratch.costs);
        costs.clear();
        for index in 0..acc.segments.len() {
            costs.push(Self::segment_cost(acc, index, config, scratch));
        }
        let summary = Self::recombine(Self::design_coupling(acc, config), &costs, scratch);
        scratch.costs = costs;
        summary
    }

    /// The [`SegmentCost`] of segment `index` of a built accelerator,
    /// through the same block-model cores both evaluation lanes run.
    pub fn segment_cost(
        acc: &BuiltAccelerator,
        index: usize,
        config: &ModelConfig,
        scratch: &mut EvalScratch,
    ) -> SegmentCost {
        let bw = Bandwidth::new(acc.board.bytes_per_cycle() * config.bandwidth_derate);
        let n_segments = acc.segments.len();
        let seg = &acc.segments[index];
        let input_off = seg.index == 0 || !acc.buffers.inter_segment[seg.index - 1].on_chip;
        let output_off =
            seg.index + 1 == n_segments || !acc.buffers.inter_segment[seg.index].on_chip;

        let (first_ce, ce_len, totals) = match &seg.executor {
            Executor::SingleCe(ce) => (
                *ce,
                1usize,
                eval_single_ce_core(
                    acc,
                    *ce,
                    seg.schedule,
                    seg.first,
                    seg.last,
                    input_off,
                    output_off,
                    bw,
                    |_, _, _, _, _, _| {},
                ),
            ),
            Executor::PipelinedCes(ces) => (
                ces[0],
                ces.len(),
                eval_pipelined_round_core(
                    acc,
                    ces,
                    seg.first,
                    seg.last,
                    input_off,
                    output_off,
                    bw,
                    config.pipeline_latency,
                    &mut scratch.pipe,
                    |_, _, _, _, _, _, _| {},
                ),
            ),
        };
        let pipelined = acc.ces[first_ce..first_ce + ce_len]
            .iter()
            .any(|ce| ce.role == CeRole::Pipelined);
        SegmentCost {
            first_ce,
            ce_len,
            pipelined,
            time_cycles: totals.time_cycles,
            compute_cycles: totals.compute_cycles,
            weight_traffic: totals.weight_traffic,
            fm_traffic: totals.fm_traffic,
            max_busy_cycles: totals.max_busy_cycles,
        }
    }

    /// The design-level [`DesignCoupling`] terms of a built accelerator —
    /// the non-segment half of the decomposition behind
    /// [`Self::evaluate_summary_with`].
    pub fn design_coupling(acc: &BuiltAccelerator, config: &ModelConfig) -> DesignCoupling {
        DesignCoupling {
            notation: acc.notation(),
            ce_count: acc.ce_count(),
            total_macs: total_macs(acc),
            coarse_pipeline: acc.coarse_pipeline(),
            cycle_time_s: acc.board.cycle_time_s(),
            bandwidth: Bandwidth::new(acc.board.bytes_per_cycle() * config.bandwidth_derate),
            buffer_req_bytes: buffer_requirement(acc),
            buffer_alloc_bytes: Bytes::new(acc.buffers.total_bytes()),
        }
    }

    /// Recombines per-segment costs under the design-level coupling terms
    /// into the design's [`EvalSummary`].
    ///
    /// **Invariant (delta ≡ full ≡ rich):** for any built accelerator,
    /// `recombine(design_coupling(acc, cfg), &costs, scratch)` over the
    /// freshly computed `costs[i] = segment_cost(acc, i, cfg, scratch)`
    /// is bit-identical to `evaluate_summary_with(acc, cfg, scratch)` —
    /// which is itself bit-identical to the rich lane. Enforced by
    /// `tests/fastlane_equivalence.rs`.
    pub fn recombine(
        coupling: DesignCoupling,
        costs: &[SegmentCost],
        scratch: &mut EvalScratch,
    ) -> EvalSummary {
        let mut latency_cycles = Cycles::ZERO;
        let mut compute_cycles_total = Cycles::ZERO;
        let mut total_w = Bytes::ZERO;
        let mut total_fm = Bytes::ZERO;
        scratch.blocks.clear();

        for cost in costs {
            // Dense occupancy accumulation: executor CE sets are contiguous
            // ranges, so (first_ce, len) is the block identity the rich lane
            // keys its HashMap with (as the sorted CE vector).
            let slot = match scratch
                .blocks
                .iter_mut()
                .find(|b| b.first_ce == cost.first_ce && b.len == cost.ce_len)
            {
                Some(slot) => slot,
                None => {
                    scratch.blocks.push(BlockSlot {
                        first_ce: cost.first_ce,
                        len: cost.ce_len,
                        occupancy: Cycles::ZERO,
                        segments: 0,
                        max_busy: Cycles::ZERO,
                        pipelined: false,
                    });
                    scratch.blocks.last_mut().expect("just pushed")
                }
            };
            slot.occupancy += cost.time_cycles;
            slot.segments += 1;
            slot.max_busy = slot.max_busy.max(cost.max_busy_cycles);
            slot.pipelined |= cost.pipelined;

            latency_cycles += cost.time_cycles;
            compute_cycles_total += cost.compute_cycles;
            total_w += cost.weight_traffic;
            total_fm += cost.fm_traffic;
        }

        // Throughput (§IV-B1), same composition as the rich lane — the
        // dense slots replace the HashMap, and `max` is order-independent.
        let bottleneck_cycles = if coupling.coarse_pipeline {
            let block_bound = scratch
                .blocks
                .iter()
                .map(|b| {
                    // A single-segment pipelined block overlaps consecutive
                    // images: its initiation interval is its bottleneck CE
                    // busy time (Eq. 3), not the stage sum.
                    if b.segments == 1 && b.pipelined {
                        b.max_busy.max(Cycles::new(1))
                    } else {
                        b.occupancy
                    }
                })
                .max()
                .unwrap_or(latency_cycles);
            let mem_bound = coupling.bandwidth.cycles_for(total_w + total_fm);
            block_bound.max(mem_bound)
        } else {
            latency_cycles
        };

        let cyc = coupling.cycle_time_s;
        let latency_s = latency_cycles.to_seconds(cyc);
        let throughput_fps = if bottleneck_cycles.is_zero() {
            0.0
        } else {
            1.0 / bottleneck_cycles.to_seconds(cyc)
        };

        let memory_stall_fraction = if latency_cycles.is_zero() {
            0.0
        } else {
            (latency_cycles - compute_cycles_total.min(latency_cycles)).as_f64()
                / latency_cycles.as_f64()
        };

        EvalSummary {
            notation: coupling.notation,
            ce_count: coupling.ce_count,
            total_macs: coupling.total_macs,
            latency_s,
            throughput_fps,
            buffer_req_bytes: coupling.buffer_req_bytes,
            buffer_alloc_bytes: coupling.buffer_alloc_bytes,
            offchip_bytes: total_w + total_fm,
            offchip_weight_bytes: total_w,
            offchip_fm_bytes: total_fm,
            memory_stall_fraction,
        }
    }

    /// The deterministic minimum off-chip traffic for this accelerator's
    /// CNN: every weight once plus the model input and output (§IV-A2).
    pub fn minimum_offchip_bytes(acc: &BuiltAccelerator) -> Bytes {
        let n = acc.convs.len();
        Bytes::new(acc.total_weight_bytes() + acc.ifm_bytes(0) + acc.ofm_bytes(n - 1))
    }
}

/// Total convolution MACs of the accelerator's CNN — the compute-side
/// energy input both lanes stamp into their reports (identical to
/// `CnnModel::conv_macs` of the originating model).
fn total_macs(acc: &BuiltAccelerator) -> Macs {
    acc.convs.iter().map(|c| Macs::new(c.macs)).sum()
}

/// On-chip buffer requirement guaranteeing the design's minimum accesses:
/// Σ per-CE ideals (Eq. 4 / Eq. 5) plus distinct-block handoff buffers
/// (Eq. 8). Round-robin (same-block) handoffs stream off-chip by design.
fn buffer_requirement(acc: &BuiltAccelerator) -> Bytes {
    let ce_sum: Bytes = acc
        .buffers
        .ce
        .iter()
        .map(|a| Bytes::new(a.ideal_bytes))
        .sum();
    let handoffs: Bytes = acc
        .buffers
        .inter_segment
        .iter()
        .filter(|b| !b.same_block)
        .map(|b| Bytes::new(b.bytes_needed))
        .sum();
    ce_sum + handoffs
}

/// Buffer requirement attributed to one segment (Fig. 9a): its layers'
/// weight-residency share plus its engines' tile/FM buffers (shared CE
/// buffers split evenly across the CE's segments) and its outgoing
/// handoff.
fn segment_buffer_req(acc: &BuiltAccelerator, index: usize) -> Bytes {
    let seg = &acc.segments[index];
    let mut req = Bytes::ZERO;
    match &seg.executor {
        Executor::SingleCe(ce) => {
            let segments_of_ce = acc
                .segments
                .iter()
                .filter(|s| matches!(&s.executor, Executor::SingleCe(c) if c == ce))
                .count() as u64;
            req += Bytes::new(acc.buffers.ce[*ce].ideal_bytes) / segments_of_ce.max(1);
        }
        Executor::PipelinedCes(ces) => {
            for (offset, &ce) in ces.iter().enumerate() {
                let rounds = acc.ces[ce].layers.len() as u64;
                req += Bytes::new(acc.buffers.ce[ce].fm_tile_bytes) / rounds.max(1);
                req += Bytes::new(acc.weight_bytes(seg.first + offset));
            }
        }
    }
    if let Some(b) = acc.buffers.inter_segment.get(index) {
        if !b.same_block {
            req += Bytes::new(b.bytes_needed);
        }
    }
    req
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_arch::{templates, MultipleCeBuilder};
    use mccm_cnn::zoo;
    use mccm_fpga::FpgaBoard;

    fn eval(
        model: &mccm_cnn::CnnModel,
        board: &FpgaBoard,
        arch: templates::Architecture,
        k: usize,
    ) -> Evaluation {
        let spec = arch.instantiate(model, k).unwrap();
        let acc = MultipleCeBuilder::new(model, board).build(&spec).unwrap();
        CostModel::evaluate(&acc)
    }

    #[test]
    fn all_architectures_produce_sane_metrics() {
        let m = zoo::resnet50();
        let board = FpgaBoard::vcu108();
        for arch in templates::Architecture::ALL {
            for k in [2, 5, 11] {
                let e = eval(&m, &board, arch, k);
                assert!(e.latency_s > 0.0, "{arch} {k}");
                assert!(e.throughput_fps > 0.0, "{arch} {k}");
                assert!(!e.buffer_req_bytes.is_zero(), "{arch} {k}");
                assert!(
                    e.offchip_bytes
                        >= CostModel::minimum_offchip_bytes(
                            &MultipleCeBuilder::new(&m, &board)
                                .build(&arch.instantiate(&m, k).unwrap())
                                .unwrap()
                        ),
                    "{arch} {k}: accesses below deterministic minimum"
                );
                // Throughput can't beat the compute bound by more than the
                // pipelining overlap allows; sanity: fps < 10000.
                assert!(e.throughput_fps < 10_000.0, "{arch} {k}");
                // Coarse pipelining: throughput >= 1/latency.
                assert!(
                    e.throughput_fps * e.latency_s >= 0.999,
                    "{arch} {k}: throughput below 1/latency"
                );
            }
        }
    }

    #[test]
    fn fast_lane_matches_rich_lane_exactly() {
        // The core equivalence invariant: evaluate_summary must be
        // bit-identical to evaluate().summary() with one scratch reused
        // across every design (warm-buffer path included).
        let mut scratch = EvalScratch::new();
        for m in [zoo::resnet50(), zoo::mobilenet_v2(), zoo::xception()] {
            let board = FpgaBoard::zcu102();
            let builder = MultipleCeBuilder::new(&m, &board);
            for arch in templates::Architecture::ALL {
                for k in [2usize, 5, 11] {
                    let acc = builder.build(&arch.instantiate(&m, k).unwrap()).unwrap();
                    let rich = CostModel::evaluate(&acc).summary();
                    let fast = CostModel::evaluate_summary(&acc, &mut scratch);
                    assert_eq!(fast, rich, "{} {arch} {k}", m.name());
                }
            }
        }
    }

    #[test]
    fn fast_lane_matches_rich_lane_under_ablation_configs() {
        use crate::config::PipelineLatencyMode;
        let m = zoo::resnet50();
        let builder = MultipleCeBuilder::new(&m, &FpgaBoard::zc706());
        let mut scratch = EvalScratch::new();
        for config in [
            ModelConfig::default(),
            ModelConfig::new().with_pipeline_latency(PipelineLatencyMode::LockstepStages),
            ModelConfig::new().with_bandwidth_derate(0.6),
        ] {
            for arch in templates::Architecture::ALL {
                let acc = builder.build(&arch.instantiate(&m, 5).unwrap()).unwrap();
                let rich = CostModel::evaluate_with(&acc, &config).summary();
                let fast = CostModel::evaluate_summary_with(&acc, &config, &mut scratch);
                assert_eq!(fast, rich, "{arch} {config:?}");
            }
        }
    }

    #[test]
    fn coarse_pipeline_throughput_exceeds_inverse_latency() {
        let m = zoo::resnet50();
        let e = eval(
            &m,
            &FpgaBoard::zcu102(),
            templates::Architecture::Segmented,
            4,
        );
        // Four balanced coarse-pipelined segments: throughput should be
        // well above 1/latency (ideally ~4x).
        assert!(e.throughput_fps * e.latency_s > 1.5);
    }

    #[test]
    fn segmented_rr_throughput_is_inverse_latency() {
        let m = zoo::resnet50();
        let e = eval(
            &m,
            &FpgaBoard::zcu102(),
            templates::Architecture::SegmentedRr,
            4,
        );
        assert!((e.throughput_fps * e.latency_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn segment_reports_cover_all_layers() {
        let m = zoo::xception();
        let e = eval(
            &m,
            &FpgaBoard::vcu110(),
            templates::Architecture::SegmentedRr,
            3,
        );
        let total: usize = e.segments.iter().map(|s| s.last - s.first + 1).sum();
        assert_eq!(total, 74);
        assert_eq!(e.layers.len(), 74);
        assert_eq!(e.segments.len(), 25); // ceil(74/3)
    }

    #[test]
    fn traffic_split_sums() {
        let m = zoo::mobilenet_v2();
        let e = eval(&m, &FpgaBoard::zc706(), templates::Architecture::Hybrid, 5);
        assert_eq!(e.offchip_bytes, e.offchip_weight_bytes + e.offchip_fm_bytes);
        let seg_sum: Bytes = e.segments.iter().map(|s| s.traffic()).sum();
        assert_eq!(seg_sum, e.offchip_bytes);
    }

    #[test]
    fn throughput_fps_in_plausible_range() {
        // ResNet-50 on ZC706 @200 MHz: paper's Fig. 5 spans ~10-30 FPS.
        let m = zoo::resnet50();
        let mut best = 0.0f64;
        for arch in templates::Architecture::ALL {
            for k in 2..=11 {
                let e = eval(&m, &FpgaBoard::zc706(), arch, k);
                best = best.max(e.throughput_fps);
                assert!(
                    e.throughput_fps > 1.0 && e.throughput_fps < 200.0,
                    "{arch} {k}: {} FPS",
                    e.throughput_fps
                );
            }
        }
        assert!(best > 8.0, "best throughput {best} FPS too low");
    }

    #[test]
    fn hybrid_minimizes_offchip_accesses() {
        // Paper §V-C: Hybrid always achieves the minimum off-chip accesses
        // (its design objective). With generous per-CE weight buffers its
        // traffic should sit at/near the deterministic minimum on a large
        // board.
        let m = zoo::resnet50();
        let board = FpgaBoard::zcu102();
        let spec = templates::hybrid(&m, 4).unwrap();
        let acc = MultipleCeBuilder::new(&m, &board).build(&spec).unwrap();
        let e = CostModel::evaluate(&acc);
        let min = CostModel::minimum_offchip_bytes(&acc);
        assert!(
            e.offchip_bytes.as_f64() < 1.6 * min.as_f64(),
            "hybrid traffic {} vs min {min}",
            e.offchip_bytes
        );
    }

    #[test]
    fn segmented_rr_buffer_requirement_dominated_by_weights() {
        // Eq. 5: pipelined blocks require all weights on-chip; for
        // ResNet-50 that is ~22.4 MiB of 8-bit weights.
        let m = zoo::resnet50();
        let e = eval(
            &m,
            &FpgaBoard::zcu102(),
            templates::Architecture::SegmentedRr,
            4,
        );
        let w = Bytes::new(m.conv_weights());
        assert!(e.buffer_req_bytes.as_f64() > 0.95 * w.as_f64());
    }

    #[test]
    fn memory_stall_fraction_bounded() {
        let m = zoo::resnet50();
        for arch in templates::Architecture::ALL {
            let e = eval(&m, &FpgaBoard::zc706(), arch, 2);
            assert!((0.0..=1.0).contains(&e.memory_stall_fraction), "{arch}");
        }
    }

    #[test]
    fn more_pes_never_hurt_single_ce_compute() {
        let m = zoo::resnet50();
        let spec = templates::segmented_rr(&m, 2).unwrap();
        let small = MultipleCeBuilder::new(&m, &FpgaBoard::vcu108())
            .build(&spec)
            .unwrap();
        let big = MultipleCeBuilder::new(&m, &FpgaBoard::zcu102())
            .build(&spec)
            .unwrap();
        let es = CostModel::evaluate(&small);
        let eb = CostModel::evaluate(&big);
        // 2520 DSPs vs 768 DSPs: more compute resources must not slow the
        // compute-bound part down.
        let cs: f64 = es.segments.iter().map(|s| s.compute_s).sum();
        let cb: f64 = eb.segments.iter().map(|s| s.compute_s).sum();
        assert!(cb <= cs * 1.01, "compute time grew with PEs: {cb} vs {cs}");
    }
}
