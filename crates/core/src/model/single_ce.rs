//! Single-CE block model: Eq. (1) latency, Eq. (6) off-chip accesses with
//! spill-policy selection, and memory-access time.
//!
//! A single-CE block processes its layers one by one to completion
//! (Fig. 4a). Per layer, compute cycles follow Eq. (1); off-chip traffic
//! follows Eq. (6): if the layer's feature-map working set fits in the
//! engine's FM budget, weights stream once and the OFMs stay on-chip for
//! the next layer; otherwise the model picks the cheaper of
//! output-stationary local-input-stationary (IFMs once, weights re-read
//! per IFM-buffer pass) and local-weight-stationary (weights once, IFMs
//! re-read per weight-buffer pass). Layer time is `max(compute, memory)` —
//! double buffering overlaps transfers with computation, so whichever
//! dominates sets the pace.

use mccm_arch::{
    fuse_groups, fused_group_bytes, BuiltAccelerator, CeBufferAlloc, ComputeEngine, Schedule,
};

use crate::quantity::{Bandwidth, Bytes, Cycles, Macs};
use crate::report::{LayerReport, SpillPolicy};

/// Evaluation of one block over one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockOutcome {
    /// Contribution to latency (stalls included).
    pub time_cycles: Cycles,
    /// Pure compute cycles.
    pub compute_cycles: Cycles,
    /// Memory access cycles (as if serialized; overlap decided by `time`).
    pub memory_cycles: Cycles,
    /// Off-chip weight traffic.
    pub weight_traffic: Bytes,
    /// Off-chip feature-map traffic.
    pub fm_traffic: Bytes,
    /// Useful MACs performed.
    pub useful_macs: Macs,
    /// Busy cycles per participating CE (id, cycles).
    pub busy_per_ce: Vec<(usize, Cycles)>,
    /// Per-layer records.
    pub layers: Vec<LayerReport>,
}

/// The scalar totals of one block evaluation — the subset of
/// [`BlockOutcome`] the summary-only fast lane needs, produced without
/// any heap allocation. Both lanes run the same block-model cores; the
/// full lane additionally collects per-layer records through the cores'
/// `on_layer` callbacks, so the two lanes cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct BlockTotals {
    /// Contribution to latency (stalls included).
    pub time_cycles: Cycles,
    /// Pure compute cycles.
    pub compute_cycles: Cycles,
    /// Memory access cycles (as if serialized; overlap decided by `time`).
    pub memory_cycles: Cycles,
    /// Off-chip weight traffic.
    pub weight_traffic: Bytes,
    /// Off-chip feature-map traffic.
    pub fm_traffic: Bytes,
    /// Useful MACs performed.
    pub useful_macs: Macs,
    /// Largest per-CE busy time within the block (the Eq. 3 bottleneck
    /// used for single-round pipelined throughput).
    pub max_busy_cycles: Cycles,
}

/// Evaluates a single-CE block over layers `first..=last` (Eq. 1, 4, 6).
///
/// `schedule` selects the block's execution order: layer-by-layer runs
/// each layer to completion; depth-first fuses runs of `fuse_depth`
/// consecutive layers, tiling over the fused stack's output rows so
/// intermediate FMs stay in on-chip line buffers. `input_off_chip`: the
/// segment's input FMs come from off-chip (model input or a spilled
/// handoff). `output_off_chip`: the segment's final OFMs must be stored
/// off-chip (model output or a spilled/double-buffered handoff).
#[allow(clippy::too_many_arguments)]
pub fn eval_single_ce(
    acc: &BuiltAccelerator,
    ce_id: usize,
    schedule: Schedule,
    first: usize,
    last: usize,
    input_off_chip: bool,
    output_off_chip: bool,
    bw: Bandwidth,
) -> BlockOutcome {
    let ce = &acc.ces[ce_id];
    let mut layers = Vec::with_capacity(last - first + 1);
    let totals = eval_single_ce_core(
        acc,
        ce_id,
        schedule,
        first,
        last,
        input_off_chip,
        output_off_chip,
        bw,
        |l, compute, w_traffic, fm_load, fm_store, policy| {
            layers.push(LayerReport {
                layer: l,
                ce: ce_id,
                compute_cycles: compute,
                weight_traffic: w_traffic,
                fm_load_traffic: fm_load,
                fm_store_traffic: fm_store,
                policy,
                utilization: ce.utilization(acc.convs[l].dims),
            });
        },
    );
    BlockOutcome {
        time_cycles: totals.time_cycles,
        compute_cycles: totals.compute_cycles,
        memory_cycles: totals.memory_cycles,
        weight_traffic: totals.weight_traffic,
        fm_traffic: totals.fm_traffic,
        useful_macs: totals.useful_macs,
        // A single-CE block's engine is busy for the block's whole time.
        busy_per_ce: vec![(ce_id, totals.time_cycles)],
        layers,
    }
}

/// Allocation-free core of the single-CE block model, shared by both the
/// full [`eval_single_ce`] lane and the summary fast lane. `on_layer`
/// receives `(layer, compute_cycles, weight_traffic, fm_load, fm_store,
/// policy)` per layer; the fast lane passes a no-op.
///
/// This is the single schedule-dispatch point of the cost model: layers
/// are walked in fuse groups of `schedule.fuse_depth()` (layer-by-layer
/// is the degenerate depth-1 case), and each group runs either the fused
/// depth-first step or the per-layer Eq. (6) step. A fuse group of one
/// layer, or one whose fused working set exceeds the CE's buffer, takes
/// the exact per-layer path — so `DepthFirst { fuse_depth: 1 }` is
/// bit-identical to `LayerByLayer` by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_single_ce_core(
    acc: &BuiltAccelerator,
    ce_id: usize,
    schedule: Schedule,
    first: usize,
    last: usize,
    input_off_chip: bool,
    output_off_chip: bool,
    bw: Bandwidth,
    mut on_layer: impl FnMut(usize, Cycles, Bytes, Bytes, Bytes, SpillPolicy),
) -> BlockTotals {
    let ctx = StepCtx {
        acc,
        ce: &acc.ces[ce_id],
        alloc: &acc.buffers.ce[ce_id],
        act: u64::from(acc.precision.activation_bytes),
        // Capacity available for feature maps once the weight stream
        // buffer is reserved (Eq. 6's constraint re-arranged).
        fm_budget: Bytes::new(
            acc.buffers.ce[ce_id]
                .bytes
                .saturating_sub(acc.buffers.ce[ce_id].weight_stream_bytes),
        ),
        bw,
        last,
        output_off_chip,
    };

    let mut out = BlockTotals::default();
    let mut ifm_on_chip = !input_off_chip;
    for (lo, hi) in fuse_groups(first, last, schedule.fuse_depth()) {
        // A fused group is only worth (and only valid) fusing when it has
        // at least two layers and its whole working set — group weights,
        // line buffers, double-buffered output row — fits the CE's actual
        // allocation. Otherwise fall back to the per-layer step, which is
        // always feasible (it degrades through Eq. 6's spill policies).
        let fusible =
            hi > lo && fused_group_bytes(&acc.convs, lo, hi, acc.precision) <= ctx.alloc.bytes;
        if fusible {
            ifm_on_chip = fused_step(&ctx, lo, hi, ifm_on_chip, &mut out, &mut on_layer);
        } else {
            for l in lo..=hi {
                ifm_on_chip = layer_step(&ctx, l, ifm_on_chip, &mut out, &mut on_layer);
            }
        }
    }
    out.max_busy_cycles = out.time_cycles;
    out
}

/// Per-block invariants threaded through the per-layer / per-group steps.
struct StepCtx<'a> {
    acc: &'a BuiltAccelerator,
    ce: &'a ComputeEngine,
    alloc: &'a CeBufferAlloc,
    /// Bytes per activation element.
    act: u64,
    /// FM capacity once the weight stream buffer is reserved.
    fm_budget: Bytes,
    bw: Bandwidth,
    /// The segment's last layer (boundary-store detection).
    last: usize,
    /// The segment's final OFMs must go off-chip.
    output_off_chip: bool,
}

/// One layer-by-layer step: Eq. (1) compute, Eq. (6) spill-policy argmin,
/// `max(compute, memory)` pacing. Returns whether the layer's OFMs stay
/// on-chip for the next step.
fn layer_step(
    ctx: &StepCtx<'_>,
    l: usize,
    ifm_on_chip: bool,
    out: &mut BlockTotals,
    on_layer: &mut impl FnMut(usize, Cycles, Bytes, Bytes, Bytes, SpillPolicy),
) -> bool {
    let acc = ctx.acc;
    let conv = &acc.convs[l];
    let w_bytes = Bytes::new(acc.weight_bytes(l));
    let ifm_bytes = Bytes::new(acc.ifm_bytes(l));
    let ofm_bytes = Bytes::new(acc.ofm_bytes(l));
    let extra_bytes = Bytes::new(
        acc.precision
            .activation_size(conv.fm_working_set - conv.ifm.elements() - conv.ofm.elements()),
    );
    let working_set = ifm_bytes + ofm_bytes + extra_bytes;
    let must_store = l == ctx.last && ctx.output_off_chip;

    let compute = Cycles::new(ctx.ce.parallelism.latency_cycles(conv.dims));
    let (policy, w_traffic, fm_load, fm_store, ofm_stays) = if ifm_on_chip {
        if working_set <= ctx.fm_budget && !must_store {
            (SpillPolicy::None, w_bytes, Bytes::ZERO, Bytes::ZERO, true)
        } else {
            // OFMs streamed out (boundary store or capacity); IFMs are
            // already resident, weights stream once.
            (
                SpillPolicy::OutputSpill,
                w_bytes,
                Bytes::ZERO,
                ofm_bytes,
                false,
            )
        }
    } else if working_set <= ctx.fm_budget && !must_store {
        // Load IFMs once, keep OFMs for the next layer.
        (SpillPolicy::None, w_bytes, ifm_bytes, Bytes::ZERO, true)
    } else if ifm_bytes + extra_bytes <= ctx.fm_budget {
        // IFMs fit; OFMs streamed out.
        (
            SpillPolicy::OutputSpill,
            w_bytes,
            ifm_bytes,
            ofm_bytes,
            false,
        )
    } else {
        // Nothing fits: Eq. (6)'s argmin over the two locally
        // stationary options and the IFM/weight buffer split.
        let min_ifm_buf =
            Bytes::new((u64::from(conv.spec.kernel.0) * conv.ifm.row_elements() * ctx.act).max(1));
        let min_w_buf = Bytes::new(ctx.alloc.weight_stream_bytes.max(1));
        let budget = ctx.fm_budget.max(min_ifm_buf + min_w_buf);
        let mut best = (
            Bytes::MAX,
            SpillPolicy::LocalInputStationary,
            Bytes::ZERO,
            Bytes::ZERO,
        );
        for i in 1..16u64 {
            let ifm_buf = (budget * i / 16).max(min_ifm_buf);
            let w_buf = budget.saturating_sub(ifm_buf).max(min_w_buf);
            // OS local-IS: IFMs once, weights per IFM-buffer pass.
            let is_passes = ifm_bytes.div_ceil(ifm_buf);
            let is_cost = w_bytes * is_passes + ifm_bytes;
            if is_cost < best.0 {
                best = (
                    is_cost,
                    SpillPolicy::LocalInputStationary,
                    w_bytes * is_passes,
                    ifm_bytes,
                );
            }
            // OS local-WS: weights once, IFMs per weight-buffer pass.
            let ws_passes = w_bytes.div_ceil(w_buf);
            let ws_cost = ifm_bytes * ws_passes + w_bytes;
            if ws_cost < best.0 {
                best = (
                    ws_cost,
                    SpillPolicy::LocalWeightStationary,
                    w_bytes,
                    ifm_bytes * ws_passes,
                );
            }
        }
        (best.1, best.2, best.3, ofm_bytes, false)
    };

    let mem_bytes = w_traffic + fm_load + fm_store;
    let memory = ctx.bw.cycles_for(mem_bytes);
    let time = compute.max(memory);

    out.time_cycles += time;
    out.compute_cycles += compute;
    out.memory_cycles += memory;
    out.weight_traffic += w_traffic;
    out.fm_traffic += fm_load + fm_store;
    out.useful_macs += Macs::new(conv.macs);
    on_layer(l, compute, w_traffic, fm_load, fm_store, policy);
    ofm_stays
}

/// One depth-first fused-group step over layers `lo..=hi` (all resident
/// per the caller's feasibility check): the group tiles over its final
/// layer's output rows, propagating each tile through the whole stack
/// while intermediate FMs stay in on-chip line buffers. Off-chip traffic
/// is therefore only the group's weights (streamed once), an IFM load at
/// the group entry if the previous step spilled, and an OFM store at the
/// group exit if the result cannot stay on-chip. Compute is the plain
/// Eq. (1) sum — the CE runs the same MACs, just reordered — and the
/// group paces at `max(compute, memory)` like any double-buffered step.
/// Returns whether the group's final OFMs stay on-chip.
fn fused_step(
    ctx: &StepCtx<'_>,
    lo: usize,
    hi: usize,
    ifm_on_chip: bool,
    out: &mut BlockTotals,
    on_layer: &mut impl FnMut(usize, Cycles, Bytes, Bytes, Bytes, SpillPolicy),
) -> bool {
    let acc = ctx.acc;
    let ifm_bytes = Bytes::new(acc.ifm_bytes(lo));
    let ofm_bytes = Bytes::new(acc.ofm_bytes(hi));
    let fm_load = if ifm_on_chip { Bytes::ZERO } else { ifm_bytes };
    let must_store = hi == ctx.last && ctx.output_off_chip;
    // After the group retires, its weights and line buffers are dead; the
    // final OFM survives for the next step iff it fits the FM budget.
    let ofm_stays = ofm_bytes <= ctx.fm_budget && !must_store;
    let fm_store = if ofm_stays { Bytes::ZERO } else { ofm_bytes };

    let mut group_compute = Cycles::ZERO;
    let mut group_w = Bytes::ZERO;
    for l in lo..=hi {
        group_compute += Cycles::new(ctx.ce.parallelism.latency_cycles(acc.convs[l].dims));
        group_w += Bytes::new(acc.weight_bytes(l));
        out.useful_macs += Macs::new(acc.convs[l].macs);
    }
    let memory = ctx.bw.cycles_for(group_w + fm_load + fm_store);
    let time = group_compute.max(memory);

    out.time_cycles += time;
    out.compute_cycles += group_compute;
    out.memory_cycles += memory;
    out.weight_traffic += group_w;
    out.fm_traffic += fm_load + fm_store;
    for l in lo..=hi {
        // Per-layer attribution: own compute and weights; the group's FM
        // loads/stores land on its boundary layers.
        on_layer(
            l,
            Cycles::new(ctx.ce.parallelism.latency_cycles(acc.convs[l].dims)),
            Bytes::new(acc.weight_bytes(l)),
            if l == lo { fm_load } else { Bytes::ZERO },
            if l == hi { fm_store } else { Bytes::ZERO },
            SpillPolicy::Fused,
        );
    }
    ofm_stays
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_arch::{notation, MultipleCeBuilder};
    use mccm_cnn::zoo;
    use mccm_fpga::FpgaBoard;

    fn single_ce_acc(board: FpgaBoard) -> BuiltAccelerator {
        let m = zoo::mobilenet_v2();
        let spec = notation::parse("{L1-Last: CE1}").unwrap();
        MultipleCeBuilder::new(&m, &board).build(&spec).unwrap()
    }

    fn bw_of(acc: &BuiltAccelerator) -> Bandwidth {
        Bandwidth::new(acc.board.bytes_per_cycle())
    }

    #[test]
    fn depth_first_fuse1_is_bit_identical_to_layer_by_layer() {
        // fuse_depth = 1 must route through the exact per-layer path.
        for mib in [0.2, 0.5, 4.0, 64.0] {
            let acc = single_ce_acc(FpgaBoard::new("b", 900, mccm_fpga::MiB(mib), 19.2));
            let n = acc.convs.len();
            let lbl = eval_single_ce(
                &acc,
                0,
                Schedule::LayerByLayer,
                0,
                n - 1,
                true,
                true,
                bw_of(&acc),
            );
            let df1 = eval_single_ce(
                &acc,
                0,
                Schedule::DepthFirst { fuse_depth: 1 },
                0,
                n - 1,
                true,
                true,
                bw_of(&acc),
            );
            assert_eq!(lbl, df1, "{mib} MiB");
        }
    }

    #[test]
    fn depth_first_fusion_cuts_fm_traffic_when_layers_spill() {
        // On a small board MobileNetV2's early FMs exceed the budget and
        // layer-by-layer spills; pairwise fusion keeps intermediates in
        // line buffers and must strictly reduce traffic without touching
        // compute cycles.
        let acc = single_ce_acc(FpgaBoard::new("small", 900, mccm_fpga::MiB(0.5), 19.2));
        let n = acc.convs.len();
        let bw = bw_of(&acc);
        let lbl = eval_single_ce(&acc, 0, Schedule::LayerByLayer, 0, n - 1, true, true, bw);
        let df = eval_single_ce(
            &acc,
            0,
            Schedule::DepthFirst { fuse_depth: 2 },
            0,
            n - 1,
            true,
            true,
            bw,
        );
        assert_eq!(df.compute_cycles, lbl.compute_cycles);
        assert!(
            df.layers.iter().any(|l| l.policy == SpillPolicy::Fused),
            "no group fused on the small board"
        );
        assert!(
            df.weight_traffic + df.fm_traffic < lbl.weight_traffic + lbl.fm_traffic,
            "fusion did not reduce traffic: df {} vs lbl {}",
            df.weight_traffic + df.fm_traffic,
            lbl.weight_traffic + lbl.fm_traffic
        );
        // Fused groups stream weights exactly once.
        assert!(df.weight_traffic <= lbl.weight_traffic);
    }

    #[test]
    fn fused_groups_pay_traffic_only_at_boundaries() {
        let acc = single_ce_acc(FpgaBoard::new("small", 900, mccm_fpga::MiB(0.5), 19.2));
        let n = acc.convs.len();
        let df = eval_single_ce(
            &acc,
            0,
            Schedule::DepthFirst { fuse_depth: 3 },
            0,
            n - 1,
            true,
            true,
            bw_of(&acc),
        );
        for group in df.layers.chunks(3) {
            if group.iter().all(|l| l.policy == SpillPolicy::Fused) {
                // Interior layers of a fused group move no FMs off-chip.
                for l in &group[1..group.len() - 1] {
                    assert!(
                        l.fm_traffic().is_zero(),
                        "layer {} leaked FM traffic",
                        l.layer
                    );
                }
                assert!(group.last().unwrap().fm_load_traffic.is_zero());
                assert!(group[0].fm_store_traffic.is_zero());
            }
        }
    }

    #[test]
    fn compute_cycles_match_eq1() {
        let acc = single_ce_acc(FpgaBoard::zcu102());
        let o = eval_single_ce(
            &acc,
            0,
            Schedule::LayerByLayer,
            0,
            acc.convs.len() - 1,
            true,
            true,
            bw_of(&acc),
        );
        let expect: Cycles = acc
            .convs
            .iter()
            .map(|c| Cycles::new(acc.ces[0].parallelism.latency_cycles(c.dims)))
            .sum();
        assert_eq!(o.compute_cycles, expect);
        assert!(o.time_cycles >= o.compute_cycles);
    }

    #[test]
    fn generous_buffers_reach_minimum_accesses() {
        // A board with huge BRAM keeps all FMs on-chip: traffic = all
        // weights + model input + model output.
        let board = FpgaBoard::new("big", 900, mccm_fpga::MiB(64.0), 19.2);
        let acc = single_ce_acc(board);
        let n = acc.convs.len();
        let o = eval_single_ce(
            &acc,
            0,
            Schedule::LayerByLayer,
            0,
            n - 1,
            true,
            true,
            bw_of(&acc),
        );
        let min = Bytes::new(acc.total_weight_bytes() + acc.ifm_bytes(0) + acc.ofm_bytes(n - 1));
        assert_eq!(o.weight_traffic + o.fm_traffic, min);
        // All mid layers keep FMs on chip.
        assert!(o.layers[1..n - 1]
            .iter()
            .all(|l| l.policy == SpillPolicy::None && l.fm_traffic().is_zero()));
    }

    #[test]
    fn tiny_buffers_spill_and_grow_traffic() {
        let tiny = FpgaBoard::new("tiny", 900, mccm_fpga::MiB(0.2), 19.2);
        let acc = single_ce_acc(tiny);
        let n = acc.convs.len();
        let o = eval_single_ce(
            &acc,
            0,
            Schedule::LayerByLayer,
            0,
            n - 1,
            true,
            true,
            bw_of(&acc),
        );
        let min = Bytes::new(acc.total_weight_bytes() + acc.ifm_bytes(0) + acc.ofm_bytes(n - 1));
        assert!(o.weight_traffic + o.fm_traffic > min);
        assert!(o.layers.iter().any(|l| l.policy != SpillPolicy::None));
    }

    #[test]
    fn traffic_monotone_in_bram() {
        let mut last_traffic = Bytes::MAX;
        for mib in [0.2, 0.5, 1.0, 4.0, 16.0, 64.0] {
            let board = FpgaBoard::new("b", 900, mccm_fpga::MiB(mib), 19.2);
            let acc = single_ce_acc(board);
            let o = eval_single_ce(
                &acc,
                0,
                Schedule::LayerByLayer,
                0,
                acc.convs.len() - 1,
                true,
                true,
                bw_of(&acc),
            );
            let t = o.weight_traffic + o.fm_traffic;
            assert!(
                t <= last_traffic,
                "traffic must not grow with BRAM ({mib} MiB)"
            );
            last_traffic = t;
        }
    }

    #[test]
    fn boundary_store_forced() {
        let board = FpgaBoard::new("big", 900, mccm_fpga::MiB(64.0), 19.2);
        let acc = single_ce_acc(board);
        let o = eval_single_ce(
            &acc,
            0,
            Schedule::LayerByLayer,
            0,
            5,
            false,
            true,
            bw_of(&acc),
        );
        // Last layer must store its OFM.
        assert_eq!(
            o.layers.last().unwrap().fm_store_traffic,
            Bytes::new(acc.ofm_bytes(5))
        );
        // On-chip input: no IFM load for the first layer.
        assert!(o.layers[0].fm_traffic().is_zero());
    }

    #[test]
    fn low_bandwidth_makes_memory_bound_layers() {
        let slow = FpgaBoard::new("slow", 900, mccm_fpga::MiB(0.5), 0.4);
        let acc = single_ce_acc(slow);
        let o = eval_single_ce(
            &acc,
            0,
            Schedule::LayerByLayer,
            0,
            acc.convs.len() - 1,
            true,
            true,
            bw_of(&acc),
        );
        assert!(o.time_cycles > o.compute_cycles);
        assert!(o.memory_cycles > o.compute_cycles);
    }

    #[test]
    fn spill_split_prefers_cheaper_option() {
        // With spills, chosen policy cost must be <= the other option's
        // cost under the same budget (sanity of the argmin).
        let tiny = FpgaBoard::new("tiny", 900, mccm_fpga::MiB(0.2), 19.2);
        let m = zoo::resnet50();
        let spec = notation::parse("{L1-Last: CE1}").unwrap();
        let acc = MultipleCeBuilder::new(&m, &tiny).build(&spec).unwrap();
        let o = eval_single_ce(
            &acc,
            0,
            Schedule::LayerByLayer,
            0,
            acc.convs.len() - 1,
            true,
            true,
            bw_of(&acc),
        );
        // Late ResNet layers have big weights and small FMs: local-WS wins;
        // early layers the reverse. Both policies should appear.
        let has_ws = o
            .layers
            .iter()
            .any(|l| l.policy == SpillPolicy::LocalWeightStationary);
        let spills = o
            .layers
            .iter()
            .filter(|l| l.policy != SpillPolicy::None)
            .count();
        assert!(spills > 0);
        assert!(has_ws || spills > 0);
    }
}
