//! The four evaluation metrics and their comparison semantics, including
//! Table V's 10%-tie rule.

use std::fmt;

use crate::report::{EvalSummary, Evaluation};

/// Anything the four paper metrics can be read from: the full
/// [`Evaluation`] or the lean [`EvalSummary`] used by big sweeps.
pub trait MetricSource {
    /// Raw value of `metric` on this record.
    fn metric_value(&self, metric: Metric) -> f64;
}

impl MetricSource for Evaluation {
    fn metric_value(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Latency => self.latency_s,
            Metric::Throughput => self.throughput_fps,
            Metric::OnChipBuffers => self.buffer_req_bytes as f64,
            Metric::OffChipAccesses => self.offchip_bytes as f64,
        }
    }
}

impl MetricSource for EvalSummary {
    fn metric_value(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Latency => self.latency_s,
            Metric::Throughput => self.throughput_fps,
            Metric::OnChipBuffers => self.buffer_req_bytes as f64,
            Metric::OffChipAccesses => self.offchip_bytes as f64,
        }
    }
}

/// A paper metric (Table I / Table V rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// End-to-end single-input latency (lower is better).
    Latency,
    /// Steady-state throughput (higher is better).
    Throughput,
    /// On-chip buffer requirement (lower is better).
    OnChipBuffers,
    /// Off-chip accesses per inference (lower is better).
    OffChipAccesses,
}

impl Metric {
    /// All four metrics in the paper's row order (Table V).
    pub const ALL: [Self; 4] =
        [Self::Latency, Self::Throughput, Self::OffChipAccesses, Self::OnChipBuffers];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Latency => "Latency",
            Self::Throughput => "Throughput",
            Self::OnChipBuffers => "Buffers",
            Self::OffChipAccesses => "Access",
        }
    }

    /// Raw metric value from an evaluation or summary.
    pub fn value<S: MetricSource>(&self, e: &S) -> f64 {
        e.metric_value(*self)
    }

    /// Whether higher values are better.
    pub fn higher_is_better(&self) -> bool {
        matches!(self, Self::Throughput)
    }

    /// Whether `a` is strictly better than `b`.
    pub fn better(&self, a: f64, b: f64) -> bool {
        if self.higher_is_better() {
            a > b
        } else {
            a < b
        }
    }

    /// Index of the best value in `values` (first on exact ties).
    pub fn best_index(&self, values: &[f64]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, &v) in values.iter().enumerate() {
            match best {
                None => best = Some(i),
                Some(b) if self.better(v, values[b]) => best = Some(i),
                _ => {}
            }
        }
        best
    }

    /// Whether `value` ties the best within `frac` relative difference —
    /// the paper treats results within 10% as a tie "to account for
    /// estimation errors" (Table V).
    pub fn within_tie(&self, value: f64, best: f64, frac: f64) -> bool {
        if best == 0.0 {
            return value == 0.0;
        }
        ((value - best) / best).abs() <= frac + 1e-9
    }

    /// Normalizes `values` to the best one (Table I's presentation): the
    /// best becomes 1.0, others ≥ 1.0 (or ≤ 1.0 for throughput).
    pub fn normalize_to_best(&self, values: &[f64]) -> Vec<f64> {
        match self.best_index(values) {
            Some(b) if values[b] != 0.0 => {
                values.iter().map(|&v| v / values[b]).collect()
            }
            _ => values.to_vec(),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_per_metric() {
        assert!(Metric::Latency.better(1.0, 2.0));
        assert!(Metric::Throughput.better(2.0, 1.0));
        assert!(Metric::OnChipBuffers.better(1.0, 2.0));
        assert!(Metric::OffChipAccesses.better(1.0, 2.0));
    }

    #[test]
    fn best_index_finds_extremum() {
        assert_eq!(Metric::Latency.best_index(&[3.0, 1.0, 2.0]), Some(1));
        assert_eq!(Metric::Throughput.best_index(&[3.0, 1.0, 2.0]), Some(0));
        assert_eq!(Metric::Latency.best_index(&[]), None);
        // First wins exact ties.
        assert_eq!(Metric::Latency.best_index(&[1.0, 1.0]), Some(0));
    }

    #[test]
    fn ten_percent_tie_rule() {
        let m = Metric::Latency;
        assert!(m.within_tie(1.05, 1.0, 0.10));
        assert!(m.within_tie(1.10, 1.0, 0.10));
        assert!(!m.within_tie(1.11, 1.0, 0.10));
        let t = Metric::Throughput;
        assert!(t.within_tie(0.95, 1.0, 0.10));
        assert!(!t.within_tie(0.85, 1.0, 0.10));
    }

    #[test]
    fn normalization_like_table_i() {
        let v = Metric::OffChipAccesses.normalize_to_best(&[179.0, 199.0, 100.0]);
        assert!((v[2] - 1.0).abs() < 1e-12);
        assert!((v[0] - 1.79).abs() < 1e-12);
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::OnChipBuffers.to_string(), "Buffers");
        assert_eq!(Metric::ALL.len(), 4);
    }
}
