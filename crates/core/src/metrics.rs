//! The four evaluation metrics and their comparison semantics, including
//! Table V's 10%-tie rule — plus the energy extension ([`Metric::Energy`])
//! that makes whole-cost selection possible in big sweeps.

use std::fmt;

use crate::energy::EnergyModel;
use crate::quantity::{Bytes, Macs};
use crate::report::{EvalSummary, Evaluation};

/// Anything the four paper metrics can be read from: the full
/// [`Evaluation`] or the lean [`EvalSummary`] used by big sweeps.
pub trait MetricSource {
    /// Raw value of `metric` on this record.
    fn metric_value(&self, metric: Metric) -> f64;
}

impl MetricSource for Evaluation {
    fn metric_value(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Latency => self.latency_s,
            Metric::Throughput => self.throughput_fps,
            Metric::OnChipBuffers => self.buffer_req_bytes.as_f64(),
            Metric::OffChipAccesses => self.offchip_bytes.as_f64(),
            Metric::Energy => default_energy_j(self.total_macs, self.offchip_bytes, self.latency_s),
        }
    }
}

impl MetricSource for EvalSummary {
    fn metric_value(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Latency => self.latency_s,
            Metric::Throughput => self.throughput_fps,
            Metric::OnChipBuffers => self.buffer_req_bytes.as_f64(),
            Metric::OffChipAccesses => self.offchip_bytes.as_f64(),
            Metric::Energy => default_energy_j(self.total_macs, self.offchip_bytes, self.latency_s),
        }
    }
}

/// Per-inference energy in joules under the default [`EnergyModel`]
/// coefficients — the shared read both [`MetricSource`] impls go through,
/// so `Metric::Energy` is bit-identical between the rich and fast lanes.
fn default_energy_j(total_macs: Macs, offchip_bytes: Bytes, latency_s: f64) -> f64 {
    EnergyModel::default()
        .estimate_parts(total_macs, offchip_bytes, latency_s)
        .total_j()
        .get()
}

/// A paper metric (Table I / Table V rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// End-to-end single-input latency (lower is better).
    Latency,
    /// Steady-state throughput (higher is better).
    Throughput,
    /// On-chip buffer requirement (lower is better).
    OnChipBuffers,
    /// Off-chip accesses per inference (lower is better).
    OffChipAccesses,
    /// Estimated energy per inference in joules under the default
    /// [`EnergyModel`] coefficients (lower is better) — the whole-cost
    /// extension beyond the paper's four metrics.
    Energy,
}

impl Metric {
    /// All four metrics in the paper's row order (Table V).
    pub const ALL: [Self; 4] = [
        Self::Latency,
        Self::Throughput,
        Self::OffChipAccesses,
        Self::OnChipBuffers,
    ];

    /// The paper's four metrics plus [`Metric::Energy`] — the objective
    /// set energy-aware sweeps and the guided optimizer rank on.
    pub const WITH_ENERGY: [Self; 5] = [
        Self::Latency,
        Self::Throughput,
        Self::OffChipAccesses,
        Self::OnChipBuffers,
        Self::Energy,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Latency => "Latency",
            Self::Throughput => "Throughput",
            Self::OnChipBuffers => "Buffers",
            Self::OffChipAccesses => "Access",
            Self::Energy => "Energy",
        }
    }

    /// Raw metric value from an evaluation or summary.
    pub fn value<S: MetricSource>(&self, e: &S) -> f64 {
        e.metric_value(*self)
    }

    /// Parses a metric from its (case-insensitive) CLI name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "latency" => Some(Self::Latency),
            "throughput" | "fps" => Some(Self::Throughput),
            "buffers" | "onchipbuffers" => Some(Self::OnChipBuffers),
            "access" | "accesses" | "offchipaccesses" => Some(Self::OffChipAccesses),
            "energy" => Some(Self::Energy),
            _ => None,
        }
    }

    /// Whether higher values are better.
    pub fn higher_is_better(&self) -> bool {
        matches!(self, Self::Throughput)
    }

    /// Whether `a` is strictly better than `b`.
    pub fn better(&self, a: f64, b: f64) -> bool {
        if self.higher_is_better() {
            a > b
        } else {
            a < b
        }
    }

    /// Index of the best value in `values` (first on exact ties).
    pub fn best_index(&self, values: &[f64]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, &v) in values.iter().enumerate() {
            match best {
                None => best = Some(i),
                Some(b) if self.better(v, values[b]) => best = Some(i),
                _ => {}
            }
        }
        best
    }

    /// Whether `value` ties the best within `frac` relative difference —
    /// the paper treats results within 10% as a tie "to account for
    /// estimation errors" (Table V).
    pub fn within_tie(&self, value: f64, best: f64, frac: f64) -> bool {
        if best == 0.0 {
            return value == 0.0;
        }
        ((value - best) / best).abs() <= frac + 1e-9
    }

    /// Normalizes `values` to the best one (Table I's presentation): the
    /// best becomes 1.0, others ≥ 1.0 (or ≤ 1.0 for throughput).
    pub fn normalize_to_best(&self, values: &[f64]) -> Vec<f64> {
        match self.best_index(values) {
            Some(b) if values[b] != 0.0 => values.iter().map(|&v| v / values[b]).collect(),
            _ => values.to_vec(),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_per_metric() {
        assert!(Metric::Latency.better(1.0, 2.0));
        assert!(Metric::Throughput.better(2.0, 1.0));
        assert!(Metric::OnChipBuffers.better(1.0, 2.0));
        assert!(Metric::OffChipAccesses.better(1.0, 2.0));
    }

    #[test]
    fn best_index_finds_extremum() {
        assert_eq!(Metric::Latency.best_index(&[3.0, 1.0, 2.0]), Some(1));
        assert_eq!(Metric::Throughput.best_index(&[3.0, 1.0, 2.0]), Some(0));
        assert_eq!(Metric::Latency.best_index(&[]), None);
        // First wins exact ties.
        assert_eq!(Metric::Latency.best_index(&[1.0, 1.0]), Some(0));
    }

    #[test]
    fn ten_percent_tie_rule() {
        let m = Metric::Latency;
        assert!(m.within_tie(1.05, 1.0, 0.10));
        assert!(m.within_tie(1.10, 1.0, 0.10));
        assert!(!m.within_tie(1.11, 1.0, 0.10));
        let t = Metric::Throughput;
        assert!(t.within_tie(0.95, 1.0, 0.10));
        assert!(!t.within_tie(0.85, 1.0, 0.10));
    }

    #[test]
    fn normalization_like_table_i() {
        let v = Metric::OffChipAccesses.normalize_to_best(&[179.0, 199.0, 100.0]);
        assert!((v[2] - 1.0).abs() < 1e-12);
        assert!((v[0] - 1.79).abs() < 1e-12);
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::OnChipBuffers.to_string(), "Buffers");
        assert_eq!(Metric::ALL.len(), 4);
        assert_eq!(Metric::WITH_ENERGY.len(), 5);
        assert_eq!(Metric::Energy.to_string(), "Energy");
        assert!(!Metric::Energy.higher_is_better());
        // WITH_ENERGY extends ALL in order.
        assert_eq!(&Metric::WITH_ENERGY[..4], &Metric::ALL[..]);
    }

    #[test]
    fn by_name_round_trips_and_rejects_unknowns() {
        for m in Metric::WITH_ENERGY {
            assert_eq!(Metric::by_name(m.name()), Some(m));
            assert_eq!(Metric::by_name(&m.name().to_ascii_uppercase()), Some(m));
        }
        assert_eq!(Metric::by_name("fps"), Some(Metric::Throughput));
        assert_eq!(Metric::by_name("accesses"), Some(Metric::OffChipAccesses));
        assert_eq!(Metric::by_name("power"), None);
        assert_eq!(Metric::by_name(""), None);
    }

    #[test]
    fn within_tie_zero_best_requires_exact_zero() {
        // A zero best makes the relative difference undefined; only an
        // exact zero ties it, for either metric direction.
        for m in [Metric::Latency, Metric::Throughput] {
            assert!(m.within_tie(0.0, 0.0, 0.10));
            assert!(!m.within_tie(1e-300, 0.0, 0.10));
            assert!(!m.within_tie(-1e-300, 0.0, 0.10));
        }
    }

    #[test]
    fn within_tie_boundary_absorbs_rounding_noise() {
        let m = Metric::Latency;
        // The +1e-9 slack admits values an ulp past the exact 10% edge...
        assert!(m.within_tie(1.1 + 1e-10, 1.0, 0.10));
        assert!(m.within_tie(1.0 + (0.10 + 1e-9), 1.0, 0.10));
        // ...but nothing materially beyond it.
        assert!(!m.within_tie(1.0 + (0.10 + 3e-9), 1.0, 0.10));
        // Direction-symmetric: throughput ties from below.
        let t = Metric::Throughput;
        assert!(t.within_tie(0.9 - 1e-10, 1.0, 0.10));
        assert!(!t.within_tie(0.9 - 3e-9, 1.0, 0.10));
    }

    #[test]
    fn normalize_to_best_zero_best_and_direction() {
        // A zero best would divide by zero: the values come back verbatim.
        let z = Metric::Latency.normalize_to_best(&[0.0, 2.0, 3.0]);
        assert_eq!(z, vec![0.0, 2.0, 3.0]);
        // Empty input stays empty.
        assert!(Metric::Latency.normalize_to_best(&[]).is_empty());
        // Throughput normalizes against its maximum: best = 1.0, rest ≤ 1.
        let t = Metric::Throughput.normalize_to_best(&[50.0, 100.0, 25.0]);
        assert!((t[1] - 1.0).abs() < 1e-12);
        assert!((t[0] - 0.5).abs() < 1e-12);
        assert!((t[2] - 0.25).abs() < 1e-12);
        // Lower-is-better metrics normalize against their minimum: rest ≥ 1.
        let l = Metric::Latency.normalize_to_best(&[4.0, 2.0, 8.0]);
        assert!((l[1] - 1.0).abs() < 1e-12);
        assert!((l[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_metric_reads_identically_from_both_record_kinds() {
        use crate::report::{EvalSummary, Evaluation};
        let eval = Evaluation {
            notation: String::new(),
            model_name: String::new(),
            board_name: String::new(),
            ce_count: 2,
            total_macs: Macs::new(3_000_000_000),
            latency_s: 0.02,
            throughput_fps: 50.0,
            buffer_req_bytes: Bytes::new(1),
            buffer_alloc_bytes: Bytes::new(1),
            offchip_bytes: Bytes::new(40_000_000),
            offchip_weight_bytes: Bytes::ZERO,
            offchip_fm_bytes: Bytes::ZERO,
            memory_stall_fraction: 0.0,
            segments: vec![],
            ces: vec![],
            layers: vec![],
        };
        let summary: EvalSummary = eval.summary();
        let a = Metric::Energy.value(&eval);
        let b = Metric::Energy.value(&summary);
        assert!(a > 0.0 && a.is_finite());
        assert_eq!(a.to_bits(), b.to_bits());
        // And it matches the energy model's own total.
        let direct = crate::energy::EnergyModel::default()
            .estimate_summary(&summary)
            .total_j();
        assert_eq!(a.to_bits(), direct.get().to_bits());
    }
}
