//! Model-accuracy bookkeeping against a reference evaluator (Eq. 10).
//!
//! The paper validates MCCM against Vitis HLS synthesis; this reproduction
//! validates against the event-driven simulator in `mccm-sim`. The
//! accuracy definition is identical:
//!
//! ```text
//! Accuracy = 100 × (1 − |reference − estimated| / reference) %
//! ```

use crate::metrics::Metric;

/// Eq. (10): percentage accuracy of an estimate against a reference.
///
/// Values below 0 (estimates off by more than 2×) are clamped to 0 so that
/// aggregates stay meaningful. The reference must be a non-negative
/// measurement (times, bytes, rates) — a negative reference flips the
/// relative-error sign convention and is a caller bug, rejected in release
/// builds too (same policy as the [`crate::quantity`] constructors: a
/// poisoned aggregate is worse than a panic).
///
/// # Panics
///
/// If `reference` is negative (NaN passes through and yields NaN).
pub fn accuracy_pct(reference: f64, estimated: f64) -> f64 {
    assert!(
        reference >= 0.0 || reference.is_nan(),
        "accuracy_pct reference must be non-negative, got {reference}"
    );
    if reference == 0.0 {
        return if estimated == 0.0 { 100.0 } else { 0.0 };
    }
    (100.0 * (1.0 - ((reference - estimated) / reference).abs())).max(0.0)
}

/// One validation record: a metric estimated by the model and measured by
/// the reference evaluator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRecord {
    /// Which metric.
    pub metric: Metric,
    /// Reference (simulator) value.
    pub reference: f64,
    /// Model estimate.
    pub estimated: f64,
}

impl AccuracyRecord {
    /// Eq. (10) accuracy of this record.
    pub fn accuracy(&self) -> f64 {
        accuracy_pct(self.reference, self.estimated)
    }
}

/// Max/min/average aggregation of accuracies (Table IV's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySummary {
    /// Highest accuracy in the set.
    pub max: f64,
    /// Lowest accuracy in the set.
    pub min: f64,
    /// Mean accuracy.
    pub average: f64,
    /// Number of (finite) records aggregated.
    pub count: usize,
    /// NaN inputs that were skipped instead of aggregated — a non-zero
    /// value flags a broken upstream record without corrupting max/min/
    /// average (NaN used to poison all three silently: `f64::max`/`min`
    /// drop NaN but the sum does not).
    pub skipped_nan: usize,
}

impl AccuracySummary {
    /// Aggregates an iterator of accuracy percentages.
    ///
    /// NaN values are skipped and counted in [`Self::skipped_nan`];
    /// returns `None` when no non-NaN value remains.
    pub fn from_accuracies(values: impl IntoIterator<Item = f64>) -> Option<Self> {
        let mut max = f64::MIN;
        let mut min = f64::MAX;
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut skipped_nan = 0usize;
        for v in values {
            if v.is_nan() {
                skipped_nan += 1;
                continue;
            }
            max = max.max(v);
            min = min.min(v);
            sum += v;
            count += 1;
        }
        // Record counts stay far below 2^53, so the f64 mean is exact.
        #[allow(clippy::cast_precision_loss)]
        let average = sum / count as f64;
        (count > 0).then_some(Self {
            max,
            min,
            average,
            count,
            skipped_nan,
        })
    }

    /// Aggregates records.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a AccuracyRecord>) -> Option<Self> {
        Self::from_accuracies(records.into_iter().map(AccuracyRecord::accuracy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_10_examples() {
        assert!((accuracy_pct(100.0, 100.0) - 100.0).abs() < 1e-12);
        assert!((accuracy_pct(100.0, 90.0) - 90.0).abs() < 1e-12);
        assert!((accuracy_pct(100.0, 110.0) - 90.0).abs() < 1e-12);
        assert!((accuracy_pct(100.0, 300.0) - 0.0).abs() < 1e-12); // clamped
    }

    #[test]
    fn zero_reference() {
        assert_eq!(accuracy_pct(0.0, 0.0), 100.0);
        assert_eq!(accuracy_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn summary_aggregates() {
        let records = [
            AccuracyRecord {
                metric: Metric::Latency,
                reference: 10.0,
                estimated: 9.0,
            },
            AccuracyRecord {
                metric: Metric::Latency,
                reference: 10.0,
                estimated: 10.0,
            },
            AccuracyRecord {
                metric: Metric::Latency,
                reference: 10.0,
                estimated: 8.0,
            },
        ];
        let s = AccuracySummary::from_records(records.iter()).unwrap();
        assert!((s.max - 100.0).abs() < 1e-12);
        assert!((s.min - 80.0).abs() < 1e-12);
        assert!((s.average - 90.0).abs() < 1e-12);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn empty_summary_is_none() {
        assert!(AccuracySummary::from_accuracies(std::iter::empty()).is_none());
    }

    #[test]
    fn nan_inputs_are_skipped_with_count() {
        // Regression: a single NaN used to corrupt the average (and leave
        // max/min whatever f64::max's NaN-dropping happened to produce)
        // while reporting a full count.
        let s = AccuracySummary::from_accuracies([90.0, f64::NAN, 80.0, f64::NAN]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.skipped_nan, 2);
        assert!((s.max - 90.0).abs() < 1e-12);
        assert!((s.min - 80.0).abs() < 1e-12);
        assert!((s.average - 85.0).abs() < 1e-12);
        // All-NaN input aggregates nothing.
        assert!(AccuracySummary::from_accuracies([f64::NAN, f64::NAN]).is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_reference_is_a_caller_bug() {
        // `assert!`, not `debug_assert!`: this must fire in release too.
        accuracy_pct(-1.0, 1.0);
    }
}
