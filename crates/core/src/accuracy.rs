//! Model-accuracy bookkeeping against a reference evaluator (Eq. 10).
//!
//! The paper validates MCCM against Vitis HLS synthesis; this reproduction
//! validates against the event-driven simulator in `mccm-sim`. The
//! accuracy definition is identical:
//!
//! ```text
//! Accuracy = 100 × (1 − |reference − estimated| / reference) %
//! ```

use crate::metrics::Metric;

/// Eq. (10): percentage accuracy of an estimate against a reference.
///
/// Values below 0 (estimates off by more than 2×) are clamped to 0 so that
/// aggregates stay meaningful.
pub fn accuracy_pct(reference: f64, estimated: f64) -> f64 {
    if reference == 0.0 {
        return if estimated == 0.0 { 100.0 } else { 0.0 };
    }
    (100.0 * (1.0 - ((reference - estimated) / reference).abs())).max(0.0)
}

/// One validation record: a metric estimated by the model and measured by
/// the reference evaluator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRecord {
    /// Which metric.
    pub metric: Metric,
    /// Reference (simulator) value.
    pub reference: f64,
    /// Model estimate.
    pub estimated: f64,
}

impl AccuracyRecord {
    /// Eq. (10) accuracy of this record.
    pub fn accuracy(&self) -> f64 {
        accuracy_pct(self.reference, self.estimated)
    }
}

/// Max/min/average aggregation of accuracies (Table IV's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySummary {
    /// Highest accuracy in the set.
    pub max: f64,
    /// Lowest accuracy in the set.
    pub min: f64,
    /// Mean accuracy.
    pub average: f64,
    /// Number of records aggregated.
    pub count: usize,
}

impl AccuracySummary {
    /// Aggregates an iterator of accuracy percentages.
    pub fn from_accuracies(values: impl IntoIterator<Item = f64>) -> Option<Self> {
        let mut max = f64::MIN;
        let mut min = f64::MAX;
        let mut sum = 0.0;
        let mut count = 0usize;
        for v in values {
            max = max.max(v);
            min = min.min(v);
            sum += v;
            count += 1;
        }
        (count > 0).then(|| Self { max, min, average: sum / count as f64, count })
    }

    /// Aggregates records.
    pub fn from_records<'a>(
        records: impl IntoIterator<Item = &'a AccuracyRecord>,
    ) -> Option<Self> {
        Self::from_accuracies(records.into_iter().map(AccuracyRecord::accuracy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_10_examples() {
        assert!((accuracy_pct(100.0, 100.0) - 100.0).abs() < 1e-12);
        assert!((accuracy_pct(100.0, 90.0) - 90.0).abs() < 1e-12);
        assert!((accuracy_pct(100.0, 110.0) - 90.0).abs() < 1e-12);
        assert!((accuracy_pct(100.0, 300.0) - 0.0).abs() < 1e-12); // clamped
    }

    #[test]
    fn zero_reference() {
        assert_eq!(accuracy_pct(0.0, 0.0), 100.0);
        assert_eq!(accuracy_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn summary_aggregates() {
        let records = [
            AccuracyRecord { metric: Metric::Latency, reference: 10.0, estimated: 9.0 },
            AccuracyRecord { metric: Metric::Latency, reference: 10.0, estimated: 10.0 },
            AccuracyRecord { metric: Metric::Latency, reference: 10.0, estimated: 8.0 },
        ];
        let s = AccuracySummary::from_records(records.iter()).unwrap();
        assert!((s.max - 100.0).abs() < 1e-12);
        assert!((s.min - 80.0).abs() < 1e-12);
        assert!((s.average - 90.0).abs() < 1e-12);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn empty_summary_is_none() {
        assert!(AccuracySummary::from_accuracies(std::iter::empty()).is_none());
    }
}
