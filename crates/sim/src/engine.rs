//! The discrete-event simulation kernel: a time-ordered event queue and a
//! FIFO off-chip memory channel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in accelerator clock cycles.
pub type Cycles = u64;

/// Events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A DMA transfer finished. `phase` distinguishes loads from stores.
    DmaDone {
        /// Global tile id.
        tile: usize,
        /// Load (`false`) or store (`true`).
        store: bool,
    },
    /// A compute engine finished a tile.
    CeDone {
        /// Engine id.
        ce: usize,
        /// Global tile id.
        tile: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: Cycles,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Time-ordered queue of [`Event`]s.
#[derive(Debug, Default)]
pub struct Events {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

impl Events {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute `time`.
    pub fn push(&mut self, time: Cycles, event: Event) {
        self.heap.push(Reverse(Entry {
            time,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Cycles, Event)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A serialized off-chip memory channel: one transfer at a time, FIFO by
/// request arrival (ties broken by tile id), with a fixed per-transfer
/// latency and burst-rounded occupancy.
#[derive(Debug)]
pub struct DmaChannel {
    /// Waiting requests: `(arrival, tile, store, occupancy_bytes)`.
    waiting: BinaryHeap<Reverse<(Cycles, usize, bool, u64)>>,
    busy: bool,
    latency: Cycles,
    bytes_per_cycle: f64,
    /// Total channel-busy cycles (for utilization stats).
    pub busy_cycles: Cycles,
    /// Transfers served.
    pub transfers: u64,
}

impl DmaChannel {
    /// Creates a channel with `bytes_per_cycle` bandwidth and fixed
    /// per-transfer `latency`.
    pub fn new(bytes_per_cycle: f64, latency: Cycles) -> Self {
        Self {
            waiting: BinaryHeap::new(),
            busy: false,
            latency,
            bytes_per_cycle,
            busy_cycles: 0,
            transfers: 0,
        }
    }

    /// Enqueues a transfer request at time `now`. If the channel is idle
    /// the transfer starts immediately and its completion event is pushed.
    pub fn request(
        &mut self,
        now: Cycles,
        tile: usize,
        store: bool,
        occupancy_bytes: u64,
        events: &mut Events,
    ) {
        self.waiting
            .push(Reverse((now, tile, store, occupancy_bytes)));
        if !self.busy {
            self.start_next(now, events);
        }
    }

    /// Called on a `DmaDone` event: frees the channel and starts the next
    /// waiting transfer, if any.
    pub fn on_done(&mut self, now: Cycles, events: &mut Events) {
        self.busy = false;
        self.start_next(now, events);
    }

    fn start_next(&mut self, now: Cycles, events: &mut Events) {
        if let Some(Reverse((_, tile, store, bytes))) = self.waiting.pop() {
            let duration = self.latency + (bytes as f64 / self.bytes_per_cycle).ceil() as Cycles;
            self.busy = true;
            self.busy_cycles += duration;
            self.transfers += 1;
            events.push(now + duration, Event::DmaDone { tile, store });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = Events::new();
        q.push(10, Event::CeDone { ce: 0, tile: 1 });
        q.push(
            5,
            Event::DmaDone {
                tile: 0,
                store: false,
            },
        );
        q.push(10, Event::CeDone { ce: 1, tile: 2 });
        assert_eq!(q.pop().unwrap().0, 5);
        // Same-time events pop in insertion order.
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 10);
        assert_eq!(e, Event::CeDone { ce: 0, tile: 1 });
        assert_eq!(q.pop().unwrap().1, Event::CeDone { ce: 1, tile: 2 });
        assert!(q.is_empty());
    }

    #[test]
    fn dma_serializes_transfers() {
        let mut q = Events::new();
        // 1 byte/cycle, zero latency.
        let mut dma = DmaChannel::new(1.0, 0);
        dma.request(0, 0, false, 100, &mut q);
        dma.request(0, 1, false, 50, &mut q);
        // First completes at 100; second only starts then.
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 100);
        dma.on_done(t, &mut q);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 150);
        assert_eq!(
            e,
            Event::DmaDone {
                tile: 1,
                store: false
            }
        );
        assert_eq!(dma.transfers, 2);
        assert_eq!(dma.busy_cycles, 150);
    }

    #[test]
    fn dma_fifo_by_arrival() {
        let mut q = Events::new();
        let mut dma = DmaChannel::new(1.0, 10);
        dma.request(0, 5, false, 10, &mut q); // busy until 20
        dma.request(1, 3, false, 10, &mut q); // arrives second
        dma.request(2, 1, false, 10, &mut q); // arrives third
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 20);
        dma.on_done(t, &mut q);
        // Earliest ARRIVAL (tile 3) served before tile 1 despite lower id.
        let (_, e) = q.pop().unwrap();
        assert_eq!(
            e,
            Event::DmaDone {
                tile: 3,
                store: false
            }
        );
    }

    #[test]
    fn dma_latency_applies_per_transfer() {
        let mut q = Events::new();
        let mut dma = DmaChannel::new(16.0, 100);
        dma.request(0, 0, false, 160, &mut q);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 110);
    }
}
