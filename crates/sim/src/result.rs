//! Simulator outputs and their comparison against the analytical model.

use mccm_core::{accuracy_pct, AccuracyRecord, Evaluation, Metric};

/// Measured results of simulating an accelerator on a stream of images.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// First-image end-to-end latency in seconds.
    pub latency_s: f64,
    /// Steady-state throughput in frames per second.
    pub throughput_fps: f64,
    /// Useful off-chip bytes per inference (burst padding excluded, so the
    /// count is the deterministic architectural traffic).
    pub offchip_bytes: u64,
    /// Weight portion of the traffic.
    pub offchip_weight_bytes: u64,
    /// Feature-map portion of the traffic.
    pub offchip_fm_bytes: u64,
    /// Implemented on-chip buffers: the builder's plan mapped onto whole
    /// BRAM banks plus per-engine control storage (what synthesis would
    /// report).
    pub implemented_buffer_bytes: u64,
    /// Per-segment `(start, end)` times of the first image, in seconds.
    pub segment_windows: Vec<(f64, f64)>,
    /// Off-chip channel occupancy over the whole run, in `[0, 1]`.
    pub dma_utilization: f64,
    /// Events processed (diagnostic).
    pub events: u64,
    /// Images simulated.
    pub images: usize,
}

impl SimResult {
    /// Accuracy records of a model evaluation against this reference
    /// (Eq. 10), one per Table IV metric.
    ///
    /// Latency and throughput compare timed quantities; buffers compare
    /// the model's planned bytes to the bank-quantized implementation;
    /// accesses compare deterministic byte counts.
    pub fn accuracy_records(&self, model: &Evaluation) -> Vec<AccuracyRecord> {
        vec![
            AccuracyRecord {
                metric: Metric::Latency,
                reference: self.latency_s,
                estimated: model.latency_s,
            },
            AccuracyRecord {
                metric: Metric::Throughput,
                reference: self.throughput_fps,
                estimated: model.throughput_fps,
            },
            AccuracyRecord {
                metric: Metric::OnChipBuffers,
                reference: self.implemented_buffer_bytes as f64,
                estimated: model.buffer_alloc_bytes.as_f64(),
            },
            AccuracyRecord {
                metric: Metric::OffChipAccesses,
                reference: self.offchip_bytes as f64,
                estimated: model.offchip_bytes.as_f64(),
            },
        ]
    }

    /// Eq. (10) latency accuracy against a model evaluation.
    pub fn latency_accuracy(&self, model: &Evaluation) -> f64 {
        accuracy_pct(self.latency_s, model.latency_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_records_cover_all_metrics() {
        let sim = SimResult {
            latency_s: 0.010,
            throughput_fps: 100.0,
            offchip_bytes: 1000,
            offchip_weight_bytes: 800,
            offchip_fm_bytes: 200,
            implemented_buffer_bytes: 1_048_576,
            segment_windows: vec![],
            dma_utilization: 0.5,
            events: 10,
            images: 4,
        };
        let model = Evaluation {
            notation: String::new(),
            model_name: String::new(),
            board_name: String::new(),
            ce_count: 1,
            total_macs: mccm_core::Macs::ZERO,
            latency_s: 0.009,
            throughput_fps: 105.0,
            buffer_req_bytes: mccm_core::Bytes::new(2_000_000),
            buffer_alloc_bytes: mccm_core::Bytes::new(1_000_000),
            offchip_bytes: mccm_core::Bytes::new(1000),
            offchip_weight_bytes: mccm_core::Bytes::new(800),
            offchip_fm_bytes: mccm_core::Bytes::new(200),
            memory_stall_fraction: 0.0,
            segments: vec![],
            ces: vec![],
            layers: vec![],
        };
        let records = sim.accuracy_records(&model);
        assert_eq!(records.len(), 4);
        // Accesses identical -> 100%.
        let acc = records
            .iter()
            .find(|r| r.metric == Metric::OffChipAccesses)
            .unwrap();
        assert!((acc.accuracy() - 100.0).abs() < 1e-12);
        // Latency estimate 10% fast -> 90%.
        assert!((sim.latency_accuracy(&model) - 90.0).abs() < 1e-9);
    }
}
