//! Workload expansion: a built accelerator plus the builder's design-time
//! decisions (spill policies, weight residency) unrolled into a per-image
//! tile graph for the event-driven engine.
//!
//! Control decisions (what is buffered where, which spill policy each
//! layer uses) are made at design time by the Multiple-CE Builder and the
//! Eq. (6) policy selection — the accelerator hardware executes them
//! unconditionally, so the simulator shares them with the analytical
//! model. What the simulator measures independently is *timing*: DMA
//! serialization and latency, burst occupancy, per-tile control overhead,
//! pipeline fill/drain, and cross-image contention.

use mccm_arch::{BuiltAccelerator, Executor};
use mccm_core::{CostModel, Evaluation};

/// One unit of simulated work: an OFM row-tile (or a DMA-only prefetch).
#[derive(Debug, Clone)]
pub struct TileSpec {
    /// Tile id (index into the image's tile list; deps always point to
    /// lower ids).
    pub id: usize,
    /// Executing engine; `None` for DMA-only prefetch tiles.
    pub ce: Option<usize>,
    /// Segment index.
    pub segment: usize,
    /// Conv-layer index (`usize::MAX` for prefetch tiles).
    pub layer: usize,
    /// Bytes DMA-loaded before compute.
    pub load_bytes: u64,
    /// Load byte category split: `(weights, fm)`.
    pub load_split: (u64, u64),
    /// Compute cycles.
    pub compute_cycles: u64,
    /// Bytes DMA-stored after compute.
    pub store_bytes: u64,
    /// Tiles that must complete before this tile's load may issue.
    pub deps: Vec<usize>,
}

/// A per-image tile graph plus indexing helpers.
#[derive(Debug, Clone)]
pub struct TileGraph {
    /// Tiles in topological (construction) order.
    pub tiles: Vec<TileSpec>,
    /// Tile ids per CE, in that engine's strict execution order.
    pub ce_order: Vec<Vec<usize>>,
}

/// Builds the tile graph for one image, given the accelerator and its
/// analytical evaluation (whose per-layer records carry the design-time
/// traffic decisions).
pub fn build_tile_graph(acc: &BuiltAccelerator, eval: &Evaluation) -> TileGraph {
    let mut tiles: Vec<TileSpec> = Vec::new();
    let mut ce_order: Vec<Vec<usize>> = vec![Vec::new(); acc.ces.len()];
    // Last tile id of each conv layer (for producer row deps) and per
    // layer: the tile id producing row `r`.
    let mut layer_row_tiles: Vec<Vec<usize>> = vec![Vec::new(); acc.convs.len()];
    let mut prev_segment_last: Option<usize> = None;
    // Prefetch chain per block (keyed by sorted CE list).
    let mut prefetch_chain: std::collections::HashMap<Vec<usize>, usize> =
        std::collections::HashMap::new();

    for seg in &acc.segments {
        let seg_first_tile = tiles.len();
        match &seg.executor {
            Executor::SingleCe(ce_id) => {
                let poh = acc.ces[*ce_id].parallelism.dims[2].max(1);
                #[allow(clippy::needless_range_loop)]
                for l in seg.first..=seg.last {
                    let conv = &acc.convs[l];
                    let rep = &eval.layers[l];
                    debug_assert_eq!(rep.layer, l);
                    let n_tiles = (conv.ofm.height as u64).div_ceil(poh as u64).max(1);
                    // The simulator replays the model's per-layer traffic
                    // tile by tile; splitting works in raw bytes.
                    let (w_total, fml_total, st_total) = (
                        rep.weight_traffic.get(),
                        rep.fm_load_traffic.get(),
                        rep.fm_store_traffic.get(),
                    );
                    let w_per = w_total / n_tiles;
                    let fml_per = fml_total / n_tiles;
                    let st_per = st_total / n_tiles;
                    for t in 0..n_tiles {
                        // The last tile's height is the exact division
                        // remainder: `n_tiles = ceil(height / poh)`
                        // guarantees `poh * (n_tiles - 1) < height`, so the
                        // subtraction is in `[1, poh]` for any non-empty
                        // OFM. (The old `.min(height - 1)` clamp forced a
                        // phantom 1-row floor — and underflowed on
                        // zero-height OFMs — instead of computing the
                        // remainder.)
                        let rows = if t + 1 == n_tiles {
                            conv.ofm.height - poh * (n_tiles as u32 - 1)
                        } else {
                            poh
                        };
                        let id = tiles.len();
                        let mut deps = Vec::new();
                        // Segment entry: first tile waits for the handoff.
                        if l == seg.first && t == 0 {
                            if let Some(p) = prev_segment_last {
                                deps.push(p);
                            }
                        }
                        // Double-buffer gate: two tiles in flight per CE.
                        let order = &ce_order[*ce_id];
                        if order.len() >= 2 {
                            deps.push(order[order.len() - 2]);
                        }
                        // Last tile carries the rounding remainders.
                        let last_t = t + 1 == n_tiles;
                        let (lw, lf, ls) = if last_t {
                            (
                                w_total - w_per * (n_tiles - 1),
                                fml_total - fml_per * (n_tiles - 1),
                                st_total - st_per * (n_tiles - 1),
                            )
                        } else {
                            (w_per, fml_per, st_per)
                        };
                        tiles.push(TileSpec {
                            id,
                            ce: Some(*ce_id),
                            segment: seg.index,
                            layer: l,
                            load_bytes: lw + lf,
                            load_split: (lw, lf),
                            compute_cycles: acc.ces[*ce_id]
                                .parallelism
                                .tile_latency_cycles(conv.dims, rows),
                            store_bytes: ls,
                            deps,
                        });
                        ce_order[*ce_id].push(id);
                        layer_row_tiles[l].push(id);
                    }
                }
            }
            Executor::PipelinedCes(ces) => {
                // Round weight prefetch: one DMA-only tile for all resident
                // layers of this round, chained per block for overlap.
                let mut block_key: Vec<usize> = ces.clone();
                block_key.sort_unstable();
                let resident: Vec<bool> = (0..ces.len())
                    .map(|j| {
                        acc.buffers.ce[ces[j]].weight_capacity()
                            >= acc.weight_buffer_bytes(seg.first + j)
                    })
                    .collect();
                let resident_bytes: u64 = (0..ces.len())
                    .filter(|&j| resident[j])
                    .map(|j| acc.weight_bytes(seg.first + j))
                    .sum();
                let prefetch_id = if resident_bytes > 0 {
                    let id = tiles.len();
                    let deps = prefetch_chain
                        .get(&block_key)
                        .copied()
                        .into_iter()
                        .collect();
                    tiles.push(TileSpec {
                        id,
                        ce: None,
                        segment: seg.index,
                        layer: usize::MAX,
                        load_bytes: resident_bytes,
                        load_split: (resident_bytes, 0),
                        compute_cycles: 0,
                        store_bytes: 0,
                        deps,
                    });
                    prefetch_chain.insert(block_key, id);
                    Some(id)
                } else {
                    None
                };

                let input_off = seg.index == 0 || !acc.buffers.inter_segment[seg.index - 1].on_chip;
                let output_off = seg.index + 1 == acc.segments.len()
                    || !acc.buffers.inter_segment[seg.index].on_chip;

                for (j, &ce_id) in ces.iter().enumerate() {
                    let l = seg.first + j;
                    let conv = &acc.convs[l];
                    let oh = conv.ofm.height as usize;
                    let row_lat = acc.ces[ce_id].parallelism.tile_latency_cycles(conv.dims, 1);
                    let w_bytes = acc.weight_bytes(l);
                    let in_round: Vec<usize> = conv
                        .producers
                        .iter()
                        .filter(|&&p| p >= seg.first && p < l)
                        .copied()
                        .collect();
                    let ifm_total = if j == 0 && input_off {
                        acc.ifm_bytes(l)
                    } else {
                        0
                    };
                    let ifm_row_share = ifm_total / oh as u64;
                    let store_row = if j + 1 == ces.len() && output_off {
                        acc.precision.activation_size(conv.ofm.row_elements())
                    } else {
                        0
                    };

                    for r in 0..oh {
                        let id = tiles.len();
                        let mut deps = Vec::new();
                        if r == 0 {
                            if let Some(p) = prefetch_id {
                                if resident[j] {
                                    deps.push(p);
                                }
                            }
                            if in_round.is_empty() {
                                if let Some(p) = prev_segment_last {
                                    deps.push(p);
                                }
                            }
                        }
                        // Producer row dependencies (through pooling the
                        // producer has more rows; scale by height ratio).
                        for &p in &in_round {
                            let need = rows_needed(acc, l, r as u32);
                            let prod_h = acc.convs[p].ofm.height as u64;
                            let ifm_h = conv.ifm.height.max(1) as u64;
                            let prod_rows = ((need * prod_h).div_ceil(ifm_h)).min(prod_h) as usize;
                            if let Some(&dep) = layer_row_tiles[p].get(prod_rows - 1) {
                                deps.push(dep);
                            }
                        }
                        // Double-buffer gate.
                        let order = &ce_order[ce_id];
                        if order.len() >= 2 {
                            deps.push(order[order.len() - 2]);
                        }
                        let lw = if resident[j] { 0 } else { w_bytes };
                        // The last row tile carries the division remainder
                        // so per-layer traffic matches the model exactly.
                        let ifm_share = if r + 1 == oh {
                            ifm_total - ifm_row_share * (oh as u64 - 1)
                        } else {
                            ifm_row_share
                        };
                        tiles.push(TileSpec {
                            id,
                            ce: Some(ce_id),
                            segment: seg.index,
                            layer: l,
                            load_bytes: lw + ifm_share,
                            load_split: (lw, ifm_share),
                            compute_cycles: row_lat,
                            store_bytes: store_row,
                            deps,
                        });
                        ce_order[ce_id].push(id);
                        layer_row_tiles[l].push(id);
                    }
                }
            }
        }
        debug_assert!(tiles.len() > seg_first_tile, "segments expand to tiles");
        prev_segment_last = Some(tiles.len() - 1);
    }

    // Topological sanity: deps point backwards.
    debug_assert!(tiles.iter().all(|t| t.deps.iter().all(|&d| d < t.id)));

    TileGraph { tiles, ce_order }
}

/// IFM rows layer `l` needs before producing through OFM row `r`.
fn rows_needed(acc: &BuiltAccelerator, l: usize, r: u32) -> u64 {
    let conv = &acc.convs[l];
    let need = r as u64 * conv.spec.stride.0 as u64 + conv.spec.kernel.0 as u64;
    need.saturating_sub(conv.spec.padding.h as u64)
        .clamp(1, conv.ifm.height as u64)
}

/// Per-image useful traffic of a tile graph: `(weights, fm_loads, fm_stores)`.
pub fn graph_traffic(graph: &TileGraph) -> (u64, u64, u64) {
    let mut w = 0u64;
    let mut fl = 0u64;
    let mut fs = 0u64;
    for t in &graph.tiles {
        w += t.load_split.0;
        fl += t.load_split.1;
        fs += t.store_bytes;
    }
    (w, fl, fs)
}

/// Convenience: evaluate + expand in one call.
pub fn expand(acc: &BuiltAccelerator) -> (Evaluation, TileGraph) {
    let eval = CostModel::evaluate(acc);
    let graph = build_tile_graph(acc, &eval);
    (eval, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_arch::{templates, MultipleCeBuilder};
    use mccm_cnn::zoo;
    use mccm_fpga::FpgaBoard;

    fn build(arch: templates::Architecture, k: usize) -> (BuiltAccelerator, Evaluation, TileGraph) {
        let m = zoo::resnet50();
        let spec = arch.instantiate(&m, k).unwrap();
        let acc = MultipleCeBuilder::new(&m, &FpgaBoard::zc706())
            .build(&spec)
            .unwrap();
        let (eval, graph) = expand(&acc);
        (acc, eval, graph)
    }

    #[test]
    fn deps_are_topological() {
        for arch in templates::Architecture::ALL {
            let (_, _, g) = build(arch, 4);
            for t in &g.tiles {
                assert!(t.deps.iter().all(|&d| d < t.id), "{arch}");
            }
        }
    }

    #[test]
    fn traffic_matches_analytical_model() {
        // The tile expansion must preserve the model's deterministic
        // access counts exactly (the paper's 100% access accuracy).
        for arch in templates::Architecture::ALL {
            for k in [2, 5, 9] {
                let (_, eval, g) = build(arch, k);
                let (w, fl, fs) = graph_traffic(&g);
                assert_eq!(w, eval.offchip_weight_bytes.get(), "{arch} {k} weights");
                assert_eq!(fl + fs, eval.offchip_fm_bytes.get(), "{arch} {k} fms");
            }
        }
    }

    #[test]
    fn ce_order_covers_all_compute_tiles() {
        let (_, _, g) = build(templates::Architecture::SegmentedRr, 3);
        let ordered: usize = g.ce_order.iter().map(Vec::len).sum();
        let compute_tiles = g.tiles.iter().filter(|t| t.ce.is_some()).count();
        assert_eq!(ordered, compute_tiles);
    }

    #[test]
    fn pipelined_rounds_have_prefetch_tiles_when_resident() {
        let (acc, _, g) = build(templates::Architecture::Hybrid, 5);
        let has_resident =
            (0..4).any(|l| acc.buffers.ce[l].weight_capacity() >= acc.weight_bytes(l));
        if has_resident {
            assert!(g.tiles.iter().any(|t| t.ce.is_none()));
        }
    }

    #[test]
    fn last_tile_rows_are_the_exact_remainder() {
        // Regression for the old `.min(ofm.height - 1)` clamp on the last
        // tile's row count: the final tile must carry the exact division
        // remainder (in [1, poh]) — degenerate shapes included (stride
        // larger than the remaining height, 1-row OFMs) — and the per-layer
        // tile heights must partition the OFM rows exactly.
        use mccm_cnn::{ConvSpec, ModelBuilder, Padding, TensorShape};

        let mut b = ModelBuilder::new("degenerate", TensorShape::new(3, 23, 23));
        b.conv("c1", ConvSpec::standard(3, 1, Padding::same(3, 3)), 8, 0); // 23 rows
        b.conv("c2", ConvSpec::standard(3, 2, Padding::same(3, 3)), 16, 0); // 12 rows
        b.conv("c3", ConvSpec::standard(3, 22, Padding::valid()), 16, 0); // stride 22 > 12: 1 row
        b.conv("c4", ConvSpec::pointwise(1), 8, 0); // 1-row OFM chained
        let m = b.finish().unwrap();

        let spec = templates::segmented(&m, 2).unwrap();
        let acc = MultipleCeBuilder::new(&m, &FpgaBoard::zc706())
            .build(&spec)
            .unwrap();
        let (_, g) = expand(&acc);

        let mut one_row_layers = 0usize;
        for seg in &acc.segments {
            let Executor::SingleCe(ce) = &seg.executor else {
                panic!("segmented template uses single-CE executors");
            };
            let poh = acc.ces[*ce].parallelism.dims[2].max(1);
            for l in seg.first..=seg.last {
                let conv = &acc.convs[l];
                let h = conv.ofm.height;
                let n_tiles = (h as u64).div_ceil(poh as u64).max(1);
                let tiles: Vec<_> = g.tiles.iter().filter(|t| t.layer == l).collect();
                assert_eq!(tiles.len() as u64, n_tiles, "layer {l}");
                let mut rows_sum = 0u32;
                for (i, t) in tiles.iter().enumerate() {
                    let rows = if i as u64 + 1 == n_tiles {
                        h - poh * (n_tiles as u32 - 1) // exact remainder
                    } else {
                        poh
                    };
                    assert!((1..=poh).contains(&rows), "layer {l} tile {i}: {rows} rows");
                    assert_eq!(
                        t.compute_cycles,
                        acc.ces[*ce]
                            .parallelism
                            .tile_latency_cycles(conv.dims, rows),
                        "layer {l} tile {i} latency disagrees with its exact row count"
                    );
                    rows_sum += rows;
                }
                assert_eq!(
                    rows_sum, h,
                    "layer {l}: tile heights must partition the OFM"
                );
                if h == 1 {
                    one_row_layers += 1;
                    assert_eq!(tiles.len(), 1, "a 1-row OFM is a single tile");
                }
            }
        }
        assert!(
            one_row_layers >= 2,
            "the degenerate model must exercise 1-row OFMs"
        );
    }

    #[test]
    fn tile_counts_scale_with_rows() {
        let (acc, _, g) = build(templates::Architecture::SegmentedRr, 2);
        // Pipelined tiles: one per OFM row per layer (+ prefetches).
        let rows: usize = acc.convs.iter().map(|c| c.ofm.height as usize).sum();
        let compute_tiles = g.tiles.iter().filter(|t| t.ce.is_some()).count();
        assert_eq!(compute_tiles, rows);
    }
}
