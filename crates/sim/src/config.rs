//! Simulator configuration: the second-order implementation effects the
//! analytical model deliberately ignores.

use std::error::Error;
use std::fmt;

/// Error produced when validating a [`SimConfig`].
///
/// Carries the same `Display` + [`std::error::Error`] impls as the other
/// crates' error types, so a top-level error can wrap simulator
/// configuration faults without stringifying them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimConfigError {
    /// `images` is below the minimum the latency/throughput split needs.
    TooFewImages {
        /// The configured image count.
        images: usize,
        /// The minimum required (first image = latency, steady tail =
        /// throughput).
        minimum: usize,
    },
    /// A byte granularity that must be positive is zero.
    ZeroGranularity {
        /// Which field is zero (`"burst_bytes"` or `"bram_bank_bytes"`).
        field: &'static str,
    },
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewImages { images, minimum } => write!(
                f,
                "simulator needs at least {minimum} images (first = latency, steady tail = \
                 throughput), got {images}"
            ),
            Self::ZeroGranularity { field } => {
                write!(f, "simulator config field `{field}` must be positive")
            }
        }
    }
}

impl Error for SimConfigError {}

/// Tunable implementation overheads of the reference simulator.
///
/// Defaults reflect typical HLS accelerator implementations on the
/// evaluation boards: a DDR access latency of ~0.5 µs at 200 MHz, a few
/// cycles of per-tile control (AXI handshakes, pipeline fill), and 64-byte
/// DRAM bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Images simulated; the first gives latency, the steady-state tail
    /// gives throughput. Must be ≥ 3.
    pub images: usize,
    /// Fixed latency per DMA transfer, in cycles.
    pub dma_latency_cycles: u64,
    /// Control/pipeline-fill overhead per tile, in cycles.
    pub tile_overhead_cycles: u64,
    /// DRAM burst granularity in bytes; transfers occupy the channel in
    /// whole bursts (the *counted* traffic stays at useful bytes).
    pub burst_bytes: u64,
    /// BRAM bank size in bytes (a Xilinx BRAM36 holds 36 Kib = 4608 B);
    /// implemented buffers round up to whole banks.
    pub bram_bank_bytes: u64,
    /// Fixed banks per engine for control FIFOs and pipeline registers.
    pub control_banks_per_ce: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            images: 4,
            dma_latency_cycles: 100,
            tile_overhead_cycles: 10,
            burst_bytes: 64,
            bram_bank_bytes: 4608,
            control_banks_per_ce: 2,
        }
    }
}

impl SimConfig {
    /// A zero-overhead configuration; with it the simulator should closely
    /// track the analytical model (used by agreement tests).
    pub fn ideal() -> Self {
        Self {
            images: 4,
            dma_latency_cycles: 0,
            tile_overhead_cycles: 0,
            burst_bytes: 1,
            bram_bank_bytes: 1,
            control_banks_per_ce: 0,
        }
    }

    /// Checks the configuration is runnable: enough images for the
    /// latency/throughput split and positive byte granularities. The
    /// simulator itself clamps rather than fails (it predates this check);
    /// front ends call this to reject bad configs with a typed error
    /// instead of silently simulating something else.
    ///
    /// # Errors
    ///
    /// [`SimConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.images < 3 {
            return Err(SimConfigError::TooFewImages {
                images: self.images,
                minimum: 3,
            });
        }
        if self.burst_bytes == 0 {
            return Err(SimConfigError::ZeroGranularity {
                field: "burst_bytes",
            });
        }
        if self.bram_bank_bytes == 0 {
            return Err(SimConfigError::ZeroGranularity {
                field: "bram_bank_bytes",
            });
        }
        Ok(())
    }

    /// Channel occupancy of a transfer in bytes, after burst rounding.
    pub fn burst_rounded(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.burst_bytes) * self.burst_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.images >= 3);
        assert!(c.burst_bytes.is_power_of_two());
    }

    #[test]
    fn validate_names_the_offending_field() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
        assert_eq!(SimConfig::ideal().validate(), Ok(()));
        let few = SimConfig {
            images: 2,
            ..Default::default()
        };
        match few.validate() {
            Err(SimConfigError::TooFewImages {
                images: 2,
                minimum: 3,
            }) => {}
            other => panic!("expected TooFewImages, got {other:?}"),
        }
        let burst = SimConfig {
            burst_bytes: 0,
            ..Default::default()
        };
        let err = burst.validate().unwrap_err();
        assert!(err.to_string().contains("burst_bytes"));
        let bank = SimConfig {
            bram_bank_bytes: 0,
            ..Default::default()
        };
        assert!(bank
            .validate()
            .unwrap_err()
            .to_string()
            .contains("bram_bank_bytes"));
        // The trait impls mccm::Error relies on.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(!boxed.to_string().is_empty());
    }

    #[test]
    fn burst_rounding() {
        let c = SimConfig::default();
        assert_eq!(c.burst_rounded(0), 0);
        assert_eq!(c.burst_rounded(1), 64);
        assert_eq!(c.burst_rounded(64), 64);
        assert_eq!(c.burst_rounded(65), 128);
        assert_eq!(SimConfig::ideal().burst_rounded(65), 65);
    }
}
