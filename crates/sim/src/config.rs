//! Simulator configuration: the second-order implementation effects the
//! analytical model deliberately ignores.

/// Tunable implementation overheads of the reference simulator.
///
/// Defaults reflect typical HLS accelerator implementations on the
/// evaluation boards: a DDR access latency of ~0.5 µs at 200 MHz, a few
/// cycles of per-tile control (AXI handshakes, pipeline fill), and 64-byte
/// DRAM bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Images simulated; the first gives latency, the steady-state tail
    /// gives throughput. Must be ≥ 3.
    pub images: usize,
    /// Fixed latency per DMA transfer, in cycles.
    pub dma_latency_cycles: u64,
    /// Control/pipeline-fill overhead per tile, in cycles.
    pub tile_overhead_cycles: u64,
    /// DRAM burst granularity in bytes; transfers occupy the channel in
    /// whole bursts (the *counted* traffic stays at useful bytes).
    pub burst_bytes: u64,
    /// BRAM bank size in bytes (a Xilinx BRAM36 holds 36 Kib = 4608 B);
    /// implemented buffers round up to whole banks.
    pub bram_bank_bytes: u64,
    /// Fixed banks per engine for control FIFOs and pipeline registers.
    pub control_banks_per_ce: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            images: 4,
            dma_latency_cycles: 100,
            tile_overhead_cycles: 10,
            burst_bytes: 64,
            bram_bank_bytes: 4608,
            control_banks_per_ce: 2,
        }
    }
}

impl SimConfig {
    /// A zero-overhead configuration; with it the simulator should closely
    /// track the analytical model (used by agreement tests).
    pub fn ideal() -> Self {
        Self {
            images: 4,
            dma_latency_cycles: 0,
            tile_overhead_cycles: 0,
            burst_bytes: 1,
            bram_bank_bytes: 1,
            control_banks_per_ce: 0,
        }
    }

    /// Channel occupancy of a transfer in bytes, after burst rounding.
    pub fn burst_rounded(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.burst_bytes) * self.burst_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.images >= 3);
        assert!(c.burst_bytes.is_power_of_two());
    }

    #[test]
    fn burst_rounding() {
        let c = SimConfig::default();
        assert_eq!(c.burst_rounded(0), 0);
        assert_eq!(c.burst_rounded(1), 64);
        assert_eq!(c.burst_rounded(64), 64);
        assert_eq!(c.burst_rounded(65), 128);
        assert_eq!(SimConfig::ideal().burst_rounded(65), 65);
    }
}
