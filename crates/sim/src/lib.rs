//! Event-driven reference simulator for multiple-CE CNN accelerators — the
//! synthesis surrogate used to validate the MCCM analytical model.
//!
//! The paper validates its cost model against Vitis HLS synthesis results
//! (~1 hour per design). This crate plays that role with a deterministic
//! tile-level discrete-event simulator of the *same* built accelerator: it
//! executes the builder's design-time decisions mechanistically, modeling
//! the second-order effects the analytical model abstracts away —
//! serialized DMA with per-transfer latency and burst occupancy, per-tile
//! control overhead, in-order engines, pipeline fill/drain, and
//! cross-image resource contention. Model-vs-simulator accuracy (Eq. 10)
//! is therefore a genuine measurement, while off-chip access counts match
//! exactly (they are architecturally deterministic, as in the paper).
//!
//! ```
//! use mccm_arch::{templates, MultipleCeBuilder};
//! use mccm_cnn::zoo;
//! use mccm_core::CostModel;
//! use mccm_fpga::FpgaBoard;
//! use mccm_sim::{SimConfig, Simulator};
//!
//! # fn main() -> Result<(), mccm_arch::ArchError> {
//! let model = zoo::mobilenet_v2();
//! let builder = MultipleCeBuilder::new(&model, &FpgaBoard::vcu108());
//! let acc = builder.build(&templates::segmented(&model, 3)?)?;
//! let eval = CostModel::evaluate(&acc);
//! let sim = Simulator::new(SimConfig::default()).run_with_eval(&acc, &eval);
//! // Deterministic traffic matches exactly; timing is independent.
//! assert_eq!(sim.offchip_bytes, eval.offchip_bytes.get());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod engine;
mod result;
#[allow(clippy::module_inception)]
mod sim;
pub mod workload;

pub use config::{SimConfig, SimConfigError};
pub use engine::{Cycles, DmaChannel, Event, Events};
pub use result::SimResult;
pub use sim::Simulator;
