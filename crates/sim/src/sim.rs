//! The simulator proper: replicates a tile graph over a stream of images
//! and executes it event by event against the shared DMA channel and the
//! in-order compute engines.

use mccm_arch::BuiltAccelerator;
use mccm_core::{CancelToken, Evaluation};

use crate::config::SimConfig;
use crate::engine::{Cycles, DmaChannel, Event, Events};
use crate::workload::{build_tile_graph, graph_traffic, TileGraph};

/// Internal per-tile dynamic state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileState {
    /// Waiting for dependencies.
    Blocked,
    /// Load queued or in flight.
    Loading,
    /// Load complete (or not needed); eligible for its engine.
    Ready,
    /// Executing on its engine.
    Computing,
    /// Store in flight.
    Storing,
    /// Fully complete.
    Done,
}

/// Event-driven reference simulator for multiple-CE accelerators.
///
/// The simulator executes the same design-time decisions as the analytical
/// model (buffer plan, spill policies, weight residency) but measures
/// timing mechanistically: every off-chip transfer is serialized through a
/// FIFO DMA channel with per-transfer latency and burst-rounded occupancy,
/// every tile pays a control overhead, engines execute their tiles
/// strictly in order, and images stream through the accelerator back to
/// back, contending for the same resources.
///
/// # Examples
///
/// ```
/// use mccm_arch::{templates, MultipleCeBuilder};
/// use mccm_cnn::zoo;
/// use mccm_sim::{SimConfig, Simulator};
/// use mccm_fpga::FpgaBoard;
///
/// # fn main() -> Result<(), mccm_arch::ArchError> {
/// let model = zoo::mobilenet_v2();
/// let builder = MultipleCeBuilder::new(&model, &FpgaBoard::zc706());
/// let acc = builder.build(&templates::hybrid(&model, 3)?)?;
/// let result = Simulator::new(SimConfig::default()).run(&acc);
/// assert!(result.latency_s > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given overhead configuration.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// Simulates `config.images` back-to-back inferences of `acc`.
    pub fn run(&self, acc: &BuiltAccelerator) -> crate::SimResult {
        let eval = mccm_core::CostModel::evaluate(acc);
        self.run_with_eval(acc, &eval)
    }

    /// Simulates using an already-computed model evaluation (avoids
    /// re-running the analytical model when the caller has it).
    pub fn run_with_eval(&self, acc: &BuiltAccelerator, eval: &Evaluation) -> crate::SimResult {
        // A fresh token never fires, so the full run always completes —
        // and takes exactly the code path a cancellable run takes, which
        // keeps the two entry points bit-identical by construction.
        self.run_with_eval_cancellable(acc, eval, &CancelToken::new())
            .expect("fresh token never cancels")
    }

    /// Cancellable twin of [`Self::run`]: polls `cancel` cooperatively
    /// between event-loop slices and returns `None` if it fired, so a
    /// serve deadline interrupting a calibration promotion degrades
    /// honestly instead of blocking until the simulation drains.
    pub fn run_cancellable(
        &self,
        acc: &BuiltAccelerator,
        cancel: &CancelToken,
    ) -> Option<crate::SimResult> {
        let eval = mccm_core::CostModel::evaluate(acc);
        self.run_with_eval_cancellable(acc, &eval, cancel)
    }

    /// Cancellable twin of [`Self::run_with_eval`] (see
    /// [`Self::run_cancellable`]). A completed run is bit-identical to
    /// the uncancellable one; a cancelled run returns `None` — partial
    /// timings would not be honest measurements.
    pub fn run_with_eval_cancellable(
        &self,
        acc: &BuiltAccelerator,
        eval: &Evaluation,
        cancel: &CancelToken,
    ) -> Option<crate::SimResult> {
        let graph = build_tile_graph(acc, eval);
        self.execute(acc, &graph, cancel)
    }

    fn execute(
        &self,
        acc: &BuiltAccelerator,
        graph: &TileGraph,
        cancel: &CancelToken,
    ) -> Option<crate::SimResult> {
        let cfg = &self.config;
        let images = cfg.images.max(3);
        let per_image = graph.tiles.len();
        let total = per_image * images;
        let n_ces = acc.ces.len();

        // Flatten deps across images.
        let mut deps_remaining: Vec<u32> = vec![0; total];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); total];
        let serialize_images = !acc.coarse_pipeline();
        for img in 0..images {
            let base = img * per_image;
            for t in &graph.tiles {
                let gid = base + t.id;
                for &d in &t.deps {
                    dependents[base + d].push(gid);
                    deps_remaining[gid] += 1;
                }
                // Weight prefetches serialize across images (the block's
                // weight buffers recycle per image).
                if img > 0 && t.ce.is_none() {
                    dependents[base - per_image + t.id].push(gid);
                    deps_remaining[gid] += 1;
                }
            }
            if serialize_images && img > 0 {
                let gid = base; // first tile of this image
                dependents[base - 1].push(gid);
                deps_remaining[gid] += 1;
            }
        }

        // Per-CE global execution order: images concatenated.
        let mut ce_order: Vec<Vec<usize>> = vec![Vec::new(); n_ces];
        for (ce, order) in graph.ce_order.iter().enumerate() {
            for img in 0..images {
                let base = img * per_image;
                ce_order[ce].extend(order.iter().map(|&t| base + t));
            }
        }
        let mut ce_next: Vec<usize> = vec![0; n_ces];
        let mut ce_busy: Vec<bool> = vec![false; n_ces];

        let mut state: Vec<TileState> = vec![TileState::Blocked; total];
        let mut complete_time: Vec<Cycles> = vec![0; total];
        let mut compute_start: Vec<Cycles> = vec![0; total];

        let mut events = Events::new();
        let mut dma = DmaChannel::new(acc.board.bytes_per_cycle(), cfg.dma_latency_cycles);
        let mut event_count = 0u64;

        // Tile readiness transition: deps met -> issue load or mark ready.
        // Returns true if the tile's CE should be prodded.
        fn on_deps_met(
            gid: usize,
            now: Cycles,
            graph_tile: &crate::workload::TileSpec,
            state: &mut [TileState],
            dma: &mut DmaChannel,
            events: &mut Events,
            cfg: &SimConfig,
        ) -> bool {
            if graph_tile.load_bytes > 0 {
                state[gid] = TileState::Loading;
                dma.request(
                    now,
                    gid,
                    false,
                    cfg.burst_rounded(graph_tile.load_bytes),
                    events,
                );
                false
            } else {
                state[gid] = TileState::Ready;
                true
            }
        }

        // Seed: all dep-free tiles at t = 0. (DMA-only tiles always carry a
        // load, so readiness here means either a queued transfer or an
        // engine-eligible tile.)
        let mut prod_ces: Vec<usize> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for gid in 0..total {
            if deps_remaining[gid] == 0 {
                let t = &graph.tiles[gid % per_image];
                debug_assert!(t.ce.is_some() || t.load_bytes > 0);
                if on_deps_met(gid, 0, t, &mut state, &mut dma, &mut events, cfg) {
                    if let Some(ce) = t.ce {
                        prod_ces.push(ce);
                    }
                }
            }
        }

        // Engine dispatch: start the head tile if it is ready.
        let try_start = |ce: usize,
                         now: Cycles,
                         ce_next: &[usize],
                         ce_busy: &mut [bool],
                         state: &mut [TileState],
                         compute_start: &mut [Cycles],
                         events: &mut Events| {
            if ce_busy[ce] {
                return;
            }
            let Some(&gid) = ce_order[ce].get(ce_next[ce]) else {
                return;
            };
            if state[gid] != TileState::Ready {
                return;
            }
            let t = &graph.tiles[gid % per_image];
            ce_busy[ce] = true;
            state[gid] = TileState::Computing;
            compute_start[gid] = now;
            events.push(
                now + t.compute_cycles + cfg.tile_overhead_cycles,
                Event::CeDone { ce, tile: gid },
            );
        };

        for ce in prod_ces {
            try_start(
                ce,
                0,
                &ce_next,
                &mut ce_busy,
                &mut state,
                &mut compute_start,
                &mut events,
            );
        }

        // Completion: notify dependents, cascade readiness.
        #[allow(clippy::too_many_arguments)]
        fn complete(
            gid: usize,
            now: Cycles,
            per_image: usize,
            graph: &TileGraph,
            deps_remaining: &mut [u32],
            dependents: &[Vec<usize>],
            state: &mut [TileState],
            complete_time: &mut [Cycles],
            dma: &mut DmaChannel,
            events: &mut Events,
            cfg: &SimConfig,
            wake_ces: &mut Vec<usize>,
        ) {
            state[gid] = TileState::Done;
            complete_time[gid] = now;
            for &dep in &dependents[gid] {
                deps_remaining[dep] -= 1;
                if deps_remaining[dep] == 0 {
                    let t = &graph.tiles[dep % per_image];
                    if on_deps_met(dep, now, t, state, dma, events, cfg) {
                        match t.ce {
                            Some(ce) => wake_ces.push(ce),
                            None => {
                                // Zero-load prefetch: completes immediately.
                                complete(
                                    dep,
                                    now,
                                    per_image,
                                    graph,
                                    deps_remaining,
                                    dependents,
                                    state,
                                    complete_time,
                                    dma,
                                    events,
                                    cfg,
                                    wake_ces,
                                );
                            }
                        }
                    }
                }
            }
        }

        // Cooperative cancellation checkpoint: one relaxed flag load per
        // slice of events, cheap enough to leave the hot loop's timing
        // behavior (and thus every completed result byte) untouched.
        const CANCEL_SLICE: u64 = 1024;

        let mut last_time = 0;
        while let Some((now, event)) = events.pop() {
            if event_count.is_multiple_of(CANCEL_SLICE) && cancel.is_cancelled() {
                return None;
            }
            event_count += 1;
            last_time = now;
            let mut wake: Vec<usize> = Vec::new();
            match event {
                Event::DmaDone { tile: gid, store } => {
                    dma.on_done(now, &mut events);
                    let t = &graph.tiles[gid % per_image];
                    if store {
                        complete(
                            gid,
                            now,
                            per_image,
                            graph,
                            &mut deps_remaining,
                            &dependents,
                            &mut state,
                            &mut complete_time,
                            &mut dma,
                            &mut events,
                            cfg,
                            &mut wake,
                        );
                        if let Some(ce) = t.ce {
                            wake.push(ce);
                        }
                    } else {
                        match t.ce {
                            Some(ce) => {
                                state[gid] = TileState::Ready;
                                wake.push(ce);
                            }
                            None => {
                                // Prefetch transfer done.
                                complete(
                                    gid,
                                    now,
                                    per_image,
                                    graph,
                                    &mut deps_remaining,
                                    &dependents,
                                    &mut state,
                                    &mut complete_time,
                                    &mut dma,
                                    &mut events,
                                    cfg,
                                    &mut wake,
                                );
                            }
                        }
                    }
                }
                Event::CeDone { ce, tile: gid } => {
                    ce_busy[ce] = false;
                    ce_next[ce] += 1;
                    let t = &graph.tiles[gid % per_image];
                    if t.store_bytes > 0 {
                        state[gid] = TileState::Storing;
                        dma.request(
                            now,
                            gid,
                            true,
                            cfg.burst_rounded(t.store_bytes),
                            &mut events,
                        );
                    } else {
                        complete(
                            gid,
                            now,
                            per_image,
                            graph,
                            &mut deps_remaining,
                            &dependents,
                            &mut state,
                            &mut complete_time,
                            &mut dma,
                            &mut events,
                            cfg,
                            &mut wake,
                        );
                    }
                    wake.push(ce);
                }
            }
            wake.sort_unstable();
            wake.dedup();
            for ce in wake {
                try_start(
                    ce,
                    now,
                    &ce_next,
                    &mut ce_busy,
                    &mut state,
                    &mut compute_start,
                    &mut events,
                );
            }
        }

        debug_assert!(
            state.iter().all(|&s| s == TileState::Done),
            "simulation drained with unfinished tiles"
        );

        // Results.
        let cyc = acc.board.cycle_time_s();
        let image_done = |img: usize| -> Cycles {
            let base = img * per_image;
            (base..base + per_image)
                .map(|g| complete_time[g])
                .max()
                .unwrap_or(0)
        };
        let latency_s = image_done(0) as f64 * cyc;
        let first_steady = 1usize;
        let steady_span = image_done(images - 1) - image_done(first_steady);
        let ii = steady_span as f64 / (images - 1 - first_steady) as f64;
        let throughput_fps = if ii > 0.0 {
            1.0 / (ii * cyc)
        } else {
            1.0 / latency_s.max(1e-12)
        };

        let (w, fl, fs) = graph_traffic(graph);

        // Segment windows of the first image.
        let n_segments = acc.segments.len();
        let mut windows = vec![(Cycles::MAX, 0 as Cycles); n_segments];
        for t in &graph.tiles {
            if t.ce.is_none() {
                continue;
            }
            let w = &mut windows[t.segment];
            w.0 = w.0.min(compute_start[t.id]);
            w.1 = w.1.max(complete_time[t.id]);
        }
        let segment_windows = windows
            .into_iter()
            .map(|(a, b)| (a.min(b) as f64 * cyc, b as f64 * cyc))
            .collect();

        Some(crate::SimResult {
            latency_s,
            throughput_fps,
            offchip_bytes: w + fl + fs,
            offchip_weight_bytes: w,
            offchip_fm_bytes: fl + fs,
            implemented_buffer_bytes: self.implemented_buffers(acc),
            segment_windows,
            dma_utilization: if last_time == 0 {
                0.0
            } else {
                dma.busy_cycles as f64 / last_time as f64
            },
            events: event_count,
            images,
        })
    }

    /// Bank-quantized implementation of the builder's buffer plan: each
    /// engine's buffer and each on-chip handoff rounds up to whole BRAM
    /// banks, plus fixed per-engine control banks — what post-synthesis
    /// utilization reports show.
    fn implemented_buffers(&self, acc: &BuiltAccelerator) -> u64 {
        let bank = self.config.bram_bank_bytes.max(1);
        let round = |bytes: u64| bytes.div_ceil(bank) * bank;
        let mut total = 0u64;
        for a in &acc.buffers.ce {
            // FM tiles and weight storage partition into separate banks.
            total += round(a.fm_tile_bytes);
            total += round(a.bytes.saturating_sub(a.fm_tile_bytes));
            total += self.config.control_banks_per_ce * bank;
        }
        for b in &acc.buffers.inter_segment {
            if b.on_chip {
                total += round(b.bytes_needed);
            }
        }
        total
    }
}
