//! Model-vs-simulator agreement across the validation grid: the
//! reproduction's counterpart of the paper's Table IV claims (accuracy in
//! the 80-100% band, off-chip accesses exactly deterministic).

use mccm_arch::{templates, MultipleCeBuilder};
use mccm_cnn::synthetic::{random_cnn, SyntheticConfig};
use mccm_cnn::zoo;
use mccm_core::{CostModel, Metric};
use mccm_fpga::FpgaBoard;
use mccm_sim::{SimConfig, Simulator};

#[test]
fn accuracy_grid_within_paper_band() {
    let board = FpgaBoard::vcu108();
    let sim = Simulator::new(SimConfig::default());
    let mut all = Vec::new();
    for model in [zoo::resnet50(), zoo::mobilenet_v2()] {
        let b = MultipleCeBuilder::new(&model, &board);
        for arch in templates::Architecture::ALL {
            for k in [2usize, 5, 8, 11] {
                let acc = b.build(&arch.instantiate(&model, k).unwrap()).unwrap();
                let eval = CostModel::evaluate(&acc);
                let r = sim.run_with_eval(&acc, &eval);
                for rec in r.accuracy_records(&eval) {
                    let pct = rec.accuracy();
                    // Accesses are deterministic -> exactly 100%.
                    if rec.metric == Metric::OffChipAccesses {
                        assert!(
                            (pct - 100.0).abs() < 1e-9,
                            "{} {arch} k={k}: access accuracy {pct}",
                            model.name()
                        );
                    }
                    assert!(
                        pct >= 80.0,
                        "{} {arch} k={k} {}: accuracy {pct:.1}% below the band",
                        model.name(),
                        rec.metric
                    );
                    all.push(pct);
                }
            }
        }
    }
    let avg = all.iter().sum::<f64>() / all.len() as f64;
    assert!(
        avg > 90.0,
        "average accuracy {avg:.1}% (paper reports > 90%)"
    );
}

#[test]
fn simulator_is_deterministic() {
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let b = MultipleCeBuilder::new(&model, &board);
    let acc = b.build(&templates::hybrid(&model, 6).unwrap()).unwrap();
    let sim = Simulator::new(SimConfig::default());
    let a = sim.run(&acc);
    let b2 = sim.run(&acc);
    assert_eq!(a, b2);
}

#[test]
fn overheads_only_slow_things_down() {
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::zc706();
    let b = MultipleCeBuilder::new(&model, &board);
    let acc = b.build(&templates::segmented(&model, 3).unwrap()).unwrap();
    let ideal = Simulator::new(SimConfig::ideal()).run(&acc);
    let real = Simulator::new(SimConfig::default()).run(&acc);
    assert!(real.latency_s >= ideal.latency_s);
    assert!(real.throughput_fps <= ideal.throughput_fps * 1.0001);
    // Useful traffic is identical regardless of overheads.
    assert_eq!(real.offchip_bytes, ideal.offchip_bytes);
}

#[test]
fn steady_state_throughput_at_least_inverse_latency() {
    let model = zoo::resnet50();
    let board = FpgaBoard::zcu102();
    let b = MultipleCeBuilder::new(&model, &board);
    for arch in templates::Architecture::ALL {
        let acc = b.build(&arch.instantiate(&model, 4).unwrap()).unwrap();
        let r = Simulator::new(SimConfig::default()).run(&acc);
        // Pipelining can only help: II <= first-image latency (small
        // tolerance for measurement granularity).
        assert!(
            r.throughput_fps * r.latency_s >= 0.95,
            "{arch}: {} fps x {} s",
            r.throughput_fps,
            r.latency_s
        );
    }
}

#[test]
fn synthetic_cnns_simulate_and_match_traffic() {
    let board = FpgaBoard::vcu108();
    let sim = Simulator::new(SimConfig::default());
    for seed in 0..8u64 {
        let cfg = SyntheticConfig {
            conv_layers: 8 + (seed as usize % 10),
            ..Default::default()
        };
        let model = random_cnn(seed, &cfg);
        let b = MultipleCeBuilder::new(&model, &board);
        let n = model.conv_layer_count();
        for arch in templates::Architecture::ALL {
            let k = 2 + (seed as usize % 3).min(n.saturating_sub(2));
            let Ok(spec) = arch.instantiate(&model, k) else {
                continue;
            };
            let acc = b.build(&spec).unwrap();
            let eval = CostModel::evaluate(&acc);
            let r = sim.run_with_eval(&acc, &eval);
            assert_eq!(
                r.offchip_bytes,
                eval.offchip_bytes.get(),
                "seed {seed} {arch}: deterministic traffic must match"
            );
            assert!(r.latency_s > 0.0);
        }
    }
}
