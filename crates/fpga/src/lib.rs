//! FPGA platform descriptions for the MCCM cost model.
//!
//! A platform is reduced to the three resources the paper's methodology
//! consumes (§III-A): the number of PEs (DSP slices), on-chip memory
//! capacity (Block RAM), and off-chip memory bandwidth — plus a target
//! clock used to convert cycle counts into seconds. The four evaluation
//! boards of Table II ship as constructors.
//!
//! ```
//! use mccm_fpga::FpgaBoard;
//!
//! for board in FpgaBoard::evaluation_boards() {
//!     assert!(board.dsps >= 768);
//! }
//! ```

#![warn(missing_docs)]

mod board;

pub use board::{FpgaBoard, MiB, Precision};
