//! FPGA platform descriptions.

use std::fmt;

/// Mebibytes, as used for on-chip Block RAM capacities (Table II reports
/// MiB rather than the vendor-typical Mb).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct MiB(pub f64);

impl MiB {
    /// Capacity in bytes.
    pub fn bytes(self) -> u64 {
        (self.0 * 1024.0 * 1024.0) as u64
    }
}

impl fmt::Display for MiB {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MiB", self.0)
    }
}

/// An FPGA platform as consumed by the cost model: number of PEs (DSPs),
/// on-chip memory capacity, off-chip bandwidth, and target clock.
///
/// # Examples
///
/// ```
/// use mccm_fpga::FpgaBoard;
///
/// let board = FpgaBoard::zcu102();
/// assert_eq!(board.dsps, 2520);
/// assert!(board.bram_bytes() > 16 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaBoard {
    /// Board name.
    pub name: String,
    /// DSP slices: the PE budget distributed among compute engines.
    pub dsps: u32,
    /// On-chip memory (Block RAM) capacity.
    pub bram: MiB,
    /// Off-chip memory bandwidth in GB/s (10^9 bytes per second).
    pub bandwidth_gbps: f64,
    /// Accelerator clock frequency in MHz. The paper's designs are HLS
    /// kernels typically closed at 200 MHz; adjust per design if needed.
    pub clock_mhz: f64,
}

impl FpgaBoard {
    /// Default clock for the evaluation boards.
    pub const DEFAULT_CLOCK_MHZ: f64 = 200.0;

    /// Creates a board description.
    pub fn new(name: impl Into<String>, dsps: u32, bram: MiB, bandwidth_gbps: f64) -> Self {
        Self {
            name: name.into(),
            dsps,
            bram,
            bandwidth_gbps,
            clock_mhz: Self::DEFAULT_CLOCK_MHZ,
        }
    }

    /// Sets a non-default clock frequency.
    #[must_use]
    pub fn with_clock_mhz(mut self, clock_mhz: f64) -> Self {
        self.clock_mhz = clock_mhz;
        self
    }

    /// On-chip memory capacity in bytes.
    pub fn bram_bytes(&self) -> u64 {
        self.bram.bytes()
    }

    /// Off-chip bandwidth in bytes per clock cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_gbps * 1e9 / (self.clock_mhz * 1e6)
    }

    /// Seconds per clock cycle.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / (self.clock_mhz * 1e6)
    }

    /// AMD Zynq-7000 SoC ZC706: 900 DSPs, 2.4 MiB BRAM, 3.2 GB/s (Table II).
    pub fn zc706() -> Self {
        Self::new("ZC706", 900, MiB(2.4), 3.2)
    }

    /// AMD Virtex UltraScale VCU108: 768 DSPs, 7.6 MiB BRAM, 19.2 GB/s
    /// (Table II).
    pub fn vcu108() -> Self {
        Self::new("VCU108", 768, MiB(7.6), 19.2)
    }

    /// AMD Virtex UltraScale VCU110: 1800 DSPs, 4 MiB BRAM, 19.2 GB/s
    /// (Table II).
    pub fn vcu110() -> Self {
        Self::new("VCU110", 1800, MiB(4.0), 19.2)
    }

    /// AMD Zynq UltraScale+ ZCU102: 2520 DSPs, 16.6 MiB BRAM, 19.2 GB/s
    /// (Table II).
    pub fn zcu102() -> Self {
        Self::new("ZCU102", 2520, MiB(16.6), 19.2)
    }

    /// The four evaluation boards in Table II order (ZC706, VCU108, VCU110,
    /// ZCU102).
    pub fn evaluation_boards() -> Vec<Self> {
        vec![
            Self::zc706(),
            Self::vcu108(),
            Self::vcu110(),
            Self::zcu102(),
        ]
    }

    /// Looks up an evaluation board by case-insensitive name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "zc706" => Some(Self::zc706()),
            "vcu108" => Some(Self::vcu108()),
            "vcu110" => Some(Self::vcu110()),
            "zcu102" => Some(Self::zcu102()),
            _ => None,
        }
    }

    /// Canonical names accepted by [`Self::by_name`], in Table II order —
    /// the registry error messages and machine-readable front ends list.
    pub fn names() -> &'static [&'static str] {
        &["zc706", "vcu108", "vcu110", "zcu102"]
    }
}

impl fmt::Display for FpgaBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} DSPs, {}, {} GB/s, {} MHz)",
            self.name, self.dsps, self.bram, self.bandwidth_gbps, self.clock_mhz
        )
    }
}

/// Data-type widths for weights and activations.
///
/// The baseline accelerators use 8-bit quantized weights and activations;
/// all byte quantities in the model scale through this record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision {
    /// Bytes per weight element.
    pub weight_bytes: u32,
    /// Bytes per activation (feature-map) element.
    pub activation_bytes: u32,
}

impl Precision {
    /// 8-bit weights and activations (default).
    pub const INT8: Self = Self {
        weight_bytes: 1,
        activation_bytes: 1,
    };
    /// 16-bit weights and activations.
    pub const INT16: Self = Self {
        weight_bytes: 2,
        activation_bytes: 2,
    };

    /// Canonical lowercase name of this precision, when it is one of the
    /// named constants (`"int8"` / `"int16"`).
    pub fn name(&self) -> Option<&'static str> {
        match *self {
            Self::INT8 => Some("int8"),
            Self::INT16 => Some("int16"),
            _ => None,
        }
    }

    /// Looks up a named precision (case-insensitive: `"int8"`, `"int16"`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "int8" => Some(Self::INT8),
            "int16" => Some(Self::INT16),
            _ => None,
        }
    }

    /// Names accepted by [`Self::by_name`].
    pub fn names() -> &'static [&'static str] {
        &["int8", "int16"]
    }

    /// Bytes occupied by `n` weight elements.
    pub fn weight_size(&self, n: u64) -> u64 {
        n * self.weight_bytes as u64
    }

    /// Bytes occupied by `n` activation elements.
    pub fn activation_size(&self, n: u64) -> u64 {
        n * self.activation_bytes as u64
    }
}

impl Default for Precision {
    fn default() -> Self {
        Self::INT8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let boards = FpgaBoard::evaluation_boards();
        let expect = [
            ("ZC706", 900, 2.4, 3.2),
            ("VCU108", 768, 7.6, 19.2),
            ("VCU110", 1800, 4.0, 19.2),
            ("ZCU102", 2520, 16.6, 19.2),
        ];
        for (b, (name, dsps, bram, bw)) in boards.iter().zip(expect) {
            assert_eq!(b.name, name);
            assert_eq!(b.dsps, dsps);
            assert_eq!(b.bram.0, bram);
            assert_eq!(b.bandwidth_gbps, bw);
        }
    }

    #[test]
    fn bytes_per_cycle_scales_with_clock() {
        let b = FpgaBoard::zc706(); // 3.2 GB/s @ 200 MHz -> 16 B/cycle
        assert!((b.bytes_per_cycle() - 16.0).abs() < 1e-9);
        let b = b.with_clock_mhz(100.0);
        assert!((b.bytes_per_cycle() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn bram_bytes() {
        assert_eq!(MiB(1.0).bytes(), 1024 * 1024);
        assert_eq!(FpgaBoard::vcu110().bram_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(FpgaBoard::by_name("zcu102").unwrap().dsps, 2520);
        assert_eq!(FpgaBoard::by_name("ZC706").unwrap().dsps, 900);
        assert!(FpgaBoard::by_name("vu9p").is_none());
    }

    #[test]
    fn name_registry_covers_every_evaluation_board() {
        let names = FpgaBoard::names();
        assert_eq!(names.len(), FpgaBoard::evaluation_boards().len());
        for name in names {
            assert!(FpgaBoard::by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn precision_name_registry_round_trips() {
        for name in Precision::names() {
            let p = Precision::by_name(name).unwrap();
            assert_eq!(p.name(), Some(*name));
        }
        assert_eq!(Precision::by_name("INT16"), Some(Precision::INT16));
        assert!(Precision::by_name("fp32").is_none());
        let odd = Precision {
            weight_bytes: 4,
            activation_bytes: 1,
        };
        assert_eq!(odd.name(), None);
    }

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::INT8.weight_size(100), 100);
        assert_eq!(Precision::INT16.activation_size(100), 200);
        assert_eq!(Precision::default(), Precision::INT8);
    }

    #[test]
    fn display_formats() {
        let s = FpgaBoard::zc706().to_string();
        assert!(s.contains("ZC706") && s.contains("900"));
    }
}
