//! Design-space exploration throughput: sampled designs fully evaluated
//! per second (Fig. 10's enabling quantity), plus the selection and
//! Pareto machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mccm_cnn::zoo;
use mccm_core::Metric;
use mccm_dse::{pareto_front, select_all_metrics, Explorer, PAPER_TIE_FRAC};
use mccm_fpga::FpgaBoard;

fn bench_custom_sampling(c: &mut Criterion) {
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let explorer = Explorer::new(&model, &board);
    let mut g = c.benchmark_group("dse_sample_custom");
    g.sample_size(10);
    for count in [10usize, 50] {
        g.throughput(Throughput::Elements(count as u64));
        g.bench_function(BenchmarkId::from_parameter(count), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(explorer.sample_custom(count, seed).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_lane_comparison(c: &mut Criterion) {
    // Full rich-report lane vs the summary fast lane over the identical
    // seeded design stream: the per-candidate cost a sweep actually pays.
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let explorer = Explorer::new(&model, &board);
    let mut g = c.benchmark_group("dse_eval_lanes");
    g.sample_size(10);
    let count = 200usize;
    g.throughput(Throughput::Elements(count as u64));
    g.bench_function("full_lane", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(explorer.sample_custom(count, seed).unwrap())
        })
    });
    g.bench_function("summary_fast_lane", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(explorer.sample_custom_summaries(count, seed).unwrap())
        })
    });
    g.finish();
}

fn bench_baseline_sweep(c: &mut Criterion) {
    let model = zoo::mobilenet_v2();
    let board = FpgaBoard::zc706();
    let explorer = Explorer::new(&model, &board);
    let mut g = c.benchmark_group("dse_baseline_sweep");
    g.sample_size(10);
    g.bench_function("mobilenetv2_2to11", |b| {
        b.iter(|| black_box(explorer.sweep_baselines(2..=11).unwrap()))
    });
    g.finish();
}

fn bench_selection_and_pareto(c: &mut Criterion) {
    let model = zoo::resnet50();
    let board = FpgaBoard::zcu102();
    let explorer = Explorer::new(&model, &board);
    let sweep = explorer.sweep_baselines(2..=11).unwrap();
    let evals: Vec<_> = sweep.iter().map(|p| p.eval.clone()).collect();
    c.bench_function("table5_selection", |b| {
        b.iter(|| black_box(select_all_metrics(black_box(&sweep), PAPER_TIE_FRAC)))
    });
    c.bench_function("pareto_front_30pts", |b| {
        b.iter(|| {
            black_box(pareto_front(
                black_box(&evals),
                &[Metric::Throughput, Metric::OnChipBuffers],
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_custom_sampling,
    bench_lane_comparison,
    bench_baseline_sweep,
    bench_selection_and_pareto
);
criterion_main!(benches);
