//! Criterion measurement of the paper's headline speed claim: per-design
//! evaluation time of the analytical model (paper: 6.3 ms/design in
//! Python; ~100000× faster than synthesis) versus the reference
//! simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mccm_arch::{templates, MultipleCeBuilder};
use mccm_cnn::zoo;
use mccm_core::CostModel;
use mccm_fpga::FpgaBoard;
use mccm_sim::{SimConfig, Simulator};

fn bench_model_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("cost_model_evaluate");
    for (model, arch, k) in [
        (zoo::mobilenet_v2(), templates::Architecture::Hybrid, 4usize),
        (zoo::resnet50(), templates::Architecture::Segmented, 7),
        (zoo::resnet152(), templates::Architecture::SegmentedRr, 11),
        (zoo::xception(), templates::Architecture::Hybrid, 7),
    ] {
        let board = FpgaBoard::vcu110();
        let builder = MultipleCeBuilder::new(&model, &board);
        let acc = builder
            .build(&arch.instantiate(&model, k).unwrap())
            .unwrap();
        let id = format!("{}/{}-{}", model.name(), arch.name(), k);
        g.bench_function(BenchmarkId::from_parameter(id), |b| {
            b.iter(|| black_box(CostModel::evaluate(black_box(&acc))))
        });
    }
    g.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    // Express -> build -> evaluate: the per-design cost of design-space
    // exploration (the paper's 6.3 ms/design figure).
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let builder = MultipleCeBuilder::new(&model, &board);
    c.bench_function("express_build_evaluate/xception_hybrid7", |b| {
        b.iter(|| {
            let spec = templates::hybrid(black_box(&model), 7).unwrap();
            let acc = builder.build(&spec).unwrap();
            black_box(CostModel::evaluate(&acc))
        })
    });
}

fn bench_reference_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("reference_simulator");
    g.sample_size(20);
    for (model, arch, k) in [
        (zoo::mobilenet_v2(), templates::Architecture::Hybrid, 4usize),
        (zoo::resnet50(), templates::Architecture::SegmentedRr, 4),
    ] {
        let board = FpgaBoard::vcu108();
        let builder = MultipleCeBuilder::new(&model, &board);
        let acc = builder
            .build(&arch.instantiate(&model, k).unwrap())
            .unwrap();
        let eval = CostModel::evaluate(&acc);
        let sim = Simulator::new(SimConfig::default());
        let id = format!("{}/{}-{}", model.name(), arch.name(), k);
        g.bench_function(BenchmarkId::from_parameter(id), |b| {
            b.iter(|| black_box(sim.run_with_eval(black_box(&acc), &eval)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_model_eval,
    bench_full_pipeline,
    bench_reference_simulator
);
criterion_main!(benches);
