//! Serial vs parallel sweep throughput: the acceptance benchmark for the
//! sharded exploration subsystem. Worker counts share one seed, so every
//! configuration evaluates the identical design set — the measured gap is
//! pure parallel speedup, not workload drift.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mccm_cnn::zoo;
use mccm_core::Metric;
use mccm_dse::{par_pareto_indices, CustomSpace, Explorer};
use mccm_fpga::FpgaBoard;

/// Sampled custom sweep on ResNet-50: serial `sample_custom_summaries`
/// vs the sharded parallel twin at increasing worker counts.
fn bench_sampled_sweep(c: &mut Criterion) {
    let model = zoo::resnet50();
    let board = FpgaBoard::vcu108();
    let explorer = Explorer::new(&model, &board);
    const COUNT: usize = 96;
    let mut g = c.benchmark_group("par_sample_resnet50");
    g.sample_size(10);
    g.throughput(Throughput::Elements(COUNT as u64));
    g.bench_function("serial", |b| {
        b.iter(|| black_box(explorer.sample_custom_summaries(COUNT, 5).unwrap()))
    });
    for workers in [2usize, 4] {
        g.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| {
                black_box(
                    explorer
                        .par_sample_custom_summaries(COUNT, 5, workers)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Exhaustive sweep of the 3-CE ResNet-50 space (every head length and
/// tail boundary with 2–3 CEs), serial vs sharded.
fn bench_exhaustive_3ce(c: &mut Criterion) {
    let model = zoo::resnet50();
    let board = FpgaBoard::vcu108();
    let explorer = Explorer::new(&model, &board);
    let space = CustomSpace {
        max_fuse_depth: 1,
        layers: model.conv_layer_count(),
        min_ces: 2,
        max_ces: 3,
    };
    let size = space.size() as u64;
    let mut g = c.benchmark_group("par_exhaustive_resnet50_3ce");
    g.sample_size(10);
    g.throughput(Throughput::Elements(size));
    for workers in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::from_parameter(workers), |b| {
            b.iter(|| black_box(explorer.par_evaluate_space(&space, workers).unwrap()))
        });
    }
    g.finish();
}

/// Incremental (sharded) Pareto extraction vs point count.
fn bench_pareto_merge(c: &mut Criterion) {
    let model = zoo::resnet50();
    let board = FpgaBoard::vcu108();
    let explorer = Explorer::new(&model, &board);
    let (points, _) = explorer.par_sample_custom_summaries(512, 3, 0).unwrap();
    let summaries: Vec<_> = points.into_iter().map(|p| p.summary).collect();
    let metrics = [Metric::Throughput, Metric::OnChipBuffers];
    let mut g = c.benchmark_group("par_pareto_512pts");
    for workers in [1usize, 4] {
        g.bench_function(BenchmarkId::from_parameter(workers), |b| {
            b.iter(|| black_box(par_pareto_indices(black_box(&summaries), &metrics, workers)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sampled_sweep,
    bench_exhaustive_3ce,
    bench_pareto_merge
);
criterion_main!(benches);
