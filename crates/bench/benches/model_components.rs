//! Component microbenchmarks: the building blocks whose cost dominates a
//! model evaluation (zoo construction, notation parsing, the builder's
//! parallelism search, PE allocation, buffer planning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mccm_arch::{builder, notation, templates, MultipleCeBuilder};
use mccm_cnn::{zoo, ConvInfo};
use mccm_fpga::FpgaBoard;

fn bench_zoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("zoo_construction");
    g.bench_function("resnet50", |b| b.iter(|| black_box(zoo::resnet50())));
    g.bench_function("densenet121", |b| b.iter(|| black_box(zoo::densenet121())));
    g.finish();
}

fn bench_notation(c: &mut Criterion) {
    let text = "{L1-L10: CE1-CE10, L11-L30: CE11, L31-L50: CE12, L51-Last: CE13}";
    c.bench_function("notation_parse", |b| {
        b.iter(|| black_box(notation::parse(black_box(text)).unwrap()))
    });
}

fn bench_parallelism_search(c: &mut Criterion) {
    let model = zoo::resnet152();
    let convs = model.conv_view();
    let refs: Vec<&ConvInfo> = convs.iter().collect();
    let mut g = c.benchmark_group("parallelism_search");
    for pes in [64u32, 512, 2520] {
        g.bench_function(BenchmarkId::from_parameter(pes), |b| {
            b.iter(|| black_box(builder::select_parallelism(pes, black_box(&refs))))
        });
    }
    g.finish();
}

fn bench_pe_distribution(c: &mut Criterion) {
    let workloads: Vec<u64> = (1..=11u64).map(|i| i * 1_000_000).collect();
    c.bench_function("pe_distribution_11ces", |b| {
        b.iter(|| black_box(builder::distribute_pes(2520, black_box(&workloads))))
    });
}

fn bench_builder(c: &mut Criterion) {
    let model = zoo::densenet121();
    let board = FpgaBoard::zcu102();
    let b2 = MultipleCeBuilder::new(&model, &board);
    let spec = templates::segmented_rr(&model, 8).unwrap();
    c.bench_function("builder_build/densenet_rr8", |b| {
        b.iter(|| black_box(b2.build(black_box(&spec)).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_zoo,
    bench_notation,
    bench_parallelism_search,
    bench_pe_distribution,
    bench_builder
);
criterion_main!(benches);
