//! Fig. 8: throughput vs on-chip buffer requirement of Xception on VCU110
//! — the trade-off view seeding Use Case 3's exploration.

use mccm_arch::templates::Architecture;
use mccm_cnn::zoo;
use mccm_core::Metric;
use mccm_fpga::FpgaBoard;

use crate::output::{Report, Table};
use crate::setups::{baseline_sweep, best_instance, mib};

/// Runs the experiment.
pub fn run() -> Report {
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let sweep = baseline_sweep(&model, &board);

    let mut report = Report::new("fig8", "Throughput vs on-chip buffers, Xception on VCU110");
    let mut t = Table::new(
        "scatter",
        &["architecture", "CEs", "throughput (FPS)", "buffers (MiB)"],
    );
    for p in &sweep {
        t.row(vec![
            p.architecture.name().to_string(),
            p.ces.to_string(),
            format!("{:.2}", p.eval.throughput_fps),
            format!("{:.2}", mib(p.eval.buffer_req_bytes)),
        ]);
    }
    report.tables.push(t);

    let mut ann = Table::new(
        "annotations",
        &[
            "architecture",
            "best-FPS CEs",
            "FPS",
            "min-buffer CEs",
            "buffers (MiB)",
        ],
    );
    for arch in Architecture::ALL {
        let bt = best_instance(&sweep, arch, Metric::Throughput).unwrap();
        let bb = best_instance(&sweep, arch, Metric::OnChipBuffers).unwrap();
        ann.row(vec![
            arch.name().to_string(),
            bt.ces.to_string(),
            format!("{:.1}", bt.eval.throughput_fps),
            bb.ces.to_string(),
            format!("{:.2}", mib(bb.eval.buffer_req_bytes)),
        ]);
    }
    report.tables.push(ann);

    // Fig. 8's y-range exceeds the board's 4 MiB BRAM: requirements are
    // design properties, not board allocations.
    let max_buf = sweep.iter().map(|p| p.eval.buffer_req_bytes).max().unwrap();
    report.note(format!(
        "Largest buffer requirement {:.1} MiB vs 4 MiB board BRAM (paper's Fig. 8 also \
         plots requirements above the board capacity).",
        mib(max_buf)
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn thirty_points_and_annotations() {
        let r = super::run();
        assert_eq!(r.tables[0].rows.len(), 30);
        assert_eq!(r.tables[1].rows.len(), 3);
    }
}
