//! Table II: the evaluation FPGA boards.

use crate::output::{Report, Table};
use crate::setups::boards;

/// Runs the experiment (a direct printout — the table is an input, kept
/// here so every paper table has a regenerating target).
pub fn run() -> Report {
    let mut report = Report::new("table2", "Evaluation FPGA boards");
    let mut t = Table::new(
        "boards",
        &[
            "board",
            "DSPs",
            "Block RAM (MiB)",
            "off-chip BW (GB/s)",
            "clock (MHz)",
        ],
    );
    for b in boards() {
        t.row(vec![
            b.name.clone(),
            b.dsps.to_string(),
            format!("{}", b.bram.0),
            format!("{}", b.bandwidth_gbps),
            format!("{}", b.clock_mhz),
        ]);
    }
    report.tables.push(t);
    report.note("Matches Table II; clock is this reproduction's timing base (200 MHz).");
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_boards() {
        assert_eq!(super::run().tables[0].rows.len(), 4);
    }
}
