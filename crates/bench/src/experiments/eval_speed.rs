//! Sweep-throughput measurement of the evaluation fast lane: the
//! designs/second a DSE loop actually gets, before vs after the shared
//! build context + summary lane (the perf trajectory behind the repo's
//! `BENCH_eval.json`).
//!
//! Two lanes over the *same* seeded design stream (Xception / VCU110,
//! the paper's Use Case 3 setup):
//!
//! * **baseline** — the pre-fast-lane per-design path, reconstructed:
//!   parallelism memoization disabled, full [`CostModel::evaluate`] with
//!   all report vectors, then [`mccm_core::Evaluation::summary`];
//! * **fastlane** — [`Explorer::sample_custom_summaries`]: memoized
//!   builds against the shared context plus the allocation-free
//!   [`CostModel::evaluate_summary`].
//!
//! Both lanes produce bit-identical summaries (asserted here), so the
//! ratio is pure overhead removed, not model drift.

use std::hint::black_box;
use std::time::Instant;

use mccm_arch::{ArchError, MultipleCeBuilder};
use mccm_cnn::zoo;
use mccm_core::{CostModel, EvalScratch};
use mccm_dse::{default_max_attempts, sample_attempt, CustomSpace, Explorer};
use mccm_fpga::FpgaBoard;

use crate::output::{Report, Table};

/// The measured quantities, renderable as a [`Report`] (stdout/CSV) or as
/// the `BENCH_eval.json` perf-trajectory record.
#[derive(Debug, Clone)]
pub struct EvalSpeed {
    /// CPU the numbers were taken on.
    pub machine: String,
    /// Designs per lane.
    pub designs: usize,
    /// Baseline-lane sweep wall time in seconds.
    pub baseline_s: f64,
    /// Fast-lane sweep wall time in seconds (cold memo cache).
    pub fastlane_s: f64,
    /// Fast-lane sweep wall time in seconds with the memo cache warm
    /// (same sweep re-run — the steady state of a long sweep).
    pub fastlane_warm_s: f64,
    /// Full-lane `evaluate` microseconds per design (prebuilt designs).
    pub eval_full_us: f64,
    /// Fast-lane `evaluate_summary` microseconds per design (prebuilt).
    pub eval_summary_us: f64,
}

impl EvalSpeed {
    /// Baseline sweep throughput in designs/second.
    pub fn baseline_dps(&self) -> f64 {
        self.designs as f64 / self.baseline_s
    }

    /// Fast-lane sweep throughput in designs/second (cold cache).
    pub fn fastlane_dps(&self) -> f64 {
        self.designs as f64 / self.fastlane_s
    }

    /// Fast-lane sweep throughput in designs/second (warm cache).
    pub fn fastlane_warm_dps(&self) -> f64 {
        self.designs as f64 / self.fastlane_warm_s
    }

    /// Sweep speedup of the fast lane over the baseline lane.
    pub fn sweep_speedup(&self) -> f64 {
        self.baseline_s / self.fastlane_s
    }

    /// Printable report.
    pub fn report(&self) -> Report {
        let mut report = Report::new(
            "eval_speed",
            "Sweep-throughput lanes (Xception on VCU110, identical design stream)",
        );
        let mut t = Table::new(
            "lanes",
            &["lane", "designs", "wall time", "designs/sec", "ms/design"],
        );
        for (name, secs) in [
            ("baseline (unmemoized + full evaluate)", self.baseline_s),
            ("fast lane, cold memo cache", self.fastlane_s),
            ("fast lane, warm memo cache", self.fastlane_warm_s),
        ] {
            t.row(vec![
                name.into(),
                self.designs.to_string(),
                format!("{secs:.3} s"),
                format!("{:.0}", self.designs as f64 / secs),
                format!("{:.3}", secs * 1e3 / self.designs as f64),
            ]);
        }
        report.tables.push(t);
        let mut e = Table::new("evaluate_only", &["lane", "µs/design"]);
        e.row(vec![
            "CostModel::evaluate (rich reports)".into(),
            format!("{:.1}", self.eval_full_us),
        ]);
        e.row(vec![
            "CostModel::evaluate_summary (fast)".into(),
            format!("{:.1}", self.eval_summary_us),
        ]);
        report.tables.push(e);
        report.note(format!(
            "Sweep speedup {:.1}x on {} ({} designs; paper headline: 6.3 ms/design, \
             100000 designs in 10.5 min).",
            self.sweep_speedup(),
            self.machine,
            self.designs
        ));
        report
    }

    /// The `BENCH_eval.json` record (hand-rendered; the workspace carries
    /// no JSON dependency).
    ///
    /// The `history` block pins the perf trajectory's fixed reference
    /// point: the summary-sweep throughput measured on the **pre-fast-lane
    /// tree** (PR 2 head) with this same 2000-design Xception/VCU110
    /// probe. The `baseline` lane measured live below reconstructs that
    /// path's *shape* (no parallelism memo, rich-report evaluate) but
    /// still runs the optimized search kernel, so it lands above the
    /// historical number — compare `fastlane` against `history` for the
    /// true before/after.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"eval_speed\",\n  \"machine\": \"{}\",\n  \
             \"model\": \"Xception\",\n  \"board\": \"VCU110\",\n  \"designs\": {},\n  \
             \"history\": [\n    {{\n      \"commit\": \"pre-fast-lane (PR 2, 398fe97)\",\n      \
             \"machine\": \"Intel(R) Xeon(R) Processor @ 2.10GHz\",\n      \
             \"lane\": \"sample_custom_summaries (clone-per-build, unmemoized cubic search, full evaluate)\",\n      \
             \"designs_per_sec\": 452.0,\n      \"ms_per_design\": 2.212\n    }}\n  ],\n  \
             \"baseline\": {{\n    \"lane\": \"unmemoized build + CostModel::evaluate + summary()\",\n    \
             \"seconds\": {:.4},\n    \"designs_per_sec\": {:.1},\n    \"ms_per_design\": {:.4}\n  }},\n  \
             \"fastlane\": {{\n    \"lane\": \"shared build context + CostModel::evaluate_summary\",\n    \
             \"seconds\": {:.4},\n    \"designs_per_sec\": {:.1},\n    \"ms_per_design\": {:.4}\n  }},\n  \
             \"fastlane_warm\": {{\n    \"lane\": \"same sweep, memo cache warm\",\n    \
             \"seconds\": {:.4},\n    \"designs_per_sec\": {:.1},\n    \"ms_per_design\": {:.4}\n  }},\n  \
             \"sweep_speedup_vs_baseline\": {:.2},\n  \
             \"evaluate_only\": {{\n    \"full_us_per_design\": {:.2},\n    \
             \"summary_us_per_design\": {:.2},\n    \"speedup\": {:.2}\n  }}\n}}\n",
            self.machine.replace('"', "'"),
            self.designs,
            self.baseline_s,
            self.baseline_dps(),
            self.baseline_s * 1e3 / self.designs as f64,
            self.fastlane_s,
            self.fastlane_dps(),
            self.fastlane_s * 1e3 / self.designs as f64,
            self.fastlane_warm_s,
            self.fastlane_warm_dps(),
            self.fastlane_warm_s * 1e3 / self.designs as f64,
            self.sweep_speedup(),
            self.eval_full_us,
            self.eval_summary_us,
            self.eval_full_us / self.eval_summary_us.max(1e-9),
        )
    }
}

/// Best-effort CPU identification for the JSON record.
pub fn machine_name() -> String {
    if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in cpuinfo.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, name)) = rest.split_once(':') {
                    return name.trim().to_string();
                }
            }
        }
    }
    format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH)
}

/// Measures both lanes over `count` designs of the `seed` stream.
///
/// # Panics
///
/// Panics if the two lanes disagree on any design's summary — the whole
/// point of the fast lane is that they cannot.
pub fn measure(count: usize, seed: u64) -> EvalSpeed {
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let space = CustomSpace::paper_range(model.conv_layer_count());

    // Baseline lane: the pre-fast-lane per-design path — no parallelism
    // memo, rich-report evaluate, summary extracted afterwards. Walks the
    // identical attempt stream the Explorer sweep walks, under the same
    // attempt budget and fault discipline (skip `Infeasible` only; a real
    // builder fault or an exhausted budget must abort the measurement,
    // not spin or get silently misreported).
    let baseline_builder = MultipleCeBuilder::new(&model, &board).with_memoization(false);
    let max_attempts = default_max_attempts(count);
    let mut baseline_summaries = Vec::with_capacity(count);
    let start = Instant::now();
    let mut attempt = 0u64;
    while baseline_summaries.len() < count {
        assert!(
            attempt < max_attempts,
            "attempt budget {max_attempts} exhausted after {} feasible designs",
            baseline_summaries.len()
        );
        let design = sample_attempt(&space, seed, attempt);
        attempt += 1;
        let spec = match design.to_spec(&model) {
            Ok(spec) => spec,
            Err(ArchError::Infeasible { .. }) => continue,
            Err(e) => panic!("builder fault in baseline lane: {e}"),
        };
        match baseline_builder.build(&spec) {
            Ok(acc) => baseline_summaries.push(CostModel::evaluate(&acc).summary()),
            Err(ArchError::Infeasible { .. }) => continue,
            Err(e) => panic!("builder fault in baseline lane: {e}"),
        }
    }
    let baseline_s = start.elapsed().as_secs_f64();

    // Fast lane: the production sweep path, cold memo cache.
    let explorer = Explorer::new(&model, &board);
    let (points, elapsed) = explorer
        .sample_custom_summaries(count, seed)
        .expect("xception custom space must yield enough feasible designs");
    let fastlane_s = elapsed.as_secs_f64();

    // Same sweep again on the now-warm memo cache: the steady-state
    // throughput a long-running sweep converges to.
    let (warm_points, warm_elapsed) = explorer
        .sample_custom_summaries(count, seed)
        .expect("warm re-run samples the identical stream");
    let fastlane_warm_s = warm_elapsed.as_secs_f64();
    assert_eq!(
        warm_points, points,
        "warm cache changed results — memo cache is broken"
    );

    assert_eq!(points.len(), baseline_summaries.len());
    for (fast, slow) in points.iter().zip(&baseline_summaries) {
        assert_eq!(fast.summary, *slow, "lanes diverged — fast lane is broken");
    }

    // Evaluation-only split on prebuilt designs (build cost excluded).
    let accs: Vec<_> = points
        .iter()
        .take(32)
        .map(|p| {
            let spec = p
                .design
                .to_spec(&model)
                .expect("sampled design re-materializes");
            baseline_builder
                .build(&spec)
                .expect("sampled design rebuilds")
        })
        .collect();
    let reps = (count / accs.len().max(1)).max(8);
    let start = Instant::now();
    for i in 0..reps * accs.len() {
        black_box(CostModel::evaluate(&accs[i % accs.len()]));
    }
    let eval_full_us = start.elapsed().as_secs_f64() * 1e6 / (reps * accs.len()) as f64;
    let mut scratch = EvalScratch::new();
    let start = Instant::now();
    for i in 0..reps * accs.len() {
        black_box(CostModel::evaluate_summary(
            &accs[i % accs.len()],
            &mut scratch,
        ));
    }
    let eval_summary_us = start.elapsed().as_secs_f64() * 1e6 / (reps * accs.len()) as f64;

    EvalSpeed {
        machine: machine_name(),
        designs: count,
        baseline_s,
        fastlane_s,
        fastlane_warm_s,
        eval_full_us,
        eval_summary_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_agree_and_json_renders() {
        let m = measure(24, 3);
        assert_eq!(m.designs, 24);
        assert!(m.baseline_s > 0.0 && m.fastlane_s > 0.0);
        let json = m.to_json();
        assert!(json.contains("\"sweep_speedup_vs_baseline\""));
        assert!(json.contains("\"history\""));
        assert!(json.contains("\"designs\": 24"));
        assert_eq!(m.report().tables.len(), 2);
    }
}
