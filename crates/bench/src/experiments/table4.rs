//! Table IV: MCCM accuracy against the reference evaluator on VCU108 —
//! 150 experiments (3 architectures × 10 CE counts × 5 CNNs), summarized
//! as max/min/average per architecture and metric, plus the
//! best-architecture prediction agreement (§V-B).

use mccm_arch::templates::Architecture;
use mccm_arch::MultipleCeBuilder;
use mccm_core::{AccuracySummary, CostModel, Metric};
use mccm_fpga::FpgaBoard;
use mccm_sim::{SimConfig, Simulator};

use crate::output::{Report, Table};
use crate::setups::{models, CE_RANGE};

/// Paper's Table IV averages per (metric, architecture) for context.
pub const PAPER_AVG: [(&str, [f64; 3]); 4] = [
    ("On-chip buffers", [93.1, 97.4, 95.4]), // Segmented, SegmentedRR, Hybrid
    ("Latency", [92.8, 93.3, 92.5]),
    ("Throughput", [93.9, 95.1, 92.5]),
    ("Off-chip accesses", [100.0, 100.0, 100.0]),
];

/// One validated experiment.
struct Cell {
    arch: Architecture,
    ces: usize,
    model: String,
    /// Per-metric (model value, reference value) in `Metric::ALL` order
    /// rearranged as [buffers, latency, throughput, accesses].
    accuracy: [f64; 4],
    /// Model and reference values used for prediction agreement.
    model_vals: [f64; 4],
    ref_vals: [f64; 4],
}

const METRICS: [Metric; 4] = [
    Metric::OnChipBuffers,
    Metric::Latency,
    Metric::Throughput,
    Metric::OffChipAccesses,
];

/// Runs the 150-experiment validation.
pub fn run() -> Report {
    let board = FpgaBoard::vcu108();
    let sim = Simulator::new(SimConfig::default());
    let mut cells: Vec<Cell> = Vec::with_capacity(150);

    for model in models() {
        let builder = MultipleCeBuilder::new(&model, &board);
        for arch in Architecture::ALL {
            for ces in CE_RANGE {
                let spec = arch.instantiate(&model, ces).expect("feasible CE counts");
                let acc = builder.build(&spec).expect("buildable");
                let eval = CostModel::evaluate(&acc);
                let r = sim.run_with_eval(&acc, &eval);
                let recs = r.accuracy_records(&eval);
                let by = |m: Metric| recs.iter().find(|x| x.metric == m).unwrap();
                let accuracy = [
                    recs[2].accuracy(),
                    recs[0].accuracy(),
                    recs[1].accuracy(),
                    recs[3].accuracy(),
                ];
                cells.push(Cell {
                    arch,
                    ces,
                    model: model.name().to_string(),
                    accuracy,
                    model_vals: METRICS.map(|m| by(m).estimated),
                    ref_vals: METRICS.map(|m| by(m).reference),
                });
            }
        }
    }
    assert_eq!(cells.len(), 150);

    let mut report = Report::new(
        "table4",
        "MCCM accuracy vs. reference simulator on VCU108 (150 experiments)",
    );
    let mut t = Table::new(
        "summary",
        &[
            "metric",
            "stat",
            "Segmented",
            "SegmentedRR",
            "Hybrid",
            "paper avg (S/R/H)",
        ],
    );
    for (mi, metric) in METRICS.iter().enumerate() {
        let per_arch: Vec<AccuracySummary> = Architecture::ALL
            .iter()
            .map(|&a| {
                AccuracySummary::from_accuracies(
                    cells.iter().filter(|c| c.arch == a).map(|c| c.accuracy[mi]),
                )
                .expect("non-empty")
            })
            .collect();
        let paper = PAPER_AVG[mi].1;
        for (stat, get) in [
            (
                "max",
                &(|s: &AccuracySummary| s.max) as &dyn Fn(&AccuracySummary) -> f64,
            ),
            ("min", &|s: &AccuracySummary| s.min),
            ("avg", &|s: &AccuracySummary| s.average),
        ] {
            t.row(vec![
                metric.name().to_string(),
                stat.to_string(),
                format!("{:.1}%", get(&per_arch[0])),
                format!("{:.1}%", get(&per_arch[1])),
                format!("{:.1}%", get(&per_arch[2])),
                if stat == "avg" {
                    format!("{:.1}/{:.1}/{:.1}", paper[0], paper[1], paper[2])
                } else {
                    String::new()
                },
            ]);
        }
    }
    report.tables.push(t);

    // Prediction agreement (§V-B): per (CNN, CE count) group, does the
    // model pick the same best architecture as the reference?
    let mut pred = Table::new("prediction", &["metric", "correct", "out of", "paper"]);
    for (mi, metric) in METRICS.iter().enumerate() {
        let mut correct = 0usize;
        let mut total = 0usize;
        for model in models() {
            for ces in CE_RANGE {
                let group: Vec<&Cell> = cells
                    .iter()
                    .filter(|c| c.model == model.name() && c.ces == ces)
                    .collect();
                let best = |vals: &dyn Fn(&Cell) -> f64| -> Architecture {
                    group
                        .iter()
                        .reduce(|a, b| {
                            if metric.better(vals(b), vals(a)) {
                                b
                            } else {
                                a
                            }
                        })
                        .unwrap()
                        .arch
                };
                let model_best = best(&|c: &Cell| c.model_vals[mi]);
                let ref_best = best(&|c: &Cell| c.ref_vals[mi]);
                // Each group covers 3 experiments, as in the paper's
                // "139 of the 150".
                total += 3;
                if model_best == ref_best {
                    correct += 3;
                }
            }
        }
        let paper = match metric {
            Metric::OnChipBuffers => "139/150",
            _ => "150/150",
        };
        pred.row(vec![
            metric.name().to_string(),
            correct.to_string(),
            total.to_string(),
            paper.to_string(),
        ]);
    }
    report.tables.push(pred);

    let overall: f64 = cells.iter().flat_map(|c| c.accuracy.iter()).sum::<f64>() / (150.0 * 4.0);
    report.note(format!(
        "Overall average accuracy {overall:.1}% (paper: > 90% for all architectures)."
    ));
    report.note(
        "Reference = event-driven tile-level simulator (DESIGN.md §3); the paper used Vitis HLS synthesis.".to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "runs the full 150-experiment grid (~minutes in debug); exercised by the table4 binary"]
    fn full_grid() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 12);
        assert_eq!(r.tables[1].rows.len(), 4);
    }
}
