//! Table III: the evaluated CNN models, re-derived and checked against the
//! paper's weight and conv-layer counts.

use mccm_cnn::zoo;

use crate::output::{Report, Table};
use crate::setups::models;

/// Paper values: (abbreviation, weights in millions, conv layers).
pub const PAPER: [(&str, f64, usize); 5] = [
    ("Res152", 60.4, 155),
    ("Res50", 25.6, 53),
    ("XCp", 22.9, 74),
    ("Dns121", 8.1, 120),
    ("MobV2", 3.5, 52),
];

/// Runs the experiment.
pub fn run() -> Report {
    let mut report = Report::new("table3", "Evaluated CNN models vs. Table III");
    let mut t = Table::new(
        "models",
        &[
            "model",
            "abbrev",
            "weights (M)",
            "paper (M)",
            "conv layers",
            "paper layers",
            "conv GMACs",
        ],
    );
    let mut exact = true;
    for (model, (abbr, w, l)) in models().iter().zip(PAPER) {
        let weights = model.total_params() as f64 / 1e6;
        let layers = model.conv_layer_count();
        exact &= layers == l && (weights - w).abs() < 0.05;
        t.row(vec![
            model.name().to_string(),
            zoo::abbreviation(model.name()).to_string(),
            format!("{weights:.1}"),
            format!("{w:.1}"),
            layers.to_string(),
            l.to_string(),
            format!("{:.2}", model.conv_macs() as f64 / 1e9),
        ]);
        debug_assert_eq!(zoo::abbreviation(model.name()), abbr);
    }
    report.tables.push(t);
    report.note(format!("All rows match the paper exactly: {exact}"));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_table_iii() {
        let r = super::run();
        assert_eq!(r.tables[0].rows.len(), 5);
        assert!(r.notes[0].ends_with("true"));
    }
}
