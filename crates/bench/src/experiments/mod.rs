//! One module per paper table/figure; each exposes `run(...) -> Report`.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — architecture comparison on ResNet-50/ZCU102 |
//! | [`table2`] | Table II — evaluation boards |
//! | [`table3`] | Table III — evaluated CNNs |
//! | [`table4`] | Table IV — model accuracy (150 experiments) + §V-B predictions |
//! | [`table5`] | Table V — best architectures per board/CNN/metric |
//! | [`fig5`] | Fig. 5 — throughput vs accesses, ResNet-50/ZC706 |
//! | [`fig6`] | Fig. 6 — per-segment compute/memory breakdown |
//! | [`fig7`] | Fig. 7 — weights-vs-FMs access breakdown |
//! | [`fig8`] | Fig. 8 — throughput vs buffers, Xception/VCU110 |
//! | [`fig9`] | Fig. 9 — per-segment buffers and underutilization |
//! | [`fig10`] | Fig. 10 — custom design-space exploration |
//! | [`speed`] | §I/§V-E — evaluation-speed claims |
//! | [`ablation`] | DESIGN.md §2 — design-choice ablations |
//! | [`compression`] | §V-D follow-through — targeted weight compression |
//! | [`guided`] | Guided-vs-random front quality at equal budget (beyond the paper) |

pub mod ablation;
pub mod compression;
pub mod eval_speed;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod guided;
pub mod speed;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
