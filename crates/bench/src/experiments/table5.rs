//! Table V: the multiple-CE accelerators achieving the best results per
//! (board × CNN × metric) with their CE counts, using the paper's 10%
//! tie rule.

use mccm_cnn::zoo;
use mccm_core::Metric;
use mccm_dse::{select_best, PAPER_TIE_FRAC};

use crate::output::{Report, Table};
use crate::setups::{arch_initial, baseline_sweep, boards, models};

/// Runs the 4-board × 5-CNN selection grid.
pub fn run() -> Report {
    let mut report = Report::new(
        "table5",
        "Best architectures per board, CNN, and metric (10% tie rule)",
    );

    let metric_rows = [
        Metric::Latency,
        Metric::Throughput,
        Metric::OffChipAccesses,
        Metric::OnChipBuffers,
    ];

    let mut headers: Vec<String> = vec!["metric".into()];
    for b in boards() {
        for m in models() {
            headers.push(format!("{}/{}", b.name, zoo::abbreviation(m.name())));
        }
    }
    let mut t = Table::new(
        "grid",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    // Pre-compute sweeps (20 columns).
    let mut sweeps = Vec::new();
    for b in boards() {
        for m in models() {
            sweeps.push(baseline_sweep(&m, &b));
        }
    }

    // Selection cells; remember them for the insight notes.
    let mut cells = vec![Vec::new(); metric_rows.len()];
    for (mi, &metric) in metric_rows.iter().enumerate() {
        let mut row = vec![metric.name().to_string()];
        for sweep in &sweeps {
            let cell = select_best(sweep, metric, PAPER_TIE_FRAC);
            let text = cell
                .winners
                .iter()
                .map(|&(a, ces, _)| format!("{}{}", arch_initial(a), ces))
                .collect::<Vec<_>>()
                .join(" ");
            cells[mi].push(cell);
            row.push(text);
        }
        t.row(row);
    }
    report.tables.push(t);

    // The paper's four insights (§V-C), recomputed on our grid.
    let columns = sweeps.len();
    let mut single_arch_all_metrics = 0usize;
    #[allow(clippy::needless_range_loop)]
    for col in 0..columns {
        let per_metric: Vec<Vec<_>> = (0..metric_rows.len())
            .map(|mi| cells[mi][col].winners.iter().map(|&(a, _, _)| a).collect())
            .collect();
        let exists = mccm_arch::templates::Architecture::ALL
            .iter()
            .any(|a| per_metric.iter().all(|ws: &Vec<_>| ws.contains(a)));
        if exists {
            single_arch_all_metrics += 1;
        }
    }
    report.note(format!(
        "Columns where one architecture wins (or ties) every metric: {single_arch_all_metrics}/{columns} \
         (paper: 4/20 — in 80% of cases no single architecture is best in all four)."
    ));

    let count_wins = |mi: usize, arch: mccm_arch::templates::Architecture| {
        (0..columns)
            .filter(|&c| cells[mi][c].winners.iter().any(|&(a, _, _)| a == arch))
            .count()
    };
    report.note(format!(
        "SegmentedRR best/tied latency in {}/{} columns (paper: 15/20).",
        count_wins(0, mccm_arch::templates::Architecture::SegmentedRr),
        columns
    ));
    report.note(format!(
        "Hybrid best/tied off-chip accesses in {}/{} columns (paper: 20/20).",
        count_wins(2, mccm_arch::templates::Architecture::Hybrid),
        columns
    ));
    report.note(format!(
        "Hybrid best/tied buffers in {}/{} columns (paper: 14/20).",
        count_wins(3, mccm_arch::templates::Architecture::Hybrid),
        columns
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "evaluates 600 designs (~minutes in debug); exercised by the table5 binary"]
    fn full_grid() {
        let r = super::run();
        assert_eq!(r.tables[0].rows.len(), 4);
        assert_eq!(r.tables[0].headers.len(), 21);
    }
}
