//! Guided-vs-random front quality at equal evaluation budget — the
//! experiment behind `BENCH_guided.json`.
//!
//! The paper's Use Case 3 explores the custom Xception/VCU110 space by
//! random sampling. This experiment gives both search strategies the
//! *same* number of fast-lane evaluation attempts and compares the Pareto
//! fronts they produce over the five-metric objective set (the paper's
//! four plus energy):
//!
//! * **random** — the counter-based sampling stream, every attempt
//!   evaluated, front extracted incrementally;
//! * **guided** — [`Explorer::optimize_par`], the NSGA-II island model
//!   seeded from the same kind of stream.
//!
//! Front quality is scored by normalized hypervolume (shared union
//! bounds), the coverage indicator in both directions, and the per-metric
//! best values. Both lanes are deterministic, so the comparison is
//! reproducible run to run.
//!
//! A third section measures the **schedule axis**: the same guided
//! search on a BRAM-starved board, once restricted to layer-by-layer
//! and once with the depth-first axis open, recording how far the best
//! fused design cuts off-chip traffic below the best layer-by-layer one.
//!
//! A fourth section measures **delta-evaluation throughput**: with the
//! segment cache warm, re-evaluating a fixed design set by recombining
//! cached per-CE costs against re-evaluating it through the whole-design
//! path — the speedup the optimizer's memoized fast lane is built on.
//!
//! A fifth section measures **calibration quality**: on two zoo model ×
//! board pairs, Pareto-front members are promoted to simulator runs,
//! corrections are fitted on half of them, and the held-out half scores
//! raw-analytical against calibrated predictions — the mean-absolute
//! -error cut the `mccm calibrate` loop buys.

use std::time::Instant;

use mccm_arch::{ArchError, Schedule};
use mccm_calib::{fit_corrections, metric_pairs, simulate, CalibStore, CALIBRATED_METRICS};
use mccm_core::{CancelToken, CostModel, EvalScratch, EvalSummary, Metric};
use mccm_dse::{
    compare_fronts, sample_attempt, CustomSampler, CustomSpace, DeltaContext, Explorer,
    FrontComparison, OptimizerConfig, ParetoFront, SegCache,
};
use mccm_fpga::{FpgaBoard, MiB};
use mccm_sim::SimConfig;

use crate::experiments::eval_speed::machine_name;
use crate::output::{Report, Table};

/// Per-lane outcome: the front plus its cost accounting.
#[derive(Debug, Clone)]
pub struct LaneStats {
    /// Evaluation attempts the lane spent (feasible + infeasible).
    pub evaluations: u64,
    /// Feasible designs among them.
    pub feasible: u64,
    /// Points on the lane's Pareto front.
    pub front: Vec<EvalSummary>,
    /// Wall time in seconds.
    pub seconds: f64,
}

/// Schedule-axis outcome: the guided search rerun with the depth-first
/// axis enabled on a BRAM-starved board, against an equal-budget
/// layer-by-layer-only run.
#[derive(Debug, Clone)]
pub struct ScheduleAxis {
    /// Model the axis was measured on.
    pub model: String,
    /// The BRAM-starved board (layer-by-layer spills feature maps here).
    pub board: String,
    /// Points on the schedule-extended front.
    pub front_size: usize,
    /// Depth-first designs among them.
    pub depth_first_points: usize,
    /// Best off-chip traffic on the layer-by-layer-only front, bytes.
    pub best_lbl_offchip_bytes: u64,
    /// Best off-chip traffic among depth-first front members, bytes.
    pub best_df_offchip_bytes: u64,
}

/// Warm-cache delta-evaluation throughput against whole-design
/// re-evaluation of the same design set — the payoff of the segment
/// cache when every per-CE cost is already resident.
#[derive(Debug, Clone)]
pub struct DeltaThroughput {
    /// Distinct designs in the measured set.
    pub designs: usize,
    /// Whole-design evaluations per second (build + summarize each).
    pub full_evals_per_s: f64,
    /// Warm delta evaluations per second (recombine cached segments).
    pub warm_evals_per_s: f64,
    /// Segment-cache hits during the whole run.
    pub seg_hits: u64,
    /// Designs served entirely from cached segments.
    pub delta_recombines: u64,
    /// Segment-cost entries resident at the end.
    pub cached_segments: usize,
}

impl DeltaThroughput {
    /// Warm-over-full throughput ratio (the headline speedup).
    pub fn speedup(&self) -> f64 {
        if self.full_evals_per_s == 0.0 {
            return 0.0;
        }
        self.warm_evals_per_s / self.full_evals_per_s
    }
}

impl ScheduleAxis {
    /// Fractional traffic cut of the best depth-first design vs the best
    /// layer-by-layer design (positive = depth-first is better).
    pub fn traffic_reduction(&self) -> f64 {
        if self.best_lbl_offchip_bytes == 0 {
            return 0.0;
        }
        1.0 - self.best_df_offchip_bytes as f64 / self.best_lbl_offchip_bytes as f64
    }
}

/// Per-metric calibration quality on one model × board pair: relative
/// mean absolute error of raw and calibrated predictions against the
/// simulator, over held-out designs the fit never saw.
#[derive(Debug, Clone)]
pub struct CalibrationMetricQuality {
    /// The calibrated metric.
    pub metric: Metric,
    /// Mean |analytical − simulated| / |simulated| over the holdout.
    pub raw_rel_mae: f64,
    /// Mean |calibrated − simulated| / |simulated| over the holdout.
    pub cal_rel_mae: f64,
}

impl CalibrationMetricQuality {
    /// Whether the raw analytical prediction is already (numerically)
    /// exact — nothing left for a correction to cut.
    pub fn exact(&self) -> bool {
        self.raw_rel_mae < 1e-12
    }
}

/// Calibration quality on one zoo model × board pair.
#[derive(Debug, Clone)]
pub struct CalibrationQuality {
    /// CNN name.
    pub model: String,
    /// Board name.
    pub board: String,
    /// Promoted designs the corrections were fitted on.
    pub train_designs: usize,
    /// Held-out promoted designs the errors were scored on.
    pub holdout_designs: usize,
    /// Per-metric raw-vs-calibrated errors.
    pub metrics: Vec<CalibrationMetricQuality>,
}

impl CalibrationQuality {
    /// Raw-over-calibrated MAE ratio across the non-exact metrics (the
    /// headline: how many times tighter calibrated predictions are).
    pub fn improvement(&self) -> f64 {
        let (mut raw, mut cal, mut n) = (0.0, 0.0, 0u32);
        for m in &self.metrics {
            if m.exact() {
                continue;
            }
            raw += m.raw_rel_mae;
            cal += m.cal_rel_mae;
            n += 1;
        }
        if n == 0 || cal <= 0.0 {
            return 1.0;
        }
        raw / cal
    }
}

/// The measured experiment: both lanes plus their quality comparison
/// (`a` = guided, `b` = random throughout).
#[derive(Debug, Clone)]
pub struct GuidedQuality {
    /// CPU the numbers were taken on.
    pub machine: String,
    /// Evaluation-attempt budget given to each lane.
    pub budget: u64,
    /// The objective set.
    pub metrics: Vec<Metric>,
    /// Guided-lane outcome.
    pub guided: LaneStats,
    /// Random-lane outcome.
    pub random: LaneStats,
    /// Front-quality comparison (guided = `a`, random = `b`).
    pub comparison: FrontComparison,
    /// The depth-first schedule axis measured on a BRAM-starved board.
    pub schedule_axis: ScheduleAxis,
    /// Warm segment-cache throughput vs whole-design re-evaluation.
    pub delta: DeltaThroughput,
    /// Simulator-in-the-loop calibration quality, one entry per zoo
    /// model × board pair.
    pub calibration: Vec<CalibrationQuality>,
}

/// Runs both lanes on the paper's Use Case 3 setup (Xception / VCU110)
/// at `budget` evaluation attempts each.
///
/// # Panics
///
/// On real builder faults — the space must only ever produce clean
/// feasible/infeasible outcomes here.
pub fn measure(budget: u64, seed: u64, workers: usize) -> GuidedQuality {
    let model = mccm_cnn::zoo::xception();
    let board = FpgaBoard::vcu110();
    let explorer = Explorer::new(&model, &board);
    let space = CustomSpace::paper_range(model.conv_layer_count());
    let metrics = Metric::WITH_ENERGY.to_vec();

    // Random lane: exactly `budget` attempts of the counter-based stream.
    let start = Instant::now();
    let mut scratch = EvalScratch::new();
    let mut front = ParetoFront::new(&metrics);
    let mut feasible = 0u64;
    for attempt in 0..budget {
        let design = sample_attempt(&space, seed, attempt);
        let spec = match design.to_spec(&model) {
            Ok(spec) => spec,
            Err(ArchError::Infeasible { .. }) => continue,
            Err(e) => panic!("builder fault in random lane: {e}"),
        };
        match explorer.evaluate_summary(&spec, &mut scratch) {
            Ok(summary) => {
                feasible += 1;
                front.offer(summary);
            }
            Err(ArchError::Infeasible { .. }) => continue,
            Err(e) => panic!("builder fault in random lane: {e}"),
        }
    }
    let random = LaneStats {
        evaluations: budget,
        feasible,
        front: front.into_items(),
        seconds: start.elapsed().as_secs_f64(),
    };

    // Guided lane: the NSGA-II island model at the same attempt budget.
    // Population scales with the budget so tiny smoke runs still breed.
    let population = (budget / 40).clamp(8, 48) as usize;
    let config = OptimizerConfig::default()
        .with_metrics(&metrics)
        .with_budget(budget)
        .with_population(population)
        .with_islands(4)
        .with_seed(seed);
    let outcome = explorer
        .optimize_par(&config, workers)
        .expect("guided search must not hit real builder faults");
    let guided = LaneStats {
        evaluations: outcome.evaluations,
        feasible: outcome.feasible,
        front: outcome.points.iter().map(|p| p.summary.clone()).collect(),
        seconds: outcome.elapsed.as_secs_f64(),
    };

    let comparison = compare_fronts(&guided.front, &random.front, &metrics);

    // Schedule axis: the same kind of guided search on a BRAM-starved
    // board where layer-by-layer execution spills feature maps, once
    // with the depth-first axis open (fuse depths up to 4) and once
    // restricted to layer-by-layer, at equal budget and seed.
    let sa_model = mccm_cnn::zoo::mobilenet_v2();
    let sa_board = FpgaBoard::new("small-bram", 900, MiB(0.5), 4.0);
    let sa_explorer = Explorer::new(&sa_model, &sa_board);
    let sa_config = OptimizerConfig::default()
        .with_metrics(&metrics)
        .with_budget(budget)
        .with_population(population)
        .with_islands(3)
        .with_seed(seed);
    let lbl_front = sa_explorer
        .optimize_par(&sa_config, workers)
        .expect("schedule-axis baseline must not hit real builder faults");
    let df_front = sa_explorer
        .optimize_par(&sa_config.clone().with_max_fuse_depth(4), workers)
        .expect("schedule-axis search must not hit real builder faults");
    let df_points: Vec<_> = df_front
        .points
        .iter()
        .filter(|p| matches!(p.design.schedule, Schedule::DepthFirst { .. }))
        .collect();
    let schedule_axis = ScheduleAxis {
        model: sa_model.name().to_string(),
        board: sa_board.name.clone(),
        front_size: df_front.points.len(),
        depth_first_points: df_points.len(),
        best_lbl_offchip_bytes: lbl_front
            .points
            .iter()
            .map(|p| p.summary.offchip_bytes.get())
            .min()
            .unwrap_or(0),
        best_df_offchip_bytes: df_points
            .iter()
            .map(|p| p.summary.offchip_bytes.get())
            .min()
            .unwrap_or(0),
    };

    // Delta throughput: re-evaluate a fixed distinct design set once to
    // warm the segment cache, then time whole-design evaluation against
    // warm all-hit recombination over the exact same list. Both passes
    // share the builder memos, so the ratio isolates what the segment
    // cache saves: the per-design CE build and core cost runs.
    let space = explorer.paper_space();
    let mut designs =
        CustomSampler::new(space, seed ^ 0xD17A).sample_many((budget as usize).clamp(200, 2_000));
    designs.sort_by_key(|d| (d.head_layers, d.tail_ends.clone()));
    designs.dedup();
    let ctx = DeltaContext::new(&explorer);
    let mut cache = SegCache::new();
    for d in &designs {
        explorer
            .custom_summary_delta(d, &ctx, &mut cache, &mut scratch)
            .expect("paper-space designs must not hit real builder faults");
    }
    let start = Instant::now();
    let mut full_acc = 0u64;
    for d in &designs {
        let spec = d
            .to_spec(&model)
            .expect("warmed designs are feasible by construction");
        let s = explorer
            .evaluate_summary(&spec, &mut scratch)
            .expect("warmed designs are feasible by construction");
        full_acc = full_acc.wrapping_add(s.total_macs.get());
    }
    let full_time = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let mut warm_acc = 0u64;
    for d in &designs {
        let p = explorer
            .custom_summary_delta(d, &ctx, &mut cache, &mut scratch)
            .expect("paper-space designs must not hit real builder faults")
            .expect("warmed designs are feasible by construction");
        warm_acc = warm_acc.wrapping_add(p.summary.total_macs.get());
    }
    let warm_time = start.elapsed().as_secs_f64();
    assert_eq!(full_acc, warm_acc, "delta lane diverged from the full lane");
    let stats = cache.stats();
    let delta = DeltaThroughput {
        designs: designs.len(),
        full_evals_per_s: designs.len() as f64 / full_time,
        warm_evals_per_s: designs.len() as f64 / warm_time,
        seg_hits: stats.seg_hits,
        delta_recombines: stats.delta_recombines,
        cached_segments: cache.len(),
    };

    let calibration = vec![
        measure_calibration(
            &mccm_cnn::zoo::mobilenet_v2(),
            &FpgaBoard::zc706(),
            budget,
            seed,
            workers,
        ),
        measure_calibration(
            &mccm_cnn::zoo::resnet50(),
            &FpgaBoard::vcu108(),
            budget,
            seed,
            workers,
        ),
    ];

    GuidedQuality {
        machine: machine_name(),
        budget,
        metrics,
        guided,
        random,
        comparison,
        schedule_axis,
        delta,
        calibration,
    }
}

/// One promoted design's (metric, analytical, simulated) measurements.
type MeasuredPairs = Vec<(Metric, f64, f64)>;

/// Scores the calibration loop on one model × board pair: optimize,
/// promote a deterministic top-10 slice of the front to simulator runs,
/// fit corrections on the even-indexed promoted designs, and score raw
/// vs calibrated relative MAE on the odd-indexed holdout. The split
/// alternates along the promotion order (extremes first, then crowding
/// fill), so train and holdout both mix extreme and interior designs.
///
/// # Panics
///
/// On real builder faults, like the lanes above.
fn measure_calibration(
    model: &mccm_cnn::CnnModel,
    board: &FpgaBoard,
    budget: u64,
    seed: u64,
    workers: usize,
) -> CalibrationQuality {
    let explorer = Explorer::new(model, board);
    let metrics = Metric::WITH_ENERGY.to_vec();
    let population = (budget / 40).clamp(8, 48) as usize;
    let config = OptimizerConfig::default()
        .with_metrics(&metrics)
        .with_budget(budget)
        .with_population(population)
        .with_islands(2)
        .with_seed(seed);
    let outcome = explorer
        .optimize_par(&config, workers)
        .expect("calibration search must not hit real builder faults");
    let front: Vec<EvalSummary> = outcome.points.iter().map(|p| p.summary.clone()).collect();
    let promoted = mccm_calib::promote_top_k(&front, &metrics, 10);

    let cancel = CancelToken::new();
    let measured: Vec<(String, MeasuredPairs)> = promoted
        .iter()
        .map(|&idx| {
            let spec = outcome.points[idx]
                .design
                .to_spec(model)
                .expect("front members are feasible by construction");
            let acc = explorer
                .builder()
                .build(&spec)
                .expect("front members are feasible by construction");
            let eval = CostModel::evaluate(&acc);
            let sim = simulate(&acc, &eval, SimConfig::default(), &cancel)
                .expect("a fresh token never cancels");
            (eval.notation.clone(), metric_pairs(&eval, &sim))
        })
        .collect();

    let mut store = CalibStore::new();
    let mut train = 0usize;
    for (notation, pairs) in measured.iter().step_by(2) {
        store.record(&board.name, "int8", model.name(), 1, notation, pairs);
        train += 1;
    }
    let corrections = fit_corrections(&store, &board.name, "int8", &CALIBRATED_METRICS);
    let holdout: Vec<&MeasuredPairs> = measured.iter().skip(1).step_by(2).map(|(_, p)| p).collect();

    let metrics = corrections
        .iter()
        .map(|(metric, correction)| {
            let (mut raw, mut cal, mut n) = (0.0, 0.0, 0u32);
            for pairs in &holdout {
                for &(m, analytical, simulated) in pairs.iter() {
                    if m != *metric || simulated == 0.0 {
                        continue;
                    }
                    raw += (analytical - simulated).abs() / simulated.abs();
                    cal += (correction.apply(analytical) - simulated).abs() / simulated.abs();
                    n += 1;
                }
            }
            let n = f64::from(n.max(1));
            CalibrationMetricQuality {
                metric: *metric,
                raw_rel_mae: raw / n,
                cal_rel_mae: cal / n,
            }
        })
        .collect();

    CalibrationQuality {
        model: model.name().to_string(),
        board: board.name.clone(),
        train_designs: train,
        holdout_designs: holdout.len(),
        metrics,
    }
}

impl GuidedQuality {
    /// Printable report.
    pub fn report(&self) -> Report {
        let mut report = Report::new(
            "guided",
            "Guided vs random front quality at equal budget (Xception on VCU110)",
        );
        let mut lanes = Table::new(
            "lanes",
            &[
                "lane",
                "attempts",
                "feasible",
                "front size",
                "hypervolume",
                "covers other",
                "seconds",
            ],
        );
        for (name, lane, hv, cov) in [
            (
                "guided (NSGA-II islands)",
                &self.guided,
                self.comparison.hypervolume_a,
                self.comparison.coverage_a_over_b,
            ),
            (
                "random (seeded stream)",
                &self.random,
                self.comparison.hypervolume_b,
                self.comparison.coverage_b_over_a,
            ),
        ] {
            lanes.row(vec![
                name.into(),
                lane.evaluations.to_string(),
                lane.feasible.to_string(),
                lane.front.len().to_string(),
                format!("{hv:.4}"),
                format!("{:.0}%", 100.0 * cov),
                format!("{:.2}", lane.seconds),
            ]);
        }
        report.tables.push(lanes);

        let mut best = Table::new(
            "best_per_metric",
            &["metric", "guided best", "random best", "winner"],
        );
        for (i, m) in self.metrics.iter().enumerate() {
            let (g, r) = (self.comparison.best_a[i], self.comparison.best_b[i]);
            let winner = if m.better(g, r) {
                "guided"
            } else if m.better(r, g) {
                "random"
            } else {
                "tie"
            };
            best.row(vec![
                m.name().to_string(),
                format!("{g:.6e}"),
                format!("{r:.6e}"),
                winner.to_string(),
            ]);
        }
        report.tables.push(best);

        let sa = &self.schedule_axis;
        let mut axis = Table::new(
            "schedule_axis",
            &[
                "setup",
                "front size",
                "depth-first points",
                "best LbL traffic (B)",
                "best DF traffic (B)",
                "traffic cut",
            ],
        );
        axis.row(vec![
            format!("{} on {}", sa.model, sa.board),
            sa.front_size.to_string(),
            sa.depth_first_points.to_string(),
            sa.best_lbl_offchip_bytes.to_string(),
            sa.best_df_offchip_bytes.to_string(),
            format!("{:.1}%", 100.0 * sa.traffic_reduction()),
        ]);
        report.tables.push(axis);

        let d = &self.delta;
        let mut delta = Table::new(
            "delta_eval",
            &[
                "designs",
                "full evals/s",
                "warm delta evals/s",
                "speedup",
                "recombines",
                "cached segments",
            ],
        );
        delta.row(vec![
            d.designs.to_string(),
            format!("{:.0}", d.full_evals_per_s),
            format!("{:.0}", d.warm_evals_per_s),
            format!("{:.1}x", d.speedup()),
            d.delta_recombines.to_string(),
            d.cached_segments.to_string(),
        ]);
        report.tables.push(delta);

        let mut cal = Table::new(
            "calibration",
            &[
                "pair",
                "train",
                "holdout",
                "metric",
                "raw rel MAE",
                "calibrated rel MAE",
            ],
        );
        for c in &self.calibration {
            for m in &c.metrics {
                cal.row(vec![
                    format!("{} on {}", c.model, c.board),
                    c.train_designs.to_string(),
                    c.holdout_designs.to_string(),
                    m.metric.name().to_string(),
                    format!("{:.4e}", m.raw_rel_mae),
                    if m.exact() {
                        "exact".to_string()
                    } else {
                        format!("{:.4e}", m.cal_rel_mae)
                    },
                ]);
            }
        }
        report.tables.push(cal);

        report.note(format!(
            "Warm segment-cache re-evaluation runs {:.1}x faster than \
             whole-design evaluation over {} distinct designs.",
            d.speedup(),
            d.designs
        ));
        for c in &self.calibration {
            report.note(format!(
                "Calibrated predictions are {:.1}x tighter than raw analytical \
                 output against the simulator on {} / {} (held-out designs).",
                c.improvement(),
                c.model,
                c.board
            ));
        }
        report.note(format!(
            "Guided matches or beats random on {}/{} metrics at {} attempts each \
             (hypervolume {:.4} vs {:.4}) on {}.",
            self.comparison.a_best_or_tied,
            self.metrics.len(),
            self.budget,
            self.comparison.hypervolume_a,
            self.comparison.hypervolume_b,
            self.machine
        ));
        report
    }

    /// The `BENCH_guided.json` record (hand-rendered; the workspace
    /// carries no JSON dependency) — lives alongside `BENCH_eval.json` in
    /// the repo's perf/quality trajectory.
    pub fn to_json(&self) -> String {
        let calibration = self
            .calibration
            .iter()
            .map(|c| {
                let metrics = c
                    .metrics
                    .iter()
                    .map(|m| {
                        format!(
                            "{{\"metric\": \"{}\", \"raw_rel_mae\": {:.6e}, \
                             \"cal_rel_mae\": {:.6e}}}",
                            m.metric.name(),
                            m.raw_rel_mae,
                            m.cal_rel_mae
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\n    \"model\": \"{}\",\n    \"board\": \"{}\",\n    \
                     \"train_designs\": {},\n    \"holdout_designs\": {},\n    \
                     \"improvement\": {:.2},\n    \"metrics\": [{}]\n  }}",
                    c.model.replace('"', "'"),
                    c.board.replace('"', "'"),
                    c.train_designs,
                    c.holdout_designs,
                    c.improvement(),
                    metrics
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        // Non-finite bests (an empty front) must stay valid JSON.
        let best = |v: &[f64]| -> String {
            v.iter()
                .map(|x| {
                    if x.is_finite() {
                        format!("{x:.6e}")
                    } else {
                        "null".to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{{\n  \"experiment\": \"guided\",\n  \"machine\": \"{}\",\n  \
             \"model\": \"Xception\",\n  \"board\": \"VCU110\",\n  \"budget\": {},\n  \
             \"metrics\": [{}],\n  \
             \"guided\": {{\n    \"evaluations\": {},\n    \"feasible\": {},\n    \
             \"front_size\": {},\n    \"hypervolume\": {:.6},\n    \
             \"coverage_of_random\": {:.4},\n    \"best\": [{}],\n    \"seconds\": {:.3}\n  }},\n  \
             \"random\": {{\n    \"evaluations\": {},\n    \"feasible\": {},\n    \
             \"front_size\": {},\n    \"hypervolume\": {:.6},\n    \
             \"coverage_of_guided\": {:.4},\n    \"best\": [{}],\n    \"seconds\": {:.3}\n  }},\n  \
             \"guided_best_or_tied_metrics\": {},\n  \
             \"schedule_axis\": {{\n    \"model\": \"{}\",\n    \"board\": \"{}\",\n    \
             \"front_size\": {},\n    \"depth_first_points\": {},\n    \
             \"best_layer_by_layer_offchip_bytes\": {},\n    \
             \"best_depth_first_offchip_bytes\": {},\n    \
             \"traffic_reduction\": {:.4}\n  }},\n  \
             \"delta_eval\": {{\n    \"designs\": {},\n    \
             \"full_evals_per_s\": {:.0},\n    \"warm_evals_per_s\": {:.0},\n    \
             \"speedup\": {:.2},\n    \"seg_hits\": {},\n    \
             \"delta_recombines\": {},\n    \"cached_segments\": {}\n  }},\n  \
             \"calibration\": [{}]\n}}\n",
            self.machine.replace('"', "'"),
            self.budget,
            self.metrics
                .iter()
                .map(|m| format!("\"{}\"", m.name()))
                .collect::<Vec<_>>()
                .join(", "),
            self.guided.evaluations,
            self.guided.feasible,
            self.guided.front.len(),
            self.comparison.hypervolume_a,
            self.comparison.coverage_a_over_b,
            best(&self.comparison.best_a),
            self.guided.seconds,
            self.random.evaluations,
            self.random.feasible,
            self.random.front.len(),
            self.comparison.hypervolume_b,
            self.comparison.coverage_b_over_a,
            best(&self.comparison.best_b),
            self.random.seconds,
            self.comparison.a_best_or_tied,
            self.schedule_axis.model.replace('"', "'"),
            self.schedule_axis.board.replace('"', "'"),
            self.schedule_axis.front_size,
            self.schedule_axis.depth_first_points,
            self.schedule_axis.best_lbl_offchip_bytes,
            self.schedule_axis.best_df_offchip_bytes,
            self.schedule_axis.traffic_reduction(),
            self.delta.designs,
            self.delta.full_evals_per_s,
            self.delta.warm_evals_per_s,
            self.delta.speedup(),
            self.delta.seg_hits,
            self.delta.delta_recombines,
            self.delta.cached_segments,
            calibration,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guided_front_matches_or_beats_random_at_equal_budget() {
        // The acceptance bar of the guided optimizer: at the same attempt
        // budget on the paper's Use Case 3 setup, the guided front must
        // dominate or match the random front's best on at least 3 of the
        // 5 metrics.
        let q = measure(600, 7, 1);
        assert_eq!(q.random.evaluations, 600);
        assert!(q.guided.evaluations <= 600);
        assert!(!q.guided.front.is_empty() && !q.random.front.is_empty());
        assert!(
            q.comparison.a_best_or_tied >= 3,
            "guided only best/tied on {}/5 metrics: guided {:?} vs random {:?}",
            q.comparison.a_best_or_tied,
            q.comparison.best_a,
            q.comparison.best_b
        );
        // The quality measures and JSON must render sanely.
        assert!(q.comparison.hypervolume_a > 0.0 && q.comparison.hypervolume_a <= 1.0);
        assert!(q.comparison.hypervolume_b > 0.0 && q.comparison.hypervolume_b <= 1.0);
        let json = q.to_json();
        assert!(json.contains("\"guided_best_or_tied_metrics\""));
        assert!(json.contains("\"budget\": 600"));
        assert!(json.contains("\"schedule_axis\""));
        assert!(json.contains("\"delta_eval\""));
        assert!(json.contains("\"calibration\""));
        assert_eq!(q.report().tables.len(), 5);
        // The calibration acceptance bar: on both zoo model × board
        // pairs, calibrated predictions must cut held-out MAE against the
        // simulator by at least 2x versus raw analytical output.
        assert_eq!(q.calibration.len(), 2);
        for c in &q.calibration {
            assert!(c.train_designs >= 3 && c.holdout_designs >= 3, "{c:?}");
            assert!(
                c.improvement() >= 2.0,
                "{} on {} only improved {:.2}x: {:?}",
                c.model,
                c.board,
                c.improvement(),
                c.metrics
            );
            // Off-chip traffic is architecturally deterministic: the
            // simulator agrees exactly, and calibration leaves it alone.
            let access = c
                .metrics
                .iter()
                .find(|m| m.metric == Metric::OffChipAccesses)
                .unwrap();
            assert!(access.exact(), "{access:?}");
        }
        // Warm all-hit recombination must beat whole-design evaluation
        // even at smoke-test scale (release runs record ~5x or better).
        assert!(
            q.delta.speedup() > 1.0,
            "warm delta is not faster than full evaluation: {:?}",
            q.delta
        );
        // The timed pass is all-hit by construction (the warm-up pass may
        // add more recombines of its own on first-visit segment reuse).
        assert!(q.delta.delta_recombines as usize >= q.delta.designs);
        // The schedule axis must actually pay off on the starved board:
        // depth-first designs on the front, cutting traffic strictly
        // below the layer-by-layer-only search.
        let sa = &q.schedule_axis;
        assert!(sa.depth_first_points > 0);
        assert!(
            sa.best_df_offchip_bytes < sa.best_lbl_offchip_bytes,
            "depth-first {} vs layer-by-layer {}",
            sa.best_df_offchip_bytes,
            sa.best_lbl_offchip_bytes
        );
        assert!(sa.traffic_reduction() > 0.0);
    }
}
