//! Fig. 10 / Use Case 3: MCCM-driven design-space exploration of the
//! custom Hybrid-head + Segmented-tail space on Xception / VCU110 —
//! sampling the space, timing the evaluations, and comparing the best
//! custom designs against the strongest baselines.
//!
//! Samples are evaluated by the sharded parallel path with lean
//! per-design summaries, so the 100k-design runs of the paper fit in a
//! few MiB instead of cloning full per-segment breakdowns per design;
//! the point set is identical to the serial path for any worker count.

use mccm_cnn::zoo;
use mccm_core::Metric;
use mccm_dse::{par_pareto_indices, CustomSpace, Explorer};
use mccm_fpga::FpgaBoard;

use crate::output::{Report, Table};
use crate::setups::{baseline_sweep, best_instance, mib};

/// Runs the exploration with `samples` random custom designs across
/// `workers` threads (0 = one per core; the paper samples 100 000, the
/// default binary uses 20 000 and accepts `--samples N` / `--workers N`).
pub fn run(samples: usize, seed: u64, workers: usize) -> Report {
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let explorer = Explorer::new(&model, &board);

    let sweep = baseline_sweep(&model, &board);
    let seg_best = best_instance(
        &sweep,
        mccm_arch::templates::Architecture::Segmented,
        Metric::Throughput,
    )
    .unwrap();

    let (points, elapsed) = explorer
        .par_sample_custom_summaries(samples, seed, workers)
        .expect("custom sampling failed");
    let per_design = elapsed.as_secs_f64() / samples as f64;

    let mut report = Report::new(
        "fig10",
        "Custom-space exploration (Hybrid head + Segmented tail), Xception on VCU110",
    );

    // Scatter CSV (throughput, buffers) — the Fig. 10 cloud.
    let mut t = Table::new(
        "scatter",
        &["notation", "CEs", "throughput (FPS)", "buffers (MiB)"],
    );
    for p in &points {
        t.row(vec![
            p.summary.notation.clone(),
            p.summary.ce_count.to_string(),
            format!("{:.2}", p.summary.throughput_fps),
            format!("{:.2}", mib(p.summary.buffer_req_bytes)),
        ]);
    }
    report.tables.push(t);

    // Pareto front over (throughput up, buffers down), extracted with
    // per-worker local fronts merged at the end. The scatter table above
    // was the last user of the full points, so move the summaries out
    // instead of cloning 100k notation strings.
    let summaries: Vec<_> = points.into_iter().map(|p| p.summary).collect();
    let front = par_pareto_indices(
        &summaries,
        &[Metric::Throughput, Metric::OnChipBuffers],
        workers,
    );
    let mut pf = Table::new(
        "pareto",
        &["notation", "CEs", "throughput (FPS)", "buffers (MiB)"],
    );
    for &i in &front {
        pf.row(vec![
            summaries[i].notation.clone(),
            summaries[i].ce_count.to_string(),
            format!("{:.2}", summaries[i].throughput_fps),
            format!("{:.2}", mib(summaries[i].buffer_req_bytes)),
        ]);
    }
    report.tables.push(pf);

    // The paper's two headline comparisons against Segmented-4 (the
    // highest-throughput baseline).
    let base_fps = seg_best.eval.throughput_fps;
    let base_buf = seg_best.eval.buffer_req_bytes.as_f64();
    let best_buf_at_base = summaries
        .iter()
        .filter(|e| e.throughput_fps >= base_fps * 0.999)
        .map(|e| e.buffer_req_bytes.as_f64())
        .fold(f64::INFINITY, f64::min);
    let best_fps = summaries
        .iter()
        .map(|e| e.throughput_fps)
        .fold(0.0f64, f64::max);
    let best_fps_buf = summaries
        .iter()
        .filter(|e| e.throughput_fps >= best_fps * 0.999)
        .map(|e| e.buffer_req_bytes.as_f64())
        .fold(f64::INFINITY, f64::min);

    report.note(format!(
        "Evaluated {samples} designs in {:.1} s — {:.2} ms/design (paper: 100000 designs in \
         10.5 min, 6.3 ms/design in Python; space size here {:.3e} designs).",
        elapsed.as_secs_f64(),
        per_design * 1e3,
        CustomSpace::paper_range(model.conv_layer_count()).size() as f64
    ));
    report.note(format!(
        "Baseline Segmented-{}: {:.1} FPS at {:.2} MiB buffers.",
        seg_best.ces,
        base_fps,
        base_buf / (1024.0 * 1024.0)
    ));
    if best_buf_at_base.is_finite() {
        report.note(format!(
            "Customs matching its throughput cut buffers by {:.0}% (paper: up to 48%).",
            100.0 * (1.0 - best_buf_at_base / base_buf)
        ));
    } else {
        report.note("No sampled custom matched the baseline throughput.".to_string());
    }
    report.note(format!(
        "Best-throughput customs: +{:.0}% FPS at {:+.0}% buffers vs the baseline \
         (paper: +17% FPS at -39% buffers).",
        100.0 * (best_fps / base_fps - 1.0),
        100.0 * (best_fps_buf / base_buf - 1.0)
    ));
    report.note(format!("Pareto front size: {} designs.", front.len()));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn small_sample_runs() {
        let r = super::run(200, 7, 2);
        assert_eq!(r.tables[0].rows.len(), 200);
        assert!(!r.tables[1].rows.is_empty());
        assert!(r.notes.len() >= 4);
    }
}
