//! Fig. 9: per-segment buffer split and PE underutilization of the two
//! most promising Fig. 8 instances — Segmented with 4 CEs and Hybrid with
//! 7 CEs (2 segments), Xception on VCU110. These bottleneck views motivate
//! the custom Hybrid-head/Segmented-tail space of Use Case 3.

use mccm_arch::templates;
use mccm_arch::MultipleCeBuilder;
use mccm_cnn::zoo;
use mccm_core::{CostModel, Evaluation};
use mccm_fpga::FpgaBoard;

use crate::output::{Report, Table};

/// Runs the experiment.
pub fn run() -> Report {
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let builder = MultipleCeBuilder::new(&model, &board);

    let seg4 = CostModel::evaluate(
        &builder
            .build(&templates::segmented(&model, 4).unwrap())
            .unwrap(),
    );
    let hyb7 = CostModel::evaluate(
        &builder
            .build(&templates::hybrid(&model, 7).unwrap())
            .unwrap(),
    );

    let mut report = Report::new(
        "fig9",
        "Per-segment buffers and PE underutilization: Segmented-4 vs Hybrid-7, Xception on VCU110",
    );

    // (a) Buffers normalized to the Segmented total (as in the paper).
    let seg_total: mccm_core::Bytes = seg4.segments.iter().map(|s| s.buffer_req_bytes).sum();
    let mut a = Table::new(
        "a_buffers",
        &[
            "design",
            "segment",
            "buffer (normalized to Segmented total)",
        ],
    );
    for (name, eval) in [("Segmented-4", &seg4), ("Hybrid-7", &hyb7)] {
        for s in &eval.segments {
            a.row(vec![
                name.to_string(),
                format!("Seg{}", s.index + 1),
                format!("{:.3}", s.buffer_req_bytes.as_f64() / seg_total.as_f64()),
            ]);
        }
    }
    report.tables.push(a);

    // (b) Underutilization normalized to the minimum across all segments.
    let min_under = seg4
        .segments
        .iter()
        .chain(hyb7.segments.iter())
        .map(|s| s.underutilization())
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    let mut b = Table::new(
        "b_underutilization",
        &["design", "segment", "underutilization", "normalized to min"],
    );
    for (name, eval) in [("Segmented-4", &seg4), ("Hybrid-7", &hyb7)] {
        for s in &eval.segments {
            b.row(vec![
                name.to_string(),
                format!("Seg{}", s.index + 1),
                format!("{:.3}", s.underutilization()),
                format!("{:.2}", s.underutilization() / min_under),
            ]);
        }
    }
    report.tables.push(b);

    report.note(bottleneck_note("Segmented-4", &seg4));
    report.note(bottleneck_note("Hybrid-7", &hyb7));
    report.note(
        "Paper: the Segmented's first segments dominate its buffers while the Hybrid's \
         bottleneck sits in its last block — hinting at the Hybrid-head + Segmented-tail \
         custom space explored in Fig. 10."
            .to_string(),
    );
    report
}

fn bottleneck_note(name: &str, eval: &Evaluation) -> String {
    let slowest = eval
        .segments
        .iter()
        .max_by(|a, b| a.time_s.total_cmp(&b.time_s))
        .expect("non-empty");
    let biggest = eval
        .segments
        .iter()
        .max_by_key(|s| s.buffer_req_bytes)
        .expect("non-empty");
    format!(
        "{name}: throughput bottleneck segment {} (underutilization {:.2}); largest buffer \
         segment {}.",
        slowest.index + 1,
        slowest.underutilization(),
        biggest.index + 1
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn segment_counts_match_paper() {
        let r = super::run();
        // Segmented-4 has 4 segments, Hybrid-7 has 2 (head + tail).
        assert_eq!(r.tables[0].rows.len(), 4 + 2);
        assert_eq!(r.tables[1].rows.len(), 4 + 2);
    }
}
