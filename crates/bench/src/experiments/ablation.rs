//! Ablation studies of the design choices called out in DESIGN.md §2:
//!
//! 1. **Pipelined latency form** — asynchronous critical path (ours) vs a
//!    literal lockstep stage sum for Eq. (2), validated against the
//!    event-driven reference.
//! 2. **Bandwidth derating** — sensitivity of latency accuracy to the
//!    assumed effective DDR bandwidth.
//! 3. **PE allocation** — workload-proportional (the paper's heuristic)
//!    vs uniform DSP splits.
//! 4. **Pipelined engine parallelism** — row-pipelined (`p_oh = 1`,
//!    TGPA-faithful) vs unrestricted 3-D parallelism, which hides per-row
//!    weight re-streaming and collapses the SegmentedRR access bottleneck
//!    of Fig. 5.

use mccm_arch::templates::Architecture;
use mccm_arch::{BuilderOptions, MultipleCeBuilder, PeAllocation};
use mccm_cnn::zoo;
use mccm_core::{CostModel, ModelConfig, PipelineLatencyMode};
use mccm_fpga::FpgaBoard;
use mccm_sim::{SimConfig, Simulator};

use crate::output::{Report, Table};
use crate::setups::mib;

/// Runs all four ablations.
pub fn run() -> Report {
    let mut report = Report::new("ablation", "Design-choice ablations (DESIGN.md §2)");
    report.tables.push(latency_mode_table());
    report.tables.push(bandwidth_derate_table());
    report.tables.push(pe_allocation_table());
    report.tables.push(row_parallelism_table());
    report.note(
        "Critical-path evaluation of Eq. (2) tracks the asynchronous reference far better than \
         the lockstep stage sum on deep pipelined blocks — the basis for DESIGN.md §2's choice."
            .to_string(),
    );
    report.note(
        "Row-pipelined engines (p_oh = 1) are required to reproduce Fig. 5's SegmentedRR \
         off-chip access bottleneck; 3-D parallelism hides the per-row weight re-streaming."
            .to_string(),
    );
    report
}

/// Ablation 1: Eq. (2) evaluation form vs the reference simulator.
fn latency_mode_table() -> Table {
    let board = FpgaBoard::vcu108();
    let sim = Simulator::new(SimConfig::default());
    let mut t = Table::new(
        "latency_mode",
        &["model", "arch", "CEs", "critical-path acc", "lockstep acc"],
    );
    for model in [zoo::resnet50(), zoo::mobilenet_v2()] {
        let builder = MultipleCeBuilder::new(&model, &board);
        for (arch, k) in [
            (Architecture::Hybrid, 6usize),
            (Architecture::Hybrid, 11),
            (Architecture::SegmentedRr, 8),
        ] {
            let acc = builder
                .build(&arch.instantiate(&model, k).unwrap())
                .unwrap();
            let cp = CostModel::evaluate_with(&acc, &ModelConfig::default());
            let ls = CostModel::evaluate_with(
                &acc,
                &ModelConfig::new().with_pipeline_latency(PipelineLatencyMode::LockstepStages),
            );
            let r = sim.run_with_eval(&acc, &cp);
            t.row(vec![
                model.name().to_string(),
                arch.name().to_string(),
                k.to_string(),
                format!("{:.1}%", mccm_core::accuracy_pct(r.latency_s, cp.latency_s)),
                format!("{:.1}%", mccm_core::accuracy_pct(r.latency_s, ls.latency_s)),
            ]);
        }
    }
    t
}

/// Ablation 2: effective-bandwidth sensitivity.
fn bandwidth_derate_table() -> Table {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    let acc = builder
        .build(&Architecture::SegmentedRr.instantiate(&model, 2).unwrap())
        .unwrap();
    let mut t = Table::new(
        "bandwidth_derate",
        &[
            "derate",
            "latency (ms)",
            "throughput (FPS)",
            "stall fraction",
        ],
    );
    for derate in [1.0f64, 0.9, 0.8, 0.7, 0.6] {
        let e = CostModel::evaluate_with(&acc, &ModelConfig::new().with_bandwidth_derate(derate));
        t.row(vec![
            format!("{derate:.1}"),
            format!("{:.1}", e.latency_ms()),
            format!("{:.1}", e.throughput_fps),
            format!("{:.0}%", 100.0 * e.memory_stall_fraction),
        ]);
    }
    t
}

/// Ablation 3: PE-allocation policy (model-only comparison).
fn pe_allocation_table() -> Table {
    let model = zoo::resnet50();
    let board = FpgaBoard::zcu102();
    let mut t = Table::new(
        "pe_allocation",
        &[
            "arch",
            "CEs",
            "proportional FPS",
            "uniform FPS",
            "uniform penalty",
        ],
    );
    for (arch, k) in [
        (Architecture::Segmented, 4usize),
        (Architecture::Segmented, 8),
        (Architecture::SegmentedRr, 4),
        (Architecture::Hybrid, 7),
    ] {
        let spec = arch.instantiate(&model, k).unwrap();
        let prop =
            CostModel::evaluate(&MultipleCeBuilder::new(&model, &board).build(&spec).unwrap());
        let unif = CostModel::evaluate(
            &MultipleCeBuilder::new(&model, &board)
                .with_options(BuilderOptions {
                    pe_allocation: PeAllocation::Uniform,
                    ..Default::default()
                })
                .build(&spec)
                .unwrap(),
        );
        t.row(vec![
            arch.name().to_string(),
            k.to_string(),
            format!("{:.1}", prop.throughput_fps),
            format!("{:.1}", unif.throughput_fps),
            format!(
                "{:.0}%",
                100.0 * (1.0 - unif.throughput_fps / prop.throughput_fps)
            ),
        ]);
    }
    t
}

/// Ablation 4: pipelined-engine parallelism dimensionality.
fn row_parallelism_table() -> Table {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let spec = Architecture::SegmentedRr.instantiate(&model, 2).unwrap();
    let row = CostModel::evaluate(&MultipleCeBuilder::new(&model, &board).build(&spec).unwrap());
    let full = CostModel::evaluate(
        &MultipleCeBuilder::new(&model, &board)
            .with_options(BuilderOptions {
                pipelined_row_parallelism: true,
                ..Default::default()
            })
            .build(&spec)
            .unwrap(),
    );
    let mut t = Table::new(
        "row_parallelism",
        &[
            "pipelined parallelism",
            "accesses (MiB)",
            "latency (ms)",
            "weights share",
        ],
    );
    for (name, e) in [
        ("row-pipelined (p_oh = 1)", &row),
        ("unrestricted 3-D", &full),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.1}", mib(e.offchip_bytes)),
            format!("{:.1}", e.latency_ms()),
            format!("{:.0}%", 100.0 * e.weight_traffic_share()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_produce_tables() {
        let r = super::run();
        assert_eq!(r.tables.len(), 4);
        assert!(r.tables.iter().all(|t| !t.rows.is_empty()));
    }
}
