//! Evaluation-speed measurement behind the paper's headline claim: MCCM is
//! orders of magnitude faster than the traditional evaluation flow.
//!
//! The paper measures 6.3 ms/design (Python/C++) against ~1 h/design Vitis
//! synthesis — a 100000× gap. Here we measure (1) the analytical model,
//! (2) the full express→build→evaluate pipeline, and (3) the reference
//! simulator, and report the measured ratios plus the implied ratio
//! against the paper's quoted synthesis time.

use std::time::Instant;

use mccm_arch::{templates, MultipleCeBuilder};
use mccm_cnn::zoo;
use mccm_core::{CostModel, EvalScratch};
use mccm_fpga::FpgaBoard;
use mccm_sim::{SimConfig, Simulator};

use crate::output::{Report, Table};

/// Runs the timing study with `reps` designs per flow stage.
pub fn run(reps: usize) -> Report {
    let model = zoo::xception();
    let board = FpgaBoard::vcu110();
    let builder = MultipleCeBuilder::new(&model, &board);

    // Pre-build a rotating set of accelerators.
    let accs: Vec<_> = (2..=11)
        .map(|k| {
            builder
                .build(&templates::hybrid(&model, k).unwrap())
                .unwrap()
        })
        .collect();
    let evals: Vec<_> = accs.iter().map(CostModel::evaluate).collect();

    // (1) Analytical evaluation alone.
    let start = Instant::now();
    for i in 0..reps {
        std::hint::black_box(CostModel::evaluate(&accs[i % accs.len()]));
    }
    let model_s = start.elapsed().as_secs_f64() / reps as f64;

    // (1b) The summary fast lane: what DSE sweeps pay per design.
    let mut scratch = EvalScratch::new();
    let start = Instant::now();
    for i in 0..reps {
        std::hint::black_box(CostModel::evaluate_summary(
            &accs[i % accs.len()],
            &mut scratch,
        ));
    }
    let summary_s = start.elapsed().as_secs_f64() / reps as f64;

    // (2) Full pipeline: template -> builder -> model.
    let start = Instant::now();
    for i in 0..reps {
        let k = 2 + (i % 10);
        let spec = templates::hybrid(&model, k).unwrap();
        let acc = builder.build(&spec).unwrap();
        std::hint::black_box(CostModel::evaluate(&acc));
    }
    let pipeline_s = start.elapsed().as_secs_f64() / reps as f64;

    // (3) Reference simulator.
    let sim = Simulator::new(SimConfig::default());
    let sim_reps = reps.clamp(1, 50);
    let start = Instant::now();
    for i in 0..sim_reps {
        let j = i % accs.len();
        std::hint::black_box(sim.run_with_eval(&accs[j], &evals[j]));
    }
    let sim_s = start.elapsed().as_secs_f64() / sim_reps as f64;

    let mut report = Report::new("speed", "Evaluation-speed comparison (Xception on VCU110)");
    let mut t = Table::new("timing", &["stage", "per design", "vs model"]);
    let fmt = |s: f64| {
        if s < 1e-3 {
            format!("{:.1} µs", s * 1e6)
        } else if s < 1.0 {
            format!("{:.2} ms", s * 1e3)
        } else {
            format!("{s:.2} s")
        }
    };
    t.row(vec!["MCCM evaluate".into(), fmt(model_s), "1x".into()]);
    t.row(vec![
        "MCCM evaluate_summary (fast lane)".into(),
        fmt(summary_s),
        format!("{:.2}x", summary_s / model_s),
    ]);
    t.row(vec![
        "express + build + evaluate".into(),
        fmt(pipeline_s),
        format!("{:.1}x", pipeline_s / model_s),
    ]);
    t.row(vec![
        "reference simulator".into(),
        fmt(sim_s),
        format!("{:.0}x", sim_s / model_s),
    ]);
    t.row(vec![
        "HLS synthesis (paper's flow)".into(),
        "~1 h (quoted)".into(),
        format!("{:.1e}x", 3600.0 / model_s),
    ]);
    report.tables.push(t);

    report.note(format!(
        "Paper: 6.3 ms/design and ~100000x vs synthesis; this Rust implementation evaluates a \
         design in {} (pipeline {}), an implied {:.0e}x vs the paper's quoted synthesis hour.",
        fmt(model_s),
        fmt(pipeline_s),
        3600.0 / pipeline_s
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn measures_all_stages() {
        let r = super::run(5);
        assert_eq!(r.tables[0].rows.len(), 5);
    }
}
