//! Fig. 5: throughput vs off-chip accesses of ResNet-50 on ZC706 — 10
//! instances per architecture (2-11 CEs).

use mccm_arch::templates::Architecture;
use mccm_cnn::zoo;
use mccm_core::Metric;
use mccm_fpga::FpgaBoard;

use crate::output::{Report, Table};
use crate::setups::{baseline_sweep, best_instance, mib};

/// Runs the experiment.
pub fn run() -> Report {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let sweep = baseline_sweep(&model, &board);

    let mut report = Report::new(
        "fig5",
        "Throughput vs off-chip accesses, ResNet-50 on ZC706",
    );
    let mut t = Table::new(
        "scatter",
        &["architecture", "CEs", "throughput (FPS)", "accesses (MiB)"],
    );
    for p in &sweep {
        t.row(vec![
            p.architecture.name().to_string(),
            p.ces.to_string(),
            format!("{:.2}", p.eval.throughput_fps),
            format!("{:.1}", mib(p.eval.offchip_bytes)),
        ]);
    }
    report.tables.push(t);

    // The annotated extremes (paper: throughput bests SegRR-2 / Seg-7 /
    // Hyb-9; access bests labeled 2 / 3 / 2-ish).
    let mut ann = Table::new(
        "annotations",
        &[
            "architecture",
            "best-FPS CEs",
            "FPS",
            "min-access CEs",
            "accesses (MiB)",
        ],
    );
    for arch in Architecture::ALL {
        let bt = best_instance(&sweep, arch, Metric::Throughput).unwrap();
        let ba = best_instance(&sweep, arch, Metric::OffChipAccesses).unwrap();
        ann.row(vec![
            arch.name().to_string(),
            bt.ces.to_string(),
            format!("{:.1}", bt.eval.throughput_fps),
            ba.ces.to_string(),
            format!("{:.1}", mib(ba.eval.offchip_bytes)),
        ]);
    }
    report.tables.push(ann);

    // Shape check: SegmentedRR needs far more accesses than the others.
    let max_other = sweep
        .iter()
        .filter(|p| p.architecture != Architecture::SegmentedRr)
        .map(|p| p.eval.offchip_bytes)
        .max()
        .unwrap();
    let min_rr = sweep
        .iter()
        .filter(|p| p.architecture == Architecture::SegmentedRr)
        .map(|p| p.eval.offchip_bytes)
        .min()
        .unwrap();
    report.note(format!(
        "SegmentedRR minimum accesses {:.0} MiB vs other architectures' maximum {:.0} MiB — \
         the off-chip bottleneck of Fig. 5 ({}).",
        mib(min_rr),
        mib(max_other),
        if min_rr > max_other {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn thirty_points() {
        let r = super::run();
        assert_eq!(r.tables[0].rows.len(), 30);
        assert_eq!(r.tables[1].rows.len(), 3);
        assert!(r.notes[0].contains("reproduced"));
    }
}
