//! Fig. 6: per-segment compute vs memory-access time (as % of overall
//! execution time) for (a) SegmentedRR with 2 CEs and (b) Segmented with
//! 7 CEs, ResNet-50 on ZC706 — the fine-grained bottleneck view of Use
//! Case 2.

use mccm_arch::templates;
use mccm_arch::MultipleCeBuilder;
use mccm_cnn::zoo;
use mccm_core::{CostModel, Evaluation};
use mccm_fpga::FpgaBoard;

use crate::output::{Report, Table};

fn segment_table(name: &str, eval: &Evaluation) -> Table {
    let total: f64 = eval.segments.iter().map(|s| s.time_s).sum();
    let mut t = Table::new(
        name,
        &[
            "segment",
            "layers",
            "compute (% overall)",
            "memory (% overall)",
            "memory-bound",
        ],
    );
    for s in &eval.segments {
        t.row(vec![
            (s.index + 1).to_string(),
            format!("L{}-L{}", s.first + 1, s.last + 1),
            format!("{:.1}", 100.0 * s.compute_s / total),
            format!("{:.1}", 100.0 * s.memory_s / total),
            if s.memory_s > s.compute_s {
                "yes".into()
            } else {
                String::new()
            },
        ]);
    }
    t
}

/// Runs the experiment.
pub fn run() -> Report {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);

    let rr = CostModel::evaluate(
        &builder
            .build(&templates::segmented_rr(&model, 2).unwrap())
            .unwrap(),
    );
    let seg = CostModel::evaluate(
        &builder
            .build(&templates::segmented(&model, 7).unwrap())
            .unwrap(),
    );

    let mut report = Report::new(
        "fig6",
        "Per-segment compute vs memory time, ResNet-50 on ZC706",
    );
    report
        .tables
        .push(segment_table("a_segmented_rr_2ces", &rr));
    report.tables.push(segment_table("b_segmented_7ces", &seg));

    let rr_bound = rr
        .segments
        .iter()
        .filter(|s| s.memory_s > s.compute_s)
        .count();
    let seg_bound = seg
        .segments
        .iter()
        .filter(|s| s.memory_s > s.compute_s)
        .count();
    report.note(format!(
        "SegmentedRR-2: {}/{} segments memory-bound; idle (stall) fraction {:.0}% \
         (paper: segments 22-26 memory-bound, 29% idle).",
        rr_bound,
        rr.segments.len(),
        100.0 * rr.memory_stall_fraction
    ));
    report.note(format!(
        "Segmented-7: {}/{} segments memory-bound (paper: none).",
        seg_bound,
        seg.segments.len()
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_fig6_shape() {
        let r = super::run();
        // 27 SegmentedRR rounds (ceil(53/2)) and 7 Segmented segments.
        assert_eq!(r.tables[0].rows.len(), 27);
        assert_eq!(r.tables[1].rows.len(), 7);
        // The SegmentedRR instance has memory-bound late segments.
        let bound = r.tables[0]
            .rows
            .iter()
            .skip(18)
            .filter(|row| row[4] == "yes")
            .count();
        assert!(
            bound >= 3,
            "late rounds should be memory-bound, got {bound}"
        );
    }
}
