//! Table I: comparison of the three multiple-CE architectures on ResNet-50
//! / ZCU102, each metric normalized to the best architecture in that
//! metric.
//!
//! The paper compares one representative instance per architecture; we use
//! each architecture's best-throughput instance over the 2-11 CE sweep
//! (the instance a designer would deploy) and report normalized latency,
//! on-chip buffer requirement, and off-chip accesses.

use mccm_arch::templates::Architecture;
use mccm_cnn::zoo;
use mccm_core::Metric;
use mccm_fpga::FpgaBoard;

use crate::output::{Report, Table};
use crate::setups::{baseline_sweep, best_instance, mib};

/// Paper values for context (Table I).
pub const PAPER: [(&str, f64, f64, f64); 3] = [
    ("SegmentedRR", 1.0, 2.64, 1.79),
    ("Segmented", 4.7, 1.0, 1.99),
    ("Hybrid", 1.11, 1.74, 1.0),
];

/// Runs the experiment.
pub fn run() -> Report {
    let model = zoo::resnet50();
    let board = FpgaBoard::zcu102();
    let sweep = baseline_sweep(&model, &board);

    let order = [
        Architecture::SegmentedRr,
        Architecture::Segmented,
        Architecture::Hybrid,
    ];
    let picks: Vec<_> = order
        .iter()
        .map(|&a| best_instance(&sweep, a, Metric::Throughput).expect("sweep non-empty"))
        .collect();

    let lat: Vec<f64> = picks.iter().map(|p| p.eval.latency_s).collect();
    let buf: Vec<f64> = picks
        .iter()
        .map(|p| p.eval.buffer_req_bytes.as_f64())
        .collect();
    let acc: Vec<f64> = picks
        .iter()
        .map(|p| p.eval.offchip_bytes.as_f64())
        .collect();
    let nl = Metric::Latency.normalize_to_best(&lat);
    let nb = Metric::OnChipBuffers.normalize_to_best(&buf);
    let na = Metric::OffChipAccesses.normalize_to_best(&acc);

    let mut report = Report::new(
        "table1",
        "Architecture comparison, ResNet-50 on ZCU102 (normalized to best per metric)",
    );
    let mut t = Table::new(
        "normalized",
        &[
            "architecture",
            "CEs",
            "latency",
            "on-chip buffers",
            "off-chip accesses",
            "paper lat",
            "paper buf",
            "paper acc",
        ],
    );
    for (i, p) in picks.iter().enumerate() {
        t.row(vec![
            order[i].name().to_string(),
            p.ces.to_string(),
            format!("{:.2}", nl[i]),
            format!("{:.2}", nb[i]),
            format!("{:.2}", na[i]),
            format!("{:.2}", PAPER[i].1),
            format!("{:.2}", PAPER[i].2),
            format!("{:.2}", PAPER[i].3),
        ]);
    }
    report.tables.push(t);

    let mut raw = Table::new(
        "raw",
        &[
            "architecture",
            "CEs",
            "latency (ms)",
            "buffers (MiB)",
            "accesses (MiB)",
            "FPS",
        ],
    );
    for (i, p) in picks.iter().enumerate() {
        raw.row(vec![
            order[i].name().to_string(),
            p.ces.to_string(),
            format!("{:.2}", p.eval.latency_ms()),
            format!("{:.2}", mib(p.eval.buffer_req_bytes)),
            format!("{:.1}", mib(p.eval.offchip_bytes)),
            format!("{:.1}", p.eval.throughput_fps),
        ]);
    }
    report.tables.push(raw);

    // Shape checks against the paper.
    let rr_best_latency = nl[0] <= nl[1] && nl[0] <= nl[2];
    let hybrid_best_access = na[2] <= na[0] && na[2] <= na[1];
    report.note(format!(
        "SegmentedRR best latency (paper: yes): {rr_best_latency}; Hybrid best accesses (paper: yes): {hybrid_best_access}"
    ));
    report.note(
        "No architecture wins every metric — the premise motivating MCCM (§II-D).".to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_rows_and_normalized_bests() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 3);
        // Each metric column has at least one "1.00".
        for col in 2..=4 {
            assert!(
                r.tables[0].rows.iter().any(|row| row[col] == "1.00"),
                "column {col} lacks a best"
            );
        }
    }
}
